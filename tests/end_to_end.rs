//! Cross-crate integration: the full paper pipeline on one workload.

use distributed_pagerank::core::error_stats;
use distributed_pagerank::prelude::*;
use distributed_pagerank::search::corpus::generate_queries;
use distributed_pagerank::sim::churn::Schedule;
use rand::SeedableRng;

/// Static pagerank + quality + incremental update + search, end to end.
#[test]
fn full_pipeline() {
    // 1. Workload: power-law docs on 100 peers.
    let nodes = 4_000;
    let workload = Workload::paper(nodes, 100, 8);

    // 2. Distributed pagerank at the paper's recommended threshold.
    let mut engine = ChaoticEngine::new(
        workload.graph.clone(),
        workload.owners(),
        EngineConfig::with_epsilon(1e-3),
    );
    let mut peers = workload.peer_table();
    let run = engine.run_to_convergence(&mut peers, None);
    assert!(run.converged);
    assert!(run.total_remote_messages > 0);

    // 3. Quality vs the synchronous reference: paper Sec. 4.8 promises
    //    "maximum error of less than 1%" at eps = 1e-3.
    let reference = SyncSolver::new().solve(&workload.graph);
    let err = error_stats::compare(engine.ranks(), &reference.ranks);
    assert!(err.max < 0.02, "max rel err {}", err.max);
    assert!(err.avg < 0.005, "avg rel err {}", err.avg);

    // 4. Incremental insert on the live system: wave is small & local.
    let mut dyn_graph = DynamicGraph::from_csr(&workload.graph);
    let mut ranks = engine.ranks().to_vec();
    let cfg = PropagationConfig {
        damping: DEFAULT_DAMPING,
        epsilon: 1e-3,
    };
    let (id, wave) = insert_document(
        &mut dyn_graph,
        &[DocId(1), DocId(2), DocId(3)],
        &mut ranks,
        cfg,
    );
    assert_eq!(id.index(), nodes);
    assert!(wave.node_coverage < nodes / 2, "wave stays local: {wave:?}");
    assert!(
        wave.path_length <= 20,
        "paper: under ~15 even for large nets"
    );

    // 5. Search over the ranked corpus: incremental beats baseline.
    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: nodes,
        vocab_size: 500,
        ..Default::default()
    });
    let index = DistributedIndex::build(&corpus, engine.ranks(), &workload.ring);
    let q = Query::new(generate_queries(&corpus, 2, 1, 5).remove(0));
    let base = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);
    let incr = execute_incremental(&index, &q, IncrementalConfig::top10());
    assert!(incr.traffic_ids < base.traffic_ids);
    assert!(!incr.hits.is_empty());
    assert_eq!(incr.hits[0].doc, base.hits[0].doc, "best hit survives");
}

/// The chaotic result is independent of how documents are spread over
/// peers and whether churn interrupts the run — everything converges
/// to the same fixed point (within epsilon-scale tolerance).
#[test]
fn placement_and_churn_invariance() {
    let nodes = 2_000;
    let graph = PowerLawConfig::paper(nodes, 9).generate();
    let arc = std::sync::Arc::new(graph);

    // Single peer (pure algorithm).
    let mut local = ChaoticEngine::local(arc.clone(), EngineConfig::with_epsilon(1e-6));
    local.run_static();

    // 500 peers with 60% presence churn.
    let ring = Ring::with_peers(500);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
    let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
    let owners: Vec<PeerId> = (0..nodes)
        .map(|d| placement.owner(DocId(d as u32)))
        .collect();
    let mut churned = ChaoticEngine::new(arc, owners, EngineConfig::with_epsilon(1e-6));
    let mut peers = PeerTable::new(500);
    let mut schedule = Schedule::fraction(0.6, 11);
    let mut churn = |_p: usize, t: &mut PeerTable| schedule.apply(t);
    let run = churned.run_to_convergence(&mut peers, Some(&mut churn));
    assert!(run.converged);

    for (a, b) in local.ranks().iter().zip(churned.ranks()) {
        let rel = (a - b).abs() / a.max(1e-12);
        assert!(rel < 1e-3, "{a} vs {b}");
    }
}

/// DHT-successor placement works end to end and the hop accounting
/// shows the benefit of the Sec. 3.2 address cache.
#[test]
fn dht_placement_with_hop_accounting() {
    use distributed_pagerank::sim::hops::HopAccounting;

    let nodes = 1_500;
    let workload = distributed_pagerank::sim::workload::Workload::build(
        nodes,
        64,
        12,
        PlacementPolicy::DhtSuccessor,
    );

    let run_with = |mut acc: HopAccounting| {
        let mut engine = ChaoticEngine::new(
            workload.graph.clone(),
            workload.owners(),
            EngineConfig::with_epsilon(1e-3),
        );
        let peers = workload.peer_table();
        let mut total_hops = 0u64;
        let mut total_msgs = 0u64;
        let mut model = acc.model();
        while !engine.is_quiescent() {
            let s = engine.pass_with_hops(&peers, Some(&mut model));
            total_hops += s.hops;
            total_msgs += s.remote_messages;
        }
        (total_msgs, total_hops)
    };

    let (msgs_routed, hops_routed) = run_with(HopAccounting::routed(workload.ring.clone()));
    let (msgs_cached, hops_cached) = run_with(HopAccounting::cached(workload.ring.clone()));
    assert_eq!(msgs_routed, msgs_cached, "same logical messages");
    assert!(
        hops_cached < hops_routed,
        "caching must cut overlay hops: {hops_cached} vs {hops_routed}"
    );
    // With ~64 peers, routing costs ~log2(64)/2 ≈ 3 hops per message;
    // caching amortizes to ~1.
    let routed_ratio = hops_routed as f64 / msgs_routed as f64;
    let cached_ratio = hops_cached as f64 / msgs_cached as f64;
    assert!(routed_ratio > 1.5, "routed ratio {routed_ratio}");
    assert!(cached_ratio < 2.0, "cached ratio {cached_ratio}");
}

/// The execution-time model reproduces the paper's published numbers
/// from our measured message counts at matching per-node rates.
#[test]
fn exec_time_model_consistency() {
    use distributed_pagerank::core::exec_model;

    let workload = Workload::paper(5_000, 200, 13);
    let mut engine = ChaoticEngine::new(
        workload.graph.clone(),
        workload.owners(),
        EngineConfig::with_epsilon(1e-3),
    );
    let mut peers = workload.peer_table();
    let run = engine.run_to_convergence(&mut peers, None);
    // Messages/node in the paper's observed band (tens).
    let mpn = run.messages_per_node(5_000);
    assert!((5.0..200.0).contains(&mpn), "messages/node {mpn}");

    let t32 = exec_model::aggregate_time_secs(
        run.total_remote_messages,
        exec_model::RATE_32KBS,
        run.passes,
        0.0,
    );
    let t200 = exec_model::aggregate_time_secs(
        run.total_remote_messages,
        exec_model::RATE_200KBS,
        run.passes,
        0.0,
    );
    assert!(t200 < t32);
    let ratio = t32 / t200;
    assert!(
        (ratio - 200.0 / 32.0).abs() < 1e-9,
        "pure bandwidth scaling"
    );

    // Eq. 4 per-pass time: concurrent peers, so a pass costs the
    // slowest peer's serialized transfer — strictly less than pushing
    // every peer's links through one pipe.
    let per_peer = workload.remote_links_per_peer();
    let pass_time = exec_model::eq4_system_pass_time_secs(0.0, &per_peer, exec_model::RATE_32KBS);
    let serialized_pass_time =
        exec_model::eq4_pass_time_secs(0.0, per_peer.iter().sum::<u64>(), exec_model::RATE_32KBS);
    assert!(pass_time > 0.0);
    assert!(pass_time < serialized_pass_time);
}
