//! Differential tests for the telemetry layer.
//!
//! The contract under test is *zero perturbation*: attaching a live
//! [`TraceRecorder`] to any run loop must not move a single rank bit
//! or change a single traffic tally, at either execution mode and
//! under either wire mode. A third test exercises the end-to-end
//! acceptance path: a continuous-churn run writes a JSONL trace that
//! re-parses schema-valid and whose per-run residual series is
//! monotone non-increasing after the last injection event.

use distributed_pagerank::core::parallel::ExecMode;
use distributed_pagerank::node::node::WireMode;
use distributed_pagerank::prelude::*;
use distributed_pagerank::sim::batch::{run_wire_mode, run_wire_mode_observed};
use distributed_pagerank::sim::scenario::{
    continuous_update_experiment_observed, continuous_update_experiment_with,
    run_convergence_observed, run_convergence_with,
};
use dpr_telemetry::{Recorder, TraceRecorder, TraceSummary};
use std::sync::Arc;

const SEED: u64 = 2003;

/// Observing the engine run loop (churned, at both execution modes)
/// yields bit-identical ranks and identical run statistics.
#[test]
fn engine_ranks_are_bit_identical_with_telemetry_on() {
    let w = Workload::paper(2_000, 50, SEED);
    for mode in [ExecMode::Sequential, ExecMode::Parallel(4)] {
        let ranks_plain = {
            let mut eng = ChaoticEngine::new(
                w.graph.clone(),
                w.owners(),
                EngineConfig::with_epsilon(1e-3),
            );
            let mut peers = w.peer_table();
            let run = mode.run(&mut eng, &mut peers, None);
            assert!(run.converged);
            eng.ranks().to_vec()
        };
        let rec = TraceRecorder::new();
        let ranks_traced = {
            let mut eng = ChaoticEngine::new(
                w.graph.clone(),
                w.owners(),
                EngineConfig::with_epsilon(1e-3),
            );
            let mut peers = w.peer_table();
            let run = mode.run_observed(&mut eng, &mut peers, None, &rec, "diff");
            assert!(run.converged);
            eng.ranks().to_vec()
        };
        assert_eq!(ranks_plain, ranks_traced, "ranks diverged under {mode:?}");
        assert!(rec.event_count() > 0, "live recorder saw no events");
    }
}

/// The churned convergence scenario reports identical pass and
/// message tallies whether or not a recorder is attached.
#[test]
fn churned_convergence_stats_are_unchanged_by_telemetry() {
    let w = Workload::paper(1_500, 40, SEED);
    for mode in [ExecMode::Sequential, ExecMode::Parallel(2)] {
        let plain = run_convergence_with(&w, 1e-3, 0.75, SEED, mode);
        let rec = TraceRecorder::new();
        let traced =
            run_convergence_observed(&w, 1e-3, 0.75, SEED, mode, SchedMode::Pass, &rec, "diff");
        assert_eq!(plain.passes, traced.passes);
        assert_eq!(plain.converged, traced.converged);
        assert_eq!(plain.total_remote_messages, traced.total_remote_messages);
        assert_eq!(plain.messages_per_node, traced.messages_per_node);
        assert!(rec.enabled() && rec.event_count() > 0);
    }
}

/// Observing the message-level cluster (both wire modes, with the
/// address cache on) yields bit-identical ranks and byte-identical
/// traffic accounting.
#[test]
fn cluster_runs_are_bit_identical_with_telemetry_on() {
    let w = Workload::paper(1_000, 32, SEED);
    for wire in [WireMode::Single, WireMode::frames()] {
        let plain = run_wire_mode(&w, 1e-3, wire, true);
        let rec: Arc<TraceRecorder> = Arc::new(TraceRecorder::new());
        let traced = run_wire_mode_observed(&w, 1e-3, wire, true, rec.clone());
        assert_eq!(plain.ranks, traced.ranks, "ranks diverged under {wire:?}");
        let (p, t) = (plain.traffic, traced.traffic);
        assert_eq!(p.rounds, t.rounds);
        assert_eq!(p.updates, t.updates);
        assert_eq!(p.entries, t.entries);
        assert_eq!(p.frames, t.frames);
        assert_eq!(p.payloads, t.payloads);
        assert_eq!(p.bytes_on_wire, t.bytes_on_wire);
        assert_eq!(p.routed_messages, t.routed_messages);
        assert!(rec.event_count() > 0, "live recorder saw no events");
    }
}

/// The acceptance path end to end: a continuous-churn run traced to
/// JSONL re-parses schema-valid, its checkpoint results match the
/// untraced run exactly, and the residual series of every run label is
/// monotone non-increasing after the final injection event.
#[test]
fn continuous_trace_is_schema_valid_and_residual_monotone() {
    let dir = std::env::temp_dir().join(format!("dpr-telemetry-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("continuous.jsonl");

    let plain = continuous_update_experiment_with(1_500, 20, 4, 1e-3, SEED, ExecMode::Sequential);
    let rec = TraceRecorder::with_jsonl(&path).unwrap();
    let traced = continuous_update_experiment_observed(
        1_500,
        20,
        4,
        1e-3,
        SEED,
        ExecMode::Sequential,
        SchedMode::Pass,
        &rec,
    );
    rec.flush().unwrap();

    assert_eq!(plain.len(), traced.len());
    for (p, t) in plain.iter().zip(&traced) {
        assert_eq!(p.inserts, t.inserts);
        assert_eq!(p.max_rel_error, t.max_rel_error);
        assert_eq!(p.wave_messages, t.wave_messages);
    }

    let text = std::fs::read_to_string(&path).unwrap();
    let summary = TraceSummary::from_jsonl(&text).expect("trace must be schema-valid");
    assert_eq!(summary.events().len(), rec.event_count());
    assert!(summary.runs().iter().any(|r| r == "initial"));
    assert!(summary.runs().iter().any(|r| r.starts_with("recompute@")));
    if let Err((run, pass, prev, cur)) = summary.residual_monotone_after_last_injection() {
        panic!("residual regressed in run {run} at pass {pass}: {prev} -> {cur}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
