//! Property-based tests over the core data structures and invariants.

use distributed_pagerank::core::incremental::propagate_burst_localized;
use distributed_pagerank::core::sync_solver::fixed_point_residual;
use distributed_pagerank::graph::scc::SccIndex;
use distributed_pagerank::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random directed graph as (n, edge list).
fn arb_graph(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(f, t) in edges {
        b.add_edge(f, t);
    }
    b.build()
}

proptest! {
    /// CSR construction: sorted, deduplicated adjacency; degree sums
    /// equal the edge count; transpose is an involution.
    #[test]
    fn csr_invariants((n, edges) in arb_graph(60, 300)) {
        let g = build(n, &edges);
        prop_assert_eq!(g.num_nodes(), n);
        let mut total = 0usize;
        for v in g.nodes() {
            let out = g.out_neighbors(v);
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            prop_assert!(out.iter().all(|&t| (t as usize) < n));
            total += out.len();
        }
        prop_assert_eq!(total, g.num_edges());
        prop_assert_eq!(g.transpose().transpose(), g.clone());
        // Transpose preserves edge count and reverses membership.
        let t = g.transpose();
        prop_assert_eq!(t.num_edges(), g.num_edges());
        for e in g.edges() {
            prop_assert!(t.has_edge(e.to, e.from));
        }
    }

    /// Graph IO round-trips losslessly in both formats.
    #[test]
    fn graph_io_roundtrip((n, edges) in arb_graph(40, 150)) {
        use distributed_pagerank::graph::io;
        let g = build(n, &edges);
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        prop_assert_eq!(&io::read_edge_list(text.as_slice()).unwrap(), &g);
        let mut bin = Vec::new();
        io::write_binary(&g, &mut bin).unwrap();
        prop_assert_eq!(&io::read_binary(bin.as_slice()).unwrap(), &g);
    }

    /// The chaotic engine and the synchronous solver agree on any
    /// random graph, and the chaotic result satisfies the fixed-point
    /// equation to ~epsilon.
    #[test]
    fn chaotic_matches_sync((n, edges) in arb_graph(40, 200)) {
        let g = build(n, &edges);
        let reference = SyncSolver::new().tolerance(1e-13).solve(&g);
        let mut engine = ChaoticEngine::local(
            Arc::new(g.clone()),
            EngineConfig { epsilon: 1e-10, max_passes: 20_000, ..Default::default() },
        );
        let run = engine.run_static();
        prop_assert!(run.converged);
        for (a, b) in engine.ranks().iter().zip(&reference.ranks) {
            prop_assert!((a - b).abs() / b < 1e-6, "chaotic {} vs sync {}", a, b);
        }
        let res = fixed_point_residual(&g, engine.ranks(), DEFAULT_DAMPING);
        prop_assert!(res < 1e-6, "residual {}", res);
    }

    /// Rank conservation: every rank is at least (1 - d), and the
    /// total never exceeds n (dangling nodes only leak mass).
    #[test]
    fn rank_bounds((n, edges) in arb_graph(50, 250)) {
        let g = build(n, &edges);
        let r = SyncSolver::new().solve(&g);
        for &x in &r.ranks {
            prop_assert!(x >= 0.15 - 1e-9);
        }
        let total: f64 = r.ranks.iter().sum();
        prop_assert!(total <= n as f64 + 1e-6);
    }

    /// Insert followed by delete of the same document restores every
    /// rank exactly (the waves are mirror images).
    #[test]
    fn insert_delete_cancellation(
        (n, edges) in arb_graph(40, 150),
        link_picks in vec(any::<u32>(), 1..5),
        eps in 1e-6f64..1e-2,
    ) {
        let g = build(n, &edges);
        let mut dyn_graph = DynamicGraph::from_csr(&g);
        let mut ranks = vec![1.0f64; n];
        let before = ranks.clone();
        let targets: Vec<DocId> = link_picks
            .iter()
            .map(|&x| DocId(x % n as u32))
            .collect();
        let cfg = PropagationConfig { damping: 0.85, epsilon: eps };
        let (id, _) = insert_document(&mut dyn_graph, &targets, &mut ranks, cfg);
        let _ = delete_document(&mut dyn_graph, id, &mut ranks, cfg);
        for i in 0..n {
            prop_assert!((ranks[i] - before[i]).abs() < 1e-9,
                "rank {} drifted: {} vs {}", i, ranks[i], before[i]);
        }
        prop_assert!(dyn_graph.check_invariants().is_ok());
    }

    /// Localized (cone-restricted, merged) propagation and the global
    /// per-origin protocol agree to 1e-9 per document on arbitrary
    /// graphs. The waves truncate increments below epsilon at
    /// different points, so the bound is O(epsilon * generations) —
    /// epsilon = 1e-13 keeps it comfortably under 1e-9.
    #[test]
    fn localized_and_global_propagation_agree(
        (n, edges) in arb_graph(40, 150),
        origin_picks in vec((any::<u32>(), 0.01f64..1.0), 1..4),
    ) {
        let g = build(n, &edges);
        let dg = DynamicGraph::from_csr(&g);
        let index = SccIndex::new(&dg);
        let origins: Vec<(DocId, f64)> = origin_picks
            .iter()
            .map(|&(x, delta)| (DocId(x % n as u32), delta))
            .collect();
        let cfg = PropagationConfig { damping: 0.85, epsilon: 1e-13 };

        let mut global = vec![1.0f64; n];
        for &(d, delta) in &origins {
            propagate(&dg, d, delta, cfg, Some(&mut global));
        }

        let mut localized = vec![1.0f64; n];
        let burst =
            propagate_burst_localized(&dg, &index, &origins, cfg, Some(&mut localized));
        prop_assert!(burst.cone_docs <= n);

        for i in 0..n {
            prop_assert!((localized[i] - global[i]).abs() <= 1e-9,
                "doc {} localized {} vs global {}", i, localized[i], global[i]);
        }
    }

    /// DynamicGraph invariants hold under arbitrary mutation sequences.
    #[test]
    fn dynamic_graph_mutations(
        (n, edges) in arb_graph(30, 100),
        ops in vec((0u8..4, any::<u32>(), any::<u32>()), 1..40),
    ) {
        let g = build(n, &edges);
        let mut dg = DynamicGraph::from_csr(&g);
        for (op, a, b) in ops {
            let alive: Vec<DocId> = dg.alive().collect();
            if alive.is_empty() { break; }
            let pick = |x: u32| alive[x as usize % alive.len()];
            match op {
                0 => { dg.insert_document(&[pick(a)]); }
                1 => { if alive.len() > 1 { dg.delete_document(pick(a)); } }
                2 => { let (x, y) = (pick(a), pick(b)); dg.add_edge(x, y); }
                _ => { let (x, y) = (pick(a), pick(b)); dg.remove_edge(x, y); }
            }
            prop_assert!(dg.check_invariants().is_ok(), "{:?}", dg.check_invariants());
        }
    }

    /// Bloom filters never produce false negatives, at any size/rate.
    #[test]
    fn bloom_no_false_negatives(
        items in vec(any::<u32>(), 1..300),
        fp in 0.001f64..0.3,
    ) {
        let docs: Vec<DocId> = items.iter().map(|&x| DocId(x)).collect();
        let f = BloomFilter::from_docs(&docs, fp);
        for &d in &docs {
            prop_assert!(f.contains(d));
        }
    }

    /// Bloom-assisted intersection is always exact.
    #[test]
    fn bloom_intersection_exact(
        a in vec(0u32..5_000, 0..400),
        b in vec(0u32..5_000, 0..400),
    ) {
        use distributed_pagerank::search::bloom::bloom_intersect;
        let mut a: Vec<DocId> = a.into_iter().map(DocId).collect();
        let mut b: Vec<DocId> = b.into_iter().map(DocId).collect();
        a.sort_unstable(); a.dedup();
        b.sort_unstable(); b.dedup();
        if a.is_empty() { return Ok(()); }
        let (got, _) = bloom_intersect(&a, &b, 0.05);
        let expect: Vec<DocId> = b.iter().copied()
            .filter(|d| a.binary_search(d).is_ok())
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Ring successor is consistent with a brute-force linear scan and
    /// ownership partitions the circle.
    #[test]
    fn ring_successor_correct(peers in 1usize..64, probes in vec(any::<u32>(), 1..50)) {
        let ring = Ring::with_peers(peers);
        let mut pts: Vec<(Guid, PeerId)> =
            (0..peers as u32).map(|i| (Guid::for_peer(i), PeerId(i))).collect();
        pts.sort_by_key(|&(g, _)| g);
        for p in probes {
            let id = Guid::for_document(DocId(p));
            let expect = pts.iter().find(|&&(g, _)| g >= id).map(|&(_, p)| p)
                .unwrap_or(pts[0].1);
            prop_assert_eq!(ring.successor(id), expect);
        }
    }

    /// Routing always terminates at the true owner within the O(log n)
    /// hop bound.
    #[test]
    fn routing_terminates(peers in 2usize..128, probes in vec(any::<u32>(), 1..30)) {
        use distributed_pagerank::p2p::routing::Router;
        let ring = Ring::with_peers(peers);
        let mut router = Router::new();
        for p in probes {
            let target = Guid::for_document(DocId(p));
            let src = PeerId(p % peers as u32);
            let route = router.route(&ring, src, target);
            prop_assert_eq!(route.owner, ring.successor(target));
            prop_assert!(route.hops <= 2 * 7 + 2,
                "hops {} exceeds bound for {} peers", route.hops, peers);
        }
    }

    /// The incremental top-x% search returns a rank-sorted subset of
    /// the exact boolean answer, and never more traffic than baseline.
    #[test]
    fn incremental_search_is_sound(seed in 0u64..500, frac in 0.05f64..0.5) {
        let corpus = Corpus::generate(&CorpusConfig {
            num_docs: 400, vocab_size: 80, tokens_per_doc: 25, seed,
            ..Default::default()
        });
        let ranks: Vec<f64> = (0..400).map(|i| 0.15 + (i as f64 * 3.7) % 2.0).collect();
        let ring = Ring::with_peers(10);
        let index = DistributedIndex::build(&corpus, &ranks, &ring);
        let q = Query::new(vec![0, 1]);
        let base = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);
        let cfg = IncrementalConfig {
            forward_fraction: frac,
            min_forward: 20,
            traffic: TrafficModel::AllHopsRemote,
        };
        let incr = execute_incremental(&index, &q, cfg);
        prop_assert!(incr.traffic_ids <= base.traffic_ids);
        prop_assert!(incr.hits_returned() <= base.hits_returned());
        // Subset of the exact answer, in rank order.
        let base_docs: std::collections::HashSet<u32> =
            base.hits.iter().map(|p| p.doc.0).collect();
        for w in incr.hits.windows(2) {
            prop_assert!(w[0].rank >= w[1].rank);
        }
        for h in &incr.hits {
            prop_assert!(base_docs.contains(&h.doc.0));
        }
    }
}

proptest! {
    /// Tarjan SCC: components partition the nodes, nodes in one
    /// component reach each other, and the component ids respect
    /// reverse topological order on the condensation.
    #[test]
    fn scc_partition_properties((n, edges) in arb_graph(40, 160)) {
        use distributed_pagerank::graph::scc::tarjan_scc;
        use distributed_pagerank::graph::stats::bfs_reach;
        let g = build(n, &edges);
        let scc = tarjan_scc(&g);
        prop_assert_eq!(scc.component.len(), n);
        prop_assert!(scc.num_components >= 1 && scc.num_components <= n);
        prop_assert_eq!(scc.sizes().iter().sum::<usize>(), n);
        // Mutual reachability within a component (spot check node 0's
        // component against BFS both ways).
        let c0 = scc.component[0];
        let (fwd, _) = bfs_reach(&g, DocId(0));
        let (bwd, _) = bfs_reach(&g.transpose(), DocId(0));
        for v in 0..n {
            let mutual = fwd[v] && bwd[v];
            prop_assert_eq!(mutual, scc.component[v] == c0,
                "node {} mutual={} but component match={}", v, mutual,
                scc.component[v] == c0);
        }
    }

    /// Partitioning: labels are complete and in range; refinement
    /// never increases the edge cut; the cut is 0 for k = 1.
    #[test]
    fn partition_properties((n, edges) in arb_graph(60, 240), k in 1usize..8) {
        use distributed_pagerank::graph::partition::*;
        let g = build(n, &edges);
        let mut labels = bfs_partition(&g, k);
        prop_assert!(labels.iter().all(|&l| (l as usize) < k));
        prop_assert_eq!(partition_sizes(&labels, k).iter().sum::<usize>(), n);
        let before = edge_cut(&g, &labels);
        refine_partition(&g, &mut labels, k, 1.25);
        let after = edge_cut(&g, &labels);
        prop_assert!(after <= before);
        if k == 1 {
            prop_assert_eq!(after, 0);
        }
    }

    /// Pastry routing always reaches the numerically closest peer and
    /// stays within the hop bound, for any membership size.
    #[test]
    fn pastry_routes_terminate(n in 1usize..80, probes in vec(any::<u32>(), 1..25)) {
        use distributed_pagerank::p2p::pastry::PastryNetwork;
        let net = PastryNetwork::new(n);
        for p in probes {
            let key = Guid::for_document(DocId(p));
            let from = PeerId(p % n as u32);
            let r = net.route(from, key);
            prop_assert_eq!(r.owner, net.owner(key));
            prop_assert!((r.hops as usize) < n.max(16) * 2,
                "hops {} for {} peers", r.hops, n);
        }
    }

    /// The result cursor pages out exactly the baseline ranking, in
    /// order, for any page size.
    #[test]
    fn cursor_pages_match_baseline(page in 1usize..40, seed in 0u64..200) {
        use distributed_pagerank::search::cursor::ResultCursor;
        let corpus = Corpus::generate(&CorpusConfig {
            num_docs: 600, vocab_size: 120, tokens_per_doc: 30, seed,
            ..Default::default()
        });
        let ranks: Vec<f64> = (0..600).map(|i| 0.15 + (i as f64 * 5.1) % 3.0).collect();
        let ring = Ring::with_peers(8);
        let index = DistributedIndex::build(&corpus, &ranks, &ring);
        let q = Query::new(vec![0, 1]);
        let baseline = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);
        let mut cursor = ResultCursor::open(&index, q, IncrementalConfig::top10());
        let mut collected = Vec::new();
        loop {
            let hits = cursor.fetch(page);
            if hits.is_empty() { break; }
            collected.extend(hits);
        }
        prop_assert_eq!(collected.len(), baseline.hits.len());
        for (a, b) in collected.iter().zip(&baseline.hits) {
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    /// Personalized pagerank with a uniform teleport equals standard
    /// pagerank on any graph.
    #[test]
    fn personalized_uniform_is_standard((n, edges) in arb_graph(30, 120)) {
        use distributed_pagerank::core::personalized::{
            solve_personalized_sync, TeleportVector,
        };
        let g = build(n, &edges);
        let standard = SyncSolver::new().tolerance(1e-12).solve(&g).ranks;
        let uniform = solve_personalized_sync(
            &g, &TeleportVector::uniform(n), DEFAULT_DAMPING, 1e-12);
        for (a, b) in uniform.iter().zip(&standard) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }
}
