//! Differential tests for the sharded pass executor.
//!
//! The contract under test is *bit* identity, not approximation: at
//! every thread count, under arbitrary churn, on arbitrary graphs, the
//! sharded executor must produce exactly the ranks (`==` on every
//! `f64`) and exactly the per-pass `PassStats` of the sequential
//! engine. A fixed-seed regression test pins the sequential output
//! itself, so the shared reference cannot drift silently either.

use distributed_pagerank::core::parallel::ShardedExecutor;
use distributed_pagerank::prelude::*;
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random directed graph as (n, edge list).
fn arb_graph(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop_vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

/// Strategy: a cyclic churn plan — per pass, per peer, online?
fn arb_churn_plan(num_peers: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop_vec(prop_vec(any::<bool>(), num_peers..num_peers + 1), 1..6)
}

fn build(n: usize, edges: &[(u32, u32)]) -> Arc<CsrGraph> {
    let mut b = GraphBuilder::new(n);
    for &(f, t) in edges {
        b.add_edge(f, t);
    }
    Arc::new(b.build())
}

fn owners(n: usize, num_peers: usize) -> Vec<PeerId> {
    (0..n).map(|d| PeerId((d % num_peers) as u32)).collect()
}

/// Applies one row of the churn plan, keeping at least one peer
/// online so every run can terminate.
fn apply_mask(peers: &mut PeerTable, mask: &[bool]) {
    for (i, &on) in mask.iter().enumerate().take(peers.len()) {
        if on {
            peers.go_online(PeerId(i as u32));
        } else {
            peers.go_offline(PeerId(i as u32));
        }
    }
    if peers.num_online() == 0 {
        peers.go_online(PeerId(0));
    }
}

/// Runs `max_passes` churned passes (stopping early on quiescence)
/// and returns the exact trajectory: final ranks plus every pass's
/// stats. `threads == 0` means the sequential engine.
fn run_trajectory(
    graph: &Arc<CsrGraph>,
    owner: &[PeerId],
    plan: &[Vec<bool>],
    threads: usize,
    max_passes: usize,
) -> (Vec<f64>, Vec<PassStats>) {
    let mut eng = ChaoticEngine::new(
        graph.clone(),
        owner.to_vec(),
        EngineConfig::with_epsilon(RECOMMENDED_EPSILON),
    );
    let num_peers = owner.iter().map(|p| p.index() + 1).max().unwrap_or(1);
    let mut peers = PeerTable::new(num_peers);
    // Threshold 0 disables the auto-inline guard: these graphs are far
    // below the default threshold, and the machinery under test is the
    // sharded fan-out itself (the guard delegates to the sequential
    // engine, which would make the comparison vacuous).
    let mut exec = ShardedExecutor::new(threads.max(1)).with_auto_seq_threshold(0);
    let mut stats = Vec::new();
    for pass in 0..max_passes {
        apply_mask(&mut peers, &plan[pass % plan.len()]);
        let s = if threads == 0 {
            eng.pass(&peers)
        } else {
            exec.pass(&mut eng, &peers)
        };
        stats.push(s);
        if eng.is_quiescent() {
            break;
        }
    }
    (eng.ranks().to_vec(), stats)
}

proptest! {
    /// The tentpole contract: on random graphs, random peer counts and
    /// random churn schedules, every thread count in {1, 2, 4, 8}
    /// reproduces the sequential trajectory bit for bit.
    #[test]
    fn sharded_executor_is_bit_identical_to_sequential(
        (n, edges) in arb_graph(90, 350),
        num_peers in 1usize..7,
        plan in arb_churn_plan(7),
    ) {
        let graph = build(n, &edges);
        let owner = owners(n, num_peers);
        let (seq_ranks, seq_stats) = run_trajectory(&graph, &owner, &plan, 0, 60);
        for threads in [1usize, 2, 4, 8] {
            let (ranks, stats) = run_trajectory(&graph, &owner, &plan, threads, 60);
            prop_assert_eq!(&ranks, &seq_ranks, "ranks diverged at {} threads", threads);
            prop_assert_eq!(&stats, &seq_stats, "stats diverged at {} threads", threads);
        }
    }
}

/// Pins the sequential engine's exact output on a fixed workload, so
/// the reference the differential test compares against cannot drift
/// without this test noticing. The constants are the bits produced at
/// the time the sharded executor landed.
#[test]
fn fixed_seed_sequential_output_is_pinned() {
    let graph = Arc::new(PowerLawConfig::paper(500, 2003).generate());
    let mut eng = ChaoticEngine::new(
        graph.clone(),
        owners(500, 7),
        EngineConfig::with_epsilon(RECOMMENDED_EPSILON),
    );
    let mut peers = PeerTable::new(7);
    let run = eng.run_to_convergence(&mut peers, None);
    assert!(run.converged);

    let sum_bits: u64 = eng.ranks().iter().fold(0u64, |acc, r| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(r.to_bits())
    });
    let expected_sum_bits: u64 = {
        // Recompute via the sharded executor as an internal cross-check
        // before comparing against the pinned constant.
        let mut eng2 = ChaoticEngine::new(
            graph,
            owners(500, 7),
            EngineConfig::with_epsilon(RECOMMENDED_EPSILON),
        );
        let mut peers2 = PeerTable::new(7);
        let run2 = ShardedExecutor::new(4)
            .with_auto_seq_threshold(0)
            .run_to_convergence(&mut eng2, &mut peers2, None);
        assert!(run2.converged);
        assert_eq!(eng2.ranks(), eng.ranks());
        assert_eq!(run2.passes, run.passes);
        eng2.ranks().iter().fold(0u64, |acc, r| {
            acc.wrapping_mul(0x100000001b3).wrapping_add(r.to_bits())
        })
    };
    assert_eq!(sum_bits, expected_sum_bits);

    // The pinned fingerprint of the converged rank vector. If an
    // intentional algorithm change moves it, update the constant in
    // the same commit and say why.
    assert_eq!(
        sum_bits, PINNED_RANK_FINGERPRINT,
        "sequential output drifted"
    );
}

/// FNV-style fingerprint of the 500-doc fixed-seed run; see
/// [`fixed_seed_sequential_output_is_pinned`].
const PINNED_RANK_FINGERPRINT: u64 = 12356040237301729421;
