//! Differential tests for the selective schedulers (priority and
//! greedy matching pursuit).
//!
//! Three contracts, mirroring `parallel_differential.rs`:
//!
//! 1. **Approximation**: on random graphs, under arbitrary churn and
//!    arbitrary insert/delete increment injections, each selective
//!    schedule lands within 1e-9 L1 per document of the classic
//!    full-sweep engine once both quiesce at a tiny ε.
//! 2. **Bit identity**: both selective schedules are functions of the
//!    dirty *set*, so every sharded thread count must reproduce the
//!    sequential trajectory bit for bit, and the two wire modes must
//!    converge a message-level cluster to identical bits.
//! 3. **Pinned ordering**: a fixed-seed peer-node run emits its wire
//!    messages in a deterministic order; an FNV fingerprint over the
//!    full destination/payload byte sequence pins that order, so a
//!    change to residual bucketing, greedy scoring, or flush fill
//!    order cannot land silently.

use distributed_pagerank::core::parallel::ShardedExecutor;
use distributed_pagerank::node::node::{PeerNode, WireMode};
use distributed_pagerank::prelude::*;
use distributed_pagerank::sim::batch::run_wire_mode_sched;
use dpr_graph::CsrGraph as Csr;
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Tight enough that the O(ε) gap between the two schedules sits well
/// inside the 1e-9/doc parity band.
const PARITY_EPSILON: f64 = 1e-11;

/// Strategy: a random directed graph as (n, edge list).
fn arb_graph(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop_vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

/// Strategy: a cyclic churn plan — per pass, per peer, online?
fn arb_churn_plan(num_peers: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop_vec(prop_vec(any::<bool>(), num_peers..num_peers + 1), 1..6)
}

/// Strategy: parked insert/delete increments (doc picked mod n).
fn arb_deltas() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop_vec((any::<u32>(), -0.3f64..0.6), 0..8)
}

fn build(n: usize, edges: &[(u32, u32)]) -> Arc<Csr> {
    let mut b = GraphBuilder::new(n);
    for &(f, t) in edges {
        b.add_edge(f, t);
    }
    Arc::new(b.build())
}

fn owners(n: usize, num_peers: usize) -> Vec<PeerId> {
    (0..n).map(|d| PeerId((d % num_peers) as u32)).collect()
}

/// Applies one row of the churn plan, keeping at least one peer
/// online so every run can terminate.
fn apply_mask(peers: &mut PeerTable, mask: &[bool]) {
    for (i, &on) in mask.iter().enumerate().take(peers.len()) {
        if on {
            peers.go_online(PeerId(i as u32));
        } else {
            peers.go_offline(PeerId(i as u32));
        }
    }
    if peers.num_online() == 0 {
        peers.go_online(PeerId(0));
    }
}

/// One full scheduled life: churned passes following `plan`, then the
/// insert/delete increments of `deltas` parked via
/// [`ChaoticEngine::inject_delta`], then every peer back online and
/// the engine drained to quiescence. Returns the final ranks and the
/// exact per-pass stats ( `threads == 0` means the sequential engine).
fn run_sched_trajectory(
    graph: &Arc<Csr>,
    owner: &[PeerId],
    plan: &[Vec<bool>],
    deltas: &[(u32, f64)],
    sched: SchedMode,
    threads: usize,
) -> (Vec<f64>, Vec<PassStats>) {
    let mut eng = ChaoticEngine::new(
        graph.clone(),
        owner.to_vec(),
        EngineConfig::with_epsilon(PARITY_EPSILON).with_sched(sched),
    );
    let num_peers = owner.iter().map(|p| p.index() + 1).max().unwrap_or(1);
    let mut peers = PeerTable::new(num_peers);
    let mut exec = ShardedExecutor::new(threads.max(1));
    let mut stats = Vec::new();
    let mut pass = |eng: &mut ChaoticEngine, peers: &PeerTable| {
        if threads == 0 {
            eng.pass(peers)
        } else {
            exec.pass(eng, peers)
        }
    };

    // Phase 1: churn.
    for row in plan {
        apply_mask(&mut peers, row);
        stats.push(pass(&mut eng, &peers));
    }
    // Phase 2: park external insert/delete increments.
    for &(doc, delta) in deltas {
        eng.inject_delta(DocId(doc % graph.num_nodes() as u32), delta);
    }
    // Phase 3: everyone online, drain to quiescence.
    for i in 0..num_peers {
        peers.go_online(PeerId(i as u32));
    }
    for _ in 0..20_000 {
        if eng.is_quiescent() {
            break;
        }
        stats.push(pass(&mut eng, &peers));
    }
    assert!(eng.is_quiescent(), "trajectory failed to quiesce");
    (eng.ranks().to_vec(), stats)
}

fn l1_per_doc(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len().max(1) as f64
}

proptest! {
    /// The tentpole contract: under churn and insert/delete injections
    /// each selective schedule (a) reaches the full-sweep fixed point
    /// to within 1e-9 per document, and (b) is reproduced bit for bit
    /// by every sharded thread count.
    #[test]
    fn selective_scheds_match_pass_and_are_bit_identical_across_executors(
        (n, edges) in arb_graph(80, 300),
        num_peers in 1usize..7,
        plan in arb_churn_plan(7),
        deltas in arb_deltas(),
    ) {
        let graph = build(n, &edges);
        let owner = owners(n, num_peers);
        let (pass_ranks, _) =
            run_sched_trajectory(&graph, &owner, &plan, &deltas, SchedMode::Pass, 0);
        for sched in [SchedMode::Priority, SchedMode::Greedy] {
            let (sel_ranks, sel_stats) =
                run_sched_trajectory(&graph, &owner, &plan, &deltas, sched, 0);

            let gap = l1_per_doc(&sel_ranks, &pass_ranks);
            prop_assert!(gap <= 1e-9, "{sched} vs pass gap {gap:e} per doc");

            for threads in [1usize, 2, 4] {
                let (ranks, stats) =
                    run_sched_trajectory(&graph, &owner, &plan, &deltas, sched, threads);
                prop_assert_eq!(&ranks, &sel_ranks, "{} ranks diverged at {} threads", sched, threads);
                prop_assert_eq!(&stats, &sel_stats, "{} stats diverged at {} threads", sched, threads);
            }
        }
    }
}

/// The wire path cannot perturb the schedule: a message-level cluster
/// running a selective scheduler converges bit-identically whether
/// updates travel as single messages or batched frames, and lands
/// within O(ε) of the pass cluster. The workloads keep enough
/// documents per peer that residual selection actually engages.
#[test]
fn selective_clusters_are_bit_identical_across_wire_modes() {
    for seed in [3u64, 17] {
        let w = Workload::paper(1_000, 8, seed);
        let pass = run_wire_mode_sched(&w, 1e-6, SchedMode::Pass, WireMode::Single, false);
        for sched in [SchedMode::Priority, SchedMode::Greedy] {
            let single = run_wire_mode_sched(&w, 1e-6, sched, WireMode::Single, false);
            let frames = run_wire_mode_sched(&w, 1e-6, sched, WireMode::frames(), true);
            assert_eq!(
                single.ranks, frames.ranks,
                "{sched} wire modes diverged at seed {seed}"
            );

            let gap = l1_per_doc(&single.ranks, &pass.ranks);
            assert!(
                gap < 1e-6,
                "cluster {sched} vs pass gap {gap:e} at seed {seed}"
            );
        }
    }
}

/// FNV-1a-style fold matching the fingerprint idiom of
/// `parallel_differential.rs`.
fn fold(acc: u64, byte: u64) -> u64 {
    acc.wrapping_mul(0x100000001b3).wrapping_add(byte)
}

/// Drives a fixed-seed peer-node cluster by hand (synchronous rounds,
/// nodes stepped in id order) and fingerprints every wire message in
/// emission order: destination, then payload bytes.
fn message_order_fingerprint(sched: SchedMode) -> u64 {
    let w = Workload::paper(600, 4, 2003);
    let cfg = EngineConfig::with_epsilon(1e-6).with_sched(sched);
    let mut nodes: Vec<PeerNode> = (0..4u32)
        .map(|i| PeerNode::with_wire(PeerId(i), cfg, WireMode::Single))
        .collect();
    for d in 0..w.graph.num_nodes() {
        let doc = DocId::from(d);
        let out: Vec<(DocId, PeerId)> = w
            .graph
            .out_neighbors(doc)
            .iter()
            .map(|&t| (DocId(t), w.placement.owner(DocId(t))))
            .collect();
        nodes[w.placement.owner(doc).index()].add_document(doc, out);
    }

    let mut fp = 0u64;
    let mut inboxes: Vec<Vec<_>> = vec![Vec::new(); nodes.len()];
    for _round in 0..100_000 {
        for node in &mut nodes {
            node.step();
            for (dst, payload) in node.drain_outbox() {
                fp = fold(fp, dst.index() as u64 + 1);
                for &b in payload.iter() {
                    fp = fold(fp, b as u64);
                }
                inboxes[dst.index()].push(payload);
            }
        }
        let mut delivered = false;
        for (i, inbox) in inboxes.iter_mut().enumerate() {
            for payload in inbox.drain(..) {
                nodes[i].handle_message(payload).expect("wire decode");
                delivered = true;
            }
        }
        if !delivered && nodes.iter().all(|n| !n.has_work()) {
            return fp;
        }
    }
    panic!("fixed-seed cluster failed to quiesce");
}

/// Pins the exact wire emission order of the fixed-seed priority run
/// (150 documents per peer — selection engaged, not bypassed). If an
/// intentional scheduling change moves it, update the constant in the
/// same commit and say why. The pass-mode run is fingerprinted too, so
/// the test also proves the two schedules genuinely emit in different
/// orders (i.e. the priority path is not silently degenerating to the
/// full sweep on this workload).
#[test]
fn fixed_seed_priority_message_order_is_pinned() {
    let pri = message_order_fingerprint(SchedMode::Priority);
    let pass = message_order_fingerprint(SchedMode::Pass);
    assert_ne!(
        pri, pass,
        "priority run emitted exactly the pass-order byte stream"
    );
    assert_eq!(
        pri, PINNED_PRIORITY_MESSAGE_FINGERPRINT,
        "emission order drifted"
    );
}

/// The greedy twin of the pinned-priority test: the matching-pursuit
/// run must emit a byte stream distinct from both the full sweep and
/// the bucket scheduler (its flush buffers fill in exact score order,
/// not bucket order), and that stream is pinned. If an intentional
/// scoring change moves it, update the constant in the same commit and
/// say why.
#[test]
fn fixed_seed_greedy_message_order_is_pinned() {
    let greedy = message_order_fingerprint(SchedMode::Greedy);
    let pass = message_order_fingerprint(SchedMode::Pass);
    let pri = message_order_fingerprint(SchedMode::Priority);
    assert_ne!(
        greedy, pass,
        "greedy run emitted exactly the pass-order byte stream"
    );
    assert_ne!(
        greedy, pri,
        "greedy run emitted exactly the priority-order byte stream"
    );
    assert_eq!(
        greedy, PINNED_GREEDY_MESSAGE_FINGERPRINT,
        "emission order drifted"
    );
}

/// Fingerprint of the 600-doc / 4-peer fixed-seed priority run; see
/// [`fixed_seed_priority_message_order_is_pinned`].
const PINNED_PRIORITY_MESSAGE_FINGERPRINT: u64 = 9526718389385276226;

/// Fingerprint of the same fixed-seed run under the greedy scheduler;
/// see [`fixed_seed_greedy_message_order_is_pinned`].
const PINNED_GREEDY_MESSAGE_FINGERPRINT: u64 = 445642202004604719;
