//! Integration tests for the extension subsystems working together:
//! message-level cluster + termination detection + link-aware
//! placement + Pastry routing + personalized ranks.

use distributed_pagerank::core::personalized::{personalized_engine, TeleportVector};
use distributed_pagerank::graph::partition::link_aware_partition;
use distributed_pagerank::node::termination::{
    run_with_termination_detection, TerminationDetector,
};
use distributed_pagerank::node::Cluster;
use distributed_pagerank::p2p::pastry::PastryNetwork;
use distributed_pagerank::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

/// A link-aware-placed, message-level cluster with protocol-level
/// termination detection still computes the correct ranks — and pays
/// fewer wire messages than a randomly placed one.
#[test]
fn link_aware_cluster_with_termination_detection() {
    let nodes = 1_200;
    let num_peers = 10;
    let graph = PowerLawConfig::paper(nodes, 201).generate();

    let run = |placement: Placement| {
        let mut cluster = Cluster::build(
            &graph,
            &placement,
            num_peers,
            EngineConfig::with_epsilon(1e-6),
        );
        let mut peers = PeerTable::new(num_peers);
        let (rounds, announced) = run_with_termination_detection(&mut cluster, &mut peers, 50_000);
        assert!(
            announced,
            "termination detection stalled after {rounds} rounds"
        );
        assert!(cluster.is_quiescent(), "announcement must be sound");
        (cluster.collect_ranks(nodes), cluster.traffic().sent)
    };

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(202);
    let ring = Ring::with_peers(num_peers);
    let random = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
    let labels = link_aware_partition(&graph, num_peers, 6);
    let aware = Placement::from_owner_vec(labels.into_iter().map(PeerId).collect());

    let (ranks_random, wire_random) = run(random);
    let (ranks_aware, wire_aware) = run(aware);

    // Same answer, fewer wire messages.
    for (a, b) in ranks_random.iter().zip(&ranks_aware) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
    assert!(
        wire_aware < wire_random,
        "link-aware {wire_aware} vs random {wire_random} wire messages"
    );
    // And the answer is the right one.
    let reference = SyncSolver::new().solve(&graph).ranks;
    for (a, b) in ranks_aware.iter().zip(&reference) {
        assert!((a - b).abs() / b < 1e-4, "{a} vs {b}");
    }
}

/// Pastry and Chord both resolve the same document lookups (to their
/// respective owner definitions) with O(log n) cost — interchangeable
/// as the routing substrate for the address-cache warm-up.
#[test]
fn pastry_as_alternative_routing_substrate() {
    use distributed_pagerank::p2p::routing::Router;
    let n = 100;
    let pastry = PastryNetwork::new(n);
    let ring = Ring::with_peers(n);
    let mut chord = Router::new();
    let (mut pastry_hops, mut chord_hops) = (0u64, 0u64);
    for d in 0..300u32 {
        let key = Guid::for_document(DocId(d));
        let src = PeerId(d % n as u32);
        let pr = pastry.route(src, key);
        let cr = chord.route(&ring, src, key);
        pastry_hops += pr.hops as u64;
        chord_hops += cr.hops as u64;
        // Owner definitions differ (numerically closest vs successor)
        // but each discipline's route lands on its own owner.
        assert_eq!(pr.owner, pastry.owner(key));
        assert_eq!(cr.owner, ring.successor(key));
    }
    assert!(pastry_hops < 300 * 6, "pastry mean too high: {pastry_hops}");
    assert!(chord_hops < 300 * 8, "chord mean too high: {chord_hops}");
}

/// Personalized pagerank runs on a multi-peer distributed system with
/// churn, exactly like the standard computation.
#[test]
fn personalized_ranks_on_distributed_system_with_churn() {
    use distributed_pagerank::core::personalized::solve_personalized_sync;
    use distributed_pagerank::sim::churn::Schedule;

    let nodes = 1_000;
    let graph = Arc::new(PowerLawConfig::paper(nodes, 203).generate());
    let preferred: Vec<DocId> = (0..25u32).map(DocId).collect();
    let teleport = TeleportVector::concentrated(nodes, &preferred);
    let reference = solve_personalized_sync(&graph, &teleport, 0.85, 1e-13);

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(204);
    let ring = Ring::with_peers(40);
    let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
    let owners: Vec<PeerId> = (0..nodes)
        .map(|d| placement.owner(DocId(d as u32)))
        .collect();
    let mut engine =
        personalized_engine(graph, owners, EngineConfig::with_epsilon(1e-8), &teleport);
    let mut peers = PeerTable::new(40);
    let mut schedule = Schedule::sessions(40.0, 15.0, 205);
    let mut churn = |_p: usize, t: &mut PeerTable| schedule.apply(t);
    let run = engine.run_to_convergence(&mut peers, Some(&mut churn));
    assert!(run.converged);
    for (a, b) in engine.ranks().iter().zip(&reference) {
        let tol = 1e-4 * b.abs().max(1e-3);
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }
    // Teleport mass concentrates rank around the preference set:
    // every preferred document ranks far above the median (which is
    // near zero — most documents receive no teleport mass at all).
    let mut sorted: Vec<f64> = engine.ranks().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[nodes / 2];
    for &d in &preferred {
        assert!(
            engine.ranks()[d.index()] > 10.0 * median.max(1e-6),
            "preferred {d} rank {} vs median {median}",
            engine.ranks()[d.index()]
        );
    }
}

/// Safra detection is sound under session churn: it never announces
/// while the system has work, even when peers flap.
#[test]
fn termination_detection_sound_under_session_churn() {
    use distributed_pagerank::sim::churn::Schedule;
    let nodes = 600;
    let num_peers = 8;
    let graph = PowerLawConfig::paper(nodes, 206).generate();
    let ring = Ring::with_peers(num_peers);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(207);
    let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
    let mut cluster = Cluster::build(
        &graph,
        &placement,
        num_peers,
        EngineConfig::with_epsilon(1e-4),
    );
    let mut peers = PeerTable::new(num_peers);
    let mut detector = TerminationDetector::new(num_peers);
    let mut schedule = Schedule::sessions(25.0, 8.0, 208);
    let mut rounds = 0usize;
    while rounds < 50_000 && !detector.announced() {
        cluster.round(&peers);
        rounds += 1;
        if rounds < 60 {
            schedule.apply(&mut peers);
        } else if rounds == 60 {
            (0..num_peers as u32).for_each(|p| {
                peers.go_online(PeerId(p));
            });
        }
        detector.advance(&cluster, &peers);
        if detector.announced() {
            assert!(
                cluster.is_quiescent(),
                "unsound announcement at round {rounds}"
            );
        }
    }
    assert!(detector.announced(), "no announcement in {rounds} rounds");
}
