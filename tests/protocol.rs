//! Protocol-level integration: transport, store-and-resend, wire
//! format, and the peer lifecycle — the Sec. 3 machinery exercised
//! together.

use distributed_pagerank::core::RankUpdate;
use distributed_pagerank::p2p::transport::{RankUpdateWire, Transport};
use distributed_pagerank::prelude::*;
use rand::SeedableRng;
use std::collections::HashMap;

/// A miniature message-level run of the distributed protocol: two
/// peers exchange encoded 24-byte rank updates through the transport,
/// with one peer going offline mid-run and the store-and-resend
/// buffer carrying its updates.
#[test]
fn message_level_exchange_with_churn() {
    let mut peers = PeerTable::new(2);
    let mut transport: Transport<bytes::Bytes> = Transport::new(2);

    // Peer 0 holds doc 0, peer 1 holds doc 1; 0 -> 1 -> 0 cycle.
    let guid_index: HashMap<Guid, DocId> = [
        (Guid::for_document(DocId(0)), DocId(0)),
        (Guid::for_document(DocId(1)), DocId(1)),
    ]
    .into_iter()
    .collect();

    // Peer 0 advertises doc 0's base rank to doc 1.
    let update = RankUpdate::new(DocId(1), 0.85 * 0.15);
    transport.send(&peers, PeerId(0), PeerId(1), update.to_wire().encode());

    // Peer 1 goes offline before processing; peer 0 sends another.
    peers.go_offline(PeerId(1));
    let update2 = RankUpdate::new(DocId(1), 0.85 * 0.05);
    transport.send(&peers, PeerId(0), PeerId(1), update2.to_wire().encode());
    assert_eq!(transport.pending_at(PeerId(0)), 1, "second update parked");

    // Peer 1 returns; retry delivers the parked update.
    peers.go_online(PeerId(1));
    assert_eq!(transport.retry_pending(&peers), 1);

    // Peer 1 decodes both updates and applies them.
    let mut rank1 = 0.15f64;
    let mut received = 0;
    while let Some(env) = transport.receive(PeerId(1)) {
        let wire = RankUpdateWire::decode(env.payload).expect("valid wire");
        let upd = RankUpdate::from_wire(wire, |g| guid_index.get(&g).copied()).expect("known guid");
        assert_eq!(upd.doc, DocId(1));
        rank1 += upd.delta;
        received += 1;
    }
    assert_eq!(received, 2);
    assert!((rank1 - (0.15 + 0.85 * 0.2)).abs() < 1e-12);
    let stats = transport.stats();
    assert_eq!(stats.sent, 2);
    assert_eq!(stats.delivered, 1);
    assert_eq!(stats.parked, 1);
    assert_eq!(stats.redelivered, 1);
}

/// Ring membership changes re-home documents exactly as consistent
/// hashing promises: only documents on the departed peer move.
#[test]
fn peer_departure_moves_only_its_documents() {
    let mut ring = Ring::with_peers(32);
    let docs: Vec<DocId> = (0..2_000u32).map(DocId).collect();
    let before: Vec<PeerId> = docs
        .iter()
        .map(|&d| ring.successor(Guid::for_document(d)))
        .collect();

    let victim = before[0];
    ring.leave(victim);
    let after: Vec<PeerId> = docs
        .iter()
        .map(|&d| ring.successor(Guid::for_document(d)))
        .collect();

    for i in 0..docs.len() {
        if before[i] == victim {
            assert_ne!(after[i], victim, "doc {i} must be re-homed");
        } else {
            assert_eq!(after[i], before[i], "doc {i} must not move");
        }
    }
}

/// The address cache is coherent across a peer leave: invalidation
/// drops exactly the dead entries and the next send re-routes.
#[test]
fn address_cache_invalidation_on_leave() {
    use distributed_pagerank::p2p::cache::CacheSet;
    use distributed_pagerank::p2p::routing::Router;

    let mut ring = Ring::with_peers(16);
    let mut router = Router::new();
    let mut caches = CacheSet::new(16);

    // Warm the cache from peer 0 for 100 documents.
    for d in 0..100u32 {
        let g = Guid::for_document(DocId(d));
        let owner = ring.successor(g);
        if owner != PeerId(0) {
            router.route(&ring, PeerId(0), g);
            caches.of(PeerId(0)).insert(g, owner);
        }
    }
    let warm_entries = caches.of(PeerId(0)).len();
    assert!(warm_entries > 50);

    // A peer leaves: its entries are invalidated everywhere, the rest
    // survive and re-routing finds the new owners.
    let leaver = ring.successor(Guid::for_document(DocId(0)));
    ring.leave(leaver);
    router.invalidate();
    let dropped = caches.invalidate_peer_everywhere(leaver);
    assert!(dropped > 0);
    assert_eq!(caches.of(PeerId(0)).len(), warm_entries - dropped);

    let g0 = Guid::for_document(DocId(0));
    assert_eq!(caches.of(PeerId(0)).lookup(g0), None, "dead entry gone");
    let src = if leaver == PeerId(0) {
        PeerId(1)
    } else {
        PeerId(0)
    };
    let new_owner = router.route(&ring, src, g0).owner;
    assert_ne!(new_owner, leaver);
    assert_eq!(new_owner, ring.successor(g0));
}

/// Store-and-resend vs dropping updates: the ablation shows why the
/// paper's protocol exists — dropping parked updates loses rank mass
/// permanently.
#[test]
fn store_and_resend_ablation() {
    let nodes = 1_000;
    let graph = PowerLawConfig::paper(nodes, 21).generate();
    let arc = std::sync::Arc::new(graph);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let ring = Ring::with_peers(20);
    let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
    let owners: Vec<PeerId> = (0..nodes)
        .map(|d| placement.owner(DocId(d as u32)))
        .collect();

    let run = |drop_parked: bool| {
        let mut engine = ChaoticEngine::new(
            arc.clone(),
            owners.clone(),
            EngineConfig::with_epsilon(1e-6),
        );
        let mut peers = PeerTable::new(20);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let mut pass = 0usize;
        while !engine.is_quiescent() && pass < 5_000 {
            engine.pass(&peers);
            pass += 1;
            peers.set_online_fraction(0.5, &mut rng);
            if drop_parked {
                engine.drop_parked(&peers);
            }
        }
        // Finish with everyone online so parked mass can drain.
        (0..20u32).for_each(|p| {
            peers.go_online(PeerId(p));
        });
        let run = engine.run_to_convergence(&mut peers, None);
        assert!(run.converged);
        engine.ranks().iter().sum::<f64>()
    };

    let kept: f64 = run(false);
    let dropped: f64 = run(true);
    assert!(
        dropped < kept * 0.999,
        "dropping updates must lose rank mass: {dropped} vs {kept}"
    );
}
