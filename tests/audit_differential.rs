//! Flight-recorder differential tests: deterministic replay and
//! fault→monitor attribution.
//!
//! Two contracts from the audit subsystem are under test here:
//!
//! 1. **Replay determinism.** A captured continuous-update run at the
//!    paper's scale (10k documents over 500 peers) must replay to
//!    *bit*-identical final ranks and identical traffic counters from
//!    nothing but the capture file — under both the sequential and the
//!    owner-sharded parallel executor.
//! 2. **Monitor ownership.** Each injected transport fault must be
//!    detected, and detected *by the monitor that owns the violated
//!    invariant*: mass perturbation → mass-conservation ledger, frame
//!    duplication → message-balance auditor, frame loss → quiescence
//!    certifier. A clean run must pass all three.

use distributed_pagerank::core::ExecMode;
use distributed_pagerank::node::node::WireMode;
use distributed_pagerank::node::termination::TerminationDetector;
use distributed_pagerank::node::Cluster;
use distributed_pagerank::p2p::transport::{FaultKind, FaultPlan, WireCodec};
use distributed_pagerank::prelude::*;
use distributed_pagerank::sim::event::{run_chaotic, ChaoticConfig, LatencyModel};
use distributed_pagerank::sim::flight::{self, FlightConfig};
use distributed_pagerank::telemetry::audit::Monitor;
use distributed_pagerank::telemetry::{Capture, NOOP};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// Paper-scale capture (10k docs / 500 peers, continuous updates)
/// replays bit-identically through the serialized capture file in both
/// execution modes.
#[test]
fn paper_scale_capture_replays_bit_identically_in_both_exec_modes() {
    let cfg = FlightConfig::paper_scale();
    let (capture, recorded) = flight::record(&cfg, ExecMode::Sequential);

    // The capture must survive its own wire format: replay from the
    // re-parsed JSONL, not the in-memory struct.
    let restored = Capture::from_jsonl(&capture.to_jsonl()).expect("capture roundtrip");

    for mode in [ExecMode::Sequential, ExecMode::Parallel(4)] {
        let replayed = flight::replay(&restored, mode)
            .unwrap_or_else(|e| panic!("replay under {mode:?} diverged: {e}"));
        assert_eq!(replayed.ranks.len(), recorded.ranks.len());
        for (doc, (r, w)) in replayed.ranks.iter().zip(&recorded.ranks).enumerate() {
            assert!(
                r.to_bits() == w.to_bits(),
                "doc {doc} rank diverged under {mode:?}: {r:e} vs {w:e}"
            );
        }
        assert_eq!(replayed.passes, recorded.passes, "{mode:?} passes");
        assert_eq!(
            replayed.remote_messages, recorded.remote_messages,
            "{mode:?} remote traffic"
        );
        assert_eq!(
            replayed.local_updates, recorded.local_updates,
            "{mode:?} local updates"
        );
    }
}

/// A fingerprint tampered after capture is rejected by replay — the
/// check is not vacuous.
#[test]
fn replay_rejects_a_corrupted_capture() {
    let cfg = FlightConfig::smoke();
    let (mut capture, _) = flight::record(&cfg, ExecMode::Sequential);
    capture.fingerprint.ranks_fnv ^= 1;
    let err = flight::replay(&capture, ExecMode::Sequential).unwrap_err();
    assert!(err.contains("ranks_fnv"), "{err}");
}

/// Clean audited run: every monitor evaluates a nonzero number of
/// checks and none fires.
#[test]
fn clean_run_passes_every_monitor() {
    let run = flight::doctor_run(600, 8, 1e-4, 21, WireMode::frames(), WireCodec::Raw, None);
    assert!(run.quiesced, "diagnostic run failed to quiesce");
    assert!(
        run.report.passed(),
        "clean run flagged: {}",
        run.report.diagnosis()
    );
    for m in Monitor::ALL {
        let f = run.report.finding(m);
        assert!(f.checked > 0, "{} never evaluated anything", m.name());
    }
}

/// Each staged transport fault fires, is detected, and is attributed
/// to exactly the monitor that owns the broken invariant.
#[test]
fn each_fault_is_owned_by_exactly_one_monitor() {
    let matrix = [
        (FaultKind::MassLeak, Monitor::MassConservation),
        (FaultKind::DupFrame, Monitor::MessageBalance),
        (FaultKind::LostFrame, Monitor::Quiescence),
    ];
    for (kind, owner) in matrix {
        let plan = FaultPlan { kind, nth_send: 40 };
        let run = flight::doctor_run(
            600,
            8,
            1e-4,
            21,
            WireMode::frames(),
            WireCodec::Raw,
            Some(plan),
        );
        assert!(
            run.fault_fired_at.is_some(),
            "{kind} was staged but never fired"
        );
        assert!(!run.report.passed(), "{kind} went undetected");
        let primary = run.report.primary().expect("failing report has a primary");
        assert_eq!(
            primary.monitor,
            owner,
            "{kind} attributed to {} instead of {}",
            primary.monitor.name(),
            owner.name()
        );
        // The operator-facing diagnosis names the fault class.
        assert!(
            run.report.diagnosis().contains(&kind.to_string()),
            "diagnosis '{}' does not name {kind}",
            run.report.diagnosis()
        );
    }
}

// ---------------------------------------------------------------
// Counter balance under churn: the property behind the message-
// balance auditor, checked directly against cluster state.
// ---------------------------------------------------------------

/// Strategy: a random directed graph as (n, edge list).
fn arb_graph(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop_vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

/// Strategy: a cyclic churn plan — per round, per peer, online?
fn arb_churn_plan(num_peers: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop_vec(prop_vec(any::<bool>(), num_peers..num_peers + 1), 1..6)
}

/// Applies one row of the churn plan, keeping at least one peer
/// online so every run can terminate.
fn apply_mask(peers: &mut PeerTable, mask: &[bool]) {
    for (i, &on) in mask.iter().enumerate().take(peers.len()) {
        if on {
            peers.go_online(PeerId(i as u32));
        } else {
            peers.go_offline(PeerId(i as u32));
        }
    }
    if peers.num_online() == 0 {
        peers.go_online(PeerId(0));
    }
}

/// Sums `(emitted_remote, sent_remote, received)` across the cluster.
fn counter_sums(cluster: &Cluster, num_peers: usize) -> (u64, u64, u64) {
    let (mut emitted, mut sent, mut received) = (0u64, 0u64, 0u64);
    for p in 0..num_peers as u32 {
        let s = cluster.node(PeerId(p)).stats();
        emitted += s.emitted_remote;
        sent += s.sent_remote;
        received += s.received;
    }
    (emitted, sent, received)
}

/// Asserts the balance invariants at a round boundary. Emission
/// counts every remote link update produced; the pass-end flush
/// coalesces same-target updates into one wire entry, so
/// `emitted ≥ sent` (the gap is coalescing, never silent loss). What
/// left the wire but has not landed is exactly the transport's
/// undelivered backlog: `sent − received = in flight` — with the
/// in-flight term covering both deliverable inbox entries and
/// envelopes parked for offline peers ("still queued").
fn assert_balanced(cluster: &Cluster, num_peers: usize) -> Result<(), TestCaseError> {
    let (emitted, sent, received) = counter_sums(cluster, num_peers);
    prop_assert!(
        emitted >= sent,
        "coalescing can only shrink the wire: emitted {emitted} < sent {sent}"
    );
    prop_assert_eq!(
        sent - received,
        cluster.in_flight_entries(),
        "sent {} − received {} must equal the undelivered backlog",
        sent,
        received
    );
    Ok(())
}

proptest! {
    /// On any graph, under any churn schedule, the remote-update
    /// counters balance after every single round, and close out
    /// exactly (`sent == received`, nothing in flight) at quiescence.
    #[test]
    fn counters_balance_under_random_churn(
        (n, edges) in arb_graph(48, 140),
        plan in arb_churn_plan(5),
        churn_rounds in 0usize..14,
    ) {
        let num_peers = 5;
        let mut b = GraphBuilder::new(n);
        for &(f, t) in &edges {
            b.add_edge(f, t);
        }
        let graph = b.build();
        let placement =
            Placement::from_owner_vec((0..n).map(|d| PeerId((d % num_peers) as u32)).collect());
        let mut cluster = Cluster::build_with(
            &graph,
            &placement,
            num_peers,
            EngineConfig::with_epsilon(1e-6),
            WireMode::frames(),
        );
        let mut peers = PeerTable::new(num_peers);
        for r in 0..churn_rounds {
            apply_mask(&mut peers, &plan[r % plan.len()]);
            cluster.round(&peers);
            assert_balanced(&cluster, num_peers)?;
        }
        for p in 0..num_peers as u32 {
            peers.go_online(PeerId(p));
        }
        let (rounds, ok) = cluster.run_to_convergence(&mut peers, 100_000, None);
        prop_assert!(ok, "no quiescence in {} rounds", rounds);
        assert_balanced(&cluster, num_peers)?;
        let (_, sent, received) = counter_sums(&cluster, num_peers);
        prop_assert_eq!(sent, received, "quiescence with undelivered entries");
        prop_assert_eq!(cluster.in_flight_entries(), 0u64);
    }
}

// ---------------------------------------------------------------
// Barrier-free Safra soundness under the chaotic event runtime: the
// detector probes mid-flight between arbitrary event interleavings,
// and must never certify termination early.
// ---------------------------------------------------------------

/// Runs the chaotic event runtime on a random graph and returns the
/// outcome, the cluster, and the detector.
fn chaotic_run(
    n: usize,
    edges: &[(u32, u32)],
    seed: u64,
    latency: LatencyModel,
    sched: SchedMode,
) -> (
    distributed_pagerank::sim::event::ChaoticOutcome,
    Cluster,
    TerminationDetector,
) {
    let num_peers = 4;
    let mut b = GraphBuilder::new(n);
    for &(f, t) in edges {
        b.add_edge(f, t);
    }
    let graph = b.build();
    let placement =
        Placement::from_owner_vec((0..n).map(|d| PeerId((d % num_peers) as u32)).collect());
    let mut cluster = Cluster::build_with(
        &graph,
        &placement,
        num_peers,
        EngineConfig::with_epsilon(1e-6).with_sched(sched),
        WireMode::frames(),
    );
    let peers = PeerTable::new(num_peers);
    let mut detector = TerminationDetector::new(num_peers);
    let cfg = ChaoticConfig {
        seed,
        latency,
        sched,
        epsilon: 1e-6,
    };
    let out = run_chaotic(&mut cluster, &peers, &cfg, &mut detector, 50_000_000, &NOOP);
    (out, cluster, detector)
}

proptest! {
    /// On any graph, for any seeded event interleaving, latency model,
    /// and scheduler: the barrier-free Safra detector never announces
    /// termination while any peer still holds residual above ε or any
    /// message is in flight — announcement implies true quiescence
    /// with fully balanced counters. And the whole interleaving is a
    /// pure function of the seed: a second run reproduces the event
    /// schedule and the ranks bit-for-bit.
    #[test]
    fn safra_never_certifies_a_live_system_under_async_delivery(
        (n, edges) in arb_graph(48, 140),
        seed in any::<u64>(),
        latency_ix in 0usize..3,
        priority in any::<bool>(),
    ) {
        let num_peers = 4;
        let latency = [LatencyModel::Modem, LatencyModel::Broadband, LatencyModel::Lan][latency_ix];
        let sched = if priority { SchedMode::Priority } else { SchedMode::Pass };
        let (out, cluster, detector) = chaotic_run(n, &edges, seed, latency, sched);
        prop_assert!(out.quiesced, "run exhausted its event budget");

        // Soundness: an announcement is only ever made over a dead
        // system — no residual above ε anywhere, nothing in flight,
        // every remote entry that left a peer also landed.
        prop_assert!(out.announced, "no fault was injected, so Safra must conclude");
        prop_assert_eq!(detector.announced(), out.announced);
        prop_assert!(cluster.is_quiescent(), "announced while residual above eps");
        for p in 0..num_peers as u32 {
            prop_assert!(
                !cluster.node(PeerId(p)).has_work(),
                "announced while peer {} still has work",
                p
            );
        }
        prop_assert_eq!(
            cluster.in_flight_entries(),
            0u64,
            "announced with messages in flight"
        );
        let (_, sent, received) = counter_sums(&cluster, num_peers);
        prop_assert_eq!(sent, received, "announced with unbalanced counters");

        // Determinism: the event schedule and the fixed point are a
        // pure function of the seed.
        let (again, cluster2, _) = chaotic_run(n, &edges, seed, latency, sched);
        prop_assert_eq!(again, out, "outcome diverged on re-run");
        let a = cluster.collect_ranks(n);
        let b = cluster2.collect_ranks(n);
        for (doc, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "doc {} rank diverged on re-run: {:e} vs {:e}",
                doc, x, y
            );
        }
    }
}
