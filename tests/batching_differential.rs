//! Differential tests for the per-peer aggregation wire path.
//!
//! The contract under test is *bit* identity, not approximation: on
//! arbitrary graphs, under arbitrary churn schedules, at every frame
//! size cap, the batched cluster must converge to exactly the ranks
//! (`==` on every `f64`) of the unbatched single-message cluster. The
//! coalesced per-destination group sums are the canonical fold in both
//! wire modes, so framing only changes payload packing — never a rank
//! bit.

use distributed_pagerank::node::node::{PeerNode, WireMode};
use distributed_pagerank::node::Cluster;
use distributed_pagerank::prelude::*;
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// The frame-size caps under differential test: 64 B (3 entries),
/// 256 B (15), 1024 B (63), and effectively uncapped.
const CAPS: [usize; 4] = [64, 256, 1024, 1 << 20];

/// Strategy: a random directed graph as (n, edge list).
fn arb_graph(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop_vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

/// Strategy: a cyclic churn plan — per round, per peer, online?
fn arb_churn_plan(num_peers: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop_vec(prop_vec(any::<bool>(), num_peers..num_peers + 1), 1..6)
}

fn build_graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(f, t) in edges {
        b.add_edge(f, t);
    }
    b.build()
}

fn round_robin_placement(n: usize, num_peers: usize) -> Placement {
    Placement::from_owner_vec((0..n).map(|d| PeerId((d % num_peers) as u32)).collect())
}

/// Applies one row of the churn plan, keeping at least one peer
/// online so every run can terminate.
fn apply_mask(peers: &mut PeerTable, mask: &[bool]) {
    for (i, &on) in mask.iter().enumerate().take(peers.len()) {
        if on {
            peers.go_online(PeerId(i as u32));
        } else {
            peers.go_offline(PeerId(i as u32));
        }
    }
    if peers.num_online() == 0 {
        peers.go_online(PeerId(0));
    }
}

/// Runs a cluster under the (cycled) churn plan for `churn_rounds`,
/// then brings every peer back and runs to quiescence. Returns the
/// converged ranks.
fn run_churned(
    graph: &CsrGraph,
    placement: &Placement,
    num_peers: usize,
    wire: WireMode,
    plan: &[Vec<bool>],
    churn_rounds: usize,
) -> Vec<f64> {
    let mut cluster = Cluster::build_with(
        graph,
        placement,
        num_peers,
        EngineConfig::with_epsilon(RECOMMENDED_EPSILON),
        wire,
    );
    let mut peers = PeerTable::new(num_peers);
    for r in 0..churn_rounds {
        apply_mask(&mut peers, &plan[r % plan.len()]);
        cluster.round(&peers);
    }
    for p in 0..num_peers as u32 {
        peers.go_online(PeerId(p));
    }
    let (rounds, ok) = cluster.run_to_convergence(&mut peers, 100_000, None);
    assert!(ok, "no quiescence in {rounds} rounds");
    cluster.collect_ranks(graph.num_nodes())
}

proptest! {
    /// Random graph, random churn, every cap: batched == unbatched,
    /// bit for bit.
    #[test]
    fn batched_matches_unbatched_under_churn(
        (n, edges) in arb_graph(48, 120),
        plan in arb_churn_plan(4),
        churn_rounds in 0usize..12,
    ) {
        let graph = build_graph(n, &edges);
        let placement = round_robin_placement(n, 4);
        let single = run_churned(
            &graph, &placement, 4, WireMode::Single, &plan, churn_rounds,
        );
        for cap in CAPS {
            let framed = run_churned(
                &graph,
                &placement,
                4,
                WireMode::Frames { max_frame_bytes: cap },
                &plan,
                churn_rounds,
            );
            prop_assert_eq!(
                &framed, &single,
                "cap {} diverged from the single-message wire", cap
            );
        }
    }
}

/// Fixed-seed regression: a real power-law workload, all caps agree
/// with the unbatched run (and stay correct vs the synchronous
/// solver) — pins the shared reference so it cannot drift silently.
#[test]
fn fixed_workload_all_caps_identical() {
    let workload = Workload::paper(600, 12, 21);
    let run = |wire: WireMode| {
        let mut cluster = Cluster::build_with(
            &workload.graph,
            &workload.placement,
            12,
            EngineConfig::with_epsilon(1e-5),
            wire,
        );
        let mut peers = workload.peer_table();
        let (_, ok) = cluster.run_to_convergence(&mut peers, 100_000, None);
        assert!(ok);
        cluster.collect_ranks(600)
    };
    let single = run(WireMode::Single);
    for cap in CAPS {
        assert_eq!(
            run(WireMode::Frames {
                max_frame_bytes: cap
            }),
            single,
            "cap {cap}"
        );
    }
    let reference = SyncSolver::new().tolerance(1e-12).solve(&workload.graph);
    for (a, b) in single.iter().zip(&reference.ranks) {
        assert!((a - b).abs() / b < 1e-4, "{a} vs {b}");
    }
}

/// Permanent departure with frames in flight: stranded frames are
/// split per new holder without re-coalescing, so the batched run
/// still lands bit-identical to the unbatched one.
#[test]
fn departure_with_frames_in_flight_stays_identical() {
    let workload = Workload::paper(400, 8, 33);
    let victim = PeerId(5);
    let reassign = |d: DocId| {
        let mut h = (d.0 as usize) % 8;
        if h == victim.index() {
            h = (h + 1) % 8;
        }
        PeerId(h as u32)
    };
    let run = |wire: WireMode| {
        let mut cluster = Cluster::build_with(
            &workload.graph,
            &workload.placement,
            8,
            EngineConfig::with_epsilon(1e-6),
            wire,
        );
        let mut peers = workload.peer_table();
        // A few rounds to get traffic flowing, then park some of it
        // for the victim before it departs for good.
        for _ in 0..3 {
            cluster.round(&peers);
        }
        peers.go_offline(victim);
        cluster.round(&peers);
        let migrated = cluster.peer_depart(victim, &peers, &reassign);
        assert!(migrated > 0);
        let (rounds, ok) = cluster.run_to_convergence(&mut peers, 100_000, None);
        assert!(ok, "no quiescence in {rounds} rounds");
        cluster.collect_ranks(400)
    };
    let single = run(WireMode::Single);
    // A tight cap forces multi-frame flushes so departures actually
    // split frames.
    for cap in [64usize, 1 << 20] {
        assert_eq!(
            run(WireMode::Frames {
                max_frame_bytes: cap
            }),
            single,
            "cap {cap}"
        );
    }
}

/// The caps under test are honest: a PeerNode in frames mode at cap
/// 64 really emits multi-update frames (guards against a future
/// regression that silently falls back to singles).
#[test]
fn frames_mode_really_frames() {
    let workload = Workload::paper(300, 3, 44);
    let mut cluster = Cluster::build_with(
        &workload.graph,
        &workload.placement,
        3,
        EngineConfig::with_epsilon(1e-3),
        WireMode::Frames {
            max_frame_bytes: 64,
        },
    );
    let mut peers = workload.peer_table();
    let (_, ok) = cluster.run_to_convergence(&mut peers, 100_000, None);
    assert!(ok);
    let stats: Vec<_> = (0..3u32).map(|p| cluster.node(PeerId(p)).stats()).collect();
    assert!(stats.iter().all(|s| s.frames_sent > 0));
    let _: &PeerNode = cluster.node(PeerId(0));
}
