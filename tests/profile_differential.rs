//! Differential tests for the causal span profiler of the chaotic
//! event runtime.
//!
//! Four contracts:
//!
//! 1. **Zero perturbation.** Span tracing is pure observation: the
//!    same chaotic scenario run untraced (`NOOP`), run under a live
//!    `TraceRecorder`, and run through `run_chaotic_profiled` must
//!    produce bit-identical final ranks, an identical
//!    `schedule_fnv`, and an identical outcome — across latency
//!    models and both schedulers.
//! 2. **Well-formedness.** On random graphs, every recorded span
//!    closes with `end >= start`, causal edges point strictly
//!    backward (`cause < id`, `consumed < id`), the critical path
//!    tiles `[0, virtual_ns]` contiguously, and the
//!    compute/wire/wait breakdown telescopes *exactly* (integer
//!    equality, not within a tolerance) to the virtual wall clock.
//! 3. **Backpressure.** A star workload (one slow hub peer fed by
//!    many fast leaves) drives the hub inbox past its saturation
//!    cap; the runtime must count the saturations, report the depth
//!    high-water mark through the chaotic-health event, and still
//!    quiesce with Safra announcing termination.
//! 4. **Zero injection.** Re-running the chaotic runtime on an
//!    already-quiescent cluster executes nothing: zero steps, zero
//!    virtual time, and the settle-phase probe circuits still
//!    certify termination.

use distributed_pagerank::node::node::WireMode;
use distributed_pagerank::node::termination::TerminationDetector;
use distributed_pagerank::node::Cluster;
use distributed_pagerank::prelude::*;
use distributed_pagerank::sim::event::{
    run_chaotic, run_chaotic_profiled, ChaoticConfig, ChaoticOutcome, LatencyModel,
};
use distributed_pagerank::telemetry::{Event, Metric, SpanKind, TraceRecorder, NOOP};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// Builds the message-level cluster for one paper workload. Each call
/// constructs an identical cluster — the zero-perturbation tests rely
/// on that to re-run the same scenario under different recorders.
fn paper_cluster(
    nodes: usize,
    num_peers: usize,
    epsilon: f64,
    seed: u64,
    sched: SchedMode,
) -> (Cluster, PeerTable) {
    let w = Workload::paper(nodes, num_peers, seed);
    let cluster = Cluster::build_with(
        &w.graph,
        &w.placement,
        num_peers,
        EngineConfig::with_epsilon(epsilon).with_sched(sched),
        WireMode::frames(),
    );
    let peers = w.peer_table();
    (cluster, peers)
}

/// Runs one chaotic scenario and returns the outcome plus the final
/// rank bits (bits, not floats — the contract is bit identity).
fn chaotic_ranks<R: distributed_pagerank::telemetry::Recorder + ?Sized>(
    nodes: usize,
    num_peers: usize,
    cfg: &ChaoticConfig,
    sched: SchedMode,
    rec: &R,
    profiled: bool,
) -> (ChaoticOutcome, Vec<u64>) {
    let (mut cluster, peers) = paper_cluster(nodes, num_peers, cfg.epsilon, cfg.seed, sched);
    let mut det = TerminationDetector::new(num_peers);
    let out = if profiled {
        run_chaotic_profiled(&mut cluster, &peers, cfg, &mut det, 200_000_000, rec).0
    } else {
        run_chaotic(&mut cluster, &peers, cfg, &mut det, 200_000_000, rec)
    };
    let bits = cluster
        .collect_ranks(nodes)
        .iter()
        .map(|r| r.to_bits())
        .collect();
    (out, bits)
}

/// Contract 1: tracing cannot move the run. Ranks, schedule
/// fingerprint and outcome are bit-identical whether the recorder is
/// the no-op, a live trace recorder (which also streams `span_closed`
/// events), or the forced-tracing profiled entry point.
#[test]
fn span_tracing_is_zero_perturbation() {
    let combos = [
        (LatencyModel::Lan, SchedMode::Pass),
        (LatencyModel::Modem, SchedMode::Priority),
        (LatencyModel::Broadband, SchedMode::Priority),
    ];
    for (latency, sched) in combos {
        let cfg = ChaoticConfig {
            seed: 2003,
            latency,
            sched,
            epsilon: 1e-4,
        };
        let (base, base_bits) = chaotic_ranks(800, 6, &cfg, sched, &NOOP, false);
        assert!(base.quiesced, "{latency:?}/{sched:?} failed to quiesce");

        let rec = TraceRecorder::new();
        let (traced, traced_bits) = chaotic_ranks(800, 6, &cfg, sched, &rec, false);
        assert_eq!(
            traced, base,
            "{latency:?}/{sched:?}: live recorder perturbed the outcome"
        );
        assert_eq!(
            traced_bits, base_bits,
            "{latency:?}/{sched:?}: live recorder perturbed the ranks"
        );
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, Event::SpanClosed { .. })),
            "live recorder saw no spans — the differential is vacuous"
        );

        let (profiled, profiled_bits) = chaotic_ranks(800, 6, &cfg, sched, &NOOP, true);
        assert_eq!(
            profiled, base,
            "{latency:?}/{sched:?}: forced tracing perturbed the outcome"
        );
        assert_eq!(
            profiled_bits, base_bits,
            "{latency:?}/{sched:?}: forced tracing perturbed the ranks"
        );
    }
}

/// Strategy: a random directed graph as (n, edge list).
fn arb_graph(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop_vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

proptest! {
    /// Contract 2: on arbitrary graphs, under every latency model and
    /// both schedulers, the span record is structurally sound and the
    /// critical-path breakdown telescopes exactly.
    #[test]
    fn spans_are_well_formed_and_breakdown_telescopes(
        (n, edges) in arb_graph(60, 240),
        num_peers in 1usize..6,
        seed in 0u64..1_000,
        latency_ix in 0usize..3,
        priority in any::<bool>(),
    ) {
        let latency = [LatencyModel::Modem, LatencyModel::Broadband, LatencyModel::Lan][latency_ix];
        let sched = if priority { SchedMode::Priority } else { SchedMode::Pass };
        let mut b = GraphBuilder::new(n);
        for &(f, t) in &edges {
            b.add_edge(f, t);
        }
        let graph = b.build();
        let placement = Placement::from_owner_vec(
            (0..n).map(|d| PeerId((d % num_peers) as u32)).collect(),
        );
        let mut cluster = Cluster::build_with(
            &graph,
            &placement,
            num_peers,
            EngineConfig::with_epsilon(1e-6).with_sched(sched),
            WireMode::frames(),
        );
        let peers = PeerTable::new(num_peers);
        let mut det = TerminationDetector::new(num_peers);
        let cfg = ChaoticConfig { seed, latency, sched, epsilon: 1e-6 };
        let (out, profile) =
            run_chaotic_profiled(&mut cluster, &peers, &cfg, &mut det, 50_000_000, &NOOP);
        prop_assert!(out.quiesced, "random scenario failed to quiesce");

        // Span structure: closed, causally backward, acyclic.
        for (i, s) in profile.spans.iter().enumerate() {
            let id = i as u64 + 1;
            prop_assert!(s.end_ns >= s.start_ns, "span {id} closed before it opened");
            prop_assert!(s.cause < id, "span {id} caused by a later span {}", s.cause);
            prop_assert!(s.consumed < id, "span {id} consumed by a later span {}", s.consumed);
            if s.kind == SpanKind::LinkTransfer {
                prop_assert!(s.queue_ns <= s.duration_ns(), "queueing exceeds transfer span");
            } else {
                prop_assert!(s.queue_ns == 0 && s.bytes == 0, "non-transfer carries wire fields");
            }
        }
        let steps = profile.spans.iter().filter(|s| s.kind == SpanKind::PeerStep).count() as u64;
        prop_assert_eq!(steps, out.steps, "one PeerStep span per executed step");
        prop_assert!(
            profile.spans.iter().any(|s| s.kind == SpanKind::SafraProbe),
            "no probe circuit was ever traced"
        );

        // The profile horizon is the runtime's virtual clock, and the
        // breakdown telescopes with integer exactness.
        prop_assert_eq!(profile.virtual_ns, out.virtual_ns);
        prop_assert!(
            profile.breakdown_is_exact(),
            "compute {} + wire {} + wait {} != virtual {}",
            profile.compute_ns, profile.wire_ns, profile.wait_ns, profile.virtual_ns
        );

        // The critical path tiles [0, virtual_ns] with no gap, no
        // overlap, and per-segment exactness.
        if out.steps > 0 {
            prop_assert!(!profile.path.is_empty(), "nonempty run with empty critical path");
        }
        let mut cursor = 0u64;
        for seg in &profile.path {
            prop_assert_eq!(seg.from_ns, cursor, "critical path has a gap or overlap");
            prop_assert!(seg.to_ns >= seg.from_ns);
            prop_assert_eq!(
                seg.compute_ns + seg.wire_ns + seg.wait_ns,
                seg.total_ns(),
                "segment attribution does not cover the segment"
            );
            cursor = seg.to_ns;
        }
        prop_assert_eq!(cursor, profile.virtual_ns, "critical path stops short of the horizon");
    }
}

/// Contract 3: a star workload saturates the hub inbox. Peer 0 owns
/// 160 documents (120 ms modeled compute per step) while 40 leaf
/// peers own one document each (the 100 µs floor), with every leaf
/// exchanging rank mass with the hub over LAN links. Between two hub
/// steps each leaf fires hundreds of times, so arrivals pile up far
/// past the 32-deep saturation cap — the runtime must take the
/// backpressure path (forfeiting the coalescing window), count it,
/// and still converge.
#[test]
fn saturated_inbox_backpressure_engages_and_still_quiesces() {
    const HUB_DOCS: usize = 160;
    const LEAVES: usize = 40;
    let n = HUB_DOCS + LEAVES;
    let mut b = GraphBuilder::new(n);
    for i in 0..LEAVES {
        let leaf = (HUB_DOCS + i) as u32;
        let hub = (i * (HUB_DOCS / LEAVES)) as u32;
        b.add_edge(leaf, hub);
        b.add_edge(hub, leaf);
    }
    // A ring through the hub documents keeps the hub itself dirty.
    for d in 0..HUB_DOCS as u32 {
        b.add_edge(d, (d + 1) % HUB_DOCS as u32);
    }
    let graph = b.build();
    let owner: Vec<PeerId> = (0..n)
        .map(|d| {
            if d < HUB_DOCS {
                PeerId(0)
            } else {
                PeerId((1 + d - HUB_DOCS) as u32)
            }
        })
        .collect();
    let num_peers = 1 + LEAVES;
    let placement = Placement::from_owner_vec(owner);
    let mut cluster = Cluster::build_with(
        &graph,
        &placement,
        num_peers,
        EngineConfig::with_epsilon(1e-6).with_sched(SchedMode::Pass),
        WireMode::frames(),
    );
    let peers = PeerTable::new(num_peers);
    let mut det = TerminationDetector::new(num_peers);
    let cfg = ChaoticConfig {
        seed: 7,
        latency: LatencyModel::Lan,
        sched: SchedMode::Pass,
        epsilon: 1e-6,
    };
    let rec = TraceRecorder::new();
    let out = run_chaotic(&mut cluster, &peers, &cfg, &mut det, 200_000_000, &rec);

    assert!(out.quiesced, "saturated star failed to quiesce");
    assert!(out.announced, "Safra never announced on the saturated star");
    let saturations = rec.counter(Metric::InboxSaturations);
    assert!(
        saturations > 0,
        "star workload never saturated the hub inbox — the backpressure path is untested"
    );
    let health = rec
        .events()
        .iter()
        .find_map(|e| match *e {
            Event::ChaoticHealth {
                saturated,
                max_inbox_depth,
                ..
            } => Some((saturated, max_inbox_depth)),
            _ => None,
        })
        .expect("chaotic run emitted no health event");
    assert_eq!(
        health.0, saturations,
        "health event disagrees with the counter"
    );
    assert!(
        health.1 >= 32,
        "saturation fired but the depth high-water mark {} never reached the cap",
        health.1
    );
}

/// Contract 4: zero injection terminates immediately. After a run
/// quiesces, a second run on the same cluster (fresh detector, fresh
/// clock) finds no peer with work: it must execute zero steps, spend
/// zero virtual time, and still certify termination through the
/// settle-phase probe circuits.
#[test]
fn zero_injection_run_terminates_immediately() {
    let (mut cluster, peers) = paper_cluster(300, 5, 1e-4, 11, SchedMode::Priority);
    let cfg = ChaoticConfig {
        seed: 11,
        latency: LatencyModel::Broadband,
        sched: SchedMode::Priority,
        epsilon: 1e-4,
    };
    let mut det = TerminationDetector::new(5);
    let first = run_chaotic(&mut cluster, &peers, &cfg, &mut det, 200_000_000, &NOOP);
    assert!(
        first.quiesced && first.steps > 0,
        "warm-up run did not converge"
    );
    let ranks_before: Vec<u64> = cluster
        .collect_ranks(300)
        .iter()
        .map(|r| r.to_bits())
        .collect();

    let mut det2 = TerminationDetector::new(5);
    let (again, profile) =
        run_chaotic_profiled(&mut cluster, &peers, &cfg, &mut det2, 200_000_000, &NOOP);
    assert!(again.quiesced, "zero-injection run not certified quiescent");
    assert_eq!(again.steps, 0, "quiescent cluster executed steps");
    assert_eq!(again.deliveries, 0, "quiescent cluster delivered envelopes");
    assert_eq!(again.virtual_ns, 0, "zero work must cost zero virtual time");
    assert_eq!(profile.virtual_ns, 0);
    assert!(profile.breakdown_is_exact());
    let ranks_after: Vec<u64> = cluster
        .collect_ranks(300)
        .iter()
        .map(|r| r.to_bits())
        .collect();
    assert_eq!(
        ranks_before, ranks_after,
        "zero-injection run moved the ranks"
    );
}
