//! Workspace-level serving-path guarantees, exercised through the
//! facade crate: serving telemetry is pure observation (bit-identical
//! rank schedule and quantiles with the recorder on or off), the
//! served run is deterministic per seed, and the SLO verdict collapses
//! correctly in both directions.

use distributed_pagerank::sim::event::LatencyModel;
use distributed_pagerank::sim::serving::{serving_experiment, ServeStrategy, ServingConfig};
use distributed_pagerank::telemetry::slo::SloSpec;
use distributed_pagerank::telemetry::{Event, TraceRecorder, NOOP};

fn cfg(seed: u64) -> ServingConfig {
    ServingConfig {
        num_docs: 900,
        vocab_size: 220,
        num_peers: 18,
        queries: 36,
        query_len: 2,
        qps: 40.0,
        updates: 12,
        churn_fraction: 0.75,
        strategy: ServeStrategy::Incremental {
            forward_fraction: 0.10,
        },
        latency: LatencyModel::Lan,
        epsilon: 1e-4,
        seed,
        ..Default::default()
    }
}

#[test]
fn serving_telemetry_is_zero_perturbation_end_to_end() {
    let off = serving_experiment(&cfg(31), &NOOP).report;
    let rec = TraceRecorder::new();
    let on = serving_experiment(&cfg(31), &rec).report;

    // The rank computation's schedule and every reported measurement
    // are bit-identical with the recorder attached.
    assert_eq!(off.schedule_fnv, on.schedule_fnv);
    assert_eq!(off.p50_ns, on.p50_ns);
    assert_eq!(off.p95_ns, on.p95_ns);
    assert_eq!(off.p99_ns, on.p99_ns);
    assert_eq!(off.p999_ns, on.p999_ns);
    assert_eq!(off.total_traffic_ids, on.total_traffic_ids);
    assert_eq!(off.stale_p99_ppm, on.stale_p99_ppm);
    assert_eq!(off.avg_hops, on.avg_hops);
    assert!(off.quiesced && on.quiesced);

    // The traced run carries the full serving stream: five causal
    // spans per query, churn flips, and the health summary — and the
    // tolerant JSONL parser round-trips all of it.
    let events = rec.events();
    let spans = events
        .iter()
        .filter(|e| matches!(e, Event::QuerySpan { .. }))
        .count();
    assert_eq!(spans, 5 * 36);
    assert!(events.iter().any(|e| matches!(e, Event::PeerChurn { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::ServingHealth { .. })));
    let jsonl: String = events
        .iter()
        .map(|e| format!("{}\n", serde_json::to_string(e).unwrap()))
        .collect();
    let summary = distributed_pagerank::telemetry::TraceSummary::from_jsonl(&jsonl).unwrap();
    assert!(summary.unknown_events().is_empty(), "no kind is unknown");
    let health = summary.serving_health().expect("health aggregated");
    assert_eq!(health.queries, 36);
    assert_eq!(health.p99_ns, on.p99_ns);
}

#[test]
fn served_runs_are_deterministic_per_seed() {
    let a = serving_experiment(&cfg(77), &NOOP).report;
    let b = serving_experiment(&cfg(77), &NOOP).report;
    assert_eq!(a.schedule_fnv, b.schedule_fnv);
    assert_eq!(a.p999_ns, b.p999_ns);
    assert_eq!(a.stale_p99_ppm, b.stale_p99_ppm);
    assert_eq!(a.total_traffic_ids, b.total_traffic_ids);
    // A different seed takes a different schedule.
    let c = serving_experiment(&cfg(78), &NOOP).report;
    assert_ne!(a.schedule_fnv, c.schedule_fnv);
}

#[test]
fn slo_verdict_gates_in_both_directions() {
    let mut pass_cfg = cfg(5);
    pass_cfg.slos = vec![SloSpec::new("loose", 0.99, u64::MAX, 0.0)];
    assert!(serving_experiment(&pass_cfg, &NOOP).report.slo_pass);

    let mut fail_cfg = cfg(5);
    fail_cfg.slos = vec![SloSpec::new("impossible", 0.5, 1, 0.0)];
    let r = serving_experiment(&fail_cfg, &NOOP).report;
    assert!(!r.slo_pass, "1 ns p50 target must blow the budget");
    // The failing spec is attributable: every window violated it.
    assert_eq!(r.slos[0].windows_violated, r.slos[0].windows_total);
}
