//! Differential tests for the compact wire codec.
//!
//! `WireCodec::Raw` is the bit-identity baseline; `WireCodec::Compact`
//! trades f64 increments for varint-delta doc ids + f32 values, so its
//! contract is *bounded error*, not equality: on fixed and random
//! workloads the compact cluster must converge to ranks whose
//! L1-per-doc distance from the raw cluster stays under a pinned
//! bound, while spending measurably fewer bytes on the wire.

use distributed_pagerank::node::node::WireMode;
use distributed_pagerank::node::Cluster;
use distributed_pagerank::p2p::transport::WireCodec;
use distributed_pagerank::prelude::*;
use distributed_pagerank::sim::Workload;
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// Pinned L1-per-doc parity bound between Raw and Compact converged
/// ranks. Each compact update quantizes an f64 increment to f32
/// (~1.2e-7 relative); increments shrink geometrically under damping,
/// so the accumulated per-doc drift stays orders of magnitude below
/// this pin (measured ~1e-9 on the fixed workload).
const PINNED_L1_PER_DOC: f64 = 1e-7;

/// Runs one cluster over the workload under `codec`, returning the
/// converged ranks and total payload bytes sent.
fn run_with_codec(w: &Workload, codec: WireCodec) -> (Vec<f64>, u64) {
    run_with_codec_eps(w, codec, RECOMMENDED_EPSILON)
}

fn run_with_codec_eps(w: &Workload, codec: WireCodec, eps: f64) -> (Vec<f64>, u64) {
    let mut cluster = Cluster::build_with(
        &w.graph,
        &w.placement,
        w.num_peers,
        EngineConfig::with_epsilon(eps),
        WireMode::frames(),
    );
    cluster.set_codec(codec);
    let mut peers = PeerTable::new(w.num_peers);
    let (rounds, ok) = cluster.run_to_convergence(&mut peers, 100_000, None);
    assert!(ok, "no quiescence in {rounds} rounds under {codec}");
    (
        cluster.collect_ranks(w.graph.num_nodes()),
        cluster.traffic().bytes_sent,
    )
}

fn l1_per_doc(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    l1 / a.len() as f64
}

#[test]
fn compact_tracks_raw_within_pinned_l1_bound() {
    let w = Workload::paper(600, 12, 21);
    let (raw, raw_bytes) = run_with_codec(&w, WireCodec::Raw);
    let (compact, compact_bytes) = run_with_codec(&w, WireCodec::Compact);

    let drift = l1_per_doc(&raw, &compact);
    assert!(
        drift <= PINNED_L1_PER_DOC,
        "compact drifted {drift:.3e} L1/doc from raw (pin {PINNED_L1_PER_DOC:.1e})"
    );

    // Quantization must not leak rank mass: both codecs conserve the
    // same total to within the drift budget.
    let raw_mass: f64 = raw.iter().sum();
    let compact_mass: f64 = compact.iter().sum();
    assert!(
        (raw_mass - compact_mass).abs() <= PINNED_L1_PER_DOC * raw.len() as f64,
        "mass moved: raw {raw_mass} vs compact {compact_mass}"
    );

    // The whole point: compact spends at least 30% fewer payload
    // bytes than raw on the same workload.
    assert!(
        (compact_bytes as f64) <= 0.70 * raw_bytes as f64,
        "compact sent {compact_bytes} B vs raw {raw_bytes} B — reduction below 30%"
    );
}

#[test]
fn compact_still_matches_the_synchronous_reference() {
    let w = Workload::paper(600, 12, 21);
    let (compact, _) = run_with_codec_eps(&w, WireCodec::Compact, 1e-5);
    let reference = SyncSolver::new().tolerance(1e-12).solve(&w.graph);
    for (d, (&got, &want)) in compact.iter().zip(&reference.ranks).enumerate() {
        let rel = (got - want).abs() / want.max(1e-12);
        assert!(rel < 1e-4, "doc {d}: compact {got} vs reference {want}");
    }
}

proptest! {
    /// Random power-law workloads: compact always converges, stays
    /// inside the pinned L1 bound of raw, and never sends more bytes.
    #[test]
    fn compact_parity_on_random_workloads(
        nodes in 50usize..400,
        num_peers in 2usize..16,
        seed in prop_vec(any::<u8>(), 1..2),
    ) {
        let w = Workload::paper(nodes, num_peers, u64::from(seed[0]));
        let (raw, raw_bytes) = run_with_codec(&w, WireCodec::Raw);
        let (compact, compact_bytes) = run_with_codec(&w, WireCodec::Compact);
        let drift = l1_per_doc(&raw, &compact);
        prop_assert!(
            drift <= PINNED_L1_PER_DOC,
            "drift {:.3e} beyond pin on n={} p={}", drift, nodes, num_peers
        );
        prop_assert!(
            compact_bytes <= raw_bytes,
            "compact {} B > raw {} B", compact_bytes, raw_bytes
        );
    }
}
