//! # dpr-node — message-level peers running the distributed protocol
//!
//! The simulation crate (`dpr-sim`) drives the pagerank computation
//! through the array-based [`dpr_core::ChaoticEngine`], which is fast
//! enough for the paper's 5-million-document graphs but abstracts the
//! actual peer protocol away. This crate is the other half of the
//! story — the paper's future work, "implement the distributed
//! computation of the pagerank on a P2P system": every peer is a
//! self-contained state machine ([`node::PeerNode`]) holding only its
//! own documents, a GUID index, and an outbox, exchanging **encoded
//! 24-byte wire messages** (128-bit GUID + 64-bit value, Sec. 4.6.1)
//! through the churn-tolerant transport of `dpr-p2p`.
//!
//! [`cluster::Cluster`] wires a set of peer nodes to the transport and
//! runs the pass loop; its result is validated against the array
//! engine in this crate's tests — the two implementations agree to
//! floating-point reordering tolerance on every workload tried,
//! including runs with churn.
//!
//! [`termination`] supplies what a real deployment needs to *know*
//! the computation has converged without any global view: Safra's
//! token-ring termination-detection protocol.

#![warn(missing_docs)]

pub mod cluster;
pub mod node;
pub mod termination;

pub use cluster::{Cluster, SendOutcome};
pub use node::{DeliverStatus, PeerNode};
