//! Wiring peer nodes to the transport: the whole system, at message
//! level.
//!
//! [`Cluster`] owns one [`PeerNode`] per peer plus the store-and-resend
//! [`Transport`], and drives the paper's pass loop: each round, every
//! *online* peer drains its inbox, steps, and hands its outbox to the
//! transport; parked messages are retried. The cluster is the
//! deployable shape of the algorithm — nothing in it reads global
//! state except the test-only convergence check.

use crate::node::{DeliverStatus, PeerNode, WireMode};
use bytes::Bytes;
use dpr_core::engine::EngineConfig;
use dpr_graph::{CsrGraph, DocId};
use dpr_p2p::peer::{PeerId, PeerTable, Placement};
use dpr_p2p::transport::WireCodec;
use dpr_p2p::transport::{payload_entries, FaultPlan, TrafficStats, Transport};
use dpr_telemetry::{Event, MassBreakdown, Metric, Recorder, NOOP};
use std::sync::Arc;

/// Statistics of one cluster round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct RoundStats {
    /// Wire payloads handed to the transport this round (frames count
    /// once each).
    pub sent: u64,
    /// Payloads applied from inboxes this round.
    pub delivered: u64,
    /// Parked payloads re-delivered this round.
    pub redelivered: u64,
    /// Overlay hops charged by the hop model for this round's sends
    /// (zero when no model is installed).
    pub hops: u64,
}

/// Per-payload overlay hop model: `(from, to, payload) -> hops`. The
/// cluster charges it once per transport send — which is once per
/// *frame* under aggregation, the routing saving the paper's Sec. 4.6
/// aggregation assumption is after.
pub type HopHook<'a> = dyn FnMut(PeerId, PeerId, &Bytes) -> u32 + 'a;

/// One wire payload handed to the transport by an event-driven step
/// ([`Cluster::step_peer_observed`]): everything the discrete-event
/// runtime needs to schedule the matching `Deliver` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Payload size on the wire, in bytes (drives the latency model's
    /// serialization term).
    pub bytes: usize,
    /// Envelopes this send actually enqueued in the destination inbox:
    /// 1 normally, 0 for a lost frame or an offline (parked)
    /// destination, 2 for a duplicated frame. The runtime schedules
    /// exactly this many `Deliver` events, so staged transport faults
    /// never desynchronize the event queue from the inboxes.
    pub enqueued: usize,
    /// Cluster-wide provenance id of this payload, stamped from a
    /// monotone counter at hand-off (departure redirects included).
    /// The chaotic runtime threads it through its link-transfer and
    /// inbox-wait spans, so the causal profiler can name exactly which
    /// frame a critical-path hop rode.
    pub frame: u64,
}

/// A full message-level system: peers + transport.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<PeerNode>,
    transport: Transport<Bytes>,
    rounds: usize,
    cfg: EngineConfig,
    /// Cumulative coalesced entries handed to the transport per
    /// destination peer — the cluster's own send-side accounting,
    /// which the flight recorder's balance auditor cross-checks
    /// against each receiver's `received` counter and the in-flight
    /// backlog to localize duplication to a peer.
    sent_entries_to: Vec<u64>,
    /// Monotone payload-provenance counter backing
    /// [`SendOutcome::frame`] (ids start at 1; 0 means "unknown").
    next_frame: u64,
}

impl Cluster {
    /// Builds a cluster for `graph` with documents assigned by
    /// `placement` across `num_peers` peers.
    ///
    /// Each document is registered on its holder with its out-links
    /// pre-resolved to `(target, holder)` pairs — the state the
    /// Sec. 3.2 address cache would hold after the first routed
    /// lookup.
    pub fn build(
        graph: &CsrGraph,
        placement: &Placement,
        num_peers: usize,
        cfg: EngineConfig,
    ) -> Self {
        Cluster::build_with(graph, placement, num_peers, cfg, WireMode::Single)
    }

    /// [`Cluster::build`] with an explicit wire mode for every node.
    pub fn build_with(
        graph: &CsrGraph,
        placement: &Placement,
        num_peers: usize,
        cfg: EngineConfig,
        wire: WireMode,
    ) -> Self {
        assert_eq!(placement.num_docs(), graph.num_nodes());
        let mut nodes: Vec<PeerNode> = (0..num_peers as u32)
            .map(|i| PeerNode::with_wire(PeerId(i), cfg, wire))
            .collect();
        for d in 0..graph.num_nodes() {
            let doc = DocId::from(d);
            let holder = placement.owner(doc);
            let out: Vec<(DocId, PeerId)> = graph
                .out_neighbors(doc)
                .iter()
                .map(|&t| (DocId(t), placement.owner(DocId(t))))
                .collect();
            nodes[holder.index()].add_document(doc, out);
        }
        Cluster {
            nodes,
            transport: Transport::new(num_peers),
            rounds: 0,
            cfg,
            sent_entries_to: vec![0; num_peers],
            next_frame: 0,
        }
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.nodes.len()
    }

    /// Installs a telemetry recorder on the underlying transport, so
    /// every wire send feeds the payload/byte/parked series. Round- and
    /// node-level events still require driving the cluster through
    /// [`Cluster::round_observed`] / [`Cluster::run_observed`].
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.transport.set_recorder(rec);
    }

    /// Sets the frame codec on every node (default [`WireCodec::Raw`];
    /// see the codec's docs for the bit-identity vs bounded-error
    /// trade). Takes effect from the next flush.
    pub fn set_codec(&mut self, codec: WireCodec) {
        for node in &mut self.nodes {
            node.set_codec(codec);
        }
    }

    /// Rounds executed.
    pub fn rounds_run(&self) -> usize {
        self.rounds
    }

    /// The node of peer `p`.
    pub fn node(&self, p: PeerId) -> &PeerNode {
        &self.nodes[p.index()]
    }

    /// Executes one round over the online peers.
    pub fn round(&mut self, peers: &PeerTable) -> RoundStats {
        self.round_with_hops(peers, None)
    }

    /// [`Cluster::round`] with an optional overlay hop model charged
    /// once per transport send.
    pub fn round_with_hops(
        &mut self,
        peers: &PeerTable,
        hops: Option<&mut HopHook<'_>>,
    ) -> RoundStats {
        self.round_observed(peers, hops, &NOOP)
    }

    /// [`Cluster::round_with_hops`] recording telemetry: one
    /// [`Event::FrameSent`] per wire payload leaving an outbox, one
    /// [`Event::RoundCompleted`] per round, and the store-and-resend
    /// depth into [`Metric::PendingDepth`]. With the no-op recorder
    /// this *is* `round_with_hops` — the protocol never sees `rec`.
    pub fn round_observed<R: Recorder + ?Sized>(
        &mut self,
        peers: &PeerTable,
        mut hops: Option<&mut HopHook<'_>>,
        rec: &R,
    ) -> RoundStats {
        self.rounds += 1;
        // Parked messages whose destination returned get delivered
        // first (the periodic resend of Sec. 3.1).
        let mut stats = RoundStats {
            redelivered: self.transport.retry_pending(peers),
            ..RoundStats::default()
        };

        for i in 0..self.nodes.len() {
            let pid = PeerId(i as u32);
            if !peers.is_online(pid) {
                continue;
            }
            // Inbox -> local state.
            while let Some(env) = self.transport.receive(pid) {
                self.nodes[i]
                    .handle_message(env.payload)
                    .expect("well-formed message from a cluster peer");
                stats.delivered += 1;
            }
            // Local pass.
            self.nodes[i].step_observed(rec);
            // Outbox -> transport.
            for (to, payload) in self.nodes[i].drain_outbox() {
                if let Some(model) = hops.as_deref_mut() {
                    stats.hops += model(pid, to, &payload) as u64;
                }
                if rec.enabled() {
                    rec.event(&Event::FrameSent {
                        round: self.rounds as u64,
                        from: pid.0,
                        to: to.0,
                        entries: payload_entries(&payload),
                        bytes: payload.len() as u64,
                    });
                }
                self.sent_entries_to[to.index()] += payload_entries(&payload);
                self.transport.send(peers, pid, to, payload);
                stats.sent += 1;
            }
        }
        if rec.enabled() {
            let pending = self.transport.total_pending() as u64;
            rec.observe(Metric::PendingDepth, pending);
            rec.event(&Event::RoundCompleted {
                round: self.rounds as u64,
                sent: stats.sent,
                delivered: stats.delivered,
                redelivered: stats.redelivered,
                hops: stats.hops,
                pending,
            });
            self.audit_round(rec);
        }
        stats
    }

    /// Hands one payload to the transport and reports how many
    /// envelopes actually landed in `to`'s inbox (0 after a lost
    /// frame or park, 2 after a duplication) — the ground truth the
    /// event-driven runtime schedules its `Deliver` events from.
    fn send_counted(
        &mut self,
        peers: &PeerTable,
        from: PeerId,
        to: PeerId,
        payload: Bytes,
    ) -> usize {
        let before = self.transport.inbox_len(to);
        self.transport.send(peers, from, to, payload);
        self.transport.inbox_len(to) - before
    }

    /// Event-driven delivery: pops the next envelope `from` sent to
    /// `to` (per-link FIFO) and folds it into `to`'s node, tracking
    /// the bounded arrival depth. Returns `None` when no envelope from
    /// that sender is waiting — a `Deliver` event displaced by a lost
    /// frame, which the runtime tolerates.
    pub fn deliver_from(&mut self, to: PeerId, from: PeerId) -> Option<DeliverStatus> {
        let env = self.transport.receive_from(to, from)?;
        Some(
            self.nodes[to.index()]
                .on_deliver(env.payload)
                .expect("well-formed message from a cluster peer"),
        )
    }

    /// Event-driven step of a single peer: runs one local pass and
    /// hands the outbox to the transport, recording one
    /// [`Event::FrameSent`] per payload (tagged with the runtime's
    /// `tick` in the round field). Returns one [`SendOutcome`] per
    /// payload so the runtime can schedule the matching `Deliver`
    /// events on its virtual clock.
    pub fn step_peer_observed<R: Recorder + ?Sized>(
        &mut self,
        p: PeerId,
        peers: &PeerTable,
        tick: u64,
        rec: &R,
    ) -> Vec<SendOutcome> {
        let i = p.index();
        self.nodes[i].step_observed(rec);
        let mut outcomes = Vec::new();
        for (to, payload) in self.nodes[i].drain_outbox() {
            if rec.enabled() {
                rec.event(&Event::FrameSent {
                    round: tick,
                    from: p.0,
                    to: to.0,
                    entries: payload_entries(&payload),
                    bytes: payload.len() as u64,
                });
            }
            self.sent_entries_to[to.index()] += payload_entries(&payload);
            let bytes = payload.len();
            let enqueued = self.send_counted(peers, p, to, payload);
            self.next_frame += 1;
            outcomes.push(SendOutcome {
                from: p,
                to,
                bytes,
                enqueued,
                frame: self.next_frame,
            });
        }
        outcomes
    }

    /// Applies a rank increment to a document wherever it lives — the
    /// cluster-level injection point for the continuous-update
    /// scenario (the engine-layer equivalent is
    /// `ChaoticEngine::inject_delta`).
    ///
    /// # Panics
    ///
    /// Panics if no peer stores `doc`.
    pub fn apply_delta(&mut self, doc: DocId, delta: f64) {
        self.apply_delta_at(doc, delta);
    }

    /// [`Cluster::apply_delta`] reporting which peer holds `doc`, so
    /// the event-driven runtime can schedule that peer's next step.
    ///
    /// # Panics
    ///
    /// Panics if no peer stores `doc`.
    pub fn apply_delta_at(&mut self, doc: DocId, delta: f64) -> PeerId {
        let holder = self
            .nodes
            .iter()
            .position(|n| n.rank_of(doc).is_some())
            .expect("document stored somewhere in the cluster");
        self.nodes[holder].apply(doc, delta);
        PeerId(holder as u32)
    }

    /// Retries every parked payload against the current presence
    /// table, reporting one [`SendOutcome`] per redelivered payload so
    /// the event-driven runtime can schedule the matching `Deliver`
    /// events (round-driven execution instead calls the transport's
    /// own retry inside [`Cluster::round_observed`]). Redeliveries
    /// always enqueue exactly one envelope.
    pub fn retry_pending_outcomes(&mut self, peers: &PeerTable) -> Vec<SendOutcome> {
        self.transport
            .retry_pending_outcomes(peers)
            .into_iter()
            .map(|(from, to, bytes)| {
                self.next_frame += 1;
                SendOutcome {
                    from,
                    to,
                    bytes,
                    enqueued: 1,
                    frame: self.next_frame,
                }
            })
            .collect()
    }

    /// Emits the per-round ledgers at an explicit audit tick — the
    /// event-driven runtime audits on a virtual-time cadence instead
    /// of at round barriers, and stamps the ledgers with its own tick.
    pub fn audit_at<R: Recorder + ?Sized>(&self, tick: u64, rec: &R) {
        self.audit_round_at(tick, rec);
    }

    /// Emits the flight recorder's per-round ledgers: the mass
    /// snapshot (every node's slab terms plus the in-flight wire mass,
    /// against one unit of Φ per stored document) and the
    /// entry-balance snapshot with the most severe per-peer skew.
    /// O(docs + queued payloads) — only runs when observed.
    fn audit_round<R: Recorder + ?Sized>(&self, rec: &R) {
        self.audit_round_at(self.rounds as u64, rec);
    }

    fn audit_round_at<R: Recorder + ?Sized>(&self, round: u64, rec: &R) {
        let mut mb = MassBreakdown::default();
        let (mut docs, mut emitted, mut sent, mut received) = (0usize, 0u64, 0u64, 0u64);
        for n in &self.nodes {
            mb.merge(n.mass_breakdown());
            docs += n.num_docs();
            let s = n.stats();
            emitted += s.emitted_remote;
            sent += s.sent_remote;
            received += s.received;
        }
        rec.event(&mb.ledger_event(
            "cluster",
            round,
            self.transport.in_flight_mass(),
            self.cfg.damping,
            docs as f64,
        ));
        // Per-peer skew: entries this cluster addressed to the peer,
        // minus what the peer received and what is still on the wire
        // toward it. Negative means entries materialized from nowhere
        // (duplication); positive is indistinguishable from transit
        // delay mid-run and is the quiescence certifier's job. Report
        // the most severe peer, surplus first.
        let (mut skew_peer, mut skew) = (0u32, 0i64);
        for (i, n) in self.nodes.iter().enumerate() {
            let s = self.sent_entries_to[i] as i64
                - n.stats().received as i64
                - self.transport.in_flight_entries_to(PeerId(i as u32)) as i64;
            let more_severe = if skew < 0 {
                s < skew
            } else {
                s < 0 || s > skew
            };
            if more_severe {
                (skew_peer, skew) = (i as u32, s);
            }
        }
        rec.event(&Event::BalanceLedger {
            round,
            emitted,
            sent,
            received,
            in_flight_entries: self.transport.in_flight_entries(),
            skew_peer,
            skew,
        });
    }

    /// Emits the flight recorder's termination certificate: transport
    /// occupancy, queued work, the Safra-style token
    /// `Σ sent − Σ received − in-flight`, and the worst relative
    /// residual against ε. Call when a run claims quiescence; the
    /// audit layer flags anything still outstanding. A no-op with a
    /// disabled recorder.
    pub fn certify_quiescence<R: Recorder + ?Sized>(&self, rec: &R) {
        if !rec.enabled() {
            return;
        }
        let (mut sent, mut received) = (0u64, 0u64);
        for n in &self.nodes {
            let s = n.stats();
            sent += s.sent_remote;
            received += s.received;
        }
        let in_flight_entries = self.transport.in_flight_entries();
        rec.event(&Event::QuiescenceCert {
            round: self.rounds as u64,
            in_flight_entries,
            parked: self.transport.total_pending() as u64,
            nodes_with_work: self.nodes.iter().filter(|n| n.has_work()).count() as u64,
            token: sent as i64 - received as i64 - in_flight_entries as i64,
            max_residual: self
                .nodes
                .iter()
                .map(|n| n.max_relative_residual())
                .fold(0.0, f64::max),
            epsilon: self.cfg.epsilon,
        });
    }

    /// Arms a transport-level fault (flight-recorder fault injection):
    /// the plan strikes the first corruptible send at or after its
    /// threshold. See [`FaultPlan`].
    pub fn inject_transport_fault(&mut self, plan: FaultPlan) {
        self.transport.inject_fault(plan);
    }

    /// The send index an armed fault fired at, once it has.
    pub fn fault_fired_at(&self) -> Option<u64> {
        self.transport.fault_fired_at()
    }

    /// Update entries currently undelivered in the transport (inboxes
    /// plus parked envelopes) — the in-flight side of the
    /// message-balance invariant `Σ sent − Σ received = in flight`.
    pub fn in_flight_entries(&self) -> u64 {
        self.transport.in_flight_entries()
    }

    /// Runs rounds until the system quiesces (no node has pending
    /// work, nothing in flight) or `max_rounds` is hit. Returns the
    /// number of rounds and whether it converged.
    pub fn run_to_convergence(
        &mut self,
        peers: &mut PeerTable,
        max_rounds: usize,
        churn: Option<&mut dpr_core::engine::ChurnFn<'_>>,
    ) -> (usize, bool) {
        self.run_observed(peers, max_rounds, churn, &NOOP)
    }

    /// [`Cluster::run_to_convergence`] recording telemetry: observed
    /// rounds plus one [`Event::PeerChurn`] per presence flip the
    /// churn callback makes.
    pub fn run_observed<R: Recorder + ?Sized>(
        &mut self,
        peers: &mut PeerTable,
        max_rounds: usize,
        mut churn: Option<&mut dpr_core::engine::ChurnFn<'_>>,
        rec: &R,
    ) -> (usize, bool) {
        let mut executed = 0;
        while executed < max_rounds && !self.is_quiescent() {
            self.round_observed(peers, None, rec);
            executed += 1;
            if let Some(f) = churn.as_deref_mut() {
                if rec.enabled() {
                    let before: Vec<bool> = peers.peers().map(|p| peers.is_online(p)).collect();
                    f(executed, peers);
                    for (i, was) in before.iter().enumerate() {
                        let now = peers.is_online(PeerId(i as u32));
                        if now != *was {
                            rec.event(&Event::PeerChurn {
                                round: executed as u64,
                                peer: i as u32,
                                online: now,
                            });
                        }
                    }
                } else {
                    f(executed, peers);
                }
            }
        }
        self.certify_quiescence(rec);
        (executed, self.is_quiescent())
    }

    /// True when no node has pending work and no message is in flight
    /// or parked.
    pub fn is_quiescent(&self) -> bool {
        self.transport.in_flight() == 0 && self.nodes.iter().all(|n| !n.has_work())
    }

    /// Collects every document's rank into a dense vector (test /
    /// reporting convenience — a real deployment has no such view).
    pub fn collect_ranks(&self, num_docs: usize) -> Vec<f64> {
        let mut ranks = vec![f64::NAN; num_docs];
        for n in &self.nodes {
            for (d, slot) in ranks.iter_mut().enumerate() {
                if let Some(r) = n.rank_of(DocId::from(d)) {
                    *slot = r;
                }
            }
        }
        assert!(
            ranks.iter().all(|r| !r.is_nan()),
            "every document stored somewhere"
        );
        ranks
    }

    /// Transport counters.
    pub fn traffic(&self) -> TrafficStats {
        self.transport.stats()
    }

    /// Permanent departure of peer `p` (paper Sec. 3.1 distinguishes
    /// transient leaves — handled by store-and-resend — from documents
    /// that must survive their peer; a real deployment re-homes them
    /// to the DHT successor). `reassign` names each document's new
    /// holder (tests use `ring.successor`). The protocol:
    ///
    /// 1. `p`'s documents migrate with their full in-progress state;
    /// 2. every remaining peer re-homes its out-link entries for `p`;
    /// 3. messages already in `p`'s inbox, and messages parked for `p`
    ///    at senders, are re-delivered to the new holders.
    ///
    /// Returns the number of migrated documents. After this call `p`
    /// holds nothing and must stay offline in the caller's
    /// [`PeerTable`].
    pub fn peer_depart(
        &mut self,
        p: PeerId,
        peers: &PeerTable,
        reassign: &dyn Fn(DocId) -> PeerId,
    ) -> usize {
        self.peer_depart_redirecting(p, peers, reassign).0
    }

    /// [`Cluster::peer_depart`] additionally reporting every re-sent
    /// payload as a [`SendOutcome`]. Under round-driven execution the
    /// redirected envelopes are picked up by the next inbox drain, so
    /// the outcomes can be ignored — but the event-driven runtime has
    /// no such sweep: it must schedule a fresh `Deliver` event per
    /// enqueued redirect (and lazily drop the stale events still
    /// addressed to `p`), otherwise the redirected mass sits in an
    /// inbox forever and the run never quiesces.
    pub fn peer_depart_redirecting(
        &mut self,
        p: PeerId,
        peers: &PeerTable,
        reassign: &dyn Fn(DocId) -> PeerId,
    ) -> (usize, Vec<SendOutcome>) {
        assert!(
            !peers.is_online(p),
            "mark {p} offline before departing it permanently"
        );
        // 1. Migrate documents (and remember their new homes).
        let exports = self.nodes[p.index()].export_documents();
        let migrated = exports.len();
        let mut new_home: Vec<(DocId, PeerId)> = Vec::with_capacity(migrated);
        for e in exports {
            let to = reassign(e.doc);
            assert_ne!(to, p, "cannot reassign a document to the departed peer");
            new_home.push((e.doc, to));
            self.nodes[to.index()].import_document(e);
        }
        // 2. Re-home out-link entries everywhere.
        for node in &mut self.nodes {
            node.rehome_links(p, reassign);
        }
        // 3. Redirect in-flight traffic: p's inbox plus everything
        //    parked for p. A single's GUID (or a frame entry's tag)
        //    names the document; its new holder is found via
        //    `reassign`, mirroring a fresh DHT lookup. A stranded
        //    *frame* may cover documents that re-homed to different
        //    peers, so it is split: one frame per new holder, entries
        //    kept in original order, each original frame split
        //    independently (no cross-frame coalescing — the increments
        //    were separate sends and must stay separate folds).
        use dpr_p2p::guid::Guid;
        use dpr_p2p::transport::{
            CompactEntry, CompactFrameWire, RankUpdateWire, UpdateFrameWire, COMPACT_MAGIC,
            RANK_UPDATE_WIRE_BYTES,
        };
        let doc_home: fxhash::FxHashMap<u32, PeerId> =
            new_home.iter().map(|&(d, h)| (d.0, h)).collect();
        let guid_home: fxhash::FxHashMap<u128, PeerId> = new_home
            .iter()
            .map(|&(d, h)| (Guid::for_document(d).0, h))
            .collect();
        let tag_home: fxhash::FxHashMap<u64, PeerId> = new_home
            .iter()
            .map(|&(d, h)| (Guid::for_document(d).frame_tag(), h))
            .collect();
        // Redirected entries were charged to `p` in the send-side
        // ledger but will now be received elsewhere, so the charge
        // moves with them — otherwise every departure would read as a
        // permanent deficit at `p` and a surplus at each new holder.
        let mut stranded = self.transport.drain_inbox(p);
        stranded.extend(self.transport.take_pending_for(p));
        let mut redirects: Vec<SendOutcome> = Vec::new();
        let mut redirect = |cl: &mut Self, from: PeerId, holder: PeerId, payload: Bytes| {
            let bytes = payload.len();
            let enqueued = cl.send_counted(peers, from, holder, payload);
            cl.next_frame += 1;
            redirects.push(SendOutcome {
                from,
                to: holder,
                bytes,
                enqueued,
                frame: cl.next_frame,
            });
        };
        for env in stranded {
            if env.payload.len() == RANK_UPDATE_WIRE_BYTES {
                let wire = RankUpdateWire::decode(env.payload.clone())
                    .expect("cluster messages are well-formed");
                let holder = *guid_home
                    .get(&wire.guid)
                    .expect("stranded message must target a migrated document");
                self.sent_entries_to[p.index()] -= 1;
                self.sent_entries_to[holder.index()] += 1;
                redirect(self, env.from, holder, env.payload);
            } else if env.payload.first() == Some(&COMPACT_MAGIC) {
                let wire = CompactFrameWire::decode(env.payload)
                    .expect("cluster messages are well-formed");
                self.sent_entries_to[p.index()] -= wire.entries.len() as u64;
                let mut split: Vec<(PeerId, Vec<CompactEntry>)> = Vec::new();
                for e in wire.entries {
                    let holder = *doc_home
                        .get(&e.doc)
                        .expect("stranded frame entry must target a migrated document");
                    match split.iter_mut().find(|(h, _)| *h == holder) {
                        Some((_, es)) => es.push(e),
                        None => split.push((holder, vec![e])),
                    }
                }
                for (holder, entries) in split {
                    self.sent_entries_to[holder.index()] += entries.len() as u64;
                    redirect(
                        self,
                        env.from,
                        holder,
                        CompactFrameWire::new(entries).encode(),
                    );
                }
            } else {
                let wire =
                    UpdateFrameWire::decode(env.payload).expect("cluster messages are well-formed");
                self.sent_entries_to[p.index()] -= wire.entries.len() as u64;
                let mut split: Vec<(PeerId, UpdateFrameWire)> = Vec::new();
                for e in wire.entries {
                    let holder = *tag_home
                        .get(&e.tag)
                        .expect("stranded frame entry must target a migrated document");
                    match split.iter_mut().find(|(h, _)| *h == holder) {
                        Some((_, f)) => f.entries.push(e),
                        None => split.push((holder, UpdateFrameWire { entries: vec![e] })),
                    }
                }
                for (holder, frame) in split {
                    self.sent_entries_to[holder.index()] += frame.entries.len() as u64;
                    redirect(self, env.from, holder, frame.encode());
                }
            }
        }
        (migrated, redirects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::sync_solver::SyncSolver;
    use dpr_graph::powerlaw::paper_graph;
    use dpr_p2p::peer::PlacementPolicy;
    use dpr_p2p::ring::Ring;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(nodes: usize, peers: usize, eps: f64, seed: u64) -> (Cluster, CsrGraph) {
        let graph = paper_graph(nodes, seed);
        let ring = Ring::with_peers(peers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
        let cluster = Cluster::build(&graph, &placement, peers, EngineConfig::with_epsilon(eps));
        (cluster, graph)
    }

    #[test]
    fn cluster_converges_to_the_sync_solution() {
        let (mut cluster, graph) = build(800, 16, 1e-8, 61);
        let mut peers = PeerTable::new(16);
        let (rounds, ok) = cluster.run_to_convergence(&mut peers, 10_000, None);
        assert!(ok, "did not quiesce in {rounds} rounds");
        let ranks = cluster.collect_ranks(800);
        let reference = SyncSolver::new().tolerance(1e-13).solve(&graph).ranks;
        for (a, b) in ranks.iter().zip(&reference) {
            assert!((a - b).abs() / b < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn cluster_agrees_with_the_array_engine() {
        let nodes = 600;
        let graph = paper_graph(nodes, 62);
        let ring = Ring::with_peers(10);
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
        let cfg = EngineConfig::with_epsilon(1e-6);

        let mut cluster = Cluster::build(&graph, &placement, 10, cfg);
        let mut peers = PeerTable::new(10);
        let (_, ok) = cluster.run_to_convergence(&mut peers, 10_000, None);
        assert!(ok);

        let owners: Vec<PeerId> = (0..nodes)
            .map(|d| placement.owner(DocId::from(d)))
            .collect();
        let mut engine =
            dpr_core::engine::ChaoticEngine::new(std::sync::Arc::new(graph.clone()), owners, cfg);
        let run = engine.run_static();
        assert!(run.converged);

        // Same protocol, but the cluster's round visits peers in
        // order, so a message from peer 3 can reach peer 7 within the
        // round — a different (equally valid) chaotic schedule. The
        // two schedules agree to O(eps).
        let ranks = cluster.collect_ranks(nodes);
        for (a, b) in ranks.iter().zip(engine.ranks()) {
            let rel = (a - b).abs() / b.abs().max(1e-12);
            assert!(rel < 1e-4, "{a} vs {b}");
        }
        // The cluster's in-round delivery hands peers *fresher* data
        // (a message from peer 3 reaches peer 7 in the same round), so
        // documents coalesce more increments per application and
        // re-advertise fewer times — chaotic iteration with lower
        // staleness costs fewer messages, never more.
        let ratio = cluster.traffic().sent as f64 / run.total_remote_messages as f64;
        assert!((0.3..=1.05).contains(&ratio), "traffic ratio {ratio}");

        // The batched wire path runs the same schedule through frames:
        // ranks must agree with the unbatched cluster *bit for bit*
        // (the aggregation determinism claim), and hence also
        // cross-validate against the array engine to O(eps). It also
        // must be strictly cheaper in payloads and bytes.
        let mut batched = Cluster::build_with(&graph, &placement, 10, cfg, WireMode::frames());
        let mut peers_b = PeerTable::new(10);
        let (_, ok) = batched.run_to_convergence(&mut peers_b, 10_000, None);
        assert!(ok);
        assert_eq!(
            batched.collect_ranks(nodes),
            ranks,
            "batched and unbatched ranks must be bit-identical"
        );
        for (a, b) in batched.collect_ranks(nodes).iter().zip(engine.ranks()) {
            let rel = (a - b).abs() / b.abs().max(1e-12);
            assert!(rel < 1e-4, "{a} vs {b}");
        }
        let (tu, tb) = (cluster.traffic(), batched.traffic());
        assert!(
            tb.sent < tu.sent,
            "frames: {} !< singles: {}",
            tb.sent,
            tu.sent
        );
        assert!(
            tb.bytes_sent < tu.bytes_sent,
            "frame bytes {} !< 24k baseline {}",
            tb.bytes_sent,
            tu.bytes_sent
        );
    }

    #[test]
    fn cluster_survives_churn() {
        let (mut cluster, graph) = build(500, 8, 1e-4, 64);
        let mut peers = PeerTable::new(8);
        let mut rng = ChaCha8Rng::seed_from_u64(65);
        let mut churn = move |_r: usize, p: &mut PeerTable| {
            p.set_online_fraction(0.5, &mut rng);
        };
        let (rounds, ok) = cluster.run_to_convergence(&mut peers, 50_000, Some(&mut churn));
        assert!(ok, "no convergence in {rounds} rounds");
        assert!(cluster.traffic().parked > 0, "churn must park messages");
        assert_eq!(cluster.traffic().parked, cluster.traffic().redelivered);
        let ranks = cluster.collect_ranks(500);
        let reference = SyncSolver::new().solve(&graph).ranks;
        for (a, b) in ranks.iter().zip(&reference) {
            assert!((a - b).abs() / b < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_cluster_survives_churn_identically() {
        // Same churn schedule (same RNG seed), both wire modes: parked
        // frames redeliver whole, and the converged ranks stay
        // bit-identical to the unbatched run.
        let run = |wire: WireMode| {
            let graph = paper_graph(500, 64);
            let ring = Ring::with_peers(8);
            let mut rng = ChaCha8Rng::seed_from_u64(64 ^ 1);
            let placement = Placement::assign(500, &ring, PlacementPolicy::Random, &mut rng);
            let mut cluster = Cluster::build_with(
                &graph,
                &placement,
                8,
                EngineConfig::with_epsilon(1e-4),
                wire,
            );
            let mut peers = PeerTable::new(8);
            let mut churn_rng = ChaCha8Rng::seed_from_u64(65);
            let mut churn = move |_r: usize, p: &mut PeerTable| {
                p.set_online_fraction(0.5, &mut churn_rng);
            };
            let (rounds, ok) = cluster.run_to_convergence(&mut peers, 50_000, Some(&mut churn));
            assert!(ok, "no convergence in {rounds} rounds");
            (cluster.collect_ranks(500), cluster.traffic())
        };
        let (single, ts) = run(WireMode::Single);
        let (framed, tf) = run(WireMode::frames());
        assert_eq!(framed, single, "churned ranks must be bit-identical");
        assert!(tf.parked > 0, "churn must park frames");
        assert_eq!(tf.parked, tf.redelivered);
        assert!(tf.sent < ts.sent);
    }

    #[test]
    fn every_document_lands_on_its_placed_peer() {
        let (cluster, _) = build(300, 6, 1e-3, 66);
        let total: usize = (0..6u32).map(|p| cluster.node(PeerId(p)).num_docs()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn permanent_departure_preserves_the_computation() {
        // Run partway, permanently depart a peer mid-computation, and
        // verify the system still converges to the correct fixed point
        // with no rank mass lost.
        let nodes = 500;
        let graph = paper_graph(nodes, 68);
        let ring = Ring::with_peers(8);
        let mut rng = ChaCha8Rng::seed_from_u64(69);
        let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
        let mut cluster = Cluster::build(&graph, &placement, 8, EngineConfig::with_epsilon(1e-8));
        let mut peers = PeerTable::new(8);

        // A few rounds to get messages in flight.
        for _ in 0..3 {
            cluster.round(&peers);
        }
        // Peer 3 goes away for good; its docs re-home round-robin to
        // the other peers (stand-in for the ring successor).
        let victim = PeerId(3);
        peers.go_offline(victim);
        // One more round so some messages park for the offline peer.
        cluster.round(&peers);
        let reassign = |d: DocId| {
            let mut h = (d.0 as usize) % 8;
            if h == victim.index() {
                h = (h + 1) % 8;
            }
            PeerId(h as u32)
        };
        let migrated = cluster.peer_depart(victim, &peers, &reassign);
        assert!(migrated > 0);
        assert_eq!(cluster.node(victim).num_docs(), 0);

        let (_, ok) = cluster.run_to_convergence(&mut peers, 10_000, None);
        assert!(ok);
        let ranks = cluster.collect_ranks(nodes);
        let reference = SyncSolver::new().tolerance(1e-13).solve(&graph).ranks;
        for (a, b) in ranks.iter().zip(&reference) {
            assert!((a - b).abs() / b < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "mark p2 offline")]
    fn departing_an_online_peer_panics() {
        let (mut cluster, _) = build(100, 4, 1e-3, 70);
        let peers = PeerTable::new(4);
        cluster.peer_depart(PeerId(2), &peers, &|_| PeerId(0));
    }

    #[test]
    fn observed_run_is_bit_identical_and_traces_traffic() {
        use dpr_telemetry::{Event, Metric, TraceRecorder};
        let build_pair = || build(400, 8, 1e-5, 71).0;
        let mut plain = build_pair();
        let mut peers1 = PeerTable::new(8);
        let (rounds1, ok1) = plain.run_to_convergence(&mut peers1, 10_000, None);
        assert!(ok1);

        let mut observed = build_pair();
        let rec = Arc::new(TraceRecorder::new());
        observed.set_recorder(rec.clone());
        let mut peers2 = PeerTable::new(8);
        let (rounds2, ok2) = observed.run_observed(&mut peers2, 10_000, None, rec.as_ref());
        assert!(ok2);
        assert_eq!(rounds1, rounds2);
        assert_eq!(
            plain.collect_ranks(400),
            observed.collect_ranks(400),
            "telemetry must not perturb the computation"
        );
        assert_eq!(plain.traffic(), observed.traffic());

        // The event stream accounts for every payload, byte for byte.
        let events = rec.events();
        let (mut frames, mut frame_bytes, mut round_sent) = (0u64, 0u64, 0u64);
        let mut rounds_completed = 0usize;
        for e in &events {
            match e {
                Event::FrameSent { entries, bytes, .. } => {
                    frames += 1;
                    frame_bytes += bytes;
                    assert!(*entries >= 1);
                }
                Event::RoundCompleted { sent, .. } => {
                    rounds_completed += 1;
                    round_sent += sent;
                }
                _ => {}
            }
        }
        let traffic = observed.traffic();
        assert_eq!(rounds_completed, rounds2);
        assert_eq!(frames, traffic.sent);
        assert_eq!(round_sent, traffic.sent);
        assert_eq!(frame_bytes, traffic.bytes_sent);
        // The transport recorder mirrors the same totals as counters.
        assert_eq!(rec.counter(Metric::PayloadsSent), traffic.sent);
        assert_eq!(rec.counter(Metric::BytesOnWire), traffic.bytes_sent);
        assert_eq!(rec.histogram(Metric::PendingDepth).count(), rounds2 as u64);
    }

    #[test]
    fn observed_run_audits_clean_and_faults_localize() {
        use dpr_p2p::transport::FaultKind;
        use dpr_telemetry::audit::Monitor;
        use dpr_telemetry::{AuditReport, TraceRecorder};

        let audited_run = |fault: Option<FaultPlan>| {
            let mut cluster = build(400, 8, 1e-6, 80).0;
            let rec = Arc::new(TraceRecorder::new());
            cluster.set_recorder(rec.clone());
            if let Some(plan) = fault {
                cluster.inject_transport_fault(plan);
            }
            let mut peers = PeerTable::new(8);
            let (rounds, ok) = cluster.run_observed(&mut peers, 10_000, None, rec.as_ref());
            assert!(ok, "no quiescence in {rounds} rounds");
            if fault.is_some() {
                assert!(cluster.fault_fired_at().is_some(), "fault never fired");
            }
            AuditReport::evaluate(&rec.events())
        };

        // Clean run: every monitor exercised, none violated.
        let clean = audited_run(None);
        assert!(clean.passed(), "{}", clean.diagnosis());
        for f in clean.findings() {
            assert!(f.checked > 0, "{} never exercised", f.monitor);
        }

        // Each canonical transport fault is caught, attributed to the
        // monitor owning the invariant it breaks.
        for (kind, owner) in [
            (FaultKind::MassLeak, Monitor::MassConservation),
            (FaultKind::DupFrame, Monitor::MessageBalance),
            (FaultKind::LostFrame, Monitor::Quiescence),
        ] {
            let report = audited_run(Some(FaultPlan { kind, nth_send: 40 }));
            assert!(!report.passed(), "{kind} went undetected");
            assert_eq!(report.primary().unwrap().monitor, owner, "{kind}");
        }
    }

    #[test]
    fn priority_cluster_converges_and_agrees_with_pass() {
        // Same system under both scheduling modes: priority converges
        // to the same fixed point (to O(eps)) while deferring work.
        let run = |sched: dpr_core::SchedMode| {
            let graph = paper_graph(2000, 72);
            let ring = Ring::with_peers(16);
            let mut rng = ChaCha8Rng::seed_from_u64(73);
            let placement = Placement::assign(2000, &ring, PlacementPolicy::Random, &mut rng);
            let cfg = EngineConfig::with_epsilon(1e-9).with_sched(sched);
            let mut cluster = Cluster::build(&graph, &placement, 16, cfg);
            let mut peers = PeerTable::new(16);
            let (rounds, ok) = cluster.run_to_convergence(&mut peers, 50_000, None);
            assert!(ok, "no convergence in {rounds} rounds");
            (cluster.collect_ranks(2000), cluster.traffic())
        };
        let (pass, _) = run(dpr_core::SchedMode::Pass);
        let (prio, _) = run(dpr_core::SchedMode::Priority);
        let l1_per_doc: f64 = pass
            .iter()
            .zip(&prio)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / pass.len() as f64;
        assert!(l1_per_doc <= 1e-9, "l1 per doc {l1_per_doc}");
    }

    #[test]
    fn priority_wire_modes_are_bit_identical() {
        // The aggregation determinism claim must survive priority
        // ordering: same selection, same emission order, so singles
        // and frames still produce bit-identical ranks.
        let run = |wire: WireMode| {
            let graph = paper_graph(1500, 74);
            let ring = Ring::with_peers(12);
            let mut rng = ChaCha8Rng::seed_from_u64(75);
            let placement = Placement::assign(1500, &ring, PlacementPolicy::Random, &mut rng);
            let cfg = EngineConfig::with_epsilon(1e-6).with_sched(dpr_core::SchedMode::Priority);
            let mut cluster = Cluster::build_with(&graph, &placement, 12, cfg, wire);
            let mut peers = PeerTable::new(12);
            let (rounds, ok) = cluster.run_to_convergence(&mut peers, 50_000, None);
            assert!(ok, "no convergence in {rounds} rounds");
            (cluster.collect_ranks(1500), cluster.traffic())
        };
        let (single, ts) = run(WireMode::Single);
        let (framed, tf) = run(WireMode::frames());
        assert_eq!(
            framed, single,
            "priority ranks must not depend on wire mode"
        );
        assert!(tf.sent < ts.sent, "frames still aggregate under priority");
    }

    #[test]
    fn priority_cluster_survives_churn_and_departure() {
        // Deferred residuals + store-and-resend + permanent departure:
        // parked mass and parked messages both drain, and the system
        // still reaches the synchronous fixed point.
        let nodes = 500;
        let graph = paper_graph(nodes, 76);
        let ring = Ring::with_peers(8);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
        let cfg = EngineConfig::with_epsilon(1e-8).with_sched(dpr_core::SchedMode::Priority);
        let mut cluster = Cluster::build(&graph, &placement, 8, cfg);
        let mut peers = PeerTable::new(8);
        for _ in 0..3 {
            cluster.round(&peers);
        }
        let victim = PeerId(5);
        peers.go_offline(victim);
        cluster.round(&peers);
        let reassign = |d: DocId| {
            let mut h = (d.0 as usize) % 8;
            if h == victim.index() {
                h = (h + 1) % 8;
            }
            PeerId(h as u32)
        };
        assert!(cluster.peer_depart(victim, &peers, &reassign) > 0);
        let mut churn_rng = ChaCha8Rng::seed_from_u64(78);
        let mut churn = move |_r: usize, p: &mut PeerTable| {
            p.set_online_fraction(0.6, &mut churn_rng);
            p.go_offline(victim); // the departed peer never returns
        };
        let (rounds, ok) = cluster.run_to_convergence(&mut peers, 50_000, Some(&mut churn));
        assert!(ok, "no convergence in {rounds} rounds");
        let ranks = cluster.collect_ranks(nodes);
        let reference = SyncSolver::new().tolerance(1e-13).solve(&graph).ranks;
        for (a, b) in ranks.iter().zip(&reference) {
            assert!((a - b).abs() / b < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn departure_redirects_stranded_frames_and_reports_outcomes() {
        // Chaotic-mode departure: the victim's inbox holds undelivered
        // frames (no round barrier drained them) and more are parked
        // for it at senders. The redirect-reporting variant must
        // conserve every in-flight entry and describe each re-sent
        // payload so the event runtime can schedule its delivery.
        let nodes = 400;
        let graph = paper_graph(nodes, 81);
        let ring = Ring::with_peers(8);
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
        let mut cluster = Cluster::build_with(
            &graph,
            &placement,
            8,
            EngineConfig::with_epsilon(1e-8),
            WireMode::frames(),
        );
        let mut peers = PeerTable::new(8);

        // Event-style stepping: every peer steps once with no inbox
        // drain in between, so frames pile up undelivered.
        for p in 0..8u32 {
            cluster.step_peer_observed(PeerId(p), &peers, 0, &NOOP);
        }
        let victim = PeerId(3);
        assert!(cluster.in_flight_entries() > 0, "frames must be in flight");
        peers.go_offline(victim);
        // Another step round parks further frames for the offline
        // victim at their senders.
        for p in (0..8u32).filter(|&p| p != victim.0) {
            cluster.step_peer_observed(PeerId(p), &peers, 1, &NOOP);
        }

        let before = cluster.in_flight_entries();
        let reassign = |d: DocId| {
            let mut h = (d.0 as usize) % 8;
            if h == victim.index() {
                h = (h + 1) % 8;
            }
            PeerId(h as u32)
        };
        let (migrated, redirects) = cluster.peer_depart_redirecting(victim, &peers, &reassign);
        assert!(migrated > 0);
        assert!(!redirects.is_empty(), "stranded frames must be redirected");
        assert_eq!(
            cluster.in_flight_entries(),
            before,
            "departure must not lose or invent in-flight entries"
        );
        // Every reported redirect is deliverable on its link, exactly
        // `enqueued` times.
        for o in &redirects {
            assert_ne!(o.to, victim, "no redirect may target the departed peer");
            for _ in 0..o.enqueued {
                assert!(
                    cluster.deliver_from(o.to, o.from).is_some(),
                    "redirect {o:?} promised an envelope that is not there"
                );
            }
        }
        // The computation still reaches the synchronous fixed point.
        let (_, ok) = cluster.run_to_convergence(&mut peers, 10_000, None);
        assert!(ok);
        let ranks = cluster.collect_ranks(nodes);
        let reference = SyncSolver::new().tolerance(1e-13).solve(&graph).ranks;
        for (a, b) in ranks.iter().zip(&reference) {
            assert!((a - b).abs() / b < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn quiescent_round_is_a_noop() {
        let (mut cluster, _) = build(200, 4, 1e-3, 67);
        let mut peers = PeerTable::new(4);
        cluster.run_to_convergence(&mut peers, 10_000, None);
        let before = cluster.collect_ranks(200);
        let stats = cluster.round(&peers);
        assert_eq!(stats, RoundStats::default());
        assert_eq!(cluster.collect_ranks(200), before);
    }
}
