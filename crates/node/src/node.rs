//! A single peer as a protocol state machine.
//!
//! A [`PeerNode`] owns a set of documents, knows each document's
//! out-links and which peer holds each linked document (resolved once
//! through the DHT, then cached — Sec. 3.2), and speaks the paper's
//! wire protocol: incoming messages are 24-byte `(GUID, f64)` rank
//! updates; outgoing messages are the same. The node is completely
//! ignorant of any global state — everything it does is local, which
//! is the property that makes the algorithm deployable.
//!
//! # Document storage
//!
//! Documents live in a dense slab (`Vec<DocState>`, one slot per
//! document in arrival order). The GUID and frame-tag indexes map
//! straight to slot offsets, and every locally-held out-link caches its
//! target's slot — so the apply and emit hot paths never touch a hash
//! map. The side-indexes are rebuildable from the slab alone; they are
//! a cache, not state.
//!
//! # Per-peer aggregation and [`WireMode`]
//!
//! Peers holding many documents send many updates to the same
//! destination peer each pass (Sec. 4.6 assumes this traffic is
//! combined). Every node therefore accumulates outbound increments
//! per destination in a [`FlushBuffer`] during phase 2, coalescing
//! same-document increments into one entry (added in emission order),
//! and flushes at the end of the step. Aggregation is part of the
//! protocol; [`WireMode`] only chooses the *wire format* of a flush:
//!
//! * [`WireMode::Single`] — each coalesced entry leaves as its own
//!   24-byte `(GUID, f64)` message (the paper's wire format);
//! * [`WireMode::Frames`] — each destination's entries leave packed
//!   into length-prefixed multi-update frames of at most
//!   `max_frame_bytes`, one routed payload per frame.
//!
//! Because both modes emit the *same coalesced group sums in the same
//! order* and the receiver folds them into `pending` one addition per
//! entry in arrival order, converged ranks are bit-identical across
//! wire modes and frame-size caps (see DESIGN.md "Wire protocol &
//! aggregation").
//!
//! # Priority scheduling
//!
//! Under [`SchedMode::Priority`] a step processes only the
//! highest-residual slice of the dirty queue (the same whole-bucket
//! budget rule the engine uses — see DESIGN.md "Scheduling
//! architecture"), ordered highest bucket first so the flush buffers
//! fill with the most valuable increments before any frame-size cap
//! splits a flush. Deferred documents keep their pending mass and stay
//! queued, so [`PeerNode::has_work`] — and with it cluster quiescence
//! and Safra's termination count — still sees them.

use bytes::Bytes;
use dpr_core::engine::EngineConfig;
use dpr_core::message::{FlushBuffer, MessageError};
use dpr_core::sched::{
    partition_by_greedy, partition_by_residual, residual_bucket, SchedMode, SchedStats,
};
use dpr_graph::DocId;
use dpr_p2p::guid::Guid;
use dpr_p2p::peer::PeerId;
use dpr_p2p::transport::{
    CompactEntry, CompactFrameWire, RankUpdateWire, UpdateFrameWire, WireCodec, COMPACT_MAGIC,
    RANK_UPDATE_WIRE_BYTES,
};
use dpr_telemetry::{Metric, Recorder, NOOP};
use fxhash::FxHashMap;
use std::cmp::Reverse;

/// How a node puts updates on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// One 24-byte message per update (the paper's baseline).
    Single,
    /// Per-destination aggregation: updates accumulate in flush
    /// buffers and leave as multi-update frames of at most
    /// `max_frame_bytes` each at the end of every step.
    Frames {
        /// Size cap per frame, in wire bytes (at least one entry is
        /// always allowed).
        max_frame_bytes: usize,
    },
}

/// Default frame-size cap: one MTU-sized payload (87 entries).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1400;

impl WireMode {
    /// Frames mode with the default MTU-sized cap.
    pub fn frames() -> WireMode {
        WireMode::Frames {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// Default bound on un-stepped arrivals a peer absorbs before the
/// event-driven runtime must step it: the backpressure cap of the
/// chaotic run mode. A peer that keeps receiving without stepping
/// would otherwise accumulate unbounded pending mass while its
/// coalescing window stretches; saturation forces an immediate step.
pub const DEFAULT_INBOX_CAP: usize = 32;

/// Outcome of an event-driven delivery ([`PeerNode::on_deliver`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverStatus {
    /// The payload was folded in; the node can keep buffering.
    Accepted,
    /// The payload was folded in and the arrival bound is reached:
    /// the runtime must step this node now (backpressure).
    Saturated,
}

/// Sentinel slot for out-links whose target lives on another peer.
const REMOTE: u32 = u32::MAX;

/// One out-link: the target document, the peer holding it (the
/// Sec. 3.2 address-cache entry), and — when that peer is this node —
/// the target's slab slot, so same-peer updates skip the index.
#[derive(Debug, Clone, Copy)]
struct OutLink {
    target: DocId,
    holder: PeerId,
    local_slot: u32,
}

/// Per-document protocol state, one slab slot each.
#[derive(Debug, Clone)]
struct DocState {
    doc: DocId,
    rank: f64,
    advertised: f64,
    pending: f64,
    /// Whether this slot is on the dirty queue (pending mass may sit
    /// at exactly zero after a cancellation, and a deferred document
    /// stays queued across steps — the flag is the single source of
    /// truth, so the queue never holds duplicates).
    queued: bool,
    out: Vec<OutLink>,
}

/// Counters a node keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct NodeStats {
    /// Rank updates received over the wire and applied (frame entries
    /// count individually).
    pub received: u64,
    /// Rank updates put on the wire — coalesced flush-buffer entries,
    /// whether they travelled as singles or frame entries. Conserved
    /// against `received` (Safra's termination detection counts on
    /// this invariant).
    pub sent_remote: u64,
    /// Remote link emissions before coalescing — the number of wire
    /// messages the paper's one-message-per-update model would have
    /// sent (Table 3's message metric).
    pub emitted_remote: u64,
    /// Same-peer link updates (no wire message).
    pub local_updates: u64,
    /// Multi-update frames emitted (zero in [`WireMode::Single`]).
    pub frames_sent: u64,
    /// Messages that failed to decode or referenced unknown GUIDs.
    pub rejected: u64,
    /// Largest un-stepped arrival depth the event-driven runtime ever
    /// pushed this node to (high-water mark of the bounded inbox;
    /// always zero under round-driven stepping).
    pub inbox_hwm: u64,
}

/// One peer of the P2P system, executing Fig. 1 locally.
#[derive(Debug, Clone)]
pub struct PeerNode {
    id: PeerId,
    cfg: EngineConfig,
    wire: WireMode,
    /// Frame encoding: bit-identity `Raw` (default) or varint/f32
    /// `Compact`. Singles always travel raw — see [`WireCodec`].
    codec: WireCodec,
    /// The document slab, indexed by local slot (arrival order).
    slots: Vec<DocState>,
    /// Rebuildable side-indexes into the slab.
    doc_index: FxHashMap<DocId, u32>,
    guid_index: FxHashMap<Guid, u32>,
    /// Frame-entry demultiplexer: 64-bit tag -> slab slot.
    tag_index: FxHashMap<u64, u32>,
    /// Set when slab membership or link holders changed; the cached
    /// `local_slot` of every out-link is recomputed on the next step.
    links_dirty: bool,
    /// Slots with queued work, processed on the next step.
    dirty: Vec<u32>,
    /// Reusable buffers for the priority / greedy selection.
    scratch_deferred: Vec<u32>,
    scratch_buckets: Vec<u8>,
    scratch_keys: Vec<(u64, u32)>,
    /// Per-destination aggregation buffers, indexed by destination
    /// peer id (grown on first touch; empty between steps but keeping
    /// their capacity, so the steady state never allocates).
    flush: Vec<FlushBuffer>,
    /// Destinations touched this step, in first-touch order.
    flush_order: Vec<PeerId>,
    outbox: Vec<(PeerId, Bytes)>,
    stats: NodeStats,
    /// Payloads folded in since the last step — the event runtime's
    /// bounded-inbox depth. Always zero under round-driven stepping
    /// (rounds deliver through [`PeerNode::handle_message`] directly).
    arrivals_since_step: u32,
    /// Cumulative advertised delta of dangling (out-degree 0)
    /// documents — the damping sink's term of the flight recorder's
    /// conserved potential Φ (stays with the node across document
    /// handoffs; the cluster ledger sums it over all nodes).
    dangling_advertised: f64,
}

impl PeerNode {
    /// A node with no documents, sending unbatched single messages.
    pub fn new(id: PeerId, cfg: EngineConfig) -> Self {
        PeerNode::with_wire(id, cfg, WireMode::Single)
    }

    /// A node with no documents and an explicit wire mode.
    pub fn with_wire(id: PeerId, cfg: EngineConfig, wire: WireMode) -> Self {
        PeerNode {
            id,
            cfg,
            wire,
            codec: WireCodec::Raw,
            slots: Vec::new(),
            doc_index: FxHashMap::default(),
            guid_index: FxHashMap::default(),
            tag_index: FxHashMap::default(),
            links_dirty: false,
            dirty: Vec::new(),
            scratch_deferred: Vec::new(),
            scratch_buckets: Vec::new(),
            scratch_keys: Vec::new(),
            flush: Vec::new(),
            flush_order: Vec::new(),
            outbox: Vec::new(),
            stats: NodeStats::default(),
            arrivals_since_step: 0,
            dangling_advertised: 0.0,
        }
    }

    /// This node's wire mode.
    pub fn wire_mode(&self) -> WireMode {
        self.wire
    }

    /// This node's frame codec.
    pub fn wire_codec(&self) -> WireCodec {
        self.codec
    }

    /// Sets the frame codec for subsequent flushes (receiving is
    /// codec-agnostic: any node accepts raw and compact frames alike).
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec = codec;
    }

    /// This node's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Number of documents stored here.
    pub fn num_docs(&self) -> usize {
        self.slots.len()
    }

    /// The node's counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// This node's mass-ledger terms, summed over its document slab
    /// plus the cumulative dangling sink — the flight recorder's
    /// conserved-potential inputs. O(docs) scan: call at round
    /// boundaries (the cluster gates it on `Recorder::enabled`).
    pub fn mass_breakdown(&self) -> dpr_telemetry::MassBreakdown {
        let mut mb = dpr_telemetry::MassBreakdown {
            dangling: self.dangling_advertised,
            ..Default::default()
        };
        for s in &self.slots {
            mb.ranks += s.rank;
            mb.unadvertised += s.rank - s.advertised;
            mb.pending += s.pending;
        }
        mb
    }

    /// The largest relative residual over this node's documents:
    /// `|pending + rank − advertised| / max(|rank|, MIN_POSITIVE)` —
    /// the same relative criterion the ε re-advertisement check uses,
    /// so at quiescence it is at most ε.
    pub fn max_relative_residual(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| {
                (s.pending + s.rank - s.advertised).abs() / s.rank.abs().max(f64::MIN_POSITIVE)
            })
            .fold(0.0, f64::max)
    }

    /// Adds a document this peer stores, with its out-links and their
    /// holders. Seeds the base rank `(1 − d)` as the initial pending
    /// increment, as the engine does.
    ///
    /// # Panics
    ///
    /// Panics if the document is already stored here.
    pub fn add_document(&mut self, doc: DocId, out: Vec<(DocId, PeerId)>) {
        let base = 1.0 - self.cfg.damping;
        let slot = self.insert_slot(DocState {
            doc,
            rank: 0.0,
            advertised: 0.0,
            pending: base,
            queued: true,
            out: out
                .into_iter()
                .map(|(target, holder)| OutLink {
                    target,
                    holder,
                    local_slot: REMOTE,
                })
                .collect(),
        });
        self.dirty.push(slot);
    }

    /// Appends a slab slot and registers it in every side-index,
    /// rejecting duplicates and the ~2^-64 event of a same-peer 64-bit
    /// frame-tag collision (a colliding frame entry would silently
    /// credit the wrong document).
    fn insert_slot(&mut self, state: DocState) -> u32 {
        let doc = state.doc;
        let slot = self.slots.len() as u32;
        let prev = self.doc_index.insert(doc, slot);
        assert!(
            prev.is_none(),
            "document {doc} already stored on {}",
            self.id
        );
        let guid = Guid::for_document(doc);
        self.guid_index.insert(guid, slot);
        let prev_tag = self.tag_index.insert(guid.frame_tag(), slot);
        assert!(
            prev_tag.is_none(),
            "frame tag collision between {doc} and {} on {}",
            self.slots[prev_tag.unwrap() as usize].doc,
            self.id
        );
        self.slots.push(state);
        self.links_dirty = true;
        slot
    }

    /// Recomputes the cached local slot of every out-link — runs at
    /// the start of the next step after slab membership or link
    /// holders changed, restoring the no-hash-lookup emit path.
    fn resolve_links(&mut self) {
        self.links_dirty = false;
        let doc_index = &self.doc_index;
        let id = self.id;
        for state in &mut self.slots {
            for link in &mut state.out {
                link.local_slot = if link.holder == id {
                    *doc_index
                        .get(&link.target)
                        .expect("locally-held link target stored on this peer")
                } else {
                    REMOTE
                };
            }
        }
    }

    /// Current rank of a local document, if stored here.
    pub fn rank_of(&self, doc: DocId) -> Option<f64> {
        self.doc_index
            .get(&doc)
            .map(|&s| self.slots[s as usize].rank)
    }

    /// Handles one incoming wire payload: a 24-byte payload is a
    /// single `(GUID, f64)` update; otherwise the first byte selects
    /// the frame codec ([`COMPACT_MAGIC`] ⇒ compact, else raw — raw
    /// frame lengths are `4 + 16k`, never 24, and compact frames pad
    /// away from 24, so the dispatch is unambiguous).
    pub fn handle_message(&mut self, payload: Bytes) -> Result<(), MessageError> {
        if payload.len() == RANK_UPDATE_WIRE_BYTES {
            self.handle_single(payload)
        } else if payload.first() == Some(&COMPACT_MAGIC) {
            self.handle_compact(payload)
        } else {
            self.handle_frame(payload)
        }
    }

    /// Handles one 24-byte single-update message, resolving the GUID
    /// straight to a slab slot.
    fn handle_single(&mut self, payload: Bytes) -> Result<(), MessageError> {
        let wire = RankUpdateWire::decode(payload).map_err(|e| {
            self.stats.rejected += 1;
            MessageError::Wire(e)
        })?;
        let Some(&slot) = self.guid_index.get(&Guid(wire.guid)) else {
            self.stats.rejected += 1;
            return Err(MessageError::UnknownGuid(Guid(wire.guid)));
        };
        self.apply_slot(slot, wire.value);
        self.stats.received += 1;
        Ok(())
    }

    /// Handles one multi-update frame: all entries must resolve before
    /// any is applied (a frame is atomic), then they fold into
    /// `pending` in entry order — the same one-addition-per-entry fold
    /// the entries would have produced as single messages.
    fn handle_frame(&mut self, payload: Bytes) -> Result<(), MessageError> {
        let wire = UpdateFrameWire::decode(payload).map_err(|e| {
            self.stats.rejected += 1;
            MessageError::Wire(e)
        })?;
        let mut resolved: Vec<(u32, f64)> = Vec::with_capacity(wire.entries.len());
        for e in &wire.entries {
            let Some(&slot) = self.tag_index.get(&e.tag) else {
                self.stats.rejected += 1;
                return Err(MessageError::UnknownTag(e.tag));
            };
            resolved.push((slot, e.value));
        }
        self.stats.received += resolved.len() as u64;
        for (slot, delta) in resolved {
            self.apply_slot(slot, delta);
        }
        Ok(())
    }

    /// Handles one compact frame: entries resolve by doc id through
    /// the doc index (all-or-nothing, like raw frames), then fold into
    /// `pending` in entry order with values widened `f32 → f64`.
    fn handle_compact(&mut self, payload: Bytes) -> Result<(), MessageError> {
        let wire = CompactFrameWire::decode(payload).map_err(|e| {
            self.stats.rejected += 1;
            MessageError::Wire(e)
        })?;
        let mut resolved: Vec<(u32, f64)> = Vec::with_capacity(wire.entries.len());
        for e in &wire.entries {
            let Some(&slot) = self.doc_index.get(&DocId(e.doc)) else {
                self.stats.rejected += 1;
                return Err(MessageError::UnknownGuid(Guid::for_document(DocId(e.doc))));
            };
            resolved.push((slot, f64::from(e.value)));
        }
        self.stats.received += resolved.len() as u64;
        for (slot, delta) in resolved {
            self.apply_slot(slot, delta);
        }
        Ok(())
    }

    /// Event-driven delivery: folds one wire payload in (exactly as
    /// [`PeerNode::handle_message`] would) and tracks the bounded
    /// un-stepped arrival depth. Returns [`DeliverStatus::Saturated`]
    /// once [`DEFAULT_INBOX_CAP`] payloads have arrived since the last
    /// step — the backpressure signal telling the event runtime to
    /// step this node immediately instead of letting its coalescing
    /// window stretch.
    pub fn on_deliver(&mut self, payload: Bytes) -> Result<DeliverStatus, MessageError> {
        self.handle_message(payload)?;
        self.arrivals_since_step += 1;
        self.stats.inbox_hwm = self.stats.inbox_hwm.max(self.arrivals_since_step as u64);
        if self.arrivals_since_step as usize >= DEFAULT_INBOX_CAP {
            Ok(DeliverStatus::Saturated)
        } else {
            Ok(DeliverStatus::Accepted)
        }
    }

    /// Payloads delivered through [`PeerNode::on_deliver`] since the
    /// last step.
    pub fn arrival_depth(&self) -> usize {
        self.arrivals_since_step as usize
    }

    /// Applies a local increment (same-peer updates and the insert /
    /// delete protocols use this path — no wire round trip).
    pub fn apply(&mut self, doc: DocId, delta: f64) {
        let slot = *self.doc_index.get(&doc).expect("document not stored here");
        self.apply_slot(slot, delta);
    }

    /// The slab-slot increment path shared by every apply route.
    fn apply_slot(&mut self, slot: u32, delta: f64) {
        let state = &mut self.slots[slot as usize];
        if !state.queued && delta != 0.0 {
            state.queued = true;
            self.dirty.push(slot);
        }
        state.pending += delta;
    }

    /// Whether this node has pending work (deferred documents count).
    pub fn has_work(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Takes this step's work from the dirty queue. Under
    /// [`SchedMode::Pass`] that is the whole queue; under
    /// [`SchedMode::Priority`] the highest-residual whole buckets
    /// meeting the budget, ordered highest bucket first (ties by slot)
    /// so flush buffers fill with high-value increments first; under
    /// [`SchedMode::Greedy`] the matching-pursuit prefix, already in
    /// score-descending order for the same flush-fill property.
    /// Deferred slots are parked in `scratch_deferred` with their
    /// pending mass untouched.
    fn take_step_work(&mut self) -> (Vec<u32>, SchedStats) {
        let mut work = std::mem::take(&mut self.dirty);
        if self.cfg.sched == SchedMode::Pass {
            let queued = work.len();
            return (work, SchedStats::full_sweep(queued));
        }
        // Canonical order: the selection must be a function of the
        // dirty *set*, not of arrival order (see sched module docs).
        work.sort_unstable();
        let mut deferred = std::mem::take(&mut self.scratch_deferred);
        let slots = &self.slots;
        let residual = |s: u32| {
            let d = &slots[s as usize];
            d.pending + d.rank - d.advertised
        };
        let sel = match self.cfg.sched {
            SchedMode::Pass => unreachable!("handled above"),
            SchedMode::Priority => {
                let mut scratch = std::mem::take(&mut self.scratch_buckets);
                let sel = partition_by_residual(&mut work, &mut deferred, &mut scratch, residual);
                work.sort_by_cached_key(|&s| (Reverse(residual_bucket(residual(s))), s));
                self.scratch_buckets = scratch;
                sel
            }
            SchedMode::Greedy => {
                let mut keys = std::mem::take(&mut self.scratch_keys);
                let sel = partition_by_greedy(&mut work, &mut deferred, &mut keys, residual, |s| {
                    slots[s as usize].out.len()
                });
                self.scratch_keys = keys;
                sel
            }
        };
        self.scratch_deferred = deferred;
        (work, sel)
    }

    /// One local pass: apply every selected pending increment, then
    /// emit updates for documents whose rank moved more than ε. Remote
    /// emissions accumulate in per-destination flush buffers
    /// (coalescing same-document increments) and leave in the outbox
    /// at pass end — one 24-byte message per coalesced entry in
    /// [`WireMode::Single`], packed multi-update frames in
    /// [`WireMode::Frames`]. Same-peer updates are applied directly
    /// (visible on the *next* step, matching the engine's two-phase
    /// pass).
    pub fn step(&mut self) {
        self.step_observed(&NOOP)
    }

    /// [`PeerNode::step`] recording telemetry: the flush-occupancy
    /// distribution (coalesced entries per destination buffer at flush
    /// time — the live view of how much aggregation is buying), the
    /// remote/local/frame counters, and under priority scheduling the
    /// queue-depth / deferral / budget series. With the no-op recorder
    /// this *is* `step` — the protocol state machine never sees `rec`.
    pub fn step_observed<R: Recorder + ?Sized>(&mut self, rec: &R) {
        if self.links_dirty {
            self.resolve_links();
        }
        self.arrivals_since_step = 0;
        let before = self.stats;
        let (work, sel) = self.take_step_work();
        if rec.enabled() && self.cfg.sched.is_selective() {
            rec.observe(Metric::SchedQueueDepth, sel.queued);
            rec.observe(Metric::SchedDeferredDocs, sel.deferred);
            rec.observe(
                Metric::SchedBudgetPermille,
                (sel.budget_hit * 1000.0) as u64,
            );
        }
        // Phase 1: apply.
        let mut senders: Vec<(u32, f64)> = Vec::new();
        for &slot in &work {
            let state = &mut self.slots[slot as usize];
            state.queued = false;
            let delta = std::mem::take(&mut state.pending);
            state.rank += delta;
            let rel =
                (state.rank - state.advertised).abs() / state.rank.abs().max(f64::MIN_POSITIVE);
            if rel > self.cfg.epsilon {
                senders.push((slot, state.rank));
            }
        }
        // Phase 2: send.
        for (slot, rank) in senders {
            let i = slot as usize;
            if self.slots[i].out.is_empty() {
                self.dangling_advertised += rank - self.slots[i].advertised;
                self.slots[i].advertised = rank;
                continue;
            }
            let send = self.cfg.damping * (rank - self.slots[i].advertised)
                / self.slots[i].out.len() as f64;
            self.slots[i].advertised = rank;
            let out = std::mem::take(&mut self.slots[i].out);
            for link in &out {
                if link.holder == self.id {
                    self.apply_slot(link.local_slot, send);
                    self.stats.local_updates += 1;
                } else {
                    let di = link.holder.index();
                    if di >= self.flush.len() {
                        self.flush.resize_with(di + 1, FlushBuffer::default);
                    }
                    let buf = &mut self.flush[di];
                    if buf.is_empty() {
                        self.flush_order.push(link.holder);
                    }
                    buf.push(link.target, send);
                    self.stats.emitted_remote += 1;
                }
            }
            self.slots[i].out = out;
        }
        // Deferred documents rejoin the queue behind any work phase 2
        // freshly produced; they kept `queued` and their pending mass.
        let mut deferred = std::mem::take(&mut self.scratch_deferred);
        self.dirty.append(&mut deferred);
        self.scratch_deferred = deferred;
        // Phase 3: flush-on-pass-end. Destinations leave in
        // first-touch order, entries within a destination in
        // first-emission order — the canonical fold order both wire
        // formats serialize.
        for dst in std::mem::take(&mut self.flush_order) {
            let buf = &mut self.flush[dst.index()];
            if rec.enabled() {
                rec.observe(Metric::FlushOccupancy, buf.len() as u64);
            }
            match self.wire {
                WireMode::Single => {
                    for frame in buf.flush(usize::MAX) {
                        self.stats.sent_remote += frame.updates.len() as u64;
                        for u in frame.updates {
                            self.outbox.push((dst, u.to_wire().encode()));
                        }
                    }
                }
                WireMode::Frames { max_frame_bytes } => {
                    for frame in buf.flush(max_frame_bytes) {
                        self.stats.sent_remote += frame.updates.len() as u64;
                        let payload = match self.codec {
                            WireCodec::Raw => frame.to_wire().encode(),
                            WireCodec::Compact => CompactFrameWire::new(
                                frame
                                    .updates
                                    .iter()
                                    .map(|u| CompactEntry {
                                        doc: u.doc.0,
                                        value: u.delta as f32,
                                    })
                                    .collect(),
                            )
                            .encode(),
                        };
                        self.outbox.push((dst, payload));
                        self.stats.frames_sent += 1;
                    }
                }
            }
        }
        if rec.enabled() {
            rec.counter_add(
                Metric::RemoteUpdates,
                self.stats.emitted_remote - before.emitted_remote,
            );
            rec.counter_add(
                Metric::LocalUpdates,
                self.stats.local_updates - before.local_updates,
            );
            rec.counter_add(
                Metric::FramesSent,
                self.stats.frames_sent - before.frames_sent,
            );
        }
    }

    /// Drains the outbox: `(destination peer, encoded message)` pairs.
    pub fn drain_outbox(&mut self) -> Vec<(PeerId, Bytes)> {
        std::mem::take(&mut self.outbox)
    }

    /// Exports every document's full protocol state and clears the
    /// node — the departing half of a document handoff (a peer that
    /// leaves the network for good pushes its documents, with their
    /// in-progress rank state, to their new DHT owners).
    pub fn export_documents(&mut self) -> Vec<DocExport> {
        self.dirty.clear();
        self.scratch_deferred.clear();
        self.doc_index.clear();
        self.guid_index.clear();
        self.tag_index.clear();
        self.slots
            .drain(..)
            .map(|s| DocExport {
                doc: s.doc,
                rank: s.rank,
                advertised: s.advertised,
                pending: s.pending,
                out: s.out.iter().map(|l| (l.target, l.holder)).collect(),
            })
            .collect()
    }

    /// Imports a migrated document, preserving its protocol state.
    ///
    /// # Panics
    ///
    /// Panics if the document is already stored here.
    pub fn import_document(&mut self, export: DocExport) {
        let DocExport {
            doc,
            rank,
            advertised,
            pending,
            out,
        } = export;
        let queued = pending != 0.0;
        let slot = self.insert_slot(DocState {
            doc,
            rank,
            advertised,
            pending,
            queued,
            out: out
                .into_iter()
                .map(|(target, holder)| OutLink {
                    target,
                    holder,
                    local_slot: REMOTE,
                })
                .collect(),
        });
        if queued {
            self.dirty.push(slot);
        }
    }

    /// Rewrites the holder of every out-link entry currently pointing
    /// at `departed` using `reassign`. Returns the number of entries
    /// updated. This is the address-cache refresh every remaining peer
    /// performs after a permanent departure (Sec. 3.2 invalidation +
    /// fresh lookup, done eagerly here).
    pub fn rehome_links(&mut self, departed: PeerId, reassign: &dyn Fn(DocId) -> PeerId) -> usize {
        let mut updated = 0;
        for state in &mut self.slots {
            for link in state.out.iter_mut() {
                if link.holder == departed {
                    link.holder = reassign(link.target);
                    updated += 1;
                }
            }
        }
        if updated > 0 {
            self.links_dirty = true;
        }
        updated
    }
}

/// A document's full protocol state in transit between peers.
#[derive(Debug, Clone)]
pub struct DocExport {
    /// The document.
    pub doc: DocId,
    /// Its current rank.
    pub rank: f64,
    /// The rank last advertised to its out-links.
    pub advertised: f64,
    /// Unapplied pending increment.
    pub pending: f64,
    /// Out-links with their holders.
    pub out: Vec<(DocId, PeerId)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::message::{RankUpdate, UpdateFrame};

    fn cfg(eps: f64) -> EngineConfig {
        EngineConfig::with_epsilon(eps)
    }

    #[test]
    fn add_and_query_documents() {
        let mut n = PeerNode::new(PeerId(0), cfg(1e-3));
        n.add_document(DocId(1), vec![(DocId(2), PeerId(1))]);
        assert_eq!(n.num_docs(), 1);
        assert_eq!(n.rank_of(DocId(1)), Some(0.0));
        assert_eq!(n.rank_of(DocId(9)), None);
        assert!(n.has_work(), "base rank is pending");
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_document_rejected() {
        let mut n = PeerNode::new(PeerId(0), cfg(1e-3));
        n.add_document(DocId(1), vec![]);
        n.add_document(DocId(1), vec![]);
    }

    #[test]
    fn step_applies_base_and_emits_wire_messages() {
        let mut n = PeerNode::new(PeerId(0), cfg(1e-6));
        n.add_document(DocId(1), vec![(DocId(2), PeerId(1)), (DocId(3), PeerId(0))]);
        n.add_document(DocId(3), vec![]);
        n.step();
        let r = n.rank_of(DocId(1)).unwrap();
        assert!((r - 0.15).abs() < 1e-12);
        let out = n.drain_outbox();
        assert_eq!(out.len(), 1, "one remote target");
        assert_eq!(out[0].0, PeerId(1));
        assert_eq!(out[0].1.len(), 24, "paper wire size");
        // The same-peer update landed on doc 3's pending.
        assert!(n.has_work());
        let s = n.stats();
        assert_eq!(s.sent_remote, 1);
        assert_eq!(s.local_updates, 1);
    }

    #[test]
    fn handle_message_applies_increment() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-6));
        n.add_document(DocId(2), vec![]);
        n.step(); // absorb base rank
        let wire = RankUpdate::new(DocId(2), 0.25).to_wire().encode();
        n.handle_message(wire).unwrap();
        assert!(n.has_work());
        n.step();
        let r = n.rank_of(DocId(2)).unwrap();
        assert!((r - 0.40).abs() < 1e-12);
        assert_eq!(n.stats().received, 1);
    }

    #[test]
    fn unknown_guid_rejected_and_counted() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-3));
        n.add_document(DocId(2), vec![]);
        let wire = RankUpdate::new(DocId(99), 0.25).to_wire().encode();
        assert!(n.handle_message(wire).is_err());
        assert_eq!(n.stats().rejected, 1);
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-3));
        assert!(n.handle_message(Bytes::from_static(b"junk")).is_err());
        assert_eq!(n.stats().rejected, 1);
    }

    #[test]
    fn frames_mode_coalesces_per_destination() {
        // Two docs on peer 0 both link to docs on peer 1, one of them
        // twice to the same target: one frame, coalesced entries.
        let mut n = PeerNode::with_wire(PeerId(0), cfg(1e-6), WireMode::frames());
        n.add_document(
            DocId(1),
            vec![(DocId(10), PeerId(1)), (DocId(11), PeerId(1))],
        );
        n.add_document(DocId(2), vec![(DocId(10), PeerId(1))]);
        n.step();
        let out = n.drain_outbox();
        assert_eq!(out.len(), 1, "one destination -> one frame");
        assert_eq!(out[0].0, PeerId(1));
        // Two coalesced entries (docs 10 and 11): 4 + 16*2 bytes.
        assert_eq!(out[0].1.len(), 4 + 16 * 2);
        let s = n.stats();
        assert_eq!(s.emitted_remote, 3, "logical updates, pre-coalescing");
        assert_eq!(s.sent_remote, 2, "coalesced entries on the wire");
        assert_eq!(s.frames_sent, 1);

        // The receiver resolves and folds both entries.
        let mut m = PeerNode::with_wire(PeerId(1), cfg(1e-6), WireMode::frames());
        m.add_document(DocId(10), vec![]);
        m.add_document(DocId(11), vec![]);
        m.step(); // absorb base
        let (r10, r11) = (m.rank_of(DocId(10)).unwrap(), m.rank_of(DocId(11)).unwrap());
        m.handle_message(out.into_iter().next().unwrap().1).unwrap();
        assert_eq!(m.stats().received, 2);
        m.step();
        // doc 10 got 0.85*0.15/2 (from doc 1) + 0.85*0.15 (from doc 2).
        let exp10 = 0.85 * 0.15 / 2.0 + 0.85 * 0.15;
        assert!((m.rank_of(DocId(10)).unwrap() - r10 - exp10).abs() < 1e-12);
        assert!((m.rank_of(DocId(11)).unwrap() - r11 - 0.85 * 0.15 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn frame_size_cap_splits_the_flush() {
        // Cap fits one entry per frame: two targets -> two frames.
        let mut n = PeerNode::with_wire(
            PeerId(0),
            cfg(1e-6),
            WireMode::Frames {
                max_frame_bytes: 20,
            },
        );
        n.add_document(
            DocId(1),
            vec![(DocId(10), PeerId(1)), (DocId(11), PeerId(1))],
        );
        n.step();
        let out = n.drain_outbox();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(p, b)| *p == PeerId(1) && b.len() == 20));
        assert_eq!(n.stats().frames_sent, 2);
    }

    #[test]
    fn frame_with_unknown_tag_is_rejected_atomically() {
        let mut n = PeerNode::with_wire(PeerId(1), cfg(1e-6), WireMode::frames());
        n.add_document(DocId(2), vec![]);
        n.step();
        let frame = UpdateFrame {
            updates: vec![
                RankUpdate::new(DocId(2), 0.5),
                RankUpdate::new(DocId(99), 0.5),
            ],
        };
        let err = n.handle_message(frame.to_wire().encode()).unwrap_err();
        assert!(matches!(err, MessageError::UnknownTag(_)));
        assert_eq!(n.stats().rejected, 1);
        assert!(!n.has_work(), "no entry applied from a bad frame");
    }

    #[test]
    fn single_mode_node_accepts_frames_too() {
        // Wire mode governs sending; any node can receive frames.
        let mut n = PeerNode::new(PeerId(1), cfg(1e-6));
        n.add_document(DocId(2), vec![]);
        n.step();
        let frame = UpdateFrame {
            updates: vec![RankUpdate::new(DocId(2), 0.25)],
        };
        n.handle_message(frame.to_wire().encode()).unwrap();
        n.step();
        assert!((n.rank_of(DocId(2)).unwrap() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn single_mode_coalesces_before_sending() {
        // Two docs linking the same remote target: one coalesced
        // 24-byte message, not two — aggregation is part of the
        // protocol in both wire modes, so ranks cannot depend on the
        // wire format.
        let mut n = PeerNode::new(PeerId(0), cfg(1e-6));
        n.add_document(DocId(1), vec![(DocId(10), PeerId(1))]);
        n.add_document(DocId(2), vec![(DocId(10), PeerId(1))]);
        n.step();
        let out = n.drain_outbox();
        assert_eq!(out.len(), 1, "coalesced into one single");
        assert_eq!(out[0].1.len(), 24);
        assert_eq!(n.stats().emitted_remote, 2, "logical updates still 2");
        assert_eq!(n.stats().sent_remote, 1, "one coalesced entry on the wire");
        assert_eq!(n.stats().frames_sent, 0);
        // The payload carries the sum of both contributions.
        let mut m = PeerNode::new(PeerId(1), cfg(1e-6));
        m.add_document(DocId(10), vec![]);
        m.step();
        m.handle_message(out.into_iter().next().unwrap().1).unwrap();
        m.step();
        let exp = 0.85 * 0.15 + 0.85 * 0.15;
        assert!((m.rank_of(DocId(10)).unwrap() - 0.15 - exp).abs() < 1e-12);
    }

    #[test]
    fn on_deliver_saturates_at_the_inbox_cap_and_steps_reset_it() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-6));
        n.add_document(DocId(2), vec![]);
        n.step(); // absorb base
        for i in 0..DEFAULT_INBOX_CAP {
            let wire = RankUpdate::new(DocId(2), 1e-3).to_wire().encode();
            let status = n.on_deliver(wire).unwrap();
            if i + 1 < DEFAULT_INBOX_CAP {
                assert_eq!(status, DeliverStatus::Accepted, "arrival {i}");
            } else {
                assert_eq!(status, DeliverStatus::Saturated, "arrival {i}");
            }
        }
        assert_eq!(n.arrival_depth(), DEFAULT_INBOX_CAP);
        n.step();
        assert_eq!(n.arrival_depth(), 0, "step resets the arrival bound");
        let wire = RankUpdate::new(DocId(2), 1e-3).to_wire().encode();
        assert_eq!(n.on_deliver(wire).unwrap(), DeliverStatus::Accepted);
        // Every delivery was folded in: received counts all of them.
        assert_eq!(n.stats().received, DEFAULT_INBOX_CAP as u64 + 1);
    }

    #[test]
    fn epsilon_suppresses_tiny_changes() {
        let mut n = PeerNode::new(PeerId(0), cfg(0.5));
        n.add_document(DocId(1), vec![(DocId(2), PeerId(1))]);
        n.step(); // rel change = 1 > 0.5: sends
        assert_eq!(n.drain_outbox().len(), 1);
        // A tiny further increment: rel << 0.5, no send.
        n.apply(DocId(1), 1e-6);
        n.step();
        assert!(n.drain_outbox().is_empty());
    }

    #[test]
    fn exact_cancellation_does_not_duplicate_queue_entries() {
        // pending returns to exactly 0.0 while queued; a later apply
        // must not enqueue the slot a second time.
        let mut n = PeerNode::new(PeerId(0), cfg(1e-6));
        n.add_document(DocId(1), vec![]);
        n.apply(DocId(1), -(1.0 - 0.85)); // cancels the seeded base exactly
        n.apply(DocId(1), 0.25);
        n.step();
        assert!(!n.has_work());
        assert!((n.rank_of(DocId(1)).unwrap() - 0.25).abs() < 1e-15);
    }

    fn priority_cfg(eps: f64) -> EngineConfig {
        EngineConfig::with_epsilon(eps).with_sched(SchedMode::Priority)
    }

    #[test]
    fn priority_step_defers_low_residual_docs() {
        // 200 isolated docs with geometrically spread extra pending:
        // one step over the bypass threshold must select the heavy
        // buckets and park the tail with its mass intact.
        let mut n = PeerNode::new(PeerId(0), priority_cfg(1e-12));
        for i in 0..200u32 {
            n.add_document(DocId(i), vec![]);
        }
        n.step(); // absorb the uniform base rank
        assert!(!n.has_work());
        for i in 0..200u32 {
            n.apply(DocId(i), 2.0f64.powi(-(i as i32 % 24)));
        }
        let mass_before: f64 = (0..200u32)
            .map(|i| 2.0f64.powi(-(i as i32 % 24)) + 0.15)
            .sum();
        n.step();
        assert!(n.has_work(), "low buckets deferred past the first step");
        // Deferred mass is never lost: keep stepping until quiescent
        // and every doc ends at base + its injected increment.
        let mut steps = 0;
        while n.has_work() {
            n.step();
            steps += 1;
            assert!(steps < 100, "priority steps must drain the queue");
        }
        let mass_after: f64 = (0..200u32).map(|i| n.rank_of(DocId(i)).unwrap()).sum();
        assert!((mass_after - mass_before).abs() < 1e-9, "mass conserved");
    }

    #[test]
    fn priority_flush_fills_highest_residual_first() {
        // 100 remote-linking docs, one with a much larger residual:
        // the first payload out must carry that doc's update.
        let mut n = PeerNode::new(PeerId(0), priority_cfg(1e-12));
        for i in 0..100u32 {
            n.add_document(DocId(i), vec![(DocId(1000 + i), PeerId(1))]);
        }
        n.apply(DocId(42), 64.0);
        n.step();
        let out = n.drain_outbox();
        assert!(!out.is_empty());
        let wire = RankUpdateWire::decode(out[0].1.clone()).unwrap();
        assert_eq!(
            wire.guid,
            Guid::for_document(DocId(1042)).0,
            "highest-residual doc flushes first"
        );
    }

    #[test]
    fn priority_import_preserves_deferred_pending() {
        // Export mid-computation (deferred docs have pending mass) and
        // import elsewhere: the pending survives and re-queues.
        let mut n = PeerNode::new(PeerId(0), priority_cfg(1e-12));
        for i in 0..100u32 {
            n.add_document(DocId(i), vec![]);
        }
        n.apply(DocId(7), 32.0);
        n.step();
        assert!(n.has_work());
        let exports = n.export_documents();
        assert_eq!(n.num_docs(), 0);
        assert!(!n.has_work());
        let carried: f64 = exports.iter().map(|e| e.pending).sum();
        assert!(carried > 0.0, "deferred pending travels with the export");
        let mut m = PeerNode::new(PeerId(1), priority_cfg(1e-12));
        for e in exports {
            m.import_document(e);
        }
        assert!(m.has_work());
        while m.has_work() {
            m.step();
        }
        assert!((m.rank_of(DocId(7)).unwrap() - 32.15).abs() < 1e-9);
    }
}
