//! A single peer as a protocol state machine.
//!
//! A [`PeerNode`] owns a set of documents, knows each document's
//! out-links and which peer holds each linked document (resolved once
//! through the DHT, then cached — Sec. 3.2), and speaks the paper's
//! wire protocol: incoming messages are 24-byte `(GUID, f64)` rank
//! updates; outgoing messages are the same. The node is completely
//! ignorant of any global state — everything it does is local, which
//! is the property that makes the algorithm deployable.

use bytes::Bytes;
use dpr_core::engine::EngineConfig;
use dpr_core::message::{MessageError, RankUpdate};
use dpr_graph::DocId;
use dpr_p2p::guid::Guid;
use dpr_p2p::peer::PeerId;
use dpr_p2p::transport::RankUpdateWire;
use std::collections::HashMap;

/// Per-document protocol state.
#[derive(Debug, Clone)]
struct DocState {
    rank: f64,
    advertised: f64,
    pending: f64,
    /// Out-links with the peer holding each target (the address cache
    /// entry of Sec. 3.2, resolved at setup).
    out: Vec<(DocId, PeerId)>,
}

/// Counters a node keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct NodeStats {
    /// Wire messages received and applied.
    pub received: u64,
    /// Wire messages emitted to other peers.
    pub sent_remote: u64,
    /// Same-peer link updates (no wire message).
    pub local_updates: u64,
    /// Messages that failed to decode or referenced unknown GUIDs.
    pub rejected: u64,
}

/// One peer of the P2P system, executing Fig. 1 locally.
#[derive(Debug, Clone)]
pub struct PeerNode {
    id: PeerId,
    cfg: EngineConfig,
    docs: HashMap<DocId, DocState>,
    guid_index: HashMap<Guid, DocId>,
    /// Documents with nonzero pending, processed on the next step.
    dirty: Vec<DocId>,
    outbox: Vec<(PeerId, Bytes)>,
    stats: NodeStats,
}

impl PeerNode {
    /// A node with no documents.
    pub fn new(id: PeerId, cfg: EngineConfig) -> Self {
        PeerNode {
            id,
            cfg,
            docs: HashMap::new(),
            guid_index: HashMap::new(),
            dirty: Vec::new(),
            outbox: Vec::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Number of documents stored here.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// The node's counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Adds a document this peer stores, with its out-links and their
    /// holders. Seeds the base rank `(1 − d)` as the initial pending
    /// increment, as the engine does.
    ///
    /// # Panics
    ///
    /// Panics if the document is already stored here.
    pub fn add_document(&mut self, doc: DocId, out: Vec<(DocId, PeerId)>) {
        let base = 1.0 - self.cfg.damping;
        let prev = self.docs.insert(
            doc,
            DocState {
                rank: 0.0,
                advertised: 0.0,
                pending: base,
                out,
            },
        );
        assert!(
            prev.is_none(),
            "document {doc} already stored on {}",
            self.id
        );
        self.guid_index.insert(Guid::for_document(doc), doc);
        self.dirty.push(doc);
    }

    /// Current rank of a local document, if stored here.
    pub fn rank_of(&self, doc: DocId) -> Option<f64> {
        self.docs.get(&doc).map(|d| d.rank)
    }

    /// Handles one incoming wire message.
    pub fn handle_message(&mut self, payload: Bytes) -> Result<(), MessageError> {
        let wire = RankUpdateWire::decode(payload).map_err(|e| {
            self.stats.rejected += 1;
            MessageError::Wire(e)
        })?;
        let update = RankUpdate::from_wire(wire, |g| self.guid_index.get(&g).copied())
            .inspect_err(|_| self.stats.rejected += 1)?;
        self.apply(update.doc, update.delta);
        self.stats.received += 1;
        Ok(())
    }

    /// Applies a local increment (same-peer updates and the insert /
    /// delete protocols use this path — no wire round trip).
    pub fn apply(&mut self, doc: DocId, delta: f64) {
        let state = self.docs.get_mut(&doc).expect("document not stored here");
        if state.pending == 0.0 && delta != 0.0 {
            self.dirty.push(doc);
        }
        state.pending += delta;
    }

    /// Whether this node has pending work.
    pub fn has_work(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// One local pass: apply every pending increment, then emit
    /// updates for documents whose rank moved more than ε. Encoded
    /// remote messages accumulate in the outbox; same-peer updates are
    /// applied directly (visible on the *next* step, matching the
    /// engine's two-phase pass).
    pub fn step(&mut self) {
        let work = std::mem::take(&mut self.dirty);
        // Phase 1: apply.
        let mut senders: Vec<(DocId, f64)> = Vec::new();
        for doc in work {
            let state = self.docs.get_mut(&doc).expect("dirty doc stored here");
            let delta = std::mem::take(&mut state.pending);
            state.rank += delta;
            let rel =
                (state.rank - state.advertised).abs() / state.rank.abs().max(f64::MIN_POSITIVE);
            if rel > self.cfg.epsilon {
                senders.push((doc, state.rank));
            }
        }
        // Phase 2: send.
        for (doc, rank) in senders {
            let state = self.docs.get_mut(&doc).expect("sender stored here");
            if state.out.is_empty() {
                state.advertised = rank;
                continue;
            }
            let send = self.cfg.damping * (rank - state.advertised) / state.out.len() as f64;
            state.advertised = rank;
            let targets = state.out.clone();
            for (target, holder) in targets {
                if holder == self.id {
                    self.apply(target, send);
                    self.stats.local_updates += 1;
                } else {
                    let wire = RankUpdate::new(target, send).to_wire().encode();
                    self.outbox.push((holder, wire));
                    self.stats.sent_remote += 1;
                }
            }
        }
    }

    /// Drains the outbox: `(destination peer, encoded message)` pairs.
    pub fn drain_outbox(&mut self) -> Vec<(PeerId, Bytes)> {
        std::mem::take(&mut self.outbox)
    }

    /// Exports every document's full protocol state and clears the
    /// node — the departing half of a document handoff (a peer that
    /// leaves the network for good pushes its documents, with their
    /// in-progress rank state, to their new DHT owners).
    pub fn export_documents(&mut self) -> Vec<DocExport> {
        self.dirty.clear();
        self.guid_index.clear();
        self.docs
            .drain()
            .map(|(doc, s)| DocExport {
                doc,
                rank: s.rank,
                advertised: s.advertised,
                pending: s.pending,
                out: s.out,
            })
            .collect()
    }

    /// Imports a migrated document, preserving its protocol state.
    ///
    /// # Panics
    ///
    /// Panics if the document is already stored here.
    pub fn import_document(&mut self, export: DocExport) {
        let DocExport {
            doc,
            rank,
            advertised,
            pending,
            out,
        } = export;
        let prev = self.docs.insert(
            doc,
            DocState {
                rank,
                advertised,
                pending,
                out,
            },
        );
        assert!(
            prev.is_none(),
            "document {doc} already stored on {}",
            self.id
        );
        self.guid_index.insert(Guid::for_document(doc), doc);
        if self.docs[&doc].pending != 0.0 {
            self.dirty.push(doc);
        }
    }

    /// Rewrites the holder of every out-link entry currently pointing
    /// at `departed` using `reassign`. Returns the number of entries
    /// updated. This is the address-cache refresh every remaining peer
    /// performs after a permanent departure (Sec. 3.2 invalidation +
    /// fresh lookup, done eagerly here).
    pub fn rehome_links(&mut self, departed: PeerId, reassign: &dyn Fn(DocId) -> PeerId) -> usize {
        let mut updated = 0;
        for state in self.docs.values_mut() {
            for (target, holder) in state.out.iter_mut() {
                if *holder == departed {
                    *holder = reassign(*target);
                    updated += 1;
                }
            }
        }
        updated
    }
}

/// A document's full protocol state in transit between peers.
#[derive(Debug, Clone)]
pub struct DocExport {
    /// The document.
    pub doc: DocId,
    /// Its current rank.
    pub rank: f64,
    /// The rank last advertised to its out-links.
    pub advertised: f64,
    /// Unapplied pending increment.
    pub pending: f64,
    /// Out-links with their holders.
    pub out: Vec<(DocId, PeerId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(eps: f64) -> EngineConfig {
        EngineConfig::with_epsilon(eps)
    }

    #[test]
    fn add_and_query_documents() {
        let mut n = PeerNode::new(PeerId(0), cfg(1e-3));
        n.add_document(DocId(1), vec![(DocId(2), PeerId(1))]);
        assert_eq!(n.num_docs(), 1);
        assert_eq!(n.rank_of(DocId(1)), Some(0.0));
        assert_eq!(n.rank_of(DocId(9)), None);
        assert!(n.has_work(), "base rank is pending");
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_document_rejected() {
        let mut n = PeerNode::new(PeerId(0), cfg(1e-3));
        n.add_document(DocId(1), vec![]);
        n.add_document(DocId(1), vec![]);
    }

    #[test]
    fn step_applies_base_and_emits_wire_messages() {
        let mut n = PeerNode::new(PeerId(0), cfg(1e-6));
        n.add_document(DocId(1), vec![(DocId(2), PeerId(1)), (DocId(3), PeerId(0))]);
        n.add_document(DocId(3), vec![]);
        n.step();
        let r = n.rank_of(DocId(1)).unwrap();
        assert!((r - 0.15).abs() < 1e-12);
        let out = n.drain_outbox();
        assert_eq!(out.len(), 1, "one remote target");
        assert_eq!(out[0].0, PeerId(1));
        assert_eq!(out[0].1.len(), 24, "paper wire size");
        // The same-peer update landed on doc 3's pending.
        assert!(n.has_work());
        let s = n.stats();
        assert_eq!(s.sent_remote, 1);
        assert_eq!(s.local_updates, 1);
    }

    #[test]
    fn handle_message_applies_increment() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-6));
        n.add_document(DocId(2), vec![]);
        n.step(); // absorb base rank
        let wire = RankUpdate::new(DocId(2), 0.25).to_wire().encode();
        n.handle_message(wire).unwrap();
        assert!(n.has_work());
        n.step();
        let r = n.rank_of(DocId(2)).unwrap();
        assert!((r - 0.40).abs() < 1e-12);
        assert_eq!(n.stats().received, 1);
    }

    #[test]
    fn unknown_guid_rejected_and_counted() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-3));
        n.add_document(DocId(2), vec![]);
        let wire = RankUpdate::new(DocId(99), 0.25).to_wire().encode();
        assert!(n.handle_message(wire).is_err());
        assert_eq!(n.stats().rejected, 1);
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut n = PeerNode::new(PeerId(1), cfg(1e-3));
        assert!(n.handle_message(Bytes::from_static(b"junk")).is_err());
        assert_eq!(n.stats().rejected, 1);
    }

    #[test]
    fn epsilon_suppresses_tiny_changes() {
        let mut n = PeerNode::new(PeerId(0), cfg(0.5));
        n.add_document(DocId(1), vec![(DocId(2), PeerId(1))]);
        n.step(); // rel change = 1 > 0.5: sends
        assert_eq!(n.drain_outbox().len(), 1);
        // A tiny further increment: rel << 0.5, no send.
        n.apply(DocId(1), 1e-6);
        n.step();
        assert!(n.drain_outbox().is_empty());
    }
}
