//! Distributed termination detection (Safra's algorithm).
//!
//! The paper's convergence criterion — "the error in all the documents
//! is less than the error threshold" — is a *global* condition, but no
//! peer in a real P2P deployment can observe global state. The
//! simulator checks quiescence by inspecting every queue (fine for
//! experiments, impossible in production). This module supplies the
//! missing protocol: **Safra's token-based termination detection** for
//! asynchronous message-passing systems.
//!
//! The classical algorithm, adapted to the cluster's round structure:
//!
//! * every peer keeps a message counter (`sent − received`) and a
//!   color — it turns **black** when it receives a message;
//! * a token `(accumulated count, color)` circulates the ring; a peer
//!   forwards it only when *locally passive* (no pending documents),
//!   adding its counter, blackening the token if it is black itself,
//!   and turning white afterwards;
//! * when the initiator gets the token back **white** with **total
//!   count zero** while itself passive and white, no message is in
//!   flight anywhere and every peer is passive — the computation has
//!   terminated. Otherwise it launches a fresh round.
//!
//! Soundness (never announces early) and liveness (announces once the
//! system quiesces) are asserted against the cluster's global
//! quiescence check in the tests.

use crate::cluster::Cluster;
use dpr_p2p::peer::{PeerId, PeerTable};
use dpr_telemetry::{Event, Recorder, NOOP};

/// Peer color in Safra's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    White,
    Black,
}

/// The circulating token.
#[derive(Debug, Clone, Copy)]
struct Token {
    /// Sum of `sent − received` counters collected this circuit.
    count: i64,
    color: Color,
}

/// Safra's termination detector over a cluster's peers.
#[derive(Debug)]
pub struct TerminationDetector {
    /// Per-peer color.
    color: Vec<Color>,
    /// Receive-counter snapshot used to detect new arrivals (which
    /// blacken a peer).
    last_received: Vec<u64>,
    /// Who currently holds the token.
    holder: PeerId,
    token: Token,
    /// The initiating peer (owns announcement).
    initiator: PeerId,
    announced: bool,
    /// Completed token circuits (diagnostic).
    circuits: u64,
    /// Permanently departed peers — skipped by the ring.
    departed: Vec<bool>,
    /// Final `sent − received` contribution of departed peers, folded
    /// into every evaluation (their counters can no longer be read in
    /// circuit).
    base_count: i64,
}

impl TerminationDetector {
    /// A detector for `num_peers` peers, initiated by peer 0.
    pub fn new(num_peers: usize) -> Self {
        assert!(num_peers > 0);
        TerminationDetector {
            // Everyone starts black: no information yet.
            color: vec![Color::Black; num_peers],
            last_received: vec![0; num_peers],
            holder: PeerId(0),
            token: Token {
                count: 0,
                color: Color::Black,
            },
            initiator: PeerId(0),
            announced: false,
            circuits: 0,
            departed: vec![false; num_peers],
            base_count: 0,
        }
    }

    /// Registers the *permanent* departure of `p` (after
    /// [`Cluster::peer_depart`]): its message counters are folded into
    /// the detector's base count, the token is conservatively
    /// blackened (messages may still be crossing the cut), and the
    /// ring skips the peer from now on. Without this, the token would
    /// wait forever for a holder that never returns.
    pub fn peer_departed(&mut self, p: PeerId, cluster: &Cluster) {
        assert!(!self.departed[p.index()], "peer {p} departed twice");
        let stats = cluster.node(p).stats();
        // The peer's lifetime counter can never be collected in
        // circuit again; carry it permanently.
        self.base_count += stats.sent_remote as i64 - stats.received as i64;
        self.departed[p.index()] = true;
        self.token.color = Color::Black;
        let n = self.departed.len();
        if self.departed[self.holder.index()] {
            self.holder = self.next_alive(self.holder, n);
        }
        if self.departed[self.initiator.index()] {
            self.initiator = self.next_alive(self.initiator, n);
            // The new initiator must complete a fresh circuit.
            self.token = Token {
                count: 0,
                color: Color::Black,
            };
        }
    }

    fn next_alive(&self, from: PeerId, n: usize) -> PeerId {
        let mut i = (from.index() + 1) % n;
        while self.departed[i] {
            i = (i + 1) % n;
            assert_ne!(i, from.index(), "every peer departed");
        }
        PeerId(i as u32)
    }

    /// Whether termination has been announced.
    pub fn announced(&self) -> bool {
        self.announced
    }

    /// Token circuits completed so far.
    pub fn circuits(&self) -> u64 {
        self.circuits
    }

    /// Records message activity for `peer` (call after each cluster
    /// round with the node's cumulative counters): any newly received
    /// message blackens the peer.
    fn refresh_color(&mut self, peer: PeerId, received_total: u64) {
        if received_total > self.last_received[peer.index()] {
            self.color[peer.index()] = Color::Black;
        }
    }

    /// Advances the token as far as it can travel: each online,
    /// locally passive holder processes it and forwards to the next
    /// peer on the ring. Stops when the holder is offline or busy, or
    /// when termination is announced. Call between cluster rounds.
    pub fn advance(&mut self, cluster: &Cluster, peers: &PeerTable) {
        self.advance_observed(cluster, peers, &NOOP, 0)
    }

    /// [`TerminationDetector::advance`] recording telemetry: one
    /// [`Event::TerminationProbe`] per initiator evaluation, carrying
    /// the token state and the detector's view of the Safra invariant
    /// Σ sent − Σ received (0 exactly when nothing is in flight).
    /// `round` labels the probes with the caller's round counter.
    pub fn advance_observed<R: Recorder + ?Sized>(
        &mut self,
        cluster: &Cluster,
        peers: &PeerTable,
        rec: &R,
        round: u64,
    ) {
        if self.announced {
            return;
        }
        let n = cluster.num_peers();
        // Refresh colors from receive counters first.
        for i in 0..n {
            if self.departed[i] {
                continue;
            }
            let stats = cluster.node(PeerId(i as u32)).stats();
            self.refresh_color(PeerId(i as u32), stats.received);
        }
        // The token can traverse at most one full ring per advance
        // call (prevents infinite spinning when the system is active).
        for _ in 0..=n {
            let h = self.holder;
            if !peers.is_online(h) || cluster.node(h).has_work() {
                // Holder offline or busy: token waits.
                return;
            }
            // Safra uses each peer's *lifetime* message counter; a
            // delta-based variant would wrongly see zero for messages
            // that are parked but unchanged across a circuit.
            let stats = cluster.node(h).stats();
            self.last_received[h.index()] = stats.received;
            let local_count = stats.sent_remote as i64 - stats.received as i64;

            if h == self.initiator && self.circuits > 0 {
                // Token returned to the initiator: evaluate.
                let total = self.token.count + local_count + self.base_count;
                let all_white =
                    self.token.color == Color::White && self.color[h.index()] == Color::White;
                let announce = all_white && total == 0;
                if rec.enabled() {
                    // The detector's ground-truth invariant: lifetime
                    // Σ sent − Σ received over every live peer plus
                    // the folded-in counters of departed ones.
                    let invariant: i64 = self.base_count
                        + (0..n)
                            .filter(|&i| !self.departed[i])
                            .map(|i| {
                                let s = cluster.node(PeerId(i as u32)).stats();
                                s.sent_remote as i64 - s.received as i64
                            })
                            .sum::<i64>();
                    rec.event(&Event::TerminationProbe {
                        round,
                        circuits: self.circuits,
                        token_count: total,
                        token_black: self.token.color == Color::Black,
                        announced: announce,
                        invariant,
                    });
                }
                if announce {
                    self.announced = true;
                    return;
                }
                // Failed circuit: start a fresh one.
                self.token = Token {
                    count: 0,
                    color: Color::White,
                };
                self.color[h.index()] = Color::White;
                self.circuits += 1;
                self.holder = self.next_alive(h, n);
                continue;
            }

            // Ordinary forwarding.
            self.token.count += local_count;
            if self.color[h.index()] == Color::Black {
                self.token.color = Color::Black;
            }
            self.color[h.index()] = Color::White;
            let next = self.next_alive(h, n);
            if next == self.initiator {
                self.circuits += 1;
            }
            self.holder = next;
        }
    }
}

/// Runs the cluster with Safra-based termination: rounds proceed until
/// the *protocol* announces termination (or `max_rounds`). Returns
/// `(rounds, announced)`. No global state is consulted for the
/// decision — only the detector.
pub fn run_with_termination_detection(
    cluster: &mut Cluster,
    peers: &mut PeerTable,
    max_rounds: usize,
) -> (usize, bool) {
    run_with_termination_detection_observed(cluster, peers, max_rounds, &NOOP)
}

/// [`run_with_termination_detection`] recording telemetry: observed
/// cluster rounds plus one termination probe per token evaluation.
pub fn run_with_termination_detection_observed<R: Recorder + ?Sized>(
    cluster: &mut Cluster,
    peers: &mut PeerTable,
    max_rounds: usize,
    rec: &R,
) -> (usize, bool) {
    let mut detector = TerminationDetector::new(cluster.num_peers());
    let mut rounds = 0;
    while rounds < max_rounds && !detector.announced() {
        cluster.round_observed(peers, None, rec);
        rounds += 1;
        detector.advance_observed(cluster, peers, rec, rounds as u64);
    }
    (rounds, detector.announced())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::engine::EngineConfig;
    use dpr_graph::powerlaw::paper_graph;
    use dpr_p2p::peer::{Placement, PlacementPolicy};
    use dpr_p2p::ring::Ring;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(nodes: usize, num_peers: usize, eps: f64, seed: u64) -> Cluster {
        let graph = paper_graph(nodes, seed);
        let ring = Ring::with_peers(num_peers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let placement = Placement::assign(nodes, &ring, PlacementPolicy::Random, &mut rng);
        Cluster::build(
            &graph,
            &placement,
            num_peers,
            EngineConfig::with_epsilon(eps),
        )
    }

    #[test]
    fn detector_announces_and_is_sound() {
        let mut cluster = build(600, 12, 1e-5, 101);
        let mut peers = PeerTable::new(12);
        let (rounds, announced) = run_with_termination_detection(&mut cluster, &mut peers, 50_000);
        assert!(announced, "no announcement in {rounds} rounds");
        // Soundness: the protocol may only announce when the system is
        // actually quiescent.
        assert!(cluster.is_quiescent(), "announced while messages in flight");
    }

    #[test]
    fn detector_is_not_premature() {
        // While the computation is still hot, the detector must stay
        // silent even across many token circuits.
        let mut cluster = build(2_000, 8, 1e-9, 102);
        let peers = PeerTable::new(8);
        let mut detector = TerminationDetector::new(8);
        for _ in 0..5 {
            cluster.round(&peers);
            detector.advance(&cluster, &peers);
            if !cluster.is_quiescent() {
                assert!(!detector.announced(), "premature announcement");
            }
        }
    }

    #[test]
    fn announcement_survives_churn() {
        let mut cluster = build(400, 6, 1e-4, 103);
        let mut peers = PeerTable::new(6);
        let mut detector = TerminationDetector::new(6);
        let mut rng = ChaCha8Rng::seed_from_u64(104);
        let mut rounds = 0;
        // Churn for a while, then let everyone back on so the token
        // can finish its circuits.
        while rounds < 50_000 && !detector.announced() {
            cluster.round(&peers);
            rounds += 1;
            if rounds < 100 {
                peers.set_online_fraction(0.5, &mut rng);
            } else if rounds == 100 {
                (0..6u32).for_each(|p| {
                    peers.go_online(dpr_p2p::peer::PeerId(p));
                });
            }
            detector.advance(&cluster, &peers);
        }
        assert!(detector.announced(), "no announcement in {rounds} rounds");
        assert!(cluster.is_quiescent());
        assert!(detector.circuits() >= 1);
    }

    #[test]
    fn detection_survives_permanent_departure() {
        use dpr_p2p::guid::Guid;
        use dpr_p2p::ring::Ring;
        let mut cluster = build(400, 8, 1e-5, 106);
        let mut peers = PeerTable::new(8);
        let mut detector = TerminationDetector::new(8);
        let ring = Ring::with_peers(8);
        let mut rounds = 0usize;
        while rounds < 50_000 && !detector.announced() {
            cluster.round(&peers);
            rounds += 1;
            if rounds == 5 {
                let victim = dpr_p2p::peer::PeerId(3);
                peers.go_offline(victim);
                let mut shrunk = ring.clone();
                shrunk.leave(victim);
                cluster.peer_depart(victim, &peers, &|d| shrunk.successor(Guid::for_document(d)));
                detector.peer_departed(victim, &cluster);
            }
            detector.advance(&cluster, &peers);
        }
        assert!(detector.announced(), "no announcement in {rounds} rounds");
        assert!(cluster.is_quiescent(), "announcement must be sound");
    }

    #[test]
    fn probes_carry_a_sound_invariant() {
        use dpr_telemetry::{Event, TraceRecorder};
        let mut cluster = build(500, 10, 1e-5, 107);
        let mut peers = PeerTable::new(10);
        let rec = TraceRecorder::new();
        let (rounds, announced) =
            run_with_termination_detection_observed(&mut cluster, &mut peers, 50_000, &rec);
        assert!(announced, "no announcement in {rounds} rounds");
        let probes: Vec<_> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::TerminationProbe {
                    token_count,
                    announced,
                    invariant,
                    ..
                } => Some((token_count, announced, invariant)),
                _ => None,
            })
            .collect();
        assert!(!probes.is_empty(), "every evaluation emits a probe");
        // Exactly the last probe announces, with both the token total
        // and the ground-truth invariant at zero.
        let (count, ann, inv) = *probes.last().unwrap();
        assert!(ann && count == 0 && inv == 0, "{probes:?}");
        for &(_, ann, _) in &probes[..probes.len() - 1] {
            assert!(!ann);
        }
    }

    #[test]
    fn offline_holder_stalls_the_token() {
        let mut cluster = build(200, 4, 1e-3, 105);
        let mut peers = PeerTable::new(4);
        // Quiesce the computation first.
        let (_, ok) = cluster.run_to_convergence(&mut peers, 10_000, None);
        assert!(ok);
        // Token starts at peer 0; take peer 0 offline — detection
        // cannot proceed.
        peers.go_offline(dpr_p2p::peer::PeerId(0));
        let mut detector = TerminationDetector::new(4);
        for _ in 0..10 {
            detector.advance(&cluster, &peers);
        }
        assert!(!detector.announced(), "token must wait for its holder");
        // Holder returns: detection completes.
        peers.go_online(dpr_p2p::peer::PeerId(0));
        for _ in 0..10 {
            detector.advance(&cluster, &peers);
        }
        assert!(detector.announced());
    }
}
