//! Boolean multi-word query execution with traffic accounting.
//!
//! Two strategies are implemented over the distributed index:
//!
//! * **Baseline** (paper's comparison system, Sec. 4.9): there are no
//!   pageranks, so the peer owning the first term's index entry ships
//!   its *entire* hit list to the peer owning the second term, which
//!   intersects and ships the whole result onward, and the final
//!   result set is shipped back to the querying user. Traffic is the
//!   total number of document ids moved between peers (and to the
//!   user), exactly the paper's metric.
//!
//! * **Incremental** (paper Sec. 2.4.3): each hop sorts its current
//!   hit set by pagerank and forwards only the top x %. "When the top
//!   x% of the documents falls below a threshold (we used 20), then
//!   all the results are forwarded along" — reproduced verbatim,
//!   including the artifact it causes in Table 6 (top-20 % can return
//!   *fewer* 3-word hits than top-10 %).
//!
//! The paper's evaluation "assumed that each search term in the query
//! was always present in a different peer", making every hop a remote
//! transfer; [`TrafficModel`] lets you keep that assumption or charge
//! only true cross-peer hops.

use crate::{index::DistributedIndex, index::Posting, TermId};
use serde::Serialize;

/// A boolean AND query over distinct terms.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Query {
    /// The query terms, in routing order.
    pub terms: Vec<TermId>,
}

impl Query {
    /// Creates a query.
    ///
    /// # Panics
    ///
    /// Panics if empty or containing duplicate terms.
    pub fn new(terms: Vec<TermId>) -> Self {
        assert!(!terms.is_empty(), "empty query");
        let mut d = terms.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), terms.len(), "duplicate query terms");
        Query { terms }
    }
}

/// How inter-hop transfers are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TrafficModel {
    /// Every hop crosses peers (the paper's assumption).
    AllHopsRemote,
    /// Hops between entries co-located on the same peer are free.
    ChargeCrossPeerOnly,
}

/// Tuning of the incremental algorithm.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IncrementalConfig {
    /// Fraction of hits forwarded at each hop (paper: 0.10 and 0.20).
    pub forward_fraction: f64,
    /// If the top x % would be fewer than this many documents, *all*
    /// hits are forwarded instead (paper: 20).
    pub min_forward: usize,
    /// Transfer charging model.
    pub traffic: TrafficModel,
}

impl IncrementalConfig {
    /// The paper's top-10 % configuration.
    pub fn top10() -> Self {
        IncrementalConfig {
            forward_fraction: 0.10,
            min_forward: 20,
            traffic: TrafficModel::AllHopsRemote,
        }
    }

    /// The paper's top-20 % configuration.
    pub fn top20() -> Self {
        IncrementalConfig {
            forward_fraction: 0.20,
            min_forward: 20,
            traffic: TrafficModel::AllHopsRemote,
        }
    }
}

/// Result of executing one query.
#[derive(Debug, Clone, Serialize)]
pub struct SearchOutcome {
    /// Document ids transferred between peers plus the final transfer
    /// to the user — the paper's traffic metric.
    pub traffic_ids: u64,
    /// Ids moved at each hop (last entry = result returned to user).
    pub per_hop_ids: Vec<u64>,
    /// The documents returned to the user, best pagerank first.
    pub hits: Vec<Posting>,
}

impl SearchOutcome {
    /// Number of hits returned to the user.
    pub fn hits_returned(&self) -> usize {
        self.hits.len()
    }
}

/// Intersects `current` (sorted by rank desc) with the posting list of
/// `term`, keeping `current`'s rank ordering.
fn intersect(current: &[Posting], index: &DistributedIndex, term: TermId) -> Vec<Posting> {
    let mut member: Vec<u32> = index.postings(term).iter().map(|p| p.doc.0).collect();
    member.sort_unstable();
    current
        .iter()
        .copied()
        .filter(|p| member.binary_search(&p.doc.0).is_ok())
        .collect()
}

fn charge(
    model: TrafficModel,
    index: &DistributedIndex,
    from_term: TermId,
    to_term: Option<TermId>,
    ids: u64,
) -> u64 {
    match (model, to_term) {
        // Final transfer to the user is always charged.
        (_, None) => ids,
        (TrafficModel::AllHopsRemote, Some(_)) => ids,
        (TrafficModel::ChargeCrossPeerOnly, Some(t)) => {
            if index.owner_of_term(from_term) == index.owner_of_term(t) {
                0
            } else {
                ids
            }
        }
    }
}

/// Executes `query` with the baseline full-transfer strategy.
pub fn execute_baseline(
    index: &DistributedIndex,
    query: &Query,
    model: TrafficModel,
) -> SearchOutcome {
    let mut current: Vec<Posting> = index.postings(query.terms[0]).to_vec();
    let mut per_hop = Vec::new();
    let mut traffic = 0u64;
    for (i, &t) in query.terms.iter().enumerate().skip(1) {
        let ids = current.len() as u64;
        let charged = charge(model, index, query.terms[i - 1], Some(t), ids);
        per_hop.push(charged);
        traffic += charged;
        current = intersect(&current, index, t);
    }
    // Ship the full result to the user.
    let final_ids = current.len() as u64;
    per_hop.push(final_ids);
    traffic += final_ids;
    SearchOutcome {
        traffic_ids: traffic,
        per_hop_ids: per_hop,
        hits: current,
    }
}

/// Executes `query` with the incremental top-x% strategy.
pub fn execute_incremental(
    index: &DistributedIndex,
    query: &Query,
    cfg: IncrementalConfig,
) -> SearchOutcome {
    assert!(
        cfg.forward_fraction > 0.0 && cfg.forward_fraction <= 1.0,
        "forward fraction in (0, 1]"
    );
    let mut current: Vec<Posting> = index.postings(query.terms[0]).to_vec();
    let mut per_hop = Vec::new();
    let mut traffic = 0u64;
    for (i, &t) in query.terms.iter().enumerate().skip(1) {
        // Sort by pagerank (posting lists already are; intersections
        // preserve the order) and cut to the top x %, unless that
        // would be under the floor, in which case everything goes.
        let top = (cfg.forward_fraction * current.len() as f64).ceil() as usize;
        if top >= cfg.min_forward {
            current.truncate(top);
        }
        let ids = current.len() as u64;
        let charged = charge(cfg.traffic, index, query.terms[i - 1], Some(t), ids);
        per_hop.push(charged);
        traffic += charged;
        current = intersect(&current, index, t);
    }
    let final_ids = current.len() as u64;
    per_hop.push(final_ids);
    traffic += final_ids;
    SearchOutcome {
        traffic_ids: traffic,
        per_hop_ids: per_hop,
        hits: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use crate::index::DistributedIndex;
    use dpr_p2p::ring::Ring;

    fn setup() -> (Corpus, DistributedIndex) {
        let corpus = Corpus::generate(&CorpusConfig {
            num_docs: 2_000,
            vocab_size: 300,
            tokens_per_doc: 60,
            seed: 5,
            ..Default::default()
        });
        let ranks: Vec<f64> = (0..2_000)
            .map(|i| 0.15 + ((i as f64) * 13.37) % 5.0)
            .collect();
        let ring = Ring::with_peers(50);
        let idx = DistributedIndex::build(&corpus, &ranks, &ring);
        (corpus, idx)
    }

    #[test]
    fn baseline_returns_exact_intersection() {
        let (corpus, idx) = setup();
        let q = Query::new(vec![0, 1]);
        let out = execute_baseline(&idx, &q, TrafficModel::AllHopsRemote);
        // Verify against a brute-force scan.
        let expect: usize = (0..corpus.num_docs())
            .filter(|&d| {
                let doc = dpr_graph::DocId::from(d);
                corpus.contains(doc, 0) && corpus.contains(doc, 1)
            })
            .count();
        assert_eq!(out.hits_returned(), expect);
        // Traffic = |hits(term0)| shipped + |intersection| to user.
        assert_eq!(out.traffic_ids, idx.num_hits(0) as u64 + expect as u64);
    }

    #[test]
    fn incremental_cuts_traffic() {
        let (_, idx) = setup();
        let q = Query::new(vec![0, 1]);
        let base = execute_baseline(&idx, &q, TrafficModel::AllHopsRemote);
        let incr = execute_incremental(&idx, &q, IncrementalConfig::top10());
        assert!(
            incr.traffic_ids * 4 < base.traffic_ids,
            "incremental {} vs baseline {}",
            incr.traffic_ids,
            base.traffic_ids
        );
        // Hits are a subset of the baseline's, and the best-ranked hit
        // is identical (top documents always survive the cut).
        assert!(incr.hits_returned() <= base.hits_returned());
        assert_eq!(incr.hits[0].doc, base.hits[0].doc);
    }

    #[test]
    fn incremental_hits_are_rank_sorted_prefix_consistent() {
        let (_, idx) = setup();
        let q = Query::new(vec![2, 7, 11]);
        let out = execute_incremental(&idx, &q, IncrementalConfig::top20());
        for w in out.hits.windows(2) {
            assert!(w[0].rank >= w[1].rank);
        }
    }

    #[test]
    fn floor_forwards_everything_for_small_hit_sets() {
        let (_, idx) = setup();
        // A rare term: top 10% of a small list is under the floor, so
        // the whole list must be forwarded (no truncation at all) and
        // the result equals the baseline's.
        let rare = (0..300u32)
            .filter(|&t| (5..100).contains(&idx.num_hits(t)))
            .max_by_key(|&t| t)
            .expect("need a rare term");
        let q = Query::new(vec![rare, 0]);
        let base = execute_baseline(&idx, &q, TrafficModel::AllHopsRemote);
        let incr = execute_incremental(&idx, &q, IncrementalConfig::top10());
        assert_eq!(incr.hits_returned(), base.hits_returned());
        assert_eq!(incr.traffic_ids, base.traffic_ids);
    }

    #[test]
    fn top20_can_return_fewer_hits_than_top10() {
        // The paper's Table 6 artifact: with ~100-200 hits, top-20%
        // (>= 20 docs) truncates, while top-10% (< 20 docs) falls
        // below the floor and forwards everything.
        let (_, idx) = setup();
        let mid = (0..300u32)
            .find(|&t| (120..190).contains(&idx.num_hits(t)))
            .expect("need a mid-frequency term");
        let q = Query::new(vec![mid, 0]);
        let t10 = execute_incremental(&idx, &q, IncrementalConfig::top10());
        let t20 = execute_incremental(&idx, &q, IncrementalConfig::top20());
        assert!(
            t10.hits_returned() >= t20.hits_returned(),
            "10%: {}, 20%: {}",
            t10.hits_returned(),
            t20.hits_returned()
        );
    }

    #[test]
    fn charge_cross_peer_only_never_exceeds_all_remote() {
        let (_, idx) = setup();
        let q = Query::new(vec![0, 1, 2]);
        let all = execute_baseline(&idx, &q, TrafficModel::AllHopsRemote);
        let xp = execute_baseline(&idx, &q, TrafficModel::ChargeCrossPeerOnly);
        assert!(xp.traffic_ids <= all.traffic_ids);
        assert_eq!(xp.hits_returned(), all.hits_returned());
    }

    #[test]
    fn single_term_query_ships_only_the_result() {
        let (_, idx) = setup();
        let q = Query::new(vec![5]);
        let out = execute_baseline(&idx, &q, TrafficModel::AllHopsRemote);
        assert_eq!(out.traffic_ids, idx.num_hits(5) as u64);
        assert_eq!(out.per_hop_ids.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate query terms")]
    fn duplicate_terms_rejected() {
        Query::new(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn empty_query_rejected() {
        Query::new(vec![]);
    }
}
