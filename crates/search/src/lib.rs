//! # dpr-search — pagerank-guided keyword search for P2P systems
//!
//! The application half of the HPDC'03 paper: once every document has
//! a pagerank, multi-word boolean keyword queries on a DHT can forward
//! only the *top x %* of hits (sorted by pagerank) between the peers
//! holding each term's index entry, instead of shipping every matching
//! document id. The paper measures an order-of-magnitude traffic
//! reduction (Table 6).
//!
//! * [`corpus`] — a synthetic document corpus with a Zipf term
//!   distribution standing in for the authors' unavailable 2003 news
//!   crawl (11k documents, 1880-term vocabulary; see DESIGN.md
//!   substitution #1).
//! * [`index`] — the distributed inverted index: each term's posting
//!   list lives on the DHT successor of the term's GUID and carries
//!   the documents' pageranks (paper Sec. 2.4.2).
//! * [`query`] — boolean multi-word query execution: the baseline
//!   (ship every id) and the incremental top-x% algorithm of
//!   Sec. 2.4.3, both with exact traffic accounting.
//! * [`bloom`] — a from-scratch Bloom filter and the Bloom-assisted
//!   intersection the paper cites (Reynolds–Vahdat) as a composable
//!   further optimisation.
//! * [`cursor`] — pageable result fetching: cheap first page, traffic
//!   paid only when the user pages deeper (Sec. 4.9's incremental
//!   fetch).
//! * [`fasd`] — the FASD/Freenet-style alternative (paper Sec. 2.4.1):
//!   metadata-key vectors, closeness + pagerank scoring, and a
//!   TTL-limited greedy walk over a small-world overlay.

#![warn(missing_docs)]

pub mod bloom;
pub mod corpus;
pub mod cursor;
pub mod fasd;
pub mod index;
pub mod query;

pub use bloom::BloomFilter;
pub use corpus::{Corpus, CorpusConfig};
pub use index::DistributedIndex;
pub use query::{IncrementalConfig, Query, SearchOutcome};

/// A term id: the rank of the term in the vocabulary (0 = most
/// frequent by construction of the synthetic corpus).
pub type TermId = u32;
