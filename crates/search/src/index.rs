//! The distributed inverted index with pageranks (paper Sec. 2.4.2).
//!
//! "Keyword search on DHT based systems is typically implemented by
//! using a distributed index, with the index entry for each keyword
//! pointing to all documents containing that particular keyword. We
//! propose adding an extra entry in the index to store the pageranks
//! for documents. When the pagerank has been computed for a node, an
//! index update message is sent, and the pagerank is noted in the
//! index."
//!
//! Each term's posting list lives on the DHT successor of
//! `Guid::for_term(term)`; postings carry `(DocId, pagerank)` and are
//! kept sorted by pagerank descending so the incremental search can
//! cut the top x % without re-sorting.

use crate::{corpus::Corpus, TermId};
use dpr_graph::DocId;
use dpr_p2p::{guid::Guid, peer::PeerId, ring::Ring};

/// One posting: a document and its pagerank.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// The document's pagerank as recorded in the index.
    pub rank: f64,
}

/// The distributed inverted index.
#[derive(Debug, Clone)]
pub struct DistributedIndex {
    /// Posting lists per term, sorted by rank descending.
    postings: Vec<Vec<Posting>>,
    /// The peer owning each term's index entry.
    term_owner: Vec<PeerId>,
    /// Index-update messages sent while building / refreshing ranks
    /// (one per document per term entry, as in the paper's "an index
    /// update message is sent").
    update_messages: u64,
}

impl DistributedIndex {
    /// Builds the index for `corpus`, placing each term's entry on its
    /// DHT owner from `ring`, with all pageranks initialized from
    /// `ranks` (one value per document).
    ///
    /// # Panics
    ///
    /// Panics if `ranks.len() != corpus.num_docs()`.
    pub fn build(corpus: &Corpus, ranks: &[f64], ring: &Ring) -> Self {
        assert_eq!(ranks.len(), corpus.num_docs(), "one rank per document");
        let vocab = corpus.vocab_size() as usize;
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); vocab];
        let mut update_messages = 0u64;
        for (d, &rank) in ranks.iter().enumerate() {
            let doc = DocId::from(d);
            for &t in corpus.terms_of(doc) {
                postings[t as usize].push(Posting { doc, rank });
                update_messages += 1;
            }
        }
        for list in &mut postings {
            sort_by_rank(list);
        }
        let term_owner = (0..vocab as u32)
            .map(|t| ring.successor(Guid::for_term(&term_name(t))))
            .collect();
        DistributedIndex {
            postings,
            term_owner,
            update_messages,
        }
    }

    /// The peer holding the index entry of `term`.
    pub fn owner_of_term(&self, term: TermId) -> PeerId {
        self.term_owner[term as usize]
    }

    /// Posting list of `term`, sorted by pagerank descending.
    pub fn postings(&self, term: TermId) -> &[Posting] {
        &self.postings[term as usize]
    }

    /// Number of documents containing `term`.
    pub fn num_hits(&self, term: TermId) -> usize {
        self.postings[term as usize].len()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.postings.len() as u32
    }

    /// Index-update messages sent so far (build + rank refreshes).
    pub fn update_messages(&self) -> u64 {
        self.update_messages
    }

    /// Records a new pagerank for `doc` in every term entry that lists
    /// it, counting one index-update message per affected entry. This
    /// is the paper's "when the pagerank has been computed for a node,
    /// an index update message is sent".
    pub fn refresh_rank(&mut self, corpus: &Corpus, doc: DocId, rank: f64) {
        for &t in corpus.terms_of(doc) {
            let list = &mut self.postings[t as usize];
            if let Some(pos) = list.iter().position(|p| p.doc == doc) {
                list[pos].rank = rank;
                self.update_messages += 1;
            }
            sort_by_rank(list);
        }
    }
}

/// Deterministic printable name for a synthetic term, used as the
/// DHT key ("term0017" etc.).
pub fn term_name(t: TermId) -> String {
    format!("term{t:04}")
}

fn sort_by_rank(list: &mut [Posting]) {
    // Stable ordering: rank descending, doc id ascending as the tie
    // breaker so results are deterministic.
    list.sort_by(|a, b| {
        b.rank
            .partial_cmp(&a.rank)
            .expect("NaN rank")
            .then(a.doc.0.cmp(&b.doc.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn setup() -> (Corpus, Vec<f64>, Ring) {
        let corpus = Corpus::generate(&CorpusConfig {
            num_docs: 400,
            vocab_size: 100,
            tokens_per_doc: 40,
            ..Default::default()
        });
        // Distinct, deterministic ranks.
        let ranks: Vec<f64> = (0..400).map(|i| 0.15 + (i as f64 * 7.0) % 3.0).collect();
        let ring = Ring::with_peers(50);
        (corpus, ranks, ring)
    }

    #[test]
    fn postings_cover_exactly_the_corpus() {
        let (corpus, ranks, ring) = setup();
        let idx = DistributedIndex::build(&corpus, &ranks, &ring);
        for t in 0..100u32 {
            assert_eq!(idx.num_hits(t) as u32, corpus.doc_freq(t));
            for p in idx.postings(t) {
                assert!(corpus.contains(p.doc, t));
                assert_eq!(p.rank, ranks[p.doc.index()]);
            }
        }
    }

    #[test]
    fn postings_sorted_by_rank_desc() {
        let (corpus, ranks, ring) = setup();
        let idx = DistributedIndex::build(&corpus, &ranks, &ring);
        for t in 0..100u32 {
            let list = idx.postings(t);
            for w in list.windows(2) {
                assert!(
                    w[0].rank > w[1].rank || (w[0].rank == w[1].rank && w[0].doc.0 < w[1].doc.0)
                );
            }
        }
    }

    #[test]
    fn term_owners_follow_the_ring() {
        let (corpus, ranks, ring) = setup();
        let idx = DistributedIndex::build(&corpus, &ranks, &ring);
        for t in [0u32, 13, 99] {
            assert_eq!(
                idx.owner_of_term(t),
                ring.successor(Guid::for_term(&term_name(t)))
            );
        }
        // Terms spread over many peers (not all on one).
        let mut owners: Vec<PeerId> = (0..100u32).map(|t| idx.owner_of_term(t)).collect();
        owners.sort_unstable();
        owners.dedup();
        assert!(owners.len() > 10, "only {} distinct owners", owners.len());
    }

    #[test]
    fn build_counts_one_update_message_per_posting() {
        let (corpus, ranks, ring) = setup();
        let idx = DistributedIndex::build(&corpus, &ranks, &ring);
        let total_postings: u64 = (0..100u32).map(|t| idx.num_hits(t) as u64).sum();
        assert_eq!(idx.update_messages(), total_postings);
    }

    #[test]
    fn refresh_rank_moves_a_document_up() {
        let (corpus, ranks, ring) = setup();
        let mut idx = DistributedIndex::build(&corpus, &ranks, &ring);
        let doc = DocId(7);
        let t = corpus.terms_of(doc)[0];
        let before = idx.update_messages();
        idx.refresh_rank(&corpus, doc, 1e9);
        assert!(idx.update_messages() > before);
        assert_eq!(idx.postings(t)[0].doc, doc, "doc with huge rank is first");
    }
}
