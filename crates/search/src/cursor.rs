//! Incremental result fetching.
//!
//! The pagerank-sorted search exists so that "the user sees the most
//! important documents first, while other documents can be fetched
//! incrementally if requested" (Sec. 4.9). [`ResultCursor`] is that
//! flow: the first page is served from a cheap top-x% execution, and
//! only if the user keeps paging does the cursor *escalate* — it
//! re-runs the query with a doubled forward fraction (eventually
//! reaching the exact baseline) and pays the extra traffic then, not
//! up front.

use crate::index::{DistributedIndex, Posting};
use crate::query::{execute_baseline, execute_incremental, IncrementalConfig, Query, TrafficModel};

/// A pageable view over a query's results.
#[derive(Debug)]
pub struct ResultCursor<'a> {
    index: &'a DistributedIndex,
    query: Query,
    cfg: IncrementalConfig,
    /// Hits materialized so far, best first.
    hits: Vec<Posting>,
    /// How many hits have been handed to the user.
    served: usize,
    /// Total ids moved across all executions so far.
    traffic_ids: u64,
    /// Executions run (1 = the initial cheap pass).
    executions: u32,
    /// Set once the exact (baseline) result has been materialized —
    /// no further escalation can add hits.
    exact: bool,
}

impl<'a> ResultCursor<'a> {
    /// Opens a cursor; runs the initial cheap execution.
    pub fn open(index: &'a DistributedIndex, query: Query, cfg: IncrementalConfig) -> Self {
        let first = execute_incremental(index, &query, cfg);
        ResultCursor {
            index,
            query,
            cfg,
            traffic_ids: first.traffic_ids,
            hits: first.hits,
            served: 0,
            executions: 1,
            exact: cfg.forward_fraction >= 1.0,
        }
    }

    /// Total ids transferred so far (grows only on escalation).
    pub fn traffic_ids(&self) -> u64 {
        self.traffic_ids
    }

    /// Query executions performed so far.
    pub fn executions(&self) -> u32 {
        self.executions
    }

    /// Whether every possible hit has been materialized.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Hits handed out so far.
    pub fn served(&self) -> usize {
        self.served
    }

    /// Fetches the next `k` hits (fewer at the end of the result set).
    /// Escalates automatically while the user pages past what the
    /// cheap execution found.
    pub fn fetch(&mut self, k: usize) -> Vec<Posting> {
        while self.hits.len() < self.served + k && !self.exact {
            self.escalate();
        }
        let end = (self.served + k).min(self.hits.len());
        let page = self.hits[self.served..end].to_vec();
        self.served = end;
        page
    }

    /// Re-runs the query with a doubled forward fraction (or exactly,
    /// once the fraction reaches 1), replacing the materialized hit
    /// list. Served hits are a stable prefix: every execution sorts by
    /// pagerank and a larger cut only *extends* the surviving set.
    fn escalate(&mut self) {
        let next_fraction = (self.cfg.forward_fraction * 2.0).min(1.0);
        self.cfg.forward_fraction = next_fraction;
        let out = if next_fraction >= 1.0 {
            self.exact = true;
            execute_baseline(self.index, &self.query, self.cfg.traffic)
        } else {
            execute_incremental(self.index, &self.query, self.cfg)
        };
        self.traffic_ids += out.traffic_ids;
        self.executions += 1;
        debug_assert!(
            out.hits.len() >= self.hits.len(),
            "a larger cut can only extend the result set"
        );
        self.hits = out.hits;
    }
}

/// The exact number of hits the query has in total (reference for
/// tests and UIs that show "N results").
pub fn total_hits(index: &DistributedIndex, query: &Query, traffic: TrafficModel) -> usize {
    execute_baseline(index, query, traffic).hits.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use dpr_p2p::ring::Ring;

    fn setup() -> (Corpus, Vec<f64>, Ring) {
        let corpus = Corpus::generate(&CorpusConfig {
            num_docs: 3_000,
            vocab_size: 400,
            tokens_per_doc: 60,
            seed: 46,
            ..Default::default()
        });
        let ranks: Vec<f64> = (0..3_000).map(|i| 0.15 + (i as f64 * 11.3) % 7.0).collect();
        let ring = Ring::with_peers(25);
        (corpus, ranks, ring)
    }

    #[test]
    fn first_page_is_cheap_and_correctly_ordered() {
        let (corpus, ranks, ring) = setup();
        let index = DistributedIndex::build(&corpus, &ranks, &ring);
        let q = Query::new(vec![0, 1]);
        let baseline = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);

        let mut cursor = ResultCursor::open(&index, q, IncrementalConfig::top10());
        let cheap_traffic = cursor.traffic_ids();
        let page = cursor.fetch(10);
        assert_eq!(page.len(), 10);
        // First page = the true top 10 by pagerank.
        for (a, b) in page.iter().zip(&baseline.hits[..10]) {
            assert_eq!(a.doc, b.doc);
        }
        assert_eq!(cursor.executions(), 1, "no escalation for the first page");
        assert!(cheap_traffic < baseline.traffic_ids);
    }

    #[test]
    fn paging_to_the_end_escalates_to_exact() {
        let (corpus, ranks, ring) = setup();
        let index = DistributedIndex::build(&corpus, &ranks, &ring);
        let q = Query::new(vec![0, 1]);
        let total = total_hits(&index, &q, TrafficModel::AllHopsRemote);
        assert!(total > 50, "need a sizable result set, got {total}");

        let mut cursor = ResultCursor::open(&index, q.clone(), IncrementalConfig::top10());
        let mut collected = Vec::new();
        loop {
            let page = cursor.fetch(25);
            if page.is_empty() {
                break;
            }
            collected.extend(page);
        }
        assert_eq!(collected.len(), total, "paging reaches every hit");
        assert!(cursor.is_exact());
        assert!(cursor.executions() > 1, "deep paging must escalate");
        // The full collected sequence equals the exact ranking.
        let baseline = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);
        for (a, b) in collected.iter().zip(&baseline.hits) {
            assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn shallow_users_never_pay_for_escalation() {
        let (corpus, ranks, ring) = setup();
        let index = DistributedIndex::build(&corpus, &ranks, &ring);
        let q = Query::new(vec![2, 3]);
        let mut cursor = ResultCursor::open(&index, q, IncrementalConfig::top10());
        let t0 = cursor.traffic_ids();
        let _ = cursor.fetch(5);
        let _ = cursor.fetch(5);
        assert_eq!(
            cursor.traffic_ids(),
            t0,
            "shallow paging costs nothing extra"
        );
        assert_eq!(cursor.served(), 10);
    }

    #[test]
    fn traffic_grows_monotonically_with_depth() {
        let (corpus, ranks, ring) = setup();
        let index = DistributedIndex::build(&corpus, &ranks, &ring);
        let q = Query::new(vec![0, 1, 2]);
        let mut cursor = ResultCursor::open(&index, q, IncrementalConfig::top10());
        let mut last_traffic = cursor.traffic_ids();
        for _ in 0..20 {
            let _ = cursor.fetch(50);
            assert!(cursor.traffic_ids() >= last_traffic);
            last_traffic = cursor.traffic_ids();
        }
    }
}
