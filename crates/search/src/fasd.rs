//! FASD/Freenet-style search with pagerank-weighted forwarding
//! (paper Sec. 2.4.1).
//!
//! "In FASD, a metadata key representing the document as a vector is
//! associated with every document … Search queries are also
//! represented as vectors and documents that match a query are 'close'
//! to the search vector. We make a modification to the original FASD
//! algorithm to incorporate pagerank into the search scheme. Results
//! are forwarded based on a linear combination of document closeness
//! and pagerank."
//!
//! This module implements that scheme end to end:
//!
//! * [`MetadataKey`] — the document vector (normalized binary term
//!   vector, the standard FASD reduction of a document).
//! * [`score`] — the linear combination `alpha·closeness +
//!   (1 − alpha)·normalized pagerank`.
//! * [`FasdNetwork`] — peers on a small-world topology (ring plus
//!   random shortcuts, Freenet's steady-state shape) holding their
//!   documents' metadata keys; [`FasdNetwork::search`] routes a query
//!   greedily toward better-scoring peers with a TTL, accumulating
//!   the best hits along the path — no address caching, honoring
//!   Freenet's anonymity constraint (Sec. 3.2's last paragraph).

use crate::{corpus::Corpus, TermId};
use dpr_graph::DocId;
use dpr_p2p::peer::PeerId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A document's metadata key: its sorted distinct terms, interpreted
/// as a normalized binary vector over the vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataKey {
    terms: Vec<TermId>,
}

impl MetadataKey {
    /// Key for a term set (sorted, deduplicated internally).
    pub fn new(mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        MetadataKey { terms }
    }

    /// Key of a corpus document.
    pub fn of_document(corpus: &Corpus, d: DocId) -> Self {
        MetadataKey {
            terms: corpus.terms_of(d).to_vec(),
        }
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Cosine similarity between two binary term vectors:
    /// `|a ∩ b| / sqrt(|a| · |b|)`.
    pub fn closeness(&self, other: &MetadataKey) -> f64 {
        if self.terms.is_empty() || other.terms.is_empty() {
            return 0.0;
        }
        let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
        while i < self.terms.len() && j < other.terms.len() {
            match self.terms[i].cmp(&other.terms[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common as f64 / ((self.terms.len() as f64) * (other.terms.len() as f64)).sqrt()
    }
}

/// The paper's modified FASD score: `alpha · closeness(query, doc) +
/// (1 − alpha) · pagerank / max_pagerank`.
pub fn score(closeness: f64, pagerank: f64, max_pagerank: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0, 1]");
    assert!(max_pagerank > 0.0, "max pagerank must be positive");
    alpha * closeness + (1.0 - alpha) * (pagerank / max_pagerank)
}

/// A scored hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FasdHit {
    /// The document.
    pub doc: DocId,
    /// Its combined score.
    pub score: f64,
}

/// Outcome of a routed FASD search.
#[derive(Debug, Clone)]
pub struct FasdOutcome {
    /// Best hits found along the route, score descending.
    pub hits: Vec<FasdHit>,
    /// Peers visited (including the origin).
    pub peers_visited: usize,
    /// Hops taken.
    pub hops: u32,
}

/// Peers with documents on a small-world overlay.
#[derive(Debug)]
pub struct FasdNetwork {
    /// Documents (with keys and ranks) per peer.
    docs: Vec<Vec<(DocId, MetadataKey, f64)>>,
    /// Neighbor lists (ring + shortcuts).
    neighbors: Vec<Vec<PeerId>>,
    max_rank: f64,
    alpha: f64,
}

impl FasdNetwork {
    /// Builds the network: documents are spread round-robin over
    /// `num_peers` peers, each peer linked to its ring neighbors plus
    /// `shortcuts` random long links.
    ///
    /// # Panics
    ///
    /// Panics if `ranks.len() != corpus.num_docs()` or `num_peers < 2`.
    pub fn build(
        corpus: &Corpus,
        ranks: &[f64],
        num_peers: usize,
        shortcuts: usize,
        alpha: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(ranks.len(), corpus.num_docs());
        assert!(num_peers >= 2, "need at least two peers");
        assert!((0.0..=1.0).contains(&alpha));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut docs: Vec<Vec<(DocId, MetadataKey, f64)>> =
            (0..num_peers).map(|_| Vec::new()).collect();
        for d in 0..corpus.num_docs() {
            let doc = DocId::from(d);
            docs[d % num_peers].push((doc, MetadataKey::of_document(corpus, doc), ranks[d]));
        }
        let mut neighbors: Vec<Vec<PeerId>> = (0..num_peers)
            .map(|i| {
                let prev = PeerId(((i + num_peers - 1) % num_peers) as u32);
                let next = PeerId(((i + 1) % num_peers) as u32);
                vec![prev, next]
            })
            .collect();
        let all: Vec<u32> = (0..num_peers as u32).collect();
        for (i, nb) in neighbors.iter_mut().enumerate() {
            for _ in 0..shortcuts {
                let pick = *all.choose(&mut rng).expect("non-empty");
                if pick as usize != i && !nb.contains(&PeerId(pick)) {
                    nb.push(PeerId(pick));
                }
            }
        }
        let max_rank = ranks.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
        FasdNetwork {
            docs,
            neighbors,
            max_rank,
            alpha,
        }
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.docs.len()
    }

    /// Best local score for `query` at `peer`.
    fn best_local(&self, peer: PeerId, query: &MetadataKey) -> f64 {
        self.docs[peer.index()]
            .iter()
            .map(|(_, key, rank)| score(query.closeness(key), *rank, self.max_rank, self.alpha))
            .fold(0.0, f64::max)
    }

    /// Collects `k` best local hits at `peer` into `acc`.
    fn collect_local(&self, peer: PeerId, query: &MetadataKey, k: usize, acc: &mut Vec<FasdHit>) {
        for (doc, key, rank) in &self.docs[peer.index()] {
            let s = score(query.closeness(key), *rank, self.max_rank, self.alpha);
            acc.push(FasdHit {
                doc: *doc,
                score: s,
            });
        }
        acc.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaN scores"));
        acc.truncate(k.max(1) * 4); // keep a working margin while routing
    }

    /// Routed search: start at `origin`, greedily hop to the neighbor
    /// whose best local score improves on the current peer's, collect
    /// the top hits along the way, stop at `ttl` hops or a local
    /// maximum. Returns the best `k` hits found.
    pub fn search(&self, origin: PeerId, query: &MetadataKey, k: usize, ttl: u32) -> FasdOutcome {
        let mut visited = vec![false; self.num_peers()];
        let mut current = origin;
        visited[current.index()] = true;
        let mut acc = Vec::new();
        self.collect_local(current, query, k, &mut acc);
        let mut hops = 0u32;
        let mut peers_visited = 1usize;
        while hops < ttl {
            let here = self.best_local(current, query);
            let next = self.neighbors[current.index()]
                .iter()
                .copied()
                .filter(|p| !visited[p.index()])
                .map(|p| (p, self.best_local(p, query)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN scores"));
            match next {
                Some((p, s)) if s > here => {
                    current = p;
                    visited[current.index()] = true;
                    hops += 1;
                    peers_visited += 1;
                    self.collect_local(current, query, k, &mut acc);
                }
                // Local maximum (or nowhere unvisited): the query
                // terminates here, as in Freenet's depth-limited walk.
                _ => break,
            }
        }
        acc.truncate(k);
        FasdOutcome {
            hits: acc,
            peers_visited,
            hops,
        }
    }

    /// Exhaustive reference: the true best `k` hits over all peers.
    pub fn exhaustive(&self, query: &MetadataKey, k: usize) -> Vec<FasdHit> {
        let mut all = Vec::new();
        for p in 0..self.num_peers() {
            self.collect_local(PeerId(p as u32), query, usize::MAX / 8, &mut all);
        }
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaN scores"));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn setup(alpha: f64) -> (Corpus, FasdNetwork) {
        let corpus = Corpus::generate(&CorpusConfig {
            num_docs: 1_000,
            vocab_size: 300,
            tokens_per_doc: 40,
            seed: 44,
            ..Default::default()
        });
        let ranks: Vec<f64> = (0..1_000).map(|i| 0.15 + (i as f64 * 1.7) % 3.0).collect();
        let net = FasdNetwork::build(&corpus, &ranks, 40, 4, alpha, 45);
        (corpus, net)
    }

    #[test]
    fn closeness_is_cosine_on_binary_vectors() {
        let a = MetadataKey::new(vec![1, 2, 3, 4]);
        let b = MetadataKey::new(vec![3, 4, 5, 6]);
        // |a ∩ b| = 2, |a| = |b| = 4 -> 2/4.
        assert!((a.closeness(&b) - 0.5).abs() < 1e-12);
        assert!((a.closeness(&a) - 1.0).abs() < 1e-12);
        let empty = MetadataKey::new(vec![]);
        assert_eq!(a.closeness(&empty), 0.0);
    }

    #[test]
    fn score_blends_closeness_and_rank() {
        // alpha = 1: pure closeness; alpha = 0: pure pagerank.
        assert_eq!(score(0.5, 2.0, 4.0, 1.0), 0.5);
        assert_eq!(score(0.5, 2.0, 4.0, 0.0), 0.5);
        let blended = score(0.8, 1.0, 4.0, 0.5);
        assert!((blended - (0.4 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn routed_search_visits_few_peers_and_finds_good_hits() {
        let (corpus, net) = setup(0.7);
        let query = MetadataKey::of_document(&corpus, DocId(123));
        let out = net.search(PeerId(0), &query, 10, 20);
        assert!(!out.hits.is_empty());
        assert!(out.peers_visited <= 21);
        // Hits are sorted by score.
        for w in out.hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // The routed result's best hit scores at least half the true
        // optimum (greedy routing is approximate by design).
        let best = net.exhaustive(&query, 1)[0].score;
        assert!(
            out.hits[0].score >= 0.5 * best,
            "routed {} vs exhaustive {}",
            out.hits[0].score,
            best
        );
    }

    #[test]
    fn searching_for_a_documents_own_key_finds_similar_documents() {
        let (corpus, net) = setup(1.0);
        let query = MetadataKey::of_document(&corpus, DocId(7));
        let exact = net.exhaustive(&query, 1);
        // With alpha = 1 (pure closeness), nothing beats the document
        // itself (cosine 1.0).
        assert_eq!(exact[0].doc, DocId(7));
        assert!((exact[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_ranks_by_pagerank_only() {
        let (corpus, net) = setup(0.0);
        let query = MetadataKey::of_document(&corpus, DocId(3));
        let top = net.exhaustive(&query, 1)[0];
        // Highest pagerank in setup() is the doc maximizing the rank
        // formula; its score must be 1.0 (rank / max_rank).
        assert!((top.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ttl_limits_the_walk() {
        let (corpus, net) = setup(0.7);
        let query = MetadataKey::of_document(&corpus, DocId(50));
        let short = net.search(PeerId(5), &query, 5, 1);
        assert!(short.hops <= 1);
        let long = net.search(PeerId(5), &query, 5, 30);
        assert!(long.hops >= short.hops);
    }

    #[test]
    fn network_shape_is_small_world() {
        let (_, net) = setup(0.5);
        for p in 0..net.num_peers() {
            let nb = &net.neighbors[p];
            assert!(nb.len() >= 2, "ring links always present");
            assert!(nb.iter().all(|q| q.index() != p), "no self loops");
        }
    }
}
