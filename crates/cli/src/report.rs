//! Output routing for the `dpr` subcommands.
//!
//! Every command prints through one [`Reporter`] instead of raw
//! `println!`: the default path is byte-identical stdout, `--quiet`
//! silences it, and `--trace-out FILE` / `--prom-out FILE` attach a
//! live [`TraceRecorder`] whose handle the command threads into the
//! observed engine/cluster entry points. [`Reporter::finish`] flushes
//! the sinks and writes the Prometheus snapshot.

use crate::args::Args;
use dpr_telemetry::{Recorder, TraceRecorder, NOOP};
use std::sync::Arc;

/// Stdout verbosity plus the optional telemetry trace of one command
/// invocation.
pub struct Reporter {
    quiet: bool,
    rec: Option<Arc<TraceRecorder>>,
    trace_out: Option<String>,
    prom_out: Option<String>,
}

impl Reporter {
    /// Builds the reporter from the shared flags: `--quiet`,
    /// `--trace-out FILE` (JSONL event trace) and `--prom-out FILE`
    /// (Prometheus text snapshot, implies an in-memory recorder even
    /// without a trace file).
    pub fn from_args(args: &Args) -> Result<Self, String> {
        let trace_out = args.optional("trace-out").map(String::from);
        let prom_out = args.optional("prom-out").map(String::from);
        let rec = match &trace_out {
            Some(p) => Some(Arc::new(
                TraceRecorder::with_jsonl(p).map_err(|e| format!("create {p}: {e}"))?,
            )),
            None if prom_out.is_some() => Some(Arc::new(TraceRecorder::new())),
            None => None,
        };
        Ok(Reporter {
            quiet: args.has("quiet"),
            rec,
            trace_out,
            prom_out,
        })
    }

    /// Prints one line unless `--quiet`.
    pub fn say(&self, line: impl AsRef<str>) {
        if !self.quiet {
            println!("{}", line.as_ref());
        }
    }

    /// The recorder to thread into observed run loops: the live trace
    /// when one was requested, the no-op recorder otherwise.
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.rec {
            Some(r) => r.as_ref() as &dyn Recorder,
            None => &NOOP,
        }
    }

    /// Flushes the JSONL sink, writes the Prometheus snapshot, and
    /// reports where they went. A no-op without trace flags, keeping
    /// default stdout untouched.
    pub fn finish(&self) -> Result<(), String> {
        let Some(rec) = &self.rec else {
            return Ok(());
        };
        rec.flush().map_err(|e| format!("flush trace: {e}"))?;
        if let Some(p) = &self.prom_out {
            std::fs::write(p, rec.prometheus_text()).map_err(|e| format!("write {p}: {e}"))?;
            self.say(format!("wrote {p} (prometheus snapshot)"));
        }
        if let Some(p) = &self.trace_out {
            self.say(format!("wrote {p} ({} events)", rec.event_count()));
        }
        Ok(())
    }
}
