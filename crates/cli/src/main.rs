//! `dpr` — command-line interface to the distributed PageRank system.
//!
//! ```text
//! dpr generate  --nodes 10000 --out graph.bin [--seed N] [--edges-out g.txt]
//! dpr stats     --graph graph.bin
//! dpr rank      --graph graph.bin [--eps 1e-3] [--peers 500] [--out ranks.json] [--top 10]
//! dpr partition --graph graph.bin --peers 50 [--sweeps 6]
//! dpr insert    --graph graph.bin --links 1,2,3 [--eps 1e-3]
//! dpr delete    --graph graph.bin --doc 42 [--eps 1e-3]
//! dpr search    [--docs 11000] [--terms t1,t2] [--top-percent 10]
//! dpr serve     [--docs N] [--peers P] [--queries Q] [--qps R] [--strategy S]
//!               [--churn F] [--updates U] [--slo-p99-ms MS] (nonzero exit on SLO failure)
//! dpr trace     --input trace.jsonl [--validate] [--run LABEL] [--top K] [--diff other.jsonl]
//! dpr doctor    [--docs N] [--peers P] [--inject-fault KIND] [--input trace.jsonl]
//!               [--capture-out cap.jsonl] [--replay cap.jsonl] [--threads T]
//! dpr profile   [--docs N] [--peers P] [--sched pass|priority|greedy] [--replay cap.jsonl]
//!               [--input trace.jsonl] [--top K] [--segment N] [--perfetto-out FILE]
//! ```
//!
//! Every command also takes `--quiet`, `--trace-out FILE` (JSONL event
//! trace) and `--prom-out FILE` (Prometheus metrics snapshot); see
//! [`report::Reporter`].
//!
//! Subcommand implementations live in [`commands`]; this file only
//! dispatches and reports errors.

mod args;
mod commands;
mod report;

use std::process::ExitCode;

/// Piping `dpr` into `head` closes stdout early; Rust's default is a
/// "failed printing to stdout: Broken pipe" panic. Exit quietly
/// instead, like every other well-behaved CLI. (Installing a hook is
/// the dependency-free alternative to resetting SIGPIPE via libc.)
fn exit_quietly_on_broken_pipe() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        default_hook(info);
    }));
}

fn main() -> ExitCode {
    exit_quietly_on_broken_pipe();
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("{}", commands::usage());
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = argv.collect();
    let parsed = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(&parsed),
        "stats" => commands::stats(&parsed),
        "rank" => commands::rank(&parsed),
        "partition" => commands::partition(&parsed),
        "insert" => commands::insert(&parsed),
        "delete" => commands::delete(&parsed),
        "search" => commands::search(&parsed),
        "serve" => commands::serve(&parsed),
        "trace" => commands::trace(&parsed),
        "doctor" => commands::doctor(&parsed),
        "profile" => commands::profile(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", commands::usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
