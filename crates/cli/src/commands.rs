//! The `dpr` subcommand implementations.

use crate::args::Args;
use crate::report::Reporter;
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::incremental::{propagate, PropagationConfig};
use dpr_core::parallel::ExecMode;
use dpr_core::sync_solver::SyncSolver;
use dpr_graph::{io, partition, powerlaw::PowerLawConfig, stats, CsrGraph, DocId, DynamicGraph};
use dpr_p2p::peer::{PeerId, PeerTable, Placement, PlacementPolicy};
use dpr_p2p::ring::Ring;
use dpr_search::corpus::{Corpus, CorpusConfig};
use dpr_search::index::DistributedIndex;
use dpr_search::query::{
    execute_baseline, execute_incremental, IncrementalConfig, Query, TrafficModel,
};
use dpr_telemetry::{Event, TraceSummary};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::sync::Arc;

/// Top-level usage text.
pub const USAGE: &str = "\
dpr — distributed pagerank for P2P systems (HPDC'03 reproduction)

commands:
  generate   --nodes N --out FILE [--seed S] [--edges-out FILE]
  stats      --graph FILE
  rank       --graph FILE [--eps 1e-3] [--peers 500] [--seed S]
             [--sched pass|priority] [--out ranks.json] [--top K]
             [--sync]
  partition  --graph FILE --peers K [--sweeps 6]
  insert     --graph FILE --links a,b,c [--eps 1e-3] [--damping 0.85]
  delete     --graph FILE --doc ID [--eps 1e-3] [--damping 0.85]
  search     [--docs 11000] [--vocab 1880] [--peers 50] [--query t1,t2]
             [--top-percent 10] [--seed S]
  trace      --input trace.jsonl [--validate] [--run LABEL] [--top K]
  help       this text

every command also accepts: --quiet (suppress stdout),
  --trace-out FILE (JSONL event trace), --prom-out FILE (Prometheus
  text snapshot of the run's metrics)";

fn load_graph(args: &Args) -> Result<CsrGraph, String> {
    let path = args.required("graph")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    io::read_binary(file).map_err(|e| format!("read {path}: {e}"))
}

/// `dpr generate` — write a power-law graph to disk.
pub fn generate(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let nodes: usize = args.get_required("nodes")?;
    let out = args.required("out")?;
    let seed: u64 = args.get("seed", 2003)?;
    let graph = PowerLawConfig::paper(nodes, seed).generate();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_binary(&graph, file).map_err(|e| format!("write {out}: {e}"))?;
    rep.say(format!(
        "wrote {out}: {} documents, {} links ({} bytes in memory)",
        graph.num_nodes(),
        graph.num_edges(),
        graph.heap_bytes()
    ));
    if let Some(edges_out) = args.optional("edges-out") {
        let f = File::create(edges_out).map_err(|e| format!("create {edges_out}: {e}"))?;
        io::write_edge_list(&graph, f).map_err(|e| format!("write {edges_out}: {e}"))?;
        rep.say(format!("wrote {edges_out} (text edge list)"));
    }
    rep.finish()
}

/// `dpr stats` — summarize a graph file.
pub fn stats(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let s = stats::summarize(&graph);
    rep.say(format!("documents:        {}", s.nodes));
    rep.say(format!("links:            {}", s.edges));
    rep.say(format!("mean out-degree:  {:.2}", s.mean_out_degree));
    rep.say(format!("max out-degree:   {}", s.max_out_degree));
    rep.say(format!("max in-degree:    {}", s.max_in_degree));
    rep.say(format!("dangling docs:    {}", s.dangling));
    if let Some(a) = s.out_exponent_fit {
        rep.say(format!(
            "out-degree power-law fit: {a:.2} (paper model: 2.4)"
        ));
    }
    if let Some(a) = s.in_exponent_fit {
        rep.say(format!(
            "in-degree power-law fit:  {a:.2} (paper model: 2.1)"
        ));
    }
    rep.say(format!(
        "weakly connected components: {}",
        stats::weakly_connected_components(&graph)
    ));
    rep.finish()
}

/// `dpr rank` — run the distributed computation (or `--sync` solver).
pub fn rank(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = Arc::new(load_graph(args)?);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON)?;
    let peers: usize = args.get("peers", 500)?;
    let seed: u64 = args.get("seed", 2003)?;
    let top: usize = args.get("top", 10)?;
    let sched: dpr_core::SchedMode = args.get("sched", dpr_core::SchedMode::Pass)?;

    let ranks: Vec<f64> = if args.has("sync") {
        let r = SyncSolver::new().tolerance(eps).solve(&graph);
        rep.say(format!(
            "synchronous solve: {} iterations, residual {:.2e}",
            r.iterations, r.final_residual
        ));
        r.ranks
    } else {
        let ring = Ring::with_peers(peers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placement =
            Placement::assign(graph.num_nodes(), &ring, PlacementPolicy::Random, &mut rng);
        let owners: Vec<PeerId> = (0..graph.num_nodes())
            .map(|d| placement.owner(DocId::from(d)))
            .collect();
        let mut engine = ChaoticEngine::new(
            graph.clone(),
            owners,
            EngineConfig::with_epsilon(eps).with_sched(sched),
        );
        let mut table = PeerTable::new(peers);
        let run = engine.run_observed(&mut table, None, rep.recorder(), "rank");
        rep.say(format!(
            "distributed solve: {} passes, {} remote messages ({:.1}/doc), converged: {}",
            run.passes,
            run.total_remote_messages,
            run.messages_per_node(graph.num_nodes()),
            run.converged
        ));
        engine.ranks().to_vec()
    };

    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).expect("no NaN ranks"));
    rep.say(format!("top {top} documents:"));
    for &d in order.iter().take(top) {
        rep.say(format!("  d{d:<10} {:.6}", ranks[d]));
    }

    if let Some(out) = args.optional("out") {
        let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        serde_json::to_writer(f, &ranks).map_err(|e| format!("write {out}: {e}"))?;
        rep.say(format!("wrote {out} ({} ranks)", ranks.len()));
    }
    rep.finish()
}

/// `dpr partition` — link-aware partitioning report.
pub fn partition(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let peers: usize = args.get_required("peers")?;
    let sweeps: usize = args.get("sweeps", 6)?;
    if peers == 0 {
        return Err("--peers must be positive".into());
    }
    let random: Vec<u32> = (0..graph.num_nodes() as u32)
        .map(|i| i % peers as u32)
        .collect();
    let bfs = partition::bfs_partition(&graph, peers);
    let refined = partition::link_aware_partition(&graph, peers, sweeps);
    let total = graph.num_edges();
    for (name, labels) in [("random", &random), ("bfs", &bfs), ("link-aware", &refined)] {
        let cut = partition::edge_cut(&graph, labels);
        rep.say(format!(
            "{name:>11}: {cut} cross-peer links of {total} ({:.1}%)",
            100.0 * cut as f64 / total.max(1) as f64
        ));
    }
    let sizes = partition::partition_sizes(&refined, peers);
    rep.say(format!(
        "link-aware partition sizes: min {}, max {}",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    ));
    rep.finish()
}

fn wave_cfg(args: &Args) -> Result<PropagationConfig, String> {
    Ok(PropagationConfig {
        damping: args.get("damping", dpr_core::DEFAULT_DAMPING)?,
        epsilon: args.get("eps", dpr_core::RECOMMENDED_EPSILON)?,
    })
}

/// `dpr insert` — simulate inserting a document with given out-links.
pub fn insert(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let links: Vec<u32> = args.get_list("links")?;
    if links.is_empty() {
        return Err("--links must name at least one target document".into());
    }
    for &l in &links {
        if l as usize >= graph.num_nodes() {
            return Err(format!("link target {l} out of range"));
        }
    }
    let cfg = wave_cfg(args)?;
    let mut dyn_graph = DynamicGraph::from_csr(&graph);
    let mut ranks = vec![dpr_core::INITIAL_RANK; graph.num_nodes()];
    let (id, wave) = dpr_core::incremental::insert_document(
        &mut dyn_graph,
        &links.into_iter().map(DocId).collect::<Vec<_>>(),
        &mut ranks,
        cfg,
    );
    rep.recorder().event(&Event::DocInserted {
        seq: 1,
        doc: u64::from(id.0),
    });
    rep.say(format!(
        "inserted {id} (eps {}, damping {})",
        cfg.epsilon, cfg.damping
    ));
    rep.say(format!(
        "update wave: path length {}, node coverage {}, {} messages",
        wave.path_length, wave.node_coverage, wave.messages
    ));
    rep.finish()
}

/// `dpr delete` — simulate the delete wave of a document.
pub fn delete(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let doc: u32 = args.get_required("doc")?;
    if doc as usize >= graph.num_nodes() {
        return Err(format!("document {doc} out of range"));
    }
    let cfg = wave_cfg(args)?;
    // The negated-rank wave over the document's links (Sec. 3.1).
    let wave = propagate(&graph, DocId(doc), -dpr_core::INITIAL_RANK, cfg, None);
    rep.say(format!(
        "delete wave for d{doc}: path length {}, node coverage {}, {} messages",
        wave.path_length, wave.node_coverage, wave.messages
    ));
    rep.finish()
}

/// `dpr search` — demo incremental search over a synthetic corpus.
pub fn search(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let docs: usize = args.get("docs", 11_000)?;
    let vocab: u32 = args.get("vocab", 1880)?;
    let peers: usize = args.get("peers", 50)?;
    let seed: u64 = args.get("seed", 2003)?;
    let pct: f64 = args.get("top-percent", 10.0)?;
    if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
        return Err("--top-percent must be in (0, 100]".into());
    }

    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: docs,
        vocab_size: vocab,
        seed,
        ..Default::default()
    });
    let graph = PowerLawConfig::paper(docs, seed ^ 0xbeef).generate();
    let mut engine = ChaoticEngine::local(Arc::new(graph), EngineConfig::with_epsilon(1e-3));
    ExecMode::Sequential.run_static_observed(&mut engine, rep.recorder(), "search-pagerank");
    let ring = Ring::with_peers(peers);
    let index = DistributedIndex::build(&corpus, engine.ranks(), &ring);

    let terms: Vec<u32> = match args.optional("query") {
        Some(_) => args.get_list("query")?,
        None => corpus.top_terms(2),
    };
    for &t in &terms {
        if t >= vocab {
            return Err(format!("query term {t} out of vocabulary (0..{vocab})"));
        }
    }
    let q = Query::new(terms.clone());
    let base = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);
    let cfg = IncrementalConfig {
        forward_fraction: pct / 100.0,
        min_forward: 20,
        traffic: TrafficModel::AllHopsRemote,
    };
    let incr = execute_incremental(&index, &q, cfg);
    rep.say(format!("query {terms:?} over {docs} docs / {peers} peers:"));
    rep.say(format!(
        "  baseline:    {} ids moved, {} hits returned",
        base.traffic_ids,
        base.hits_returned()
    ));
    rep.say(format!(
        "  top-{pct:.0}%:     {} ids moved, {} hits returned ({:.1}x less traffic)",
        incr.traffic_ids,
        incr.hits_returned(),
        base.traffic_ids as f64 / incr.traffic_ids.max(1) as f64
    ));
    if let (Some(b), Some(i)) = (base.hits.first(), incr.hits.first()) {
        rep.say(format!(
            "  best hit under both strategies: {} (rank {:.4})",
            b.doc, b.rank
        ));
        assert_eq!(b.doc, i.doc, "top hit must survive the cut");
    }
    rep.finish()
}

/// `dpr trace` — summarize (or validate) a JSONL telemetry trace
/// written by `--trace-out` or [`dpr_telemetry::TraceRecorder`].
pub fn trace(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let top: usize = args.get("top", 5)?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("open {input}: {e}"))?;
    let summary = TraceSummary::from_jsonl(&text).map_err(|e| format!("{input}: {e}"))?;

    if args.has("validate") {
        summary
            .residual_monotone_after_last_injection()
            .map_err(|(run, pass, prev, next)| {
                format!(
                    "{input}: residual of run '{run}' increases at pass {pass}: {prev:e} -> {next:e}"
                )
            })?;
        println!(
            "{input}: {} events, schema-valid, residual monotone after last injection",
            summary.events().len()
        );
        return Ok(());
    }

    println!(
        "{input}: {} events, {} engine runs",
        summary.events().len(),
        summary.runs().len()
    );
    let runs: Vec<String> = match args.optional("run") {
        Some(r) => {
            if !summary.runs().iter().any(|x| x == r) {
                return Err(format!("no run labeled '{r}' in {input}"));
            }
            vec![r.to_string()]
        }
        None => summary.runs().to_vec(),
    };
    for run in &runs {
        let curve = summary.convergence_curve(run);
        if curve.is_empty() {
            continue;
        }
        println!("\nconvergence of run '{run}':");
        print!("{}", summary.render_convergence(run).render());
    }
    if !summary.traffic_by_round().is_empty() {
        println!("\nwire traffic by round:");
        print!("{}", summary.render_traffic().render());
    }
    if !summary.hottest_peers(top).is_empty() {
        println!("\ntop {top} hottest peers:");
        print!("{}", summary.render_hottest_peers(top).render());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    fn graph_file(dir: &std::path::Path, nodes: usize) -> String {
        let path = dir.join("g.bin");
        let g = PowerLawConfig::paper(nodes, 1).generate();
        io::write_binary(&g, File::create(&path).unwrap()).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dpr-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn generate_and_stats_roundtrip() {
        let dir = tmpdir("gen");
        let out = dir.join("g.bin");
        generate(&args(&format!("--nodes 500 --out {}", out.display()))).unwrap();
        stats(&args(&format!("--graph {}", out.display()))).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rank_distributed_and_sync() {
        let dir = tmpdir("rank");
        let g = graph_file(&dir, 400);
        let ranks_out = dir.join("ranks.json");
        rank(&args(&format!(
            "--graph {g} --eps 1e-4 --peers 10 --out {}",
            ranks_out.display()
        )))
        .unwrap();
        let text = std::fs::read_to_string(&ranks_out).unwrap();
        let ranks: Vec<f64> = serde_json::from_str(&text).unwrap();
        assert_eq!(ranks.len(), 400);
        rank(&args(&format!("--graph {g} --sync --eps 1e-8"))).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rank_priority_sched_matches_pass_to_epsilon() {
        let dir = tmpdir("sched");
        let g = graph_file(&dir, 400);
        let pass_out = dir.join("pass.json");
        let pri_out = dir.join("priority.json");
        rank(&args(&format!(
            "--graph {g} --eps 1e-6 --peers 10 --quiet --out {}",
            pass_out.display()
        )))
        .unwrap();
        rank(&args(&format!(
            "--graph {g} --eps 1e-6 --peers 10 --sched priority --quiet --out {}",
            pri_out.display()
        )))
        .unwrap();
        let pass: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&pass_out).unwrap()).unwrap();
        let pri: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&pri_out).unwrap()).unwrap();
        let l1: f64 = pass.iter().zip(&pri).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 / 400.0 < 1e-6, "l1 per doc {}", l1 / 400.0);
        assert!(
            rank(&args(&format!("--graph {g} --sched bogus"))).is_err(),
            "bad sched mode must be a clean error"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_reports() {
        let dir = tmpdir("part");
        let g = graph_file(&dir, 600);
        partition(&args(&format!("--graph {g} --peers 6"))).unwrap();
        assert!(partition(&args(&format!("--graph {g} --peers 0"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn insert_and_delete_waves() {
        let dir = tmpdir("ins");
        let g = graph_file(&dir, 300);
        insert(&args(&format!("--graph {g} --links 1,2,3"))).unwrap();
        delete(&args(&format!("--graph {g} --doc 5"))).unwrap();
        assert!(insert(&args(&format!("--graph {g} --links 9999"))).is_err());
        assert!(delete(&args(&format!("--graph {g} --doc 9999"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_demo_runs_small() {
        search(&args("--docs 800 --vocab 200 --peers 10 --top-percent 10")).unwrap();
        assert!(search(&args("--docs 800 --vocab 200 --top-percent 0")).is_err());
        assert!(search(&args("--docs 800 --vocab 200 --query 9999")).is_err());
    }

    #[test]
    fn missing_graph_file_is_a_clean_error() {
        let e = stats(&args("--graph /nonexistent/g.bin")).unwrap_err();
        assert!(e.contains("open"), "{e}");
    }

    #[test]
    fn rank_trace_roundtrips_through_trace_subcommand() {
        let dir = tmpdir("trace");
        let g = graph_file(&dir, 400);
        let trace_out = dir.join("trace.jsonl");
        let prom_out = dir.join("metrics.prom");
        rank(&args(&format!(
            "--graph {g} --eps 1e-4 --peers 10 --quiet --trace-out {} --prom-out {}",
            trace_out.display(),
            prom_out.display()
        )))
        .unwrap();

        let text = std::fs::read_to_string(&trace_out).unwrap();
        let summary = TraceSummary::from_jsonl(&text).unwrap();
        assert_eq!(summary.runs(), ["rank".to_string()]);
        assert!(!summary.convergence_curve("rank").is_empty());
        summary.residual_monotone_after_last_injection().unwrap();

        let prom = std::fs::read_to_string(&prom_out).unwrap();
        assert!(prom.contains("dpr_events_recorded_total"), "{prom}");

        let input = trace_out.display().to_string();
        trace(&args(&format!("--input {input}"))).unwrap();
        trace(&args(&format!("--input {input} --validate"))).unwrap();
        trace(&args(&format!("--input {input} --run rank"))).unwrap();
        assert!(trace(&args(&format!("--input {input} --run nope"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_trace_is_a_clean_error() {
        let dir = tmpdir("badtrace");
        let p = dir.join("bad.jsonl");
        std::fs::write(&p, "{\"type\":\"mystery\"}\n").unwrap();
        let e = trace(&args(&format!("--input {}", p.display()))).unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
