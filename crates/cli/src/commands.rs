//! The `dpr` subcommand implementations.

use crate::args::Args;
use crate::report::Reporter;
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::incremental::{propagate, PropagationConfig};
use dpr_core::parallel::ExecMode;
use dpr_core::sync_solver::SyncSolver;
use dpr_graph::{io, partition, powerlaw::PowerLawConfig, stats, CsrGraph, DocId, DynamicGraph};
use dpr_p2p::peer::{PeerId, PeerTable, Placement, PlacementPolicy};
use dpr_p2p::ring::Ring;
use dpr_search::corpus::{Corpus, CorpusConfig};
use dpr_search::index::DistributedIndex;
use dpr_search::query::{
    execute_baseline, execute_incremental, IncrementalConfig, Query, TrafficModel,
};
use dpr_telemetry::{AuditReport, Capture, Event, TraceSummary};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::sync::Arc;

/// Top-level usage text. Built, not const, so every `--sched` line
/// cites the one shared [`dpr_core::SCHED_HELP`] mode list — the CLI,
/// the bench binaries, and the parser error all stay in lockstep.
pub fn usage() -> String {
    let sched = dpr_core::SCHED_HELP;
    format!(
        "\
dpr — distributed pagerank for P2P systems (HPDC'03 reproduction)

commands:
  generate   --nodes N --out FILE [--seed S] [--edges-out FILE]
  stats      --graph FILE
  rank       --graph FILE [--eps 1e-3] [--peers 500] [--seed S]
             [--sched {sched}] [--out ranks.json] [--top K]
             [--sync]
  partition  --graph FILE --peers K [--sweeps 6]
  insert     --graph FILE --links a,b,c [--eps 1e-3] [--damping 0.85]
  delete     --graph FILE --doc ID [--eps 1e-3] [--damping 0.85]
  search     [--docs 11000] [--vocab 1880] [--peers 50] [--query t1,t2]
             [--top-percent 10] [--seed S]
  serve      [--docs 2000] [--vocab 400] [--peers 32] [--queries 100]
             [--query-len 2] [--qps 20] [--updates 20] [--churn F]
             [--strategy baseline|incremental|bloom]
             [--latency modem|broadband|lan] [--sched {sched}]
             [--eps 1e-4] [--seed 2003] [--slo-p99-ms 2000]
             [--slo-budget 0.10] [--window-ms 1000]
             (exits nonzero when an SLO blows its error budget)
  trace      --input trace.jsonl [--validate] [--run LABEL] [--top K]
             [--diff other.jsonl]
  doctor     [--docs 1200] [--peers 24] [--eps 1e-4] [--seed 2003]
             [--inject-fault mass-leak|dup-frame|lost-frame]
             [--fault-at N] [--input trace.jsonl]
             [--capture-out cap.jsonl] [--replay cap.jsonl]
             [--threads T] [--inserts N] [--checkpoints K]
             [--sched {sched}] [--codec raw|compact]
             [--run-mode rounds|chaotic]
             [--latency modem|broadband|lan]
  profile    [--docs 1200] [--peers 24] [--eps 1e-4] [--seed 2003]
             [--sched {sched}] [--codec raw|compact]
             [--latency modem|broadband|lan]
             [--inject-fault mass-leak|dup-frame|lost-frame]
             [--fault-at N] [--replay cap.jsonl]
             [--input trace.jsonl] [--threads T] [--top 8]
             [--segment N] [--perfetto-out FILE]
  help       this text

every command also accepts: --quiet (suppress stdout),
  --trace-out FILE (JSONL event trace), --prom-out FILE (Prometheus
  text snapshot of the run's metrics)"
    )
}

fn load_graph(args: &Args) -> Result<CsrGraph, String> {
    let path = args.required("graph")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    io::read_binary(file).map_err(|e| format!("read {path}: {e}"))
}

/// `dpr generate` — write a power-law graph to disk.
pub fn generate(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let nodes: usize = args.get_required("nodes")?;
    let out = args.required("out")?;
    let seed: u64 = args.get("seed", 2003)?;
    let graph = PowerLawConfig::paper(nodes, seed).generate();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_binary(&graph, file).map_err(|e| format!("write {out}: {e}"))?;
    rep.say(format!(
        "wrote {out}: {} documents, {} links ({} bytes in memory)",
        graph.num_nodes(),
        graph.num_edges(),
        graph.heap_bytes()
    ));
    if let Some(edges_out) = args.optional("edges-out") {
        let f = File::create(edges_out).map_err(|e| format!("create {edges_out}: {e}"))?;
        io::write_edge_list(&graph, f).map_err(|e| format!("write {edges_out}: {e}"))?;
        rep.say(format!("wrote {edges_out} (text edge list)"));
    }
    rep.finish()
}

/// `dpr stats` — summarize a graph file.
pub fn stats(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let s = stats::summarize(&graph);
    rep.say(format!("documents:        {}", s.nodes));
    rep.say(format!("links:            {}", s.edges));
    rep.say(format!("mean out-degree:  {:.2}", s.mean_out_degree));
    rep.say(format!("max out-degree:   {}", s.max_out_degree));
    rep.say(format!("max in-degree:    {}", s.max_in_degree));
    rep.say(format!("dangling docs:    {}", s.dangling));
    if let Some(a) = s.out_exponent_fit {
        rep.say(format!(
            "out-degree power-law fit: {a:.2} (paper model: 2.4)"
        ));
    }
    if let Some(a) = s.in_exponent_fit {
        rep.say(format!(
            "in-degree power-law fit:  {a:.2} (paper model: 2.1)"
        ));
    }
    rep.say(format!(
        "weakly connected components: {}",
        stats::weakly_connected_components(&graph)
    ));
    rep.finish()
}

/// `dpr rank` — run the distributed computation (or `--sync` solver).
pub fn rank(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = Arc::new(load_graph(args)?);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON)?;
    let peers: usize = args.get("peers", 500)?;
    let seed: u64 = args.get("seed", 2003)?;
    let top: usize = args.get("top", 10)?;
    let sched: dpr_core::SchedMode = args.get("sched", dpr_core::SchedMode::Pass)?;

    let ranks: Vec<f64> = if args.has("sync") {
        let r = SyncSolver::new().tolerance(eps).solve(&graph);
        rep.say(format!(
            "synchronous solve: {} iterations, residual {:.2e}",
            r.iterations, r.final_residual
        ));
        r.ranks
    } else {
        let ring = Ring::with_peers(peers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placement =
            Placement::assign(graph.num_nodes(), &ring, PlacementPolicy::Random, &mut rng);
        let owners: Vec<PeerId> = (0..graph.num_nodes())
            .map(|d| placement.owner(DocId::from(d)))
            .collect();
        let mut engine = ChaoticEngine::new(
            graph.clone(),
            owners,
            EngineConfig::with_epsilon(eps).with_sched(sched),
        );
        let mut table = PeerTable::new(peers);
        let run = engine.run_observed(&mut table, None, rep.recorder(), "rank");
        rep.say(format!(
            "distributed solve: {} passes, {} remote messages ({:.1}/doc), converged: {}",
            run.passes,
            run.total_remote_messages,
            run.messages_per_node(graph.num_nodes()),
            run.converged
        ));
        engine.ranks().to_vec()
    };

    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).expect("no NaN ranks"));
    rep.say(format!("top {top} documents:"));
    for &d in order.iter().take(top) {
        rep.say(format!("  d{d:<10} {:.6}", ranks[d]));
    }

    if let Some(out) = args.optional("out") {
        let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        serde_json::to_writer(f, &ranks).map_err(|e| format!("write {out}: {e}"))?;
        rep.say(format!("wrote {out} ({} ranks)", ranks.len()));
    }
    rep.finish()
}

/// `dpr partition` — link-aware partitioning report.
pub fn partition(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let peers: usize = args.get_required("peers")?;
    let sweeps: usize = args.get("sweeps", 6)?;
    if peers == 0 {
        return Err("--peers must be positive".into());
    }
    let random: Vec<u32> = (0..graph.num_nodes() as u32)
        .map(|i| i % peers as u32)
        .collect();
    let bfs = partition::bfs_partition(&graph, peers);
    let refined = partition::link_aware_partition(&graph, peers, sweeps);
    let total = graph.num_edges();
    for (name, labels) in [("random", &random), ("bfs", &bfs), ("link-aware", &refined)] {
        let cut = partition::edge_cut(&graph, labels);
        rep.say(format!(
            "{name:>11}: {cut} cross-peer links of {total} ({:.1}%)",
            100.0 * cut as f64 / total.max(1) as f64
        ));
    }
    let sizes = partition::partition_sizes(&refined, peers);
    rep.say(format!(
        "link-aware partition sizes: min {}, max {}",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    ));
    rep.finish()
}

fn wave_cfg(args: &Args) -> Result<PropagationConfig, String> {
    Ok(PropagationConfig {
        damping: args.get("damping", dpr_core::DEFAULT_DAMPING)?,
        epsilon: args.get("eps", dpr_core::RECOMMENDED_EPSILON)?,
    })
}

/// `dpr insert` — simulate inserting a document with given out-links.
pub fn insert(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let links: Vec<u32> = args.get_list("links")?;
    if links.is_empty() {
        return Err("--links must name at least one target document".into());
    }
    for &l in &links {
        if l as usize >= graph.num_nodes() {
            return Err(format!("link target {l} out of range"));
        }
    }
    let cfg = wave_cfg(args)?;
    let mut dyn_graph = DynamicGraph::from_csr(&graph);
    let mut ranks = vec![dpr_core::INITIAL_RANK; graph.num_nodes()];
    let (id, wave) = dpr_core::incremental::insert_document(
        &mut dyn_graph,
        &links.into_iter().map(DocId).collect::<Vec<_>>(),
        &mut ranks,
        cfg,
    );
    rep.recorder().event(&Event::DocInserted {
        seq: 1,
        doc: u64::from(id.0),
    });
    rep.say(format!(
        "inserted {id} (eps {}, damping {})",
        cfg.epsilon, cfg.damping
    ));
    rep.say(format!(
        "update wave: path length {}, node coverage {}, {} messages",
        wave.path_length, wave.node_coverage, wave.messages
    ));
    rep.finish()
}

/// `dpr delete` — simulate the delete wave of a document.
pub fn delete(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let graph = load_graph(args)?;
    let doc: u32 = args.get_required("doc")?;
    if doc as usize >= graph.num_nodes() {
        return Err(format!("document {doc} out of range"));
    }
    let cfg = wave_cfg(args)?;
    // The negated-rank wave over the document's links (Sec. 3.1).
    let wave = propagate(&graph, DocId(doc), -dpr_core::INITIAL_RANK, cfg, None);
    rep.say(format!(
        "delete wave for d{doc}: path length {}, node coverage {}, {} messages",
        wave.path_length, wave.node_coverage, wave.messages
    ));
    rep.finish()
}

/// `dpr search` — demo incremental search over a synthetic corpus.
pub fn search(args: &Args) -> Result<(), String> {
    let rep = Reporter::from_args(args)?;
    let docs: usize = args.get("docs", 11_000)?;
    let vocab: u32 = args.get("vocab", 1880)?;
    let peers: usize = args.get("peers", 50)?;
    let seed: u64 = args.get("seed", 2003)?;
    let pct: f64 = args.get("top-percent", 10.0)?;
    if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
        return Err("--top-percent must be in (0, 100]".into());
    }

    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: docs,
        vocab_size: vocab,
        seed,
        ..Default::default()
    });
    let graph = PowerLawConfig::paper(docs, seed ^ 0xbeef).generate();
    let mut engine = ChaoticEngine::local(Arc::new(graph), EngineConfig::with_epsilon(1e-3));
    ExecMode::Sequential.run_static_observed(&mut engine, rep.recorder(), "search-pagerank");
    let ring = Ring::with_peers(peers);
    let index = DistributedIndex::build(&corpus, engine.ranks(), &ring);

    let terms: Vec<u32> = match args.optional("query") {
        Some(_) => args.get_list("query")?,
        None => corpus.top_terms(2),
    };
    for &t in &terms {
        if t >= vocab {
            return Err(format!("query term {t} out of vocabulary (0..{vocab})"));
        }
    }
    let q = Query::new(terms.clone());
    let base = execute_baseline(&index, &q, TrafficModel::AllHopsRemote);
    let cfg = IncrementalConfig {
        forward_fraction: pct / 100.0,
        min_forward: 20,
        traffic: TrafficModel::AllHopsRemote,
    };
    let incr = execute_incremental(&index, &q, cfg);
    rep.say(format!("query {terms:?} over {docs} docs / {peers} peers:"));
    rep.say(format!(
        "  baseline:    {} ids moved, {} hits returned",
        base.traffic_ids,
        base.hits_returned()
    ));
    rep.say(format!(
        "  top-{pct:.0}%:     {} ids moved, {} hits returned ({:.1}x less traffic)",
        incr.traffic_ids,
        incr.hits_returned(),
        base.traffic_ids as f64 / incr.traffic_ids.max(1) as f64
    ));
    if let (Some(b), Some(i)) = (base.hits.first(), incr.hits.first()) {
        rep.say(format!(
            "  best hit under both strategies: {} (rank {:.4})",
            b.doc, b.rank
        ));
        assert_eq!(b.doc, i.doc, "top hit must survive the cut");
    }
    rep.finish()
}

/// `dpr serve` — production query traffic against the live rank
/// computation, with latency SLOs.
///
/// Converges a cluster, builds the distributed index from the fixed
/// point, then serves a Poisson query stream *while* rank updates
/// propagate and (with `--churn F`) peers flap. Prints the latency
/// quantiles, per-query hop/byte averages, the rank-staleness gauge,
/// and the SLO table; the process exits nonzero when any SLO blows its
/// error budget, so CI can gate on the verdict directly. `--trace-out`
/// records the five per-query causal spans (`query_issued →
/// term_lookup → posting_ship → intersect → result_page`) plus the
/// `serving_health` summary event; `--prom-out` additionally carries
/// the latency and staleness sketches as Prometheus summary metrics.
/// Serving is pure observation: the rank schedule and final ranks are
/// bit-identical with and without it.
pub fn serve(args: &Args) -> Result<(), String> {
    use dpr_sim::serving::{serving_experiment, ServeStrategy, ServingConfig};
    use dpr_telemetry::SloSpec;

    let rep = Reporter::from_args(args)?;
    let churn: f64 = args.get("churn", 1.0)?;
    if !(0.0..=1.0).contains(&churn) || churn == 0.0 {
        return Err("--churn must be in (0, 1]".into());
    }
    let slo_p99_ms: f64 = args.get("slo-p99-ms", 2_000.0)?;
    let slo_budget: f64 = args.get("slo-budget", 0.10)?;
    let window_ms: f64 = args.get("window-ms", 1_000.0)?;
    if slo_p99_ms <= 0.0 || window_ms <= 0.0 {
        return Err("--slo-p99-ms and --window-ms must be positive".into());
    }
    let cfg = ServingConfig {
        num_docs: args.get("docs", 2_000)?,
        vocab_size: args.get("vocab", 400)?,
        num_peers: args.get("peers", 32)?,
        queries: args.get("queries", 100)?,
        query_len: args.get("query-len", 2)?,
        qps: args.get("qps", 20.0)?,
        updates: args.get("updates", 20)?,
        churn_fraction: churn,
        strategy: args.get(
            "strategy",
            ServeStrategy::Incremental {
                forward_fraction: 0.10,
            },
        )?,
        latency: args.get("latency", Default::default())?,
        sched: args.get("sched", dpr_core::SchedMode::Pass)?,
        epsilon: args.get("eps", 1e-4)?,
        seed: args.get("seed", 2003)?,
        slos: vec![SloSpec::new(
            "p99-latency",
            0.99,
            (slo_p99_ms * 1e6) as u64,
            slo_budget,
        )],
        window_ns: (window_ms * 1e6) as u64,
    };
    if cfg.queries == 0 {
        return Err("--queries must be positive".into());
    }

    let run = serving_experiment(&cfg, rep.recorder());
    let r = &run.report;
    rep.say(format!(
        "served {} queries ({} strategy, {} latency, {:.0} qps) over {} docs / {} peers \
         with {} concurrent updates, churn {:.0}% online",
        r.queries,
        r.strategy,
        r.latency,
        cfg.qps,
        cfg.num_docs,
        cfg.num_peers,
        r.updates,
        r.churn_fraction * 100.0
    ));
    rep.say(format!(
        "latency: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, p999 {:.1} ms (mean {:.1} ms)",
        r.p50_ns as f64 / 1e6,
        r.p95_ns as f64 / 1e6,
        r.p99_ns as f64 / 1e6,
        r.p999_ns as f64 / 1e6,
        r.mean_ns / 1e6
    ));
    rep.say(format!(
        "per query: {:.1} hops, {:.0} bytes shipped, {:.1} hits; total traffic {} ids; \
         rank staleness p99 {} ppm",
        r.avg_hops, r.avg_bytes, r.avg_hits, r.total_traffic_ids, r.stale_p99_ppm
    ));
    rep.say(format!(
        "rank computation: quiesced {} in {:.1} virtual ms, schedule fnv {:#018x}",
        r.quiesced,
        r.virtual_ns as f64 / 1e6,
        r.schedule_fnv
    ));
    rep.say("slo table:");
    for s in &r.slos {
        rep.say(format!(
            "  {:<14} p{:<4} <= {:>8.1} ms  windows {:>3}/{:<3} violated  \
             budget {:.2} spent {:.2}  overall {:.1} ms  [{}]",
            s.name,
            (s.quantile * 100.0).round() as u64,
            s.threshold_ns as f64 / 1e6,
            s.windows_violated,
            s.windows_total,
            s.budget,
            s.budget_spent,
            s.overall_quantile_ns as f64 / 1e6,
            if s.pass { "pass" } else { "FAIL" }
        ));
    }
    rep.finish()?;
    // The sketches ride along in the Prometheus snapshot as summary
    // metrics (quantile-labeled, mergeable across runs).
    if let Some(p) = args.optional("prom-out") {
        let summaries = dpr_telemetry::prom::render_summaries(&[
            (
                "dpr_query_latency_summary_ns",
                "End-to-end query latency quantiles.",
                &run.latency_sketch,
            ),
            (
                "dpr_rank_staleness_summary_ppm",
                "Rank staleness at query time vs the final fixed point.",
                &run.staleness_sketch,
            ),
        ]);
        let mut text = std::fs::read_to_string(p).map_err(|e| format!("reread {p}: {e}"))?;
        text.push_str(&summaries);
        std::fs::write(p, text).map_err(|e| format!("write {p}: {e}"))?;
        rep.say(format!("appended latency/staleness summaries to {p}"));
    }
    if r.slo_pass {
        rep.say("slo verdict: pass");
        Ok(())
    } else {
        Err("slo verdict: FAIL (an objective exceeded its error budget)".into())
    }
}

fn load_summary(path: &str) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("open {path}: {e}"))?;
    TraceSummary::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Compares the convergence and traffic series of two traces and
/// describes the first divergence (`Err`), or `Ok` when they agree.
fn diff_traces(
    a_name: &str,
    a: &TraceSummary,
    b_name: &str,
    b: &TraceSummary,
) -> Result<(), String> {
    // Convergence series, keyed by run label in a's order.
    for run in a.runs() {
        if !b.runs().iter().any(|r| r == run) {
            return Err(format!("run '{run}' is in {a_name} but not in {b_name}"));
        }
        let (ca, cb) = (a.convergence_curve(run), b.convergence_curve(run));
        for (pa, pb) in ca.iter().zip(&cb) {
            if pa.pass != pb.pass {
                return Err(format!(
                    "run '{run}' diverges at pass index: {} vs {}",
                    pa.pass, pb.pass
                ));
            }
            if pa.residual != pb.residual {
                return Err(format!(
                    "run '{run}' diverges at pass {}: residual {:e} vs {:e}",
                    pa.pass, pa.residual, pb.residual
                ));
            }
            if pa.active_docs != pb.active_docs {
                return Err(format!(
                    "run '{run}' diverges at pass {}: active docs {} vs {}",
                    pa.pass, pa.active_docs, pb.active_docs
                ));
            }
        }
        if ca.len() != cb.len() {
            return Err(format!(
                "run '{run}' diverges after pass {}: {} has {} checkpoints, {} has {}",
                ca.len().min(cb.len()),
                a_name,
                ca.len(),
                b_name,
                cb.len()
            ));
        }
    }
    for run in b.runs() {
        if !a.runs().iter().any(|r| r == run) {
            return Err(format!("run '{run}' is in {b_name} but not in {a_name}"));
        }
    }
    // Wire-traffic series, by round.
    let (ta, tb) = (a.traffic_by_round(), b.traffic_by_round());
    for (ra, rb) in ta.iter().zip(&tb) {
        if ra.round != rb.round {
            return Err(format!(
                "traffic diverges at round index: {} vs {}",
                ra.round, rb.round
            ));
        }
        for (field, va, vb) in [
            ("payloads", ra.payloads, rb.payloads),
            ("entries", ra.entries, rb.entries),
            ("bytes", ra.bytes, rb.bytes),
        ] {
            if va != vb {
                return Err(format!(
                    "traffic diverges at round {}: {field} {va} vs {vb}",
                    ra.round
                ));
            }
        }
    }
    if ta.len() != tb.len() {
        return Err(format!(
            "traffic diverges after round {}: {} has {} rounds, {} has {}",
            ta.len().min(tb.len()),
            a_name,
            ta.len(),
            b_name,
            tb.len()
        ));
    }
    Ok(())
}

fn report_unknown(path: &str, summary: &TraceSummary) {
    for u in summary.unknown_events() {
        println!(
            "{path}: note: {} unknown event(s) of kind {:?} skipped (first at line {})",
            u.count, u.kind, u.first_line
        );
    }
}

/// `dpr trace` — summarize, validate, or diff a JSONL telemetry trace
/// written by `--trace-out` or [`dpr_telemetry::TraceRecorder`].
pub fn trace(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let top: usize = args.get("top", 5)?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("open {input}: {e}"))?;
    let summary = TraceSummary::from_jsonl(&text).map_err(|e| format!("{input}: {e}"))?;

    if let Some(other) = args.optional("diff") {
        let other_summary = load_summary(other)?;
        report_unknown(input, &summary);
        report_unknown(other, &other_summary);
        diff_traces(input, &summary, other, &other_summary)?;
        println!(
            "{input} and {other} agree: {} run(s), {} traffic round(s) compared",
            summary.runs().len(),
            summary.traffic_by_round().len()
        );
        return Ok(());
    }

    if args.has("validate") {
        // Strict: unknown event kinds are schema violations here.
        dpr_telemetry::summary::parse_jsonl(&text).map_err(|e| format!("{input}: {e}"))?;
        summary
            .residual_monotone_after_last_injection()
            .map_err(|(run, pass, prev, next)| {
                format!(
                    "{input}: residual of run '{run}' increases at pass {pass}: {prev:e} -> {next:e}"
                )
            })?;
        println!(
            "{input}: {} events, schema-valid, residual monotone after last injection",
            summary.events().len()
        );
        return Ok(());
    }

    report_unknown(input, &summary);
    println!(
        "{input}: {} events, {} engine runs",
        summary.events().len(),
        summary.runs().len()
    );
    let runs: Vec<String> = match args.optional("run") {
        Some(r) => {
            if !summary.runs().iter().any(|x| x == r) {
                return Err(format!("no run labeled '{r}' in {input}"));
            }
            vec![r.to_string()]
        }
        None => summary.runs().to_vec(),
    };
    for run in &runs {
        let curve = summary.convergence_curve(run);
        if curve.is_empty() {
            continue;
        }
        println!("\nconvergence of run '{run}':");
        print!("{}", summary.render_convergence(run).render());
    }
    if !summary.traffic_by_round().is_empty() {
        println!("\nwire traffic by round:");
        print!("{}", summary.render_traffic().render());
    }
    if !summary.hottest_peers(top).is_empty() {
        println!("\ntop {top} hottest peers:");
        print!("{}", summary.render_hottest_peers(top).render());
    }
    if summary.chaotic_health().is_some() {
        println!("\nchaotic runtime health:");
        print!("{}", summary.render_chaotic_health().render());
    }
    if summary.serving_health().is_some() {
        println!("\nserving health:");
        print!("{}", summary.render_serving_health().render());
    }
    Ok(())
}

/// `dpr doctor` — the flight recorder's diagnostic front end.
///
/// Default mode runs the message-level cluster scenario with the
/// recorder on, evaluates the three invariant monitors over the trace,
/// and prints the pass/fail diagnosis table; `--inject-fault
/// mass-leak|dup-frame|lost-frame` stages one transport corruption to
/// prove the owning monitor fires (the verdict then exits nonzero).
/// `--input` audits an existing trace instead of running one;
/// `--capture-out` records a deterministic replay capture of the
/// continuous-update scenario; `--replay` re-executes such a capture
/// and verifies the bit-exact fingerprint. `--run-mode chaotic` runs
/// the scenario under the event-driven runtime (with `--latency`
/// picking the network model); chaotic captures (v3) additionally pin
/// the executed event schedule, so a replay certifies the run took the
/// same events at the same virtual times.
pub fn doctor(args: &Args) -> Result<(), String> {
    use dpr_sim::event::LatencyModel;
    use dpr_sim::flight::{self, FlightConfig};
    let quiet = args.has("quiet");
    let say = |line: String| {
        if !quiet {
            println!("{line}");
        }
    };
    let threads: usize = args.get("threads", 1)?;
    let mode = ExecMode::from_threads(Some(threads));
    let codec: dpr_p2p::transport::WireCodec = args.get("codec", Default::default())?;
    let run_mode: dpr_core::RunMode = args.get("run-mode", Default::default())?;
    let latency: LatencyModel = args.get("latency", Default::default())?;

    // Replay mode: prove a capture reproduces bit for bit. A capture
    // recorded under a different wire codec is refused outright —
    // compact quantizes to f32, so its fingerprint says nothing about
    // a raw run (and vice versa).
    if let Some(path) = args.optional("replay") {
        let capture =
            Capture::read(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        let out = flight::replay_under_codec(&capture, mode, codec)
            .map_err(|e| format!("{path}: {e}"))?;
        say(format!(
            "{path}: replay matched — {} docs, {} passes, {} remote messages, \
             ranks fnv {:#018x}",
            out.ranks.len(),
            out.passes,
            out.remote_messages,
            capture.fingerprint.ranks_fnv,
        ));
        return Ok(());
    }

    let docs: usize = args.get("docs", 1_200)?;
    let peers: usize = args.get("peers", 24)?;
    let eps: f64 = args.get("eps", 1e-4)?;
    let seed: u64 = args.get("seed", 2003)?;

    // Capture mode: record the replayable continuous-update flight.
    if let Some(out) = args.optional("capture-out") {
        let cfg = FlightConfig {
            nodes: docs,
            num_peers: peers,
            inserts: args.get("inserts", 6)?,
            checkpoints: args.get("checkpoints", 2)?,
            epsilon: eps,
            seed,
            sched: args.get("sched", dpr_core::SchedMode::Pass)?,
            codec,
            run_mode,
            latency,
        };
        let (capture, outcome) = flight::record(&cfg, mode);
        capture
            .write(std::path::Path::new(out))
            .map_err(|e| format!("write {out}: {e}"))?;
        say(format!(
            "wrote {out}: {} injections, fingerprint over {} ranks \
             ({} passes, {} remote messages)",
            capture.injections.len(),
            outcome.ranks.len(),
            outcome.passes,
            outcome.remote_messages,
        ));
        return Ok(());
    }

    // Audit: an ingested trace, or a fresh instrumented scenario run.
    let (report, source) = if let Some(input) = args.optional("input") {
        let summary = load_summary(input)?;
        if !quiet {
            report_unknown(input, &summary);
        }
        say(format!(
            "{input}: auditing {} events",
            summary.events().len()
        ));
        (AuditReport::evaluate(summary.events()), input.to_string())
    } else {
        let fault = match args.optional("inject-fault") {
            Some(kind) => Some(dpr_p2p::transport::FaultPlan {
                kind: kind.parse()?,
                nth_send: args.get("fault-at", 25)?,
            }),
            None => None,
        };
        let run = flight::doctor_run_mode(
            docs,
            peers,
            eps,
            seed,
            dpr_node::node::WireMode::frames(),
            codec,
            fault,
            args.get("sched", dpr_core::SchedMode::Pass)?,
            run_mode,
            latency,
        );
        let unit = match run_mode {
            dpr_core::RunMode::Rounds => "rounds",
            dpr_core::RunMode::Chaotic => "steps",
        };
        say(format!(
            "scenario: {docs} docs on {peers} peers, ε {eps}, {run_mode} mode: \
             {} {unit}, quiesced: {}",
            run.rounds, run.quiesced
        ));
        if let Some(plan) = fault {
            match run.fault_fired_at {
                Some(n) => say(format!("staged fault {} fired at send {n}", plan.kind)),
                None => {
                    return Err(format!(
                        "staged fault {} never fired (too few sends?)",
                        plan.kind
                    ))
                }
            }
        }
        if let Some(p) = args.optional("trace-out") {
            let mut text = String::new();
            for e in &run.events {
                text.push_str(&serde_json::to_string(e).map_err(|e| e.to_string())?);
                text.push('\n');
            }
            std::fs::write(p, text).map_err(|e| format!("write {p}: {e}"))?;
            say(format!("wrote {p} ({} events)", run.events.len()));
        }
        (run.report, "doctor run".to_string())
    };

    if !quiet {
        print!("{}", report.render().render());
    }
    if report.passed() {
        say(report.diagnosis());
        Ok(())
    } else {
        Err(format!("{source}: {}", report.diagnosis()))
    }
}

/// `dpr profile` — the causal critical-path profiler for the chaotic
/// runtime.
///
/// Three sources, one pipeline: a fresh live run (default, with the
/// same scenario knobs as `dpr doctor` plus `--sched`), a re-executed
/// Capture v3 (`--replay`, chaotic captures only — the replay is
/// fingerprint-verified first, so the profile describes a proven
/// bit-exact schedule), or an already-recorded trace JSONL with
/// `span_closed` events (`--input`). Each chaotic segment becomes one
/// [`Profile`]: the compute/wire/wait breakdown of the virtual
/// wall-clock, the critical path from the quiescence announcement back
/// to the seed, per-link utilization, and per-peer convergence lag.
/// The breakdown is checked to telescope exactly to the segment's
/// virtual time — a mismatch is a profiler bug and exits nonzero.
/// `--perfetto-out` writes all segments as Chrome trace-event JSON
/// (load in Perfetto; the clock is virtual nanoseconds).
pub fn profile(args: &Args) -> Result<(), String> {
    use dpr_sim::event::LatencyModel;
    use dpr_sim::flight;
    use dpr_telemetry::profile::chrome_trace;
    use dpr_telemetry::{Profile, TraceRecorder};

    let quiet = args.has("quiet");
    let say = |line: String| {
        if !quiet {
            println!("{line}");
        }
    };
    let top: usize = args.get("top", 8)?;

    let segments: Vec<Profile> = if let Some(input) = args.optional("input") {
        let summary = load_summary(input)?;
        if !quiet {
            report_unknown(input, &summary);
        }
        let segs =
            Profile::segments_from_events(summary.events()).map_err(|e| format!("{input}: {e}"))?;
        if segs.is_empty() {
            return Err(format!(
                "{input}: no span_closed events — record the trace from a chaotic run \
                 (e.g. dpr doctor --run-mode chaotic --trace-out FILE)"
            ));
        }
        say(format!(
            "{input}: {} chaotic segment(s) in {} events",
            segs.len(),
            summary.events().len()
        ));
        segs
    } else if let Some(path) = args.optional("replay") {
        let capture =
            Capture::read(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        if capture.header.run_mode != "chaotic" {
            return Err(format!(
                "{path}: capture records run mode \"{}\" — only chaotic captures carry \
                 the virtual-time schedule this profiler attributes; re-record with \
                 --run-mode chaotic",
                capture.header.run_mode
            ));
        }
        let threads: usize = args.get("threads", 1)?;
        let rec = TraceRecorder::new();
        let out = flight::replay_observed(&capture, ExecMode::from_threads(Some(threads)), &rec)
            .map_err(|e| format!("{path}: {e}"))?;
        let segs = Profile::segments_from_events(&rec.events())
            .map_err(|e| format!("{path}: replayed trace: {e}"))?;
        say(format!(
            "{path}: replay matched (schedule fnv {:#018x}); {} chaotic segment(s)",
            out.schedule_fnv,
            segs.len()
        ));
        segs
    } else {
        let docs: usize = args.get("docs", 1_200)?;
        let peers: usize = args.get("peers", 24)?;
        let eps: f64 = args.get("eps", 1e-4)?;
        let seed: u64 = args.get("seed", 2003)?;
        let sched: dpr_core::SchedMode = args.get("sched", dpr_core::SchedMode::Pass)?;
        let codec: dpr_p2p::transport::WireCodec = args.get("codec", Default::default())?;
        let latency: LatencyModel = args.get("latency", Default::default())?;
        let fault = match args.optional("inject-fault") {
            Some(kind) => Some(dpr_p2p::transport::FaultPlan {
                kind: kind.parse()?,
                nth_send: args.get("fault-at", 25)?,
            }),
            None => None,
        };
        let run = flight::profile_run(docs, peers, eps, seed, sched, codec, latency, fault);
        say(format!(
            "scenario: {docs} docs on {peers} peers, ε {eps}, {sched} sched, {latency} \
             latency: {} steps in {:.3} virtual ms, quiesced: {}",
            run.outcome.steps,
            run.outcome.virtual_ns as f64 / 1e6,
            run.outcome.quiesced
        ));
        if let Some(plan) = fault {
            match run.fault_fired_at {
                Some(n) => say(format!("staged fault {} fired at send {n}", plan.kind)),
                None => {
                    return Err(format!(
                        "staged fault {} never fired (too few sends?)",
                        plan.kind
                    ))
                }
            }
        }
        vec![run.profile]
    };

    // The profiler's own acceptance gate: every segment's attribution
    // must telescope exactly — compute + wire + wait == the segment's
    // virtual wall-clock, to the nanosecond. Anything else means the
    // span model dropped or double-counted time.
    for (i, seg) in segments.iter().enumerate() {
        if !seg.breakdown_is_exact() {
            return Err(format!(
                "segment {i}: breakdown does not telescope: compute {} + wire {} + wait {} \
                 != virtual {} ns (profiler invariant violated)",
                seg.compute_ns, seg.wire_ns, seg.wait_ns, seg.virtual_ns
            ));
        }
    }

    if let Some(out) = args.optional("perfetto-out") {
        let json = serde_json::to_string(&chrome_trace(&segments)).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
        say(format!(
            "wrote {out}: {} segment(s) as Chrome trace events on the virtual clock",
            segments.len()
        ));
    }

    let idx = match args.optional("segment") {
        Some(s) => {
            let i: usize = s
                .parse()
                .map_err(|_| format!("flag --segment: cannot parse '{s}'"))?;
            if i >= segments.len() {
                return Err(format!(
                    "--segment {i} out of range (trace has {} segments)",
                    segments.len()
                ));
            }
            i
        }
        // Default to the longest segment: reconvergence after the
        // injection wave, which is where the convergence time goes.
        None => segments
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.virtual_ns)
            .map(|(i, _)| i)
            .unwrap_or(0),
    };
    if segments.len() > 1 && !quiet {
        println!("\nsegments (chaotic reconvergences, in run order):");
        for (i, p) in segments.iter().enumerate() {
            let mark = if i == idx { " <- shown" } else { "" };
            println!(
                "  [{i}] {:>10.3} virtual ms, {:>6} steps, compute {:>5.1}% \
                 wire {:>5.1}% wait {:>5.1}%{mark}",
                p.virtual_ns as f64 / 1e6,
                p.steps(),
                p.compute_pct(),
                p.wire_pct(),
                p.wait_pct()
            );
        }
    }
    if !quiet {
        let p = &segments[idx];
        println!("\ncritical-path breakdown of segment {idx}:");
        print!("{}", p.render_breakdown());
        println!("\ntop {top} critical-path segments (announcement -> seed):");
        print!("{}", p.render_path(top));
        if !p.links.is_empty() {
            println!("\ntop {top} links by wire time:");
            print!("{}", p.render_links(top));
        }
        if !p.peers.is_empty() {
            println!("\ntop {top} peers by mean inbox wait:");
            print!("{}", p.render_peer_lag(top));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    fn graph_file(dir: &std::path::Path, nodes: usize) -> String {
        let path = dir.join("g.bin");
        let g = PowerLawConfig::paper(nodes, 1).generate();
        io::write_binary(&g, File::create(&path).unwrap()).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dpr-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn generate_and_stats_roundtrip() {
        let dir = tmpdir("gen");
        let out = dir.join("g.bin");
        generate(&args(&format!("--nodes 500 --out {}", out.display()))).unwrap();
        stats(&args(&format!("--graph {}", out.display()))).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rank_distributed_and_sync() {
        let dir = tmpdir("rank");
        let g = graph_file(&dir, 400);
        let ranks_out = dir.join("ranks.json");
        rank(&args(&format!(
            "--graph {g} --eps 1e-4 --peers 10 --out {}",
            ranks_out.display()
        )))
        .unwrap();
        let text = std::fs::read_to_string(&ranks_out).unwrap();
        let ranks: Vec<f64> = serde_json::from_str(&text).unwrap();
        assert_eq!(ranks.len(), 400);
        rank(&args(&format!("--graph {g} --sync --eps 1e-8"))).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rank_priority_sched_matches_pass_to_epsilon() {
        let dir = tmpdir("sched");
        let g = graph_file(&dir, 400);
        let pass_out = dir.join("pass.json");
        let pri_out = dir.join("priority.json");
        rank(&args(&format!(
            "--graph {g} --eps 1e-6 --peers 10 --quiet --out {}",
            pass_out.display()
        )))
        .unwrap();
        rank(&args(&format!(
            "--graph {g} --eps 1e-6 --peers 10 --sched priority --quiet --out {}",
            pri_out.display()
        )))
        .unwrap();
        let pass: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&pass_out).unwrap()).unwrap();
        let pri: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&pri_out).unwrap()).unwrap();
        let l1: f64 = pass.iter().zip(&pri).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 / 400.0 < 1e-6, "l1 per doc {}", l1 / 400.0);
        assert!(
            rank(&args(&format!("--graph {g} --sched bogus"))).is_err(),
            "bad sched mode must be a clean error"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_reports() {
        let dir = tmpdir("part");
        let g = graph_file(&dir, 600);
        partition(&args(&format!("--graph {g} --peers 6"))).unwrap();
        assert!(partition(&args(&format!("--graph {g} --peers 0"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn insert_and_delete_waves() {
        let dir = tmpdir("ins");
        let g = graph_file(&dir, 300);
        insert(&args(&format!("--graph {g} --links 1,2,3"))).unwrap();
        delete(&args(&format!("--graph {g} --doc 5"))).unwrap();
        assert!(insert(&args(&format!("--graph {g} --links 9999"))).is_err());
        assert!(delete(&args(&format!("--graph {g} --doc 9999"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_demo_runs_small() {
        search(&args("--docs 800 --vocab 200 --peers 10 --top-percent 10")).unwrap();
        assert!(search(&args("--docs 800 --vocab 200 --top-percent 0")).is_err());
        assert!(search(&args("--docs 800 --vocab 200 --query 9999")).is_err());
    }

    #[test]
    fn missing_graph_file_is_a_clean_error() {
        let e = stats(&args("--graph /nonexistent/g.bin")).unwrap_err();
        assert!(e.contains("open"), "{e}");
    }

    #[test]
    fn rank_trace_roundtrips_through_trace_subcommand() {
        let dir = tmpdir("trace");
        let g = graph_file(&dir, 400);
        let trace_out = dir.join("trace.jsonl");
        let prom_out = dir.join("metrics.prom");
        rank(&args(&format!(
            "--graph {g} --eps 1e-4 --peers 10 --quiet --trace-out {} --prom-out {}",
            trace_out.display(),
            prom_out.display()
        )))
        .unwrap();

        let text = std::fs::read_to_string(&trace_out).unwrap();
        let summary = TraceSummary::from_jsonl(&text).unwrap();
        assert_eq!(summary.runs(), ["rank".to_string()]);
        assert!(!summary.convergence_curve("rank").is_empty());
        summary.residual_monotone_after_last_injection().unwrap();

        let prom = std::fs::read_to_string(&prom_out).unwrap();
        assert!(prom.contains("dpr_events_recorded_total"), "{prom}");

        let input = trace_out.display().to_string();
        trace(&args(&format!("--input {input}"))).unwrap();
        trace(&args(&format!("--input {input} --validate"))).unwrap();
        trace(&args(&format!("--input {input} --run rank"))).unwrap();
        assert!(trace(&args(&format!("--input {input} --run nope"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_trace_is_a_clean_error() {
        let dir = tmpdir("badtrace");
        let p = dir.join("bad.jsonl");
        // Corruption (not JSON) fails on every path.
        std::fs::write(&p, "not json\n").unwrap();
        let e = trace(&args(&format!("--input {}", p.display()))).unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        // An unknown-but-well-formed kind is schema drift: the default
        // path tolerates (and reports) it, `--validate` rejects it.
        std::fs::write(&p, "{\"type\":\"mystery\"}\n").unwrap();
        trace(&args(&format!("--input {}", p.display()))).unwrap();
        let e = trace(&args(&format!("--input {} --validate", p.display()))).unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_diff_finds_first_divergence() {
        let dir = tmpdir("diff");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        let line = |pass: u64, residual: f64| {
            format!(
                "{{\"type\":\"convergence_check\",\"run\":\"r\",\"pass\":{pass},\
                 \"active_docs\":3,\"residual\":{residual}}}\n"
            )
        };
        let frame = |round: u64, bytes: u64| {
            format!(
                "{{\"type\":\"frame_sent\",\"round\":{round},\"from\":0,\"to\":1,\
                 \"entries\":2,\"bytes\":{bytes}}}\n"
            )
        };
        std::fs::write(
            &a,
            format!("{}{}{}", line(1, 0.5), line(2, 0.25), frame(1, 36)),
        )
        .unwrap();

        // Identical traces agree.
        std::fs::write(
            &b,
            format!("{}{}{}", line(1, 0.5), line(2, 0.25), frame(1, 36)),
        )
        .unwrap();
        trace(&args(&format!(
            "--input {} --diff {}",
            a.display(),
            b.display()
        )))
        .unwrap();

        // Residual divergence names the run, pass, and field.
        std::fs::write(
            &b,
            format!("{}{}{}", line(1, 0.5), line(2, 0.125), frame(1, 36)),
        )
        .unwrap();
        let e = trace(&args(&format!(
            "--input {} --diff {}",
            a.display(),
            b.display()
        )))
        .unwrap_err();
        assert!(e.contains("pass 2") && e.contains("residual"), "{e}");

        // Traffic divergence names the round and field.
        std::fs::write(
            &b,
            format!("{}{}{}", line(1, 0.5), line(2, 0.25), frame(1, 52)),
        )
        .unwrap();
        let e = trace(&args(&format!(
            "--input {} --diff {}",
            a.display(),
            b.display()
        )))
        .unwrap_err();
        assert!(e.contains("round 1") && e.contains("bytes"), "{e}");

        // A missing run is a divergence, not a silent pass.
        std::fs::write(&b, frame(1, 36)).unwrap();
        let e = trace(&args(&format!(
            "--input {} --diff {}",
            a.display(),
            b.display()
        )))
        .unwrap_err();
        assert!(e.contains("run 'r'"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doctor_clean_run_passes_and_faults_exit_nonzero() {
        let dir = tmpdir("doctor");
        let trace_out = dir.join("doctor.jsonl");
        doctor(&args(&format!(
            "--docs 600 --peers 8 --eps 1e-4 --seed 21 --quiet --trace-out {}",
            trace_out.display()
        )))
        .unwrap();

        // The saved trace re-audits clean through --input.
        doctor(&args(&format!("--input {} --quiet", trace_out.display()))).unwrap();

        // Each staged fault turns the verdict into an error naming its
        // owning monitor.
        for (fault, monitor) in [
            ("mass-leak", "mass-conservation"),
            ("dup-frame", "message-balance"),
            ("lost-frame", "quiescence"),
        ] {
            let e = doctor(&args(&format!(
                "--docs 600 --peers 8 --eps 1e-4 --seed 21 --quiet --inject-fault {fault}"
            )))
            .unwrap_err();
            assert!(e.contains(monitor), "{fault}: {e}");
            assert!(e.contains(fault), "{fault}: {e}");
        }
        assert!(doctor(&args("--inject-fault warp-core --quiet")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doctor_capture_roundtrips_through_replay() {
        let dir = tmpdir("capture");
        let cap = dir.join("cap.jsonl");
        doctor(&args(&format!(
            "--docs 800 --peers 16 --eps 1e-3 --seed 7 --inserts 4 --checkpoints 2 \
             --quiet --capture-out {}",
            cap.display()
        )))
        .unwrap();
        // Replays cleanly under both executors.
        doctor(&args(&format!("--quiet --replay {}", cap.display()))).unwrap();
        doctor(&args(&format!(
            "--quiet --threads 4 --replay {}",
            cap.display()
        )))
        .unwrap();
        // A raw capture replayed under --codec compact is refused
        // with the codec named, before any fingerprint comparison.
        let e = doctor(&args(&format!(
            "--quiet --codec compact --replay {}",
            cap.display()
        )))
        .unwrap_err();
        assert!(e.contains("recorded under wire codec \"raw\""), "{e}");
        // A pre-versioning (v1) capture is refused by version.
        let text = std::fs::read_to_string(&cap).unwrap();
        let v1 = text.replacen("\"version\":3", "\"version\":1", 1).replacen(
            ",\"codec\":\"raw\"",
            "",
            1,
        );
        assert_ne!(text, v1);
        let old = dir.join("v1.jsonl");
        std::fs::write(&old, v1).unwrap();
        let e = doctor(&args(&format!("--quiet --replay {}", old.display()))).unwrap_err();
        assert!(e.contains("capture version 1"), "{e}");
        // A tampered fingerprint is caught.
        let tampered = text.replacen("\"passes\":", "\"passes\":1", 1);
        assert_ne!(text, tampered);
        std::fs::write(&cap, tampered).unwrap();
        let e = doctor(&args(&format!("--quiet --replay {}", cap.display()))).unwrap_err();
        assert!(e.contains("passes"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_live_replay_and_trace_input_all_work() {
        let dir = tmpdir("profile");

        // Live run prints (and gates) the causal profile.
        profile(&args(
            "--docs 400 --peers 8 --eps 1e-4 --seed 21 --sched priority --latency lan",
        ))
        .unwrap();

        // A chaotic capture profiles through the fingerprint-verified
        // replay, and the perfetto export is well-formed trace JSON.
        let cap = dir.join("cap.jsonl");
        doctor(&args(&format!(
            "--docs 400 --peers 8 --eps 1e-3 --seed 9 --inserts 2 --checkpoints 1 \
             --run-mode chaotic --latency lan --quiet --capture-out {}",
            cap.display()
        )))
        .unwrap();
        let pft = dir.join("profile.json");
        profile(&args(&format!(
            "--quiet --replay {} --perfetto-out {}",
            cap.display(),
            pft.display()
        )))
        .unwrap();
        let json = std::fs::read_to_string(&pft).unwrap();
        assert!(
            json.contains("\"traceEvents\""),
            "perfetto export missing traceEvents"
        );
        assert!(
            json.contains("\"cat\":\"compute\"") && json.contains("\"cat\":\"wire\""),
            "perfetto export missing compute/wire events"
        );

        // Explicit segment selection; out-of-range is a clean error.
        profile(&args(&format!(
            "--quiet --replay {} --segment 0",
            cap.display()
        )))
        .unwrap();
        let e = profile(&args(&format!(
            "--quiet --replay {} --segment 99",
            cap.display()
        )))
        .unwrap_err();
        assert!(e.contains("out of range"), "{e}");

        // A rounds-mode capture is refused with the mode named.
        let rcap = dir.join("rounds.jsonl");
        doctor(&args(&format!(
            "--docs 400 --peers 8 --eps 1e-3 --seed 9 --inserts 2 --checkpoints 1 \
             --quiet --capture-out {}",
            rcap.display()
        )))
        .unwrap();
        let e = profile(&args(&format!("--quiet --replay {}", rcap.display()))).unwrap_err();
        assert!(e.contains("\"rounds\""), "{e}");

        // A recorded chaotic trace profiles through --input; a rounds
        // trace (no span_closed events) is a clean error.
        let tr = dir.join("trace.jsonl");
        doctor(&args(&format!(
            "--docs 400 --peers 8 --eps 1e-3 --seed 9 --run-mode chaotic --quiet \
             --trace-out {}",
            tr.display()
        )))
        .unwrap();
        profile(&args(&format!("--input {} --top 3 --quiet", tr.display()))).unwrap();
        let rtr = dir.join("rounds-trace.jsonl");
        doctor(&args(&format!(
            "--docs 400 --peers 8 --eps 1e-3 --seed 9 --quiet --trace-out {}",
            rtr.display()
        )))
        .unwrap();
        let e = profile(&args(&format!("--input {} --quiet", rtr.display()))).unwrap_err();
        assert!(e.contains("no span_closed events"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doctor_chaotic_mode_runs_and_captures_roundtrip() {
        let dir = tmpdir("chaotic");
        // A clean chaotic diagnostic run passes the monitors; a staged
        // lost frame still lands on the quiescence monitor.
        doctor(&args(
            "--docs 500 --peers 8 --eps 1e-4 --seed 21 --run-mode chaotic --quiet",
        ))
        .unwrap();
        let e = doctor(&args(
            "--docs 500 --peers 8 --eps 1e-4 --seed 21 --run-mode chaotic \
             --inject-fault lost-frame --quiet",
        ))
        .unwrap_err();
        assert!(e.contains("quiescence"), "{e}");

        // Chaotic captures replay, and refuse when the recorded event
        // schedule diverges.
        let cap = dir.join("chaotic.jsonl");
        doctor(&args(&format!(
            "--docs 400 --peers 8 --eps 1e-3 --seed 9 --inserts 2 --checkpoints 1 \
             --run-mode chaotic --latency lan --quiet --capture-out {}",
            cap.display()
        )))
        .unwrap();
        doctor(&args(&format!("--quiet --replay {}", cap.display()))).unwrap();
        let text = std::fs::read_to_string(&cap).unwrap();
        assert!(text.contains("\"run_mode\":\"chaotic\""), "{text}");
        let mut tampered = Capture::read(&cap).unwrap();
        tampered.fingerprint.schedule_fnv ^= 1;
        tampered.write(&cap).unwrap();
        let e = doctor(&args(&format!("--quiet --replay {}", cap.display()))).unwrap_err();
        assert!(e.contains("schedule_fnv"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
