//! Flag parsing for the `dpr` subcommands.
//!
//! Deliberately tiny: `--key value` pairs and bare `--switch`es, with
//! typed accessors that produce readable errors instead of panics
//! (this is user-facing, unlike the experiment binaries).

use std::collections::HashMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses a flag list; positional arguments are errors.
    pub fn parse(argv: Vec<String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if name.is_empty() {
                return Err("empty flag '--'".into());
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(name.to_string(), it.next().unwrap());
                }
                _ => out.switches.push(name.to_string()),
            }
        }
        Ok(out)
    }

    /// Whether a bare switch is present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A typed flag with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// A required typed flag.
    pub fn get_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let v = self.required(name)?;
        v.parse()
            .map_err(|_| format!("flag --{name}: cannot parse '{v}'"))
    }

    /// A comma-separated list of typed values.
    pub fn get_list<T: std::str::FromStr>(&self, name: &str) -> Result<Vec<T>, String> {
        match self.values.get(name) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| format!("flag --{name}: cannot parse '{s}'"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn values_switches_lists() {
        let a = parse("--nodes 100 --json --links 1,2,3");
        assert_eq!(a.get::<usize>("nodes", 0).unwrap(), 100);
        assert!(a.has("json"));
        assert_eq!(a.get_list::<u32>("links").unwrap(), vec![1, 2, 3]);
        assert_eq!(a.get::<f64>("eps", 0.5).unwrap(), 0.5);
    }

    #[test]
    fn missing_required_is_an_error() {
        let a = parse("--nodes 100");
        assert!(a.required("graph").is_err());
        assert!(a.get_required::<usize>("graph").is_err());
    }

    #[test]
    fn bad_parse_is_an_error_not_a_panic() {
        let a = parse("--nodes lots");
        assert!(a.get::<usize>("nodes", 0).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(Args::parse(vec!["loose".into()]).is_err());
    }

    #[test]
    fn empty_list_when_absent() {
        let a = parse("");
        assert!(a.get_list::<u32>("links").unwrap().is_empty());
    }
}
