//! Prometheus text-format exposition of a [`TraceRecorder`] snapshot.
//!
//! Counters render as `<name>_total`; histograms render with
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, per
//! the Prometheus exposition format. Empty histogram buckets are
//! skipped (except the mandatory `+Inf`) to keep snapshots small —
//! cumulative values stay correct because the running total carries
//! across skipped buckets.

//! Quantile sketches ([`crate::quantile::QuantileSketch`]) render as
//! Prometheus *summary* metrics via [`render_summary`]: pre-computed
//! `{quantile="..."}` gauge lines plus `_sum`/`_count`, which is the
//! exposition shape for client-side quantiles (a histogram would
//! re-derive them server-side from coarser buckets).

use crate::hist::{bucket_upper_bound, BUCKETS};
use crate::metric::{Metric, MetricKind};
use crate::quantile::QuantileSketch;
use crate::recorder::TraceRecorder;
use std::fmt::Write;

/// Quantile labels emitted for every summary.
const SUMMARY_QUANTILES: [(f64, &str); 4] = [
    (0.50, "0.5"),
    (0.95, "0.95"),
    (0.99, "0.99"),
    (0.999, "0.999"),
];

/// Renders the full snapshot.
pub fn render(rec: &TraceRecorder) -> String {
    let mut out = String::new();
    for &metric in Metric::ALL {
        match metric.kind() {
            MetricKind::Counter => render_counter(&mut out, metric, rec.counter(metric)),
            MetricKind::Histogram => render_histogram(&mut out, metric, rec),
        }
    }
    out
}

fn render_counter(out: &mut String, metric: Metric, value: u64) {
    let name = metric.name();
    let _ = writeln!(out, "# HELP {name}_total {}", metric.help());
    let _ = writeln!(out, "# TYPE {name}_total counter");
    let _ = writeln!(out, "{name}_total {value}");
}

fn render_histogram(out: &mut String, metric: Metric, rec: &TraceRecorder) {
    let name = metric.name();
    let h = rec.histogram(metric);
    let snap = h.snapshot();
    let _ = writeln!(out, "# HELP {name} {}", metric.help());
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in snap.iter().enumerate() {
        cumulative += c;
        if c == 0 {
            continue;
        }
        // The last bucket's bound is the +Inf line below.
        if i == BUCKETS - 1 {
            continue;
        }
        let le = bucket_upper_bound(i);
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Renders one quantile sketch as a Prometheus summary named `name`.
pub fn render_summary(out: &mut String, name: &str, help: &str, sketch: &QuantileSketch) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, label) in SUMMARY_QUANTILES {
        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", sketch.quantile(q));
    }
    let _ = writeln!(out, "{name}_sum {}", sketch.sum());
    let _ = writeln!(out, "{name}_count {}", sketch.count());
}

/// Renders a batch of named sketches as summaries, in order.
pub fn render_summaries(sketches: &[(&str, &str, &QuantileSketch)]) -> String {
    let mut out = String::new();
    for (name, help, sketch) in sketches {
        render_summary(&mut out, name, help, sketch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn counters_render_with_total_suffix() {
        let r = TraceRecorder::new();
        r.counter_add(Metric::RemoteUpdates, 12);
        let text = render(&r);
        assert!(text.contains("# TYPE dpr_remote_updates_total counter"));
        assert!(text.contains("\ndpr_remote_updates_total 12\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let r = TraceRecorder::new();
        r.observe(Metric::RouteHops, 1);
        r.observe(Metric::RouteHops, 1);
        r.observe(Metric::RouteHops, 6);
        let text = render(&r);
        assert!(text.contains("# TYPE dpr_route_hops histogram"));
        assert!(text.contains("dpr_route_hops_bucket{le=\"1\"} 2"));
        assert!(text.contains("dpr_route_hops_bucket{le=\"7\"} 3"));
        assert!(text.contains("dpr_route_hops_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dpr_route_hops_sum 8"));
        assert!(text.contains("dpr_route_hops_count 3"));
    }

    #[test]
    fn every_metric_appears_even_when_empty() {
        let text = render(&TraceRecorder::new());
        for m in Metric::ALL {
            assert!(text.contains(m.name()), "{} missing", m.name());
        }
        // Empty histograms still expose the mandatory +Inf bucket.
        assert!(text.contains("dpr_flush_occupancy_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn sketches_render_as_summaries() {
        let mut s = QuantileSketch::new();
        for v in 1..=100u64 {
            s.observe(v);
        }
        let text = render_summaries(&[("dpr_query_latency_ns_summary", "latency", &s)]);
        assert!(text.contains("# TYPE dpr_query_latency_ns_summary summary"));
        assert!(text.contains("dpr_query_latency_ns_summary{quantile=\"0.5\"} 50"));
        assert!(text.contains("dpr_query_latency_ns_summary{quantile=\"0.999\"} 100"));
        assert!(text.contains("dpr_query_latency_ns_summary_count 100"));
        assert!(text.contains("dpr_query_latency_ns_summary_sum 5050"));
    }
}
