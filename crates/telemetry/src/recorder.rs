//! The [`Recorder`] sink trait, its no-op default, and the real
//! [`TraceRecorder`].
//!
//! Instrumented call sites are generic over `R: Recorder` (hot loops)
//! or hold a `&dyn Recorder` / `Arc<dyn Recorder>` (long-lived
//! structs). With [`NoopRecorder`] every method is an empty inlineable
//! body and `enabled()` is a constant `false`, so guarded blocks fold
//! away entirely — the zero-perturbation contract the differential
//! tests assert.

use crate::counter::Counter;
use crate::event::Event;
use crate::hist::Histogram;
use crate::metric::{Metric, MetricKind};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A telemetry sink. All methods take `&self`: recorders are shared
/// across the executor's worker threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Call sites guard
    /// non-trivial event construction (residual scans, timestamp
    /// reads) on this.
    fn enabled(&self) -> bool {
        false
    }

    /// Records a structured event.
    fn event(&self, _event: &Event) {}

    /// Adds to a counter metric.
    fn counter_add(&self, _metric: Metric, _delta: u64) {}

    /// Records one observation into a histogram metric.
    fn observe(&self, _metric: Metric, _value: u64) {}
}

/// The recorder that records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A shared no-op instance for call sites that want a `&'static dyn`.
pub static NOOP: NoopRecorder = NoopRecorder;

/// Times a scope and records the elapsed nanoseconds into a histogram
/// metric on drop. Constructing one against a disabled recorder skips
/// the clock read.
pub struct Span<'a, R: Recorder + ?Sized> {
    rec: &'a R,
    metric: Metric,
    start: Option<std::time::Instant>,
}

impl<'a, R: Recorder + ?Sized> Span<'a, R> {
    /// Starts a span (no-op when the recorder is disabled).
    pub fn start(rec: &'a R, metric: Metric) -> Self {
        let start = rec.enabled().then(std::time::Instant::now);
        Span { rec, metric, start }
    }
}

impl<R: Recorder + ?Sized> Drop for Span<'_, R> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.observe(self.metric, ns);
        }
    }
}

/// The real sink: striped counters and atomic histograms for every
/// registered [`Metric`], an in-memory event aggregate, and an
/// optional JSONL file the events stream to as they happen.
pub struct TraceRecorder {
    counters: Vec<Counter>,
    histograms: Vec<Histogram>,
    events: Mutex<Vec<Event>>,
    sink: Option<Mutex<BufWriter<File>>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("events", &self.events.lock().unwrap().len())
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// An in-memory recorder (no trace file).
    pub fn new() -> Self {
        TraceRecorder {
            counters: Metric::ALL.iter().map(|_| Counter::new()).collect(),
            histograms: Metric::ALL.iter().map(|_| Histogram::new()).collect(),
            events: Mutex::new(Vec::new()),
            sink: None,
        }
    }

    /// A recorder that additionally streams every event as one JSON
    /// line to `path` (truncating any existing file).
    pub fn with_jsonl(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut rec = TraceRecorder::new();
        rec.sink = Some(Mutex::new(BufWriter::new(file)));
        Ok(rec)
    }

    /// Current value of a counter metric.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is a histogram.
    pub fn counter(&self, metric: Metric) -> u64 {
        assert_eq!(metric.kind(), MetricKind::Counter, "{metric:?}");
        self.counters[metric.index()].get()
    }

    /// The histogram behind a histogram metric.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is a counter.
    pub fn histogram(&self, metric: Metric) -> &Histogram {
        assert_eq!(metric.kind(), MetricKind::Histogram, "{metric:?}");
        &self.histograms[metric.index()]
    }

    /// A copy of every event recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Renders the Prometheus text-format snapshot of all metrics.
    pub fn prometheus_text(&self) -> String {
        crate::prom::render(self)
    }

    /// Flushes the JSONL sink (no-op for in-memory recorders).
    pub fn flush(&self) -> io::Result<()> {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().flush()?;
        }
        Ok(())
    }

    /// Folds another recorder's counters and histograms into this one
    /// and appends its events. Supports per-worker recorders merged
    /// after a parallel region.
    pub fn merge(&self, other: &TraceRecorder) {
        for m in Metric::ALL {
            match m.kind() {
                MetricKind::Counter => self.counters[m.index()].merge(&other.counters[m.index()]),
                MetricKind::Histogram => {
                    self.histograms[m.index()].merge(&other.histograms[m.index()])
                }
            }
        }
        let mut mine = self.events.lock().unwrap();
        mine.extend(other.events().into_iter().inspect(|e| {
            if let Some(sink) = &self.sink {
                let line = serde_json::to_string(e).expect("event serializes");
                let mut w = sink.lock().unwrap();
                let _ = writeln!(w, "{line}");
            }
        }));
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, event: &Event) {
        self.counters[Metric::EventsRecorded.index()].add(1);
        if let Some(sink) = &self.sink {
            let line = serde_json::to_string(event).expect("event serializes");
            let mut w = sink.lock().unwrap();
            // Trace IO failure must not abort the computation being
            // observed; the flush() at the end surfaces it.
            let _ = writeln!(w, "{line}");
        }
        self.events.lock().unwrap().push(event.clone());
    }

    fn counter_add(&self, metric: Metric, delta: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Counter, "{metric:?}");
        self.counters[metric.index()].add(delta);
    }

    fn observe(&self, metric: Metric, value: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Histogram, "{metric:?}");
        self.histograms[metric.index()].observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.event(&Event::DocInserted { seq: 1, doc: 2 });
        r.counter_add(Metric::RemoteUpdates, 5);
        r.observe(Metric::RouteHops, 3);
        let _span = Span::start(&NOOP, Metric::PassDurationNs);
    }

    #[test]
    fn trace_recorder_accumulates() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.counter_add(Metric::RemoteUpdates, 2);
        r.counter_add(Metric::RemoteUpdates, 3);
        r.observe(Metric::RouteHops, 4);
        r.event(&Event::DocInserted { seq: 1, doc: 9 });
        assert_eq!(r.counter(Metric::RemoteUpdates), 5);
        assert_eq!(r.histogram(Metric::RouteHops).count(), 1);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.counter(Metric::EventsRecorded), 1);
    }

    #[test]
    fn span_records_into_histogram() {
        let r = TraceRecorder::new();
        {
            let _span = Span::start(&r, Metric::PassDurationNs);
        }
        assert_eq!(r.histogram(Metric::PassDurationNs).count(), 1);
    }

    #[test]
    fn jsonl_sink_streams_valid_events() {
        let path = std::env::temp_dir().join(format!("dpr-telemetry-{}.jsonl", std::process::id()));
        let r = TraceRecorder::with_jsonl(&path).unwrap();
        r.event(&Event::DocInserted { seq: 1, doc: 7 });
        r.event(&Event::PeerChurn {
            round: 2,
            peer: 3,
            online: true,
        });
        r.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = crate::summary::parse_jsonl(&text).unwrap();
        assert_eq!(events, r.events());
        std::fs::remove_file(&path).unwrap();
    }

    proptest! {
        // The cross-thread merge contract: recording a stream of
        // counter adds / observations split across worker-local
        // recorders and merging equals recording the whole stream
        // into one recorder single-threaded.
        #[test]
        fn merged_worker_recorders_equal_sequential_recording(
            ops in prop_vec((0usize..Metric::COUNT, 0u64..1000), 0..300),
            workers in 1usize..5,
        ) {
            let sequential = TraceRecorder::new();
            for &(m, v) in &ops {
                let metric = Metric::ALL[m];
                match metric.kind() {
                    MetricKind::Counter => sequential.counter_add(metric, v),
                    MetricKind::Histogram => sequential.observe(metric, v),
                }
            }

            let merged = TraceRecorder::new();
            let locals: Vec<TraceRecorder> =
                (0..workers).map(|_| TraceRecorder::new()).collect();
            std::thread::scope(|s| {
                for (w, local) in locals.iter().enumerate() {
                    let ops = &ops;
                    s.spawn(move || {
                        // Deterministic partition: op i goes to
                        // worker i mod workers.
                        for (i, &(m, v)) in ops.iter().enumerate() {
                            if i % workers != w {
                                continue;
                            }
                            let metric = Metric::ALL[m];
                            match metric.kind() {
                                MetricKind::Counter => local.counter_add(metric, v),
                                MetricKind::Histogram => local.observe(metric, v),
                            }
                        }
                    });
                }
            });
            for local in &locals {
                merged.merge(local);
            }

            for metric in Metric::ALL {
                match metric.kind() {
                    MetricKind::Counter => {
                        prop_assert_eq!(merged.counter(*metric), sequential.counter(*metric));
                    }
                    MetricKind::Histogram => {
                        let a = merged.histogram(*metric);
                        let b = sequential.histogram(*metric);
                        prop_assert_eq!(a.snapshot(), b.snapshot());
                        prop_assert_eq!(a.sum(), b.sum());
                    }
                }
            }
        }
    }
}
