//! Critical-path convergence profiling over chaotic-runtime spans.
//!
//! A [`Profile`] consumes one chaotic segment's closed spans (from a
//! live [`crate::span::SpanTracer`] or re-parsed from
//! [`Event::SpanClosed`] JSONL) and answers "what bounds convergence?":
//!
//! * **Critical path** — walk backward from the terminal span (the
//!   announcing Safra circuit, or the latest span when the run was
//!   budget-cut) along `cause` edges to the initial injection. Every
//!   executed event has exactly one enabling predecessor, so the walk
//!   is deterministic, and because each path element is charged the
//!   half-open interval `(predecessor.end, self.end]` the per-element
//!   durations telescope to **exactly** the terminal virtual time: the
//!   compute/wire/wait breakdown sums to the total virtual wall-clock
//!   with integer precision (the CI gate checks this).
//! * **Attribution** — inside an element, time classifies by kind:
//!   [`SpanKind::PeerStep`] is compute; a [`SpanKind::LinkTransfer`]'s
//!   tail after its sender-side queueing is wire; everything else —
//!   coalescing holds, link queueing, inbox waits, Safra detection
//!   latency, and scheduling gaps between spans — is wait.
//! * **Link utilization/queueing** and **per-peer convergence lag**
//!   (how long delivered mass sat un-stepped) aggregate over all
//!   spans, not just the path.
//! * **Perfetto export** — [`chrome_trace`] renders segments as
//!   Chrome-trace-event JSON clocked on virtual time (µs), loadable in
//!   `ui.perfetto.dev` or `chrome://tracing`.

use crate::event::Event;
use crate::span::{step_fold_depths, SpanKind, SpanRec};
use crate::table::TextTable;
use serde::Value;

/// One element of the critical path, charged the half-open interval
/// `(from_ns, to_ns]` where `from_ns` is the predecessor's end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSegment {
    /// Id of the span this element is built from.
    pub span: u64,
    /// The span's kind.
    pub kind: SpanKind,
    /// Primary peer (see [`SpanRec::peer`]).
    pub peer: u32,
    /// Secondary peer (see [`SpanRec::peer2`]).
    pub peer2: u32,
    /// Interval start: the predecessor's end (0 at the path root).
    pub from_ns: u64,
    /// Interval end: this span's end.
    pub to_ns: u64,
    /// Nanoseconds attributed to compute.
    pub compute_ns: u64,
    /// Nanoseconds attributed to wire (serialization + propagation).
    pub wire_ns: u64,
    /// Nanoseconds attributed to waiting (holds, queueing, gaps,
    /// detection latency).
    pub wait_ns: u64,
    /// Frame provenance id the element rode (transfers; 0 otherwise).
    pub frame: u64,
}

impl PathSegment {
    /// The element's total charged time (`compute + wire + wait`).
    pub fn total_ns(&self) -> u64 {
        self.to_ns - self.from_ns
    }
}

/// Aggregate behaviour of one ordered link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStat {
    /// Sending peer.
    pub from: u32,
    /// Destination peer.
    pub to: u32,
    /// Payloads transferred.
    pub transfers: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total serialization + propagation nanoseconds.
    pub wire_ns: u64,
    /// Total sender-side store-and-forward queueing nanoseconds.
    pub queue_ns: u64,
    /// Worst single-payload queueing nanoseconds.
    pub max_queue_ns: u64,
}

/// Per-peer convergence lag: how long delivered rank mass sat
/// un-stepped in the peer's bounded inbox (rank staleness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerLag {
    /// The peer.
    pub peer: u32,
    /// Folded arrivals observed.
    pub arrivals: u64,
    /// Total inbox-wait nanoseconds across arrivals.
    pub wait_ns: u64,
    /// Worst single-arrival wait.
    pub max_wait_ns: u64,
    /// Un-stepped arrival-depth high-water mark.
    pub inbox_hwm: u64,
}

impl PeerLag {
    /// Mean inbox wait per arrival, nanoseconds.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.wait_ns as f64 / self.arrivals as f64
        }
    }
}

/// The profile of one chaotic segment.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The segment's spans, id `i + 1` at index `i`.
    pub spans: Vec<SpanRec>,
    /// Terminal virtual time: the latest span end — equal to the
    /// runtime's reported virtual wall-clock (the settle-phase Safra
    /// circuits close at exactly the final event time).
    pub virtual_ns: u64,
    /// Critical-path nanoseconds attributed to compute.
    pub compute_ns: u64,
    /// Critical-path nanoseconds attributed to wire.
    pub wire_ns: u64,
    /// Critical-path nanoseconds attributed to waiting.
    pub wait_ns: u64,
    /// The critical path, root (initial injection) first.
    pub path: Vec<PathSegment>,
    /// Per-link aggregates, busiest (most wire time) first.
    pub links: Vec<LinkStat>,
    /// Per-peer lag aggregates, highest mean wait first.
    pub peers: Vec<PeerLag>,
}

fn classify(s: &SpanRec, base: u64) -> (u64, u64, u64) {
    if s.end_ns <= base {
        return (0, 0, 0);
    }
    let eff = s.start_ns.max(base);
    let gap = eff - base;
    let inside = s.end_ns - eff;
    match s.kind {
        SpanKind::PeerStep => (inside, 0, gap),
        SpanKind::CoalesceWait | SpanKind::InboxWait | SpanKind::SafraProbe => (0, 0, gap + inside),
        SpanKind::LinkTransfer => {
            // Queueing occupies the span head; the wire part (tx +
            // propagation) is whatever of the tail the predecessor
            // did not already cover.
            let wire_begin = (s.start_ns + s.queue_ns).clamp(eff, s.end_ns);
            let wire = s.end_ns - wire_begin;
            (0, wire, gap + inside - wire)
        }
    }
}

impl Profile {
    /// Builds the profile of one segment from its spans (id = index+1).
    pub fn from_spans(spans: Vec<SpanRec>) -> Profile {
        let virtual_ns = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        // Terminal: latest end, ties broken by latest id — the
        // announcing Safra circuit when the run quiesced.
        let terminal = spans
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.end_ns, *i))
            .map(|(i, _)| i as u64 + 1);

        let mut path = Vec::new();
        let (mut compute, mut wire, mut wait) = (0u64, 0u64, 0u64);
        let mut cur = terminal.unwrap_or(0);
        let mut guard = spans.len() + 1;
        while cur != 0 && guard > 0 {
            guard -= 1;
            let s = &spans[cur as usize - 1];
            let base = if s.cause == 0 || s.cause >= cur {
                0
            } else {
                spans[s.cause as usize - 1].end_ns
            };
            let (c, w, q) = classify(s, base);
            compute += c;
            wire += w;
            wait += q;
            path.push(PathSegment {
                span: cur,
                kind: s.kind,
                peer: s.peer,
                peer2: s.peer2,
                from_ns: base.min(s.end_ns),
                to_ns: s.end_ns,
                compute_ns: c,
                wire_ns: w,
                wait_ns: q,
                frame: s.frame,
            });
            cur = if s.cause >= cur { 0 } else { s.cause };
        }
        path.reverse();

        let mut links: Vec<LinkStat> = Vec::new();
        let mut link_index: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        let mut peers: Vec<PeerLag> = Vec::new();
        let mut peer_index: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for s in &spans {
            match s.kind {
                SpanKind::LinkTransfer => {
                    let i = *link_index.entry((s.peer, s.peer2)).or_insert_with(|| {
                        links.push(LinkStat {
                            from: s.peer,
                            to: s.peer2,
                            transfers: 0,
                            bytes: 0,
                            wire_ns: 0,
                            queue_ns: 0,
                            max_queue_ns: 0,
                        });
                        links.len() - 1
                    });
                    let l = &mut links[i];
                    l.transfers += 1;
                    l.bytes += s.bytes;
                    l.wire_ns += s.duration_ns() - s.queue_ns;
                    l.queue_ns += s.queue_ns;
                    l.max_queue_ns = l.max_queue_ns.max(s.queue_ns);
                }
                SpanKind::InboxWait => {
                    let i = *peer_index.entry(s.peer).or_insert_with(|| {
                        peers.push(PeerLag {
                            peer: s.peer,
                            arrivals: 0,
                            wait_ns: 0,
                            max_wait_ns: 0,
                            inbox_hwm: 0,
                        });
                        peers.len() - 1
                    });
                    let p = &mut peers[i];
                    p.arrivals += 1;
                    p.wait_ns += s.duration_ns();
                    p.max_wait_ns = p.max_wait_ns.max(s.duration_ns());
                }
                _ => {}
            }
        }
        for (peer, depth) in step_fold_depths(&spans) {
            if let Some(&i) = peer_index.get(&peer) {
                peers[i].inbox_hwm = peers[i].inbox_hwm.max(depth);
            }
        }
        links.sort_by(|a, b| b.wire_ns.cmp(&a.wire_ns).then(a.from.cmp(&b.from)));
        peers.sort_by(|a, b| {
            b.mean_wait_ns()
                .partial_cmp(&a.mean_wait_ns())
                .unwrap()
                .then(a.peer.cmp(&b.peer))
        });

        Profile {
            spans,
            virtual_ns,
            compute_ns: compute,
            wire_ns: wire,
            wait_ns: wait,
            path,
            links,
            peers,
        }
    }

    /// Splits a JSONL event stream into chaotic segments (span ids
    /// restart at 1 per segment) and profiles each. Non-span events
    /// are ignored. Errors on unknown kinds or non-dense ids.
    pub fn segments_from_events(events: &[Event]) -> Result<Vec<Profile>, String> {
        let mut segments: Vec<Profile> = Vec::new();
        let mut cur: Vec<SpanRec> = Vec::new();
        for e in events {
            let Event::SpanClosed {
                span,
                kind,
                peer,
                peer2,
                start_ns,
                end_ns,
                queue_ns,
                bytes,
                frame,
                cause,
                consumed,
            } = e
            else {
                continue;
            };
            if *span <= cur.len() as u64 && !cur.is_empty() {
                segments.push(Profile::from_spans(std::mem::take(&mut cur)));
            }
            if *span != cur.len() as u64 + 1 {
                return Err(format!(
                    "non-dense span id {} after {} spans — corrupted trace",
                    span,
                    cur.len()
                ));
            }
            cur.push(SpanRec {
                kind: kind.parse()?,
                peer: *peer,
                peer2: *peer2,
                start_ns: *start_ns,
                end_ns: *end_ns,
                queue_ns: *queue_ns,
                bytes: *bytes,
                frame: *frame,
                cause: *cause,
                consumed: *consumed,
            });
        }
        if !cur.is_empty() {
            segments.push(Profile::from_spans(cur));
        }
        Ok(segments)
    }

    /// Whether the critical-path breakdown telescopes exactly to the
    /// terminal virtual time (it must — any mismatch means the span
    /// stream is corrupt, and the CLI/CI treat it as an error).
    pub fn breakdown_is_exact(&self) -> bool {
        self.compute_ns + self.wire_ns + self.wait_ns == self.virtual_ns
    }

    /// Percent of the critical path spent in compute.
    pub fn compute_pct(&self) -> f64 {
        self.pct(self.compute_ns)
    }

    /// Percent of the critical path spent on the wire.
    pub fn wire_pct(&self) -> f64 {
        self.pct(self.wire_ns)
    }

    /// Percent of the critical path spent waiting.
    pub fn wait_pct(&self) -> f64 {
        self.pct(self.wait_ns)
    }

    fn pct(&self, ns: u64) -> f64 {
        if self.virtual_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / self.virtual_ns as f64
        }
    }

    /// The `k` largest critical-path elements by charged time.
    pub fn top_path(&self, k: usize) -> Vec<&PathSegment> {
        let mut v: Vec<&PathSegment> = self.path.iter().collect();
        v.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.span.cmp(&b.span)));
        v.truncate(k);
        v
    }

    /// Steps on the segment's timeline.
    pub fn steps(&self) -> u64 {
        self.count(SpanKind::PeerStep)
    }

    /// Link transfers on the segment's timeline.
    pub fn transfers(&self) -> u64 {
        self.count(SpanKind::LinkTransfer)
    }

    fn count(&self, kind: SpanKind) -> u64 {
        self.spans.iter().filter(|s| s.kind == kind).count() as u64
    }

    /// One-row summary table of the breakdown.
    pub fn render_breakdown(&self) -> String {
        let mut t = TextTable::new([
            "virtual_ms",
            "compute%",
            "wire%",
            "wait%",
            "path_len",
            "steps",
            "transfers",
            "spans",
        ]);
        t.push([
            ms(self.virtual_ns),
            pct(self.compute_pct()),
            pct(self.wire_pct()),
            pct(self.wait_pct()),
            self.path.len().to_string(),
            self.steps().to_string(),
            self.transfers().to_string(),
            self.spans.len().to_string(),
        ]);
        t.render()
    }

    /// Top-`k` critical-path elements table.
    pub fn render_path(&self, k: usize) -> String {
        let mut t = TextTable::new([
            "span",
            "kind",
            "peer",
            "peer2",
            "at_ms",
            "total_ms",
            "compute_ms",
            "wire_ms",
            "wait_ms",
            "frame",
        ]);
        for s in self.top_path(k) {
            t.push([
                s.span.to_string(),
                s.kind.as_str().to_string(),
                s.peer.to_string(),
                s.peer2.to_string(),
                ms(s.from_ns),
                ms(s.total_ns()),
                ms(s.compute_ns),
                ms(s.wire_ns),
                ms(s.wait_ns),
                s.frame.to_string(),
            ]);
        }
        t.render()
    }

    /// Top-`k` busiest links table (utilization = wire time over the
    /// segment's virtual wall-clock).
    pub fn render_links(&self, k: usize) -> String {
        let mut t = TextTable::new([
            "link",
            "transfers",
            "kib",
            "wire_ms",
            "util%",
            "queue_ms",
            "max_queue_ms",
        ]);
        for l in self.links.iter().take(k) {
            t.push([
                format!("{}->{}", l.from, l.to),
                l.transfers.to_string(),
                format!("{:.1}", l.bytes as f64 / 1024.0),
                ms(l.wire_ns),
                pct(self.pct(l.wire_ns)),
                ms(l.queue_ns),
                ms(l.max_queue_ns),
            ]);
        }
        t.render()
    }

    /// Top-`k` laggiest peers table (mean un-stepped wait of
    /// delivered rank mass — the rank-staleness metric).
    pub fn render_peer_lag(&self, k: usize) -> String {
        let mut t = TextTable::new([
            "peer",
            "arrivals",
            "mean_wait_ms",
            "max_wait_ms",
            "inbox_hwm",
        ]);
        for p in self.peers.iter().take(k) {
            t.push([
                p.peer.to_string(),
                p.arrivals.to_string(),
                format!("{:.3}", p.mean_wait_ns() / 1e6),
                ms(p.max_wait_ns),
                p.inbox_hwm.to_string(),
            ]);
        }
        t.render()
    }

    fn trace_events(&self, t_off: u64, id_off: u64, out: &mut Vec<Value>) {
        let us = |ns: u64| Value::F64((t_off + ns) as f64 / 1000.0);
        let dur_us = |ns: u64| Value::F64(ns as f64 / 1000.0);
        for (i, s) in self.spans.iter().enumerate() {
            let id = id_off + i as u64 + 1;
            let args = |extra: Vec<(String, Value)>| {
                let mut a = vec![
                    ("span".to_string(), Value::U64(id)),
                    ("cause".to_string(), Value::U64(s.cause)),
                ];
                a.extend(extra);
                Value::Object(a)
            };
            match s.kind {
                SpanKind::PeerStep | SpanKind::CoalesceWait | SpanKind::SafraProbe => {
                    let (pid, tid, name, cat) = match s.kind {
                        SpanKind::PeerStep => (0, s.peer, "step", "compute"),
                        SpanKind::CoalesceWait => (0, s.peer, "coalesce", "wait"),
                        _ => (
                            3,
                            0,
                            if s.peer2 == 1 { "announce" } else { "probe" },
                            "wait",
                        ),
                    };
                    out.push(Value::Object(vec![
                        ("name".to_string(), Value::Str(name.to_string())),
                        ("cat".to_string(), Value::Str(cat.to_string())),
                        ("ph".to_string(), Value::Str("X".to_string())),
                        ("ts".to_string(), us(s.start_ns)),
                        ("dur".to_string(), dur_us(s.duration_ns())),
                        ("pid".to_string(), Value::U64(pid)),
                        ("tid".to_string(), Value::U64(tid as u64)),
                        ("args".to_string(), args(vec![])),
                    ]));
                }
                // Transfers and inbox waits overlap on one track, so
                // they export as async begin/end pairs.
                SpanKind::LinkTransfer | SpanKind::InboxWait => {
                    let (pid, name, cat) = if s.kind == SpanKind::LinkTransfer {
                        (1, "frame", "wire")
                    } else {
                        (2, "inbox", "wait")
                    };
                    let extra = vec![
                        ("from".to_string(), Value::U64(s.peer as u64)),
                        ("to".to_string(), Value::U64(s.peer2 as u64)),
                        ("bytes".to_string(), Value::U64(s.bytes)),
                        ("frame".to_string(), Value::U64(s.frame)),
                        ("queue_ns".to_string(), Value::U64(s.queue_ns)),
                    ];
                    for (ph, ts) in [("b", s.start_ns), ("e", s.end_ns)] {
                        out.push(Value::Object(vec![
                            ("name".to_string(), Value::Str(name.to_string())),
                            ("cat".to_string(), Value::Str(cat.to_string())),
                            ("ph".to_string(), Value::Str(ph.to_string())),
                            ("ts".to_string(), us(ts)),
                            ("pid".to_string(), Value::U64(pid)),
                            ("tid".to_string(), Value::U64(s.peer as u64)),
                            ("id".to_string(), Value::U64(id)),
                            ("args".to_string(), args(extra.clone())),
                        ]));
                    }
                }
            }
        }
    }
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn pct(p: f64) -> String {
    format!("{p:.1}")
}

/// Renders segments as one Chrome-trace-event JSON document clocked on
/// virtual time (µs), with a 1 ms gutter between segments. Loadable in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
pub fn chrome_trace(segments: &[Profile]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (pid, name) in [(0, "peers"), (1, "links"), (2, "inboxes"), (3, "safra")] {
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str("process_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::U64(pid)),
            ("tid".to_string(), Value::U64(0)),
            (
                "args".to_string(),
                Value::Object(vec![("name".to_string(), Value::Str(name.to_string()))]),
            ),
        ]));
    }
    let mut t_off = 0u64;
    let mut id_off = 0u64;
    for seg in segments {
        seg.trace_events(t_off, id_off, &mut events);
        t_off += seg.virtual_ns + 1_000_000;
        id_off += seg.spans.len() as u64;
    }
    Value::Object(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Array(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTracer;

    /// A two-peer exchange: seed step at 1 → frame → hold → step at 0
    /// → settle probe.
    fn tracer_spans() -> Vec<SpanRec> {
        let mut tr = SpanTracer::new(2);
        tr.on_step_scheduled(1, 0);
        tr.on_step_executed(1, 100, 100); // span 1: compute [0,100]
        tr.on_send(7, 1, 0, 64, 100, 150);
        tr.on_deliver(1, 0, 500, true); // span 2: link [100,500] q=50
        tr.on_step_scheduled(0, 500);
        tr.on_step_executed(0, 800, 100); // 3: hold [500,700], 4: step [700,800], 5: inbox
        tr.on_probe(820, true); // span 6: probe [0? -> last_probe_end=0 min 820]
        tr.finish(820);
        tr.into_spans()
    }

    #[test]
    fn critical_path_telescopes_exactly() {
        let p = Profile::from_spans(tracer_spans());
        assert_eq!(p.virtual_ns, 820);
        assert!(p.breakdown_is_exact(), "{p:?}");
        // probe(cause=step0) <- step0 <- hold <- link <- step1 <- seed
        let kinds: Vec<SpanKind> = p.path.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::PeerStep,
                SpanKind::LinkTransfer,
                SpanKind::CoalesceWait,
                SpanKind::PeerStep,
                SpanKind::SafraProbe,
            ]
        );
        assert_eq!(p.compute_ns, 200);
        // Link element covers (100, 500]: 50 queue wait + 350 wire.
        assert_eq!(p.wire_ns, 350);
        assert_eq!(p.wait_ns, 820 - 200 - 350);
        assert_eq!(p.path.iter().map(PathSegment::total_ns).sum::<u64>(), 820);
    }

    #[test]
    fn aggregates_cover_links_and_peers() {
        let p = Profile::from_spans(tracer_spans());
        assert_eq!(p.links.len(), 1);
        let l = p.links[0];
        assert_eq!((l.from, l.to, l.transfers, l.bytes), (1, 0, 1, 64));
        assert_eq!((l.wire_ns, l.queue_ns, l.max_queue_ns), (350, 50, 50));
        assert_eq!(p.peers.len(), 1);
        let lag = p.peers[0];
        assert_eq!((lag.peer, lag.arrivals, lag.inbox_hwm), (0, 1, 1));
        assert_eq!((lag.wait_ns, lag.max_wait_ns), (300, 300));
        assert_eq!((p.steps(), p.transfers()), (2, 1));
        assert!(p.render_breakdown().contains("compute%"));
        assert!(p.render_path(10).contains("link_transfer"));
        assert!(p.render_links(5).contains("1->0"));
        assert!(p.render_peer_lag(5).contains("inbox_hwm"));
    }

    #[test]
    fn empty_profile_is_degenerate_but_exact() {
        let p = Profile::from_spans(Vec::new());
        assert_eq!(p.virtual_ns, 0);
        assert!(p.breakdown_is_exact());
        assert!(p.path.is_empty());
        assert_eq!(p.compute_pct(), 0.0);
    }

    #[test]
    fn segments_split_on_id_restart_and_roundtrip_through_events() {
        let spans = tracer_spans();
        let tr = crate::recorder::TraceRecorder::new();
        let emit = |spans: &[SpanRec]| {
            for (i, s) in spans.iter().enumerate() {
                tr.event(&Event::SpanClosed {
                    span: i as u64 + 1,
                    kind: s.kind.as_str().to_string(),
                    peer: s.peer,
                    peer2: s.peer2,
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                    queue_ns: s.queue_ns,
                    bytes: s.bytes,
                    frame: s.frame,
                    cause: s.cause,
                    consumed: s.consumed,
                });
            }
        };
        emit(&spans);
        emit(&spans);
        use crate::recorder::Recorder;
        let events = tr.events();
        let segs = Profile::segments_from_events(&events).unwrap();
        assert_eq!(segs.len(), 2);
        for seg in &segs {
            assert_eq!(seg.spans, spans);
            assert!(seg.breakdown_is_exact());
        }
        let doc = chrome_trace(&segs);
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 4 metadata + per segment: 2 steps + 1 hold + 1 probe as X,
        // 1 link + 1 inbox as b/e pairs.
        assert_eq!(evs.len(), 4 + 2 * (4 + 2 * 2));
        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"b\""));
    }

    #[test]
    fn rejects_non_dense_ids() {
        let e = Event::SpanClosed {
            span: 3,
            kind: "peer_step".into(),
            peer: 0,
            peer2: 0,
            start_ns: 0,
            end_ns: 1,
            queue_ns: 0,
            bytes: 0,
            frame: 0,
            cause: 0,
            consumed: 0,
        };
        assert!(Profile::segments_from_events(&[e]).is_err());
    }
}
