//! Lock-free striped counters.
//!
//! A [`Counter`] is a small array of cache-line-padded `AtomicU64`
//! stripes; each thread adds to its own stripe (assigned round-robin
//! on first use), so concurrent recording from the sharded executor's
//! workers never contends on one cache line. Reads sum the stripes —
//! counters are write-often read-rarely.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of stripes per counter. Covers the executor's worker-count
/// cap without making snapshot sums expensive.
pub const STRIPES: usize = 8;

/// One cache line worth of counter.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Monotone-increasing sum, striped per thread.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

/// Round-robin stripe assignment: stable per thread, spread across
/// stripes. Shared by every counter so a thread always lands on the
/// same stripe index.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta` on the calling thread's stripe.
    pub fn add(&self, delta: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// The current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Folds another counter into this one (sum of sums).
    pub fn merge(&self, other: &Counter) {
        // Any stripe works for the destination; use the caller's so
        // merging stays contention-free too.
        self.add(other.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_and_sums() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn merge_is_additive() {
        let a = Counter::new();
        let b = Counter::new();
        a.add(10);
        b.add(32);
        a.merge(&b);
        assert_eq!(a.get(), 42);
        assert_eq!(b.get(), 32, "merge does not drain the source");
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
