//! The closed registry of scalar metrics.
//!
//! A [`Metric`] is either a monotone counter or a log2-bucketed
//! histogram; the enum is the registry, so recorders can allocate
//! dense arrays indexed by discriminant and the Prometheus writer can
//! enumerate every series without dynamic registration.

/// Whether a metric is a counter or a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum, exposed as `<name>_total`.
    Counter,
    /// Log2-bucketed distribution, exposed as a Prometheus histogram.
    Histogram,
}

macro_rules! metrics {
    ($( $variant:ident = $idx:literal => $kind:ident, $name:literal, $help:literal; )+) => {
        /// One scalar telemetry series.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Metric {
            $(
                #[doc = $help]
                $variant = $idx,
            )+
        }

        impl Metric {
            /// Every metric, in registry order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant),+];

            /// Number of registered metrics (dense index bound).
            pub const COUNT: usize = Metric::ALL.len();

            /// Counter vs histogram.
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$variant => MetricKind::$kind,)+
                }
            }

            /// Prometheus-style base name (without the `_total` /
            /// `_bucket` suffixes the exposition format adds).
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name,)+
                }
            }

            /// One-line help text for the exposition format.
            pub fn help(self) -> &'static str {
                match self {
                    $(Metric::$variant => $help,)+
                }
            }

            /// Dense index of this metric (0..[`Metric::COUNT`]).
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metrics! {
    RemoteUpdates = 0 => Counter, "dpr_remote_updates",
        "Logical remote rank updates emitted";
    LocalUpdates = 1 => Counter, "dpr_local_updates",
        "Same-peer rank updates applied directly";
    FramesSent = 2 => Counter, "dpr_frames_sent",
        "Multi-update frames handed to the transport";
    PayloadsSent = 3 => Counter, "dpr_payloads_sent",
        "Wire payloads (singles + frames) handed to the transport";
    BytesOnWire = 4 => Counter, "dpr_bytes_on_wire",
        "Payload bytes handed to the transport";
    ParkedMessages = 5 => Counter, "dpr_parked_messages",
        "Payloads parked at the sender for an offline destination";
    RoutedHops = 6 => Counter, "dpr_routed_hops",
        "Overlay hops charged by the hop model";
    RouteCacheHits = 7 => Counter, "dpr_route_cache_hits",
        "Sends short-circuited by a cached destination address";
    RouteCacheMisses = 8 => Counter, "dpr_route_cache_misses",
        "Sends that paid a full overlay route";
    EventsRecorded = 9 => Counter, "dpr_events_recorded",
        "Structured events accepted by the recorder";
    FlushOccupancy = 10 => Histogram, "dpr_flush_occupancy",
        "Coalesced entries per flush buffer at flush time";
    FrameBytes = 11 => Histogram, "dpr_frame_bytes",
        "Payload bytes per wire send";
    RouteHops = 12 => Histogram, "dpr_route_hops",
        "Overlay hops per resolved route";
    PendingDepth = 13 => Histogram, "dpr_pending_depth",
        "Store-and-resend queue depth after each cluster round";
    PassDurationNs = 14 => Histogram, "dpr_pass_duration_ns",
        "Wall-clock nanoseconds per engine pass";
    ShardApplyNs = 15 => Histogram, "dpr_shard_apply_ns",
        "Nanoseconds per shard in the apply+emit phase";
    ShardMergeNs = 16 => Histogram, "dpr_shard_merge_ns",
        "Nanoseconds per shard merging mailboxes";
    SchedQueueDepth = 17 => Histogram, "dpr_sched_queue_depth",
        "Documents queued at priority-selection time, per pass";
    SchedDeferredDocs = 18 => Histogram, "dpr_sched_deferred_docs",
        "Documents deferred by the priority scheduler, per pass";
    SchedBudgetPermille = 19 => Histogram, "dpr_sched_budget_permille",
        "Selected residual-mass fraction per pass, in permille";
    ExecDelegatedPasses = 20 => Counter, "dpr_exec_delegated_passes",
        "Sharded-executor passes delegated to the sequential engine by the auto-inline guard";
    ExecShardedPasses = 21 => Counter, "dpr_exec_sharded_passes",
        "Sharded-executor passes run through the parallel fan-out path";
    ChaoticEvents = 22 => Counter, "dpr_chaotic_events",
        "Events executed by the chaotic discrete-event runtime";
    InboxSaturations = 23 => Counter, "dpr_inbox_saturations",
        "Chaotic deliveries that saturated the destination inbox (backpressure-forced steps)";
    CoalesceHits = 24 => Counter, "dpr_coalesce_hits",
        "Chaotic steps that folded two or more waiting arrivals into one pass";
    InboxDepth = 25 => Histogram, "dpr_inbox_depth",
        "Un-stepped arrival depth consumed per chaotic step";
    QueriesServed = 26 => Counter, "dpr_queries_served",
        "Search queries executed by the serving workload";
    QueryLatencyNs = 27 => Histogram, "dpr_query_latency_ns",
        "End-to-end virtual query latency in nanoseconds";
    QueryHops = 28 => Histogram, "dpr_query_hops",
        "Overlay hops charged per served query";
    QueryBytes = 29 => Histogram, "dpr_query_bytes",
        "Posting and result bytes shipped per served query";
    RankStalenessPpm = 30 => Histogram, "dpr_rank_staleness_ppm",
        "Rank staleness at query time vs. the converged fixed point, parts-per-million";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_dense_and_consistent() {
        assert_eq!(Metric::ALL.len(), Metric::COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?} out of registry order");
            assert!(m.name().starts_with("dpr_"));
            assert!(!m.help().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Metric::ALL {
            for b in Metric::ALL {
                if a.index() != b.index() {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }

    #[test]
    fn kinds_split_the_registry() {
        let counters = Metric::ALL
            .iter()
            .filter(|m| m.kind() == MetricKind::Counter)
            .count();
        let histograms = Metric::ALL
            .iter()
            .filter(|m| m.kind() == MetricKind::Histogram)
            .count();
        assert_eq!(counters + histograms, Metric::COUNT);
        assert!(counters > 0 && histograms > 0);
    }
}
