//! # dpr-telemetry — structured tracing for the PageRank workspace
//!
//! The paper's claims are trajectories, not endpoints: chaotic
//! iteration converging pass by pass under churn (Sec. 2.3/3.1), the
//! ~10x wire-traffic cut of aggregation. Watching those trajectories
//! needs a telemetry substrate that (a) never perturbs the computation
//! it observes — the workspace's determinism contracts promise
//! bit-identical ranks at every thread count and wire mode — and
//! (b) costs nothing when it is off, so hot loops stay hot.
//!
//! The design, bottom to top:
//!
//! * [`Event`] — the typed event taxonomy (`PassCompleted`,
//!   `ConvergenceCheck`, `FrameSent`, `PeerChurn`, ...), one JSON
//!   object per event on the JSONL wire, self-describing via a
//!   `"type"` discriminator.
//! * [`Metric`] — the closed registry of scalar series: monotone
//!   counters and log2-bucketed histograms, named in Prometheus style.
//! * [`Recorder`] — the object-safe sink trait every instrumented
//!   call site talks to. The default [`NoopRecorder`] has empty
//!   inlineable bodies and `enabled() == false`, so instrumented code
//!   generic over `R: Recorder` monomorphizes to nothing when
//!   telemetry is off.
//! * [`TraceRecorder`] — the real sink: lock-free striped counters
//!   ([`counter::Counter`]) and atomic histograms
//!   ([`hist::Histogram`]) plus an in-memory event aggregate and an
//!   optional JSONL file.
//! * Sinks: [`prom::render`] writes a Prometheus text-format
//!   snapshot; [`summary::TraceSummary`] consumes a JSONL trace (or
//!   the in-memory aggregate) and derives the convergence curve,
//!   traffic-by-pass table and hottest peers for the `dpr trace`
//!   subcommand.
//! * Flight recorder: [`audit::AuditReport`] runs the online invariant
//!   monitors (mass-conservation ledger, message-balance auditor,
//!   quiescence certifier) over an event stream for `dpr doctor`;
//!   [`replay::Capture`] is the deterministic capture-and-replay
//!   format that turns any traced run into a bit-exact repro.
//!
//! The crate depends only on the vendored `serde`/`serde_json` shims
//! and sits below every runtime crate (`dpr-p2p`, `dpr-core`,
//! `dpr-node`, `dpr-sim`), so all of them can record into it without
//! dependency cycles. Events therefore carry raw `u32`/`u64` ids, not
//! `PeerId`/`DocId`.
//!
//! ## Overhead model
//!
//! Instrumentation appears at three temperatures:
//!
//! 1. **Per-pass / per-round** (residual scans, event construction):
//!    guarded by `rec.enabled()`; with [`NoopRecorder`] the guard is a
//!    constant `false` and the whole block folds away.
//! 2. **Per-message counters** (transport bytes, route hops): one
//!    predictable branch on an `Option`/`enabled()` check when off;
//!    one relaxed atomic add per event when on.
//! 3. **Never in the innermost arithmetic**: the engine's
//!    apply/emit inner loops are not touched — passes are observed at
//!    their boundaries, which is where the paper's own metrics live.

#![warn(missing_docs)]

pub mod audit;
pub mod counter;
pub mod event;
pub mod fmt;
pub mod hist;
pub mod metric;
pub mod profile;
pub mod prom;
pub mod quantile;
pub mod recorder;
pub mod replay;
pub mod slo;
pub mod span;
pub mod summary;
pub mod table;

pub use audit::{AuditReport, MassBreakdown};
pub use event::Event;
pub use metric::Metric;
pub use profile::Profile;
pub use quantile::QuantileSketch;
pub use recorder::{NoopRecorder, Recorder, Span, TraceRecorder, NOOP};
pub use replay::Capture;
pub use slo::{SloReport, SloSpec};
pub use span::{SpanKind, SpanRec, SpanTracer};
pub use summary::TraceSummary;
