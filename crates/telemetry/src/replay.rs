//! Deterministic capture & replay — the flight recorder's repro half.
//!
//! A capture is a small JSONL file holding everything needed to re-run
//! a scenario and *prove* the re-run matched: a header with the full
//! scenario configuration (every RNG in the system is seeded from it,
//! so injections, churn, and scheduler decisions are pure functions of
//! the header — the PR 1/2/4 determinism contracts), the injection
//! events the original run actually performed (so a replayer can
//! assert its derived stream matches before trusting the comparison),
//! and a fingerprint of the outcome: an FNV-1a hash over the exact bit
//! patterns of the final ranks plus the traffic counters.
//!
//! Replay re-executes the scenario from the header — under *any*
//! executor, since ranks are bit-identical across `ExecMode`s — and
//! compares fingerprints. A mismatch is a determinism bug with a
//! one-file repro.
//!
//! File layout, one JSON object per line:
//!
//! ```text
//! {"capture":"header", ...}        # exactly one, first
//! {"type":"doc_inserted", ...}     # the original run's injections
//! {"capture":"fingerprint", ...}   # exactly one, last
//! ```

use crate::event::Event;
use crate::summary::TraceError;
use serde::{Deserialize, Serialize, Value};

/// Capture format version (bumped on layout changes).
///
/// History: v1 had no `codec` field — captures recorded before the
/// compact wire codec existed implicitly assumed raw `f64` frames.
/// v2 stamps the [`WireCodec`](../../dpr_p2p/transport/enum.WireCodec.html)
/// name into the header so a replayer under a different codec refuses
/// instead of comparing fingerprints from different wire semantics.
/// v3 adds the chaotic run mode: `run_mode` / `latency` header fields
/// and a `schedule_fnv` fingerprint over the executed event schedule,
/// so a chaotic replay certifies it ran the *same events*, not merely
/// that it reached the same ranks.
pub const CAPTURE_VERSION: u64 = 3;

/// The scenario configuration a capture was recorded from. Every
/// field feeds a seeded RNG or a deterministic algorithm, so the
/// header alone reproduces the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureHeader {
    /// Capture format version.
    pub version: u64,
    /// Scenario name (e.g. `"continuous-update"`).
    pub scenario: String,
    /// Documents in the initial graph.
    pub nodes: u64,
    /// Peers in the system.
    pub num_peers: u64,
    /// Documents inserted during the run.
    pub inserts: u64,
    /// Recompute checkpoints across the insert stream.
    pub checkpoints: u64,
    /// Convergence threshold ε.
    pub epsilon: f64,
    /// Master seed (graph, placement, and insert RNGs derive from it).
    pub seed: u64,
    /// Scheduler mode (`"pass"` / `"priority"`).
    pub sched: String,
    /// Wire codec the run's frames traveled under (`"raw"` /
    /// `"compact"`). Compact quantizes to `f32`, so fingerprints are
    /// only comparable within one codec.
    pub codec: String,
    /// Run mode (`"rounds"` / `"chaotic"`): barrier-stepped rounds or
    /// the event-driven runtime. The two execute different schedules,
    /// so fingerprints are only comparable within one mode.
    pub run_mode: String,
    /// Latency model of a chaotic run (`"modem"` / `"broadband"` /
    /// `"lan"`); rounds-mode captures record the default and ignore it.
    pub latency: String,
}

/// The outcome a replay must reproduce bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// FNV-1a over the little-endian bit patterns of the final ranks.
    pub ranks_fnv: u64,
    /// Number of documents the hash covers.
    pub docs: u64,
    /// Total engine passes across all runs in the scenario.
    pub passes: u64,
    /// Total remote messages (the paper's traffic metric).
    pub remote_messages: u64,
    /// Total local (same-peer) updates.
    pub local_updates: u64,
    /// FNV-1a over the executed event schedule of a chaotic run
    /// (every `Step`/`Deliver` with its virtual time), accumulated
    /// across the scenario's reconvergence segments. Zero for
    /// rounds-mode captures, which have no event schedule.
    pub schedule_fnv: u64,
}

/// FNV-1a over the exact bit patterns of `ranks` — equal iff every
/// rank is bit-identical (NaNs included, `-0.0 ≠ 0.0`).
pub fn fnv64_ranks(ranks: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in ranks {
        for b in r.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A complete capture: header, injection stream, fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// Scenario configuration.
    pub header: CaptureHeader,
    /// The injection events (`doc_inserted` / `peer_churn`) the
    /// original run performed, in order.
    pub injections: Vec<Event>,
    /// The outcome to reproduce.
    pub fingerprint: Fingerprint,
}

fn tagged(tag: &str, v: Value) -> Value {
    match v {
        Value::Object(mut pairs) => {
            pairs.insert(0, ("capture".to_string(), Value::Str(tag.to_string())));
            Value::Object(pairs)
        }
        other => other,
    }
}

impl Capture {
    /// Serializes to the JSONL capture layout.
    pub fn to_jsonl(&self) -> String {
        let ser = |v: &Value| serde_json::to_string(v).expect("value serializes");
        let mut out = String::new();
        out.push_str(&ser(&tagged("header", self.header.to_value())));
        out.push('\n');
        for e in &self.injections {
            out.push_str(&serde_json::to_string(e).expect("event serializes"));
            out.push('\n');
        }
        out.push_str(&ser(&tagged("fingerprint", self.fingerprint.to_value())));
        out.push('\n');
        out
    }

    /// Parses a JSONL capture, validating layout and schema.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut header: Option<CaptureHeader> = None;
        let mut fingerprint: Option<Fingerprint> = None;
        let mut injections = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fail = |message: String| TraceError {
                line: i + 1,
                message,
            };
            let v: Value =
                serde_json::from_str(line).map_err(|e| fail(format!("not JSON: {e}")))?;
            match v.get("capture").and_then(Value::as_str) {
                Some("header") => {
                    if header.is_some() {
                        return Err(fail("duplicate capture header".into()));
                    }
                    // Check the raw version *before* the full schema
                    // parse: an old capture is missing newer fields,
                    // and "capture version 1" beats "missing field
                    // codec" as a diagnostic.
                    match v.get("version").and_then(Value::as_u64) {
                        Some(CAPTURE_VERSION) => {}
                        Some(old) => {
                            return Err(fail(format!(
                                "capture version {old} (this reader speaks \
                                 {CAPTURE_VERSION}; re-record the capture)"
                            )));
                        }
                        None => {
                            return Err(fail("capture header has no version".into()));
                        }
                    }
                    let h = CaptureHeader::from_value(&v).map_err(|e| fail(e.to_string()))?;
                    header = Some(h);
                }
                Some("fingerprint") => {
                    if fingerprint.is_some() {
                        return Err(fail("duplicate capture fingerprint".into()));
                    }
                    fingerprint =
                        Some(Fingerprint::from_value(&v).map_err(|e| fail(e.to_string()))?);
                }
                Some(other) => {
                    return Err(fail(format!("unknown capture record {other:?}")));
                }
                None => {
                    if header.is_none() {
                        return Err(fail("capture must start with its header".into()));
                    }
                    let e = Event::from_value(&v).map_err(|e| fail(e.to_string()))?;
                    if !e.is_injection() {
                        return Err(fail(format!(
                            "capture bodies hold injection events only, got {:?}",
                            e.kind()
                        )));
                    }
                    injections.push(e);
                }
            }
        }
        Ok(Capture {
            header: header.ok_or(TraceError {
                line: 0,
                message: "capture has no header".into(),
            })?,
            injections,
            fingerprint: fingerprint.ok_or(TraceError {
                line: 0,
                message: "capture has no fingerprint".into(),
            })?,
        })
    }

    /// Writes the capture to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Reads a capture from `path`.
    pub fn read(path: &std::path::Path) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::from_jsonl(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Capture {
        Capture {
            header: CaptureHeader {
                version: CAPTURE_VERSION,
                scenario: "continuous-update".into(),
                nodes: 10_000,
                num_peers: 500,
                inserts: 64,
                checkpoints: 4,
                epsilon: 1e-3,
                seed: 2003,
                sched: "priority".into(),
                codec: "raw".into(),
                run_mode: "chaotic".into(),
                latency: "broadband".into(),
            },
            injections: vec![
                Event::DocInserted {
                    seq: 1,
                    doc: 10_000,
                },
                Event::PeerChurn {
                    round: 3,
                    peer: 17,
                    online: false,
                },
            ],
            fingerprint: Fingerprint {
                ranks_fnv: u64::MAX - 11, // exercises > 2^53 round-trip
                docs: 10_064,
                passes: 210,
                remote_messages: 123_456,
                local_updates: 654_321,
                schedule_fnv: 0xcbf2_9ce4_8422_2325,
            },
        }
    }

    #[test]
    fn capture_roundtrips_through_jsonl() {
        let c = sample();
        let text = c.to_jsonl();
        assert!(text.starts_with("{\"capture\":\"header\""), "{text}");
        let back = Capture::from_jsonl(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn reader_rejects_malformed_captures() {
        let c = sample();
        let text = c.to_jsonl();

        // Missing fingerprint.
        let no_fp: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(Capture::from_jsonl(&no_fp)
            .unwrap_err()
            .message
            .contains("fingerprint"));

        // Event before the header.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(0, 1);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(Capture::from_jsonl(&swapped)
            .unwrap_err()
            .message
            .contains("header"));

        // Non-injection events don't belong in a capture body.
        let with_noise = text.replacen(
            "{\"type\":\"doc_inserted\"",
            "{\"type\":\"round_completed\",\"round\":1,\"sent\":0,\"delivered\":0,\
             \"redelivered\":0,\"hops\":0,\"pending\":0}\n{\"type\":\"doc_inserted\"",
            1,
        );
        assert!(Capture::from_jsonl(&with_noise)
            .unwrap_err()
            .message
            .contains("injection"));

        // Future versions are refused loudly, not misread.
        let future = text.replacen("\"version\":3", "\"version\":99", 1);
        assert!(Capture::from_jsonl(&future)
            .unwrap_err()
            .message
            .contains("version"));
    }

    #[test]
    fn reader_rejects_old_captures_by_version_not_schema() {
        // A v1 capture has no `codec` field; the reader must say
        // "capture version 1", not complain about the missing field.
        let v1 = sample()
            .to_jsonl()
            .replacen("\"version\":3", "\"version\":1", 1)
            .replacen(",\"codec\":\"raw\"", "", 1)
            .replacen(",\"run_mode\":\"chaotic\",\"latency\":\"broadband\"", "", 1);
        let err = Capture::from_jsonl(&v1).unwrap_err().message;
        assert!(err.contains("capture version 1"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        assert!(!err.contains("codec"), "{err}");

        // Likewise a v2 capture, which predates run_mode/latency and
        // the schedule fingerprint.
        let v2 = sample()
            .to_jsonl()
            .replacen("\"version\":3", "\"version\":2", 1)
            .replacen(",\"run_mode\":\"chaotic\",\"latency\":\"broadband\"", "", 1)
            .replacen(",\"schedule_fnv\":14695981039346656037", "", 1);
        let err = Capture::from_jsonl(&v2).unwrap_err().message;
        assert!(err.contains("capture version 2"), "{err}");
        assert!(!err.contains("run_mode"), "{err}");
    }

    #[test]
    fn fnv_is_bit_exact() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.1, 0.2, 0.30000000000000004];
        assert_eq!(fnv64_ranks(&a), fnv64_ranks(&a));
        assert_ne!(fnv64_ranks(&a), fnv64_ranks(&b));
        assert_ne!(fnv64_ranks(&[0.0]), fnv64_ranks(&[-0.0]));
        assert_ne!(fnv64_ranks(&[]), fnv64_ranks(&[0.0]));
    }
}
