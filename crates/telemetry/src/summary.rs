//! Trace analysis: parse a JSONL trace and derive the summaries the
//! `dpr trace` subcommand prints — convergence curve, traffic by
//! pass/round, hottest peers — plus the residual-monotonicity check
//! the acceptance tests assert.

use crate::event::Event;
use crate::fmt::{fmt_bytes, fmt_f64};
use crate::table::TextTable;
use serde::{Deserialize, Value};

/// A schema violation found while validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace, validating every line against the event
/// schema. Blank lines are ignored.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str(line).map_err(|e| TraceError {
            line: i + 1,
            message: format!("not JSON: {e}"),
        })?;
        let event = Event::from_value(&value).map_err(|e| TraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(event);
    }
    Ok(events)
}

/// An event kind the parser did not recognize, with how often it
/// appeared — surfaced instead of swallowed so schema drift between a
/// trace writer and this reader is visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKind {
    /// The unrecognized `"type"` discriminator.
    pub kind: String,
    /// How many lines carried it.
    pub count: u64,
    /// 1-based line number of its first appearance.
    pub first_line: usize,
}

/// Parses a JSONL trace like [`parse_jsonl`], but lines whose `"type"`
/// is not in the known taxonomy are counted per kind instead of
/// rejected (a trace from a newer writer stays readable). Lines that
/// are not JSON, lack a `"type"`, or carry a *known* type with a
/// malformed body still fail: those are corruption, not drift.
pub fn parse_jsonl_tolerant(text: &str) -> Result<(Vec<Event>, Vec<UnknownKind>), TraceError> {
    let mut events = Vec::new();
    let mut unknown: Vec<UnknownKind> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line).map_err(|e| TraceError {
            line: i + 1,
            message: format!("not JSON: {e}"),
        })?;
        let tag = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| TraceError {
                line: i + 1,
                message: "event missing \"type\" discriminator".to_string(),
            })?;
        if !Event::KINDS.contains(&tag) {
            match unknown.iter_mut().find(|u| u.kind == tag) {
                Some(u) => u.count += 1,
                None => unknown.push(UnknownKind {
                    kind: tag.to_string(),
                    count: 1,
                    first_line: i + 1,
                }),
            }
            continue;
        }
        let event = Event::from_value(&value).map_err(|e| TraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(event);
    }
    Ok((events, unknown))
}

/// One point of a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Pass index within the run.
    pub pass: u64,
    /// Residual mass after the pass.
    pub residual: f64,
    /// Documents still scheduled after the pass.
    pub active_docs: u64,
}

/// Per-round wire traffic derived from `FrameSent` events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTraffic {
    /// Round index.
    pub round: u64,
    /// Payloads sent.
    pub payloads: u64,
    /// Coalesced entries across those payloads.
    pub entries: u64,
    /// Payload bytes on the wire.
    pub bytes: u64,
}

/// Per-peer totals derived from `FrameSent` events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// The peer.
    pub peer: u32,
    /// Bytes this peer sent.
    pub bytes_out: u64,
    /// Bytes addressed to this peer.
    pub bytes_in: u64,
    /// Payloads this peer sent.
    pub payloads_out: u64,
}

/// Chaotic-runtime health counters aggregated over a trace: sums of
/// every `ChaoticHealth` event (the runtime emits one per chaotic
/// segment), with `max_inbox_depth` taken as the maximum across
/// segments rather than a sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaoticHealthSummary {
    /// Chaotic segments (one `ChaoticHealth` event each).
    pub segments: u64,
    /// Events executed by the discrete-event loop.
    pub events: u64,
    /// Peer steps executed.
    pub steps: u64,
    /// Frames delivered into peer inboxes.
    pub deliveries: u64,
    /// Deliveries redirected to a churned-out peer's successor.
    pub displaced: u64,
    /// Deliveries that saturated the destination inbox (backpressure).
    pub saturated: u64,
    /// Steps that coalesced two or more waiting arrivals into one pass.
    pub coalesce_hits: u64,
    /// Highest un-stepped arrival depth any peer's inbox reached.
    pub max_inbox_depth: u64,
}

/// Serving-workload health aggregated over a trace: sums of every
/// `ServingHealth` event (the serving driver emits one per run), with
/// the latency/staleness quantiles taken as maxima across runs — the
/// conservative roll-up for a pass/fail read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingHealthSummary {
    /// Serving runs (one `ServingHealth` event each).
    pub runs: u64,
    /// Queries served across runs.
    pub queries: u64,
    /// Worst p50 end-to-end query latency across runs, nanoseconds.
    pub p50_ns: u64,
    /// Worst p99 end-to-end query latency across runs, nanoseconds.
    pub p99_ns: u64,
    /// Worst p999 end-to-end query latency across runs, nanoseconds.
    pub p999_ns: u64,
    /// Total overlay hops across all queries.
    pub hops: u64,
    /// Total posting/result bytes shipped.
    pub bytes_shipped: u64,
    /// Worst p99 rank staleness across runs, parts-per-million.
    pub stale_p99_ppm: u64,
    /// Total SLO objectives that failed their error budget.
    pub slo_violations: u64,
}

/// Everything `dpr trace` needs, derived once from an event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    events: Vec<Event>,
    /// Run labels in first-appearance order.
    runs: Vec<String>,
    /// Unrecognized event kinds seen while parsing (empty when built
    /// from typed events).
    unknown: Vec<UnknownKind>,
}

impl TraceSummary {
    /// Builds a summary over an owned event stream.
    pub fn from_events(events: Vec<Event>) -> Self {
        let mut runs: Vec<String> = Vec::new();
        for e in &events {
            if let Event::ConvergenceCheck { run, .. } | Event::PassCompleted { run, .. } = e {
                if !runs.iter().any(|r| r == run) {
                    runs.push(run.clone());
                }
            }
        }
        TraceSummary {
            events,
            runs,
            unknown: Vec::new(),
        }
    }

    /// Parses a JSONL trace into a summary. Unknown event kinds are
    /// counted into [`TraceSummary::unknown_events`] rather than
    /// rejected (use [`parse_jsonl`] for the strict schema check);
    /// non-JSON lines and malformed known events still fail.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let (events, unknown) = parse_jsonl_tolerant(text)?;
        let mut s = Self::from_events(events);
        s.unknown = unknown;
        Ok(s)
    }

    /// The underlying events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Engine-run labels in first-appearance order.
    pub fn runs(&self) -> &[String] {
        &self.runs
    }

    /// Event kinds the parser did not recognize, in first-appearance
    /// order — nonempty means the trace writer speaks a newer (or
    /// foreign) schema and some lines were skipped.
    pub fn unknown_events(&self) -> &[UnknownKind] {
        &self.unknown
    }

    /// The residual/active-docs curve of one run.
    pub fn convergence_curve(&self, run: &str) -> Vec<CurvePoint> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::ConvergenceCheck {
                    run: r,
                    pass,
                    active_docs,
                    residual,
                } if r == run => Some(CurvePoint {
                    pass: *pass,
                    residual: *residual,
                    active_docs: *active_docs,
                }),
                _ => None,
            })
            .collect()
    }

    /// Wire traffic per round, in round order.
    pub fn traffic_by_round(&self) -> Vec<RoundTraffic> {
        let mut rounds: Vec<RoundTraffic> = Vec::new();
        for e in &self.events {
            if let Event::FrameSent {
                round,
                entries,
                bytes,
                ..
            } = e
            {
                let slot = match rounds.iter_mut().find(|r| r.round == *round) {
                    Some(slot) => slot,
                    None => {
                        rounds.push(RoundTraffic {
                            round: *round,
                            ..RoundTraffic::default()
                        });
                        rounds.last_mut().unwrap()
                    }
                };
                slot.payloads += 1;
                slot.entries += entries;
                slot.bytes += bytes;
            }
        }
        rounds.sort_by_key(|r| r.round);
        rounds
    }

    /// The `k` peers moving the most bytes (out + in), descending;
    /// ties broken by peer id for determinism.
    pub fn hottest_peers(&self, k: usize) -> Vec<PeerTraffic> {
        let mut peers: Vec<PeerTraffic> = Vec::new();
        fn slot(peers: &mut Vec<PeerTraffic>, peer: u32) -> usize {
            match peers.iter().position(|p| p.peer == peer) {
                Some(i) => i,
                None => {
                    peers.push(PeerTraffic {
                        peer,
                        ..PeerTraffic::default()
                    });
                    peers.len() - 1
                }
            }
        }
        for e in &self.events {
            if let Event::FrameSent {
                from, to, bytes, ..
            } = e
            {
                let i = slot(&mut peers, *from);
                peers[i].bytes_out += bytes;
                peers[i].payloads_out += 1;
                let j = slot(&mut peers, *to);
                peers[j].bytes_in += bytes;
            }
        }
        peers.sort_by(|a, b| {
            (b.bytes_out + b.bytes_in, a.peer).cmp(&(a.bytes_out + a.bytes_in, b.peer))
        });
        peers.truncate(k);
        peers
    }

    /// Index just past the last injection event (`PeerChurn` /
    /// `DocInserted`); 0 when the trace has none.
    pub fn after_last_injection(&self) -> usize {
        self.events
            .iter()
            .rposition(Event::is_injection)
            .map_or(0, |i| i + 1)
    }

    /// Checks that after the final injection event every engine run's
    /// residual series is monotone non-increasing (each run starts
    /// fresh, so the series is keyed by run label). Returns the first
    /// violation as `(run, pass, prev, next)`.
    ///
    /// A hair of head-room absorbs last-ulp float noise without
    /// masking real regressions.
    pub fn residual_monotone_after_last_injection(&self) -> Result<(), (String, u64, f64, f64)> {
        let start = self.after_last_injection();
        let mut last: Vec<(String, u64, f64)> = Vec::new();
        for e in &self.events[start..] {
            if let Event::ConvergenceCheck {
                run,
                pass,
                residual,
                ..
            } = e
            {
                match last.iter_mut().find(|(r, _, _)| r == run) {
                    Some((_, prev_pass, prev)) => {
                        if *residual > *prev * (1.0 + 1e-9) + 1e-12 {
                            return Err((run.clone(), *pass, *prev, *residual));
                        }
                        *prev_pass = *pass;
                        *prev = *residual;
                    }
                    None => last.push((run.clone(), *pass, *residual)),
                }
            }
        }
        Ok(())
    }

    /// Aggregates the chaotic-runtime health counters, or `None` when
    /// the trace holds no `ChaoticHealth` events (a rounds-mode trace,
    /// or a writer predating the chaotic runtime).
    pub fn chaotic_health(&self) -> Option<ChaoticHealthSummary> {
        let mut agg = ChaoticHealthSummary::default();
        for e in &self.events {
            if let Event::ChaoticHealth {
                events,
                steps,
                deliveries,
                displaced,
                saturated,
                coalesce_hits,
                max_inbox_depth,
            } = e
            {
                agg.segments += 1;
                agg.events += events;
                agg.steps += steps;
                agg.deliveries += deliveries;
                agg.displaced += displaced;
                agg.saturated += saturated;
                agg.coalesce_hits += coalesce_hits;
                agg.max_inbox_depth = agg.max_inbox_depth.max(*max_inbox_depth);
            }
        }
        (agg.segments > 0).then_some(agg)
    }

    /// Aggregates the serving-workload health counters, or `None` when
    /// the trace holds no `ServingHealth` events (a run without the
    /// serving workload, or a writer predating it).
    pub fn serving_health(&self) -> Option<ServingHealthSummary> {
        let mut agg = ServingHealthSummary::default();
        for e in &self.events {
            if let Event::ServingHealth {
                queries,
                p50_ns,
                p99_ns,
                p999_ns,
                hops,
                bytes_shipped,
                stale_p99_ppm,
                slo_violations,
            } = e
            {
                agg.runs += 1;
                agg.queries += queries;
                agg.p50_ns = agg.p50_ns.max(*p50_ns);
                agg.p99_ns = agg.p99_ns.max(*p99_ns);
                agg.p999_ns = agg.p999_ns.max(*p999_ns);
                agg.hops += hops;
                agg.bytes_shipped += bytes_shipped;
                agg.stale_p99_ppm = agg.stale_p99_ppm.max(*stale_p99_ppm);
                agg.slo_violations += slo_violations;
            }
        }
        (agg.runs > 0).then_some(agg)
    }

    /// Renders the serving health counters as a text table (empty when
    /// the trace has none).
    pub fn render_serving_health(&self) -> TextTable {
        let mut t = TextTable::new([
            "runs",
            "queries",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "hops",
            "bytes shipped",
            "stale p99 ppm",
            "slo violations",
        ]);
        if let Some(h) = self.serving_health() {
            let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
            t.push([
                h.runs.to_string(),
                h.queries.to_string(),
                ms(h.p50_ns),
                ms(h.p99_ns),
                ms(h.p999_ns),
                h.hops.to_string(),
                fmt_bytes(h.bytes_shipped),
                h.stale_p99_ppm.to_string(),
                h.slo_violations.to_string(),
            ]);
        }
        t
    }

    /// Renders the chaotic health counters as a text table (empty when
    /// the trace has none).
    pub fn render_chaotic_health(&self) -> TextTable {
        let mut t = TextTable::new([
            "segments",
            "events",
            "steps",
            "deliveries",
            "displaced",
            "saturated",
            "coalesce hits",
            "max inbox depth",
        ]);
        if let Some(h) = self.chaotic_health() {
            t.push([
                h.segments.to_string(),
                h.events.to_string(),
                h.steps.to_string(),
                h.deliveries.to_string(),
                h.displaced.to_string(),
                h.saturated.to_string(),
                h.coalesce_hits.to_string(),
                h.max_inbox_depth.to_string(),
            ]);
        }
        t
    }

    /// Renders the convergence curve of `run` as a text table.
    pub fn render_convergence(&self, run: &str) -> TextTable {
        let mut t = TextTable::new(["pass", "residual", "active docs"]);
        for p in self.convergence_curve(run) {
            t.push([
                p.pass.to_string(),
                fmt_f64(p.residual),
                p.active_docs.to_string(),
            ]);
        }
        t
    }

    /// Renders the traffic-by-round table.
    pub fn render_traffic(&self) -> TextTable {
        let mut t = TextTable::new(["round", "payloads", "entries", "bytes"]);
        for r in self.traffic_by_round() {
            t.push([
                r.round.to_string(),
                r.payloads.to_string(),
                r.entries.to_string(),
                fmt_bytes(r.bytes),
            ]);
        }
        t
    }

    /// Renders the top-`k` hottest peers table.
    pub fn render_hottest_peers(&self, k: usize) -> TextTable {
        let mut t = TextTable::new(["peer", "bytes out", "bytes in", "payloads out"]);
        for p in self.hottest_peers(k) {
            t.push([
                p.peer.to_string(),
                fmt_bytes(p.bytes_out),
                fmt_bytes(p.bytes_in),
                p.payloads_out.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(run: &str, pass: u64, residual: f64) -> Event {
        Event::ConvergenceCheck {
            run: run.into(),
            pass,
            active_docs: 1,
            residual,
        }
    }

    fn frame(round: u64, from: u32, to: u32, entries: u64, bytes: u64) -> Event {
        Event::FrameSent {
            round,
            from,
            to,
            entries,
            bytes,
        }
    }

    #[test]
    fn parse_rejects_bad_lines_with_position() {
        let text = "{\"type\": \"doc_inserted\", \"seq\": 1, \"doc\": 2}\n\nnot json\n";
        let err = parse_jsonl(text).unwrap_err();
        assert_eq!(err.line, 3);

        let bad_schema = "{\"type\": \"doc_inserted\", \"seq\": 1}\n";
        assert_eq!(parse_jsonl(bad_schema).unwrap_err().line, 1);
    }

    #[test]
    fn curves_are_keyed_by_run() {
        let s = TraceSummary::from_events(vec![
            check("initial", 1, 8.0),
            check("initial", 2, 2.0),
            check("wave@1", 1, 0.5),
        ]);
        assert_eq!(s.runs(), &["initial".to_string(), "wave@1".to_string()]);
        let c = s.convergence_curve("initial");
        assert_eq!(c.len(), 2);
        assert_eq!(c[1].residual, 2.0);
        assert_eq!(s.convergence_curve("wave@1").len(), 1);
        assert!(s
            .render_convergence("initial")
            .render()
            .contains("residual"));
    }

    #[test]
    fn traffic_aggregates_by_round_and_peer() {
        let s = TraceSummary::from_events(vec![
            frame(1, 0, 1, 2, 36),
            frame(1, 1, 0, 1, 24),
            frame(2, 0, 1, 3, 52),
        ]);
        let rounds = s.traffic_by_round();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].payloads, 2);
        assert_eq!(rounds[0].entries, 3);
        assert_eq!(rounds[0].bytes, 60);

        let hot = s.hottest_peers(10);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].peer, 0, "peer 0 moved 88 out + 24 in");
        assert_eq!(hot[0].bytes_out, 88);
        assert_eq!(hot[0].bytes_in, 24);
        assert_eq!(s.hottest_peers(1).len(), 1);
        assert!(s.render_traffic().render().contains("payloads"));
        assert!(s.render_hottest_peers(2).render().contains("bytes out"));
    }

    #[test]
    fn monotone_check_ignores_prefix_before_last_injection() {
        let s = TraceSummary::from_events(vec![
            check("initial", 1, 1.0),
            check("initial", 2, 5.0), // violation, but pre-injection
            Event::DocInserted { seq: 1, doc: 7 },
            check("wave@1", 1, 3.0),
            check("wave@1", 2, 1.0),
            check("recompute@1", 1, 9.0), // separate run: fresh start OK
            check("recompute@1", 2, 4.0),
        ]);
        assert_eq!(s.after_last_injection(), 3);
        assert!(s.residual_monotone_after_last_injection().is_ok());
    }

    #[test]
    fn monotone_check_catches_violations() {
        let s = TraceSummary::from_events(vec![
            Event::PeerChurn {
                round: 1,
                peer: 0,
                online: false,
            },
            check("r", 1, 1.0),
            check("r", 2, 2.0),
        ]);
        let (run, pass, prev, next) = s.residual_monotone_after_last_injection().unwrap_err();
        assert_eq!(run, "r");
        assert_eq!(pass, 2);
        assert_eq!((prev, next), (1.0, 2.0));
    }

    #[test]
    fn chaotic_health_sums_segments_and_maxes_depth() {
        let health = |events: u64, saturated: u64, depth: u64| Event::ChaoticHealth {
            events,
            steps: events / 2,
            deliveries: events / 3,
            displaced: 0,
            saturated,
            coalesce_hits: 5,
            max_inbox_depth: depth,
        };
        let s = TraceSummary::from_events(vec![
            check("r", 1, 1.0),
            health(600, 2, 9),
            health(400, 1, 17),
        ]);
        let h = s.chaotic_health().unwrap();
        assert_eq!(h.segments, 2);
        assert_eq!(h.events, 1000);
        assert_eq!(h.steps, 500);
        assert_eq!(h.saturated, 3);
        assert_eq!(h.coalesce_hits, 10);
        assert_eq!(h.max_inbox_depth, 17, "depth is a max, not a sum");
        assert!(s.render_chaotic_health().render().contains("saturated"));

        let rounds_only = TraceSummary::from_events(vec![check("r", 1, 1.0)]);
        assert_eq!(rounds_only.chaotic_health(), None);
    }

    #[test]
    fn serving_health_sums_runs_and_maxes_quantiles() {
        let health = |queries: u64, p99: u64, violations: u64| Event::ServingHealth {
            queries,
            p50_ns: p99 / 4,
            p99_ns: p99,
            p999_ns: p99 * 2,
            hops: queries * 3,
            bytes_shipped: queries * 100,
            stale_p99_ppm: 40,
            slo_violations: violations,
        };
        let s = TraceSummary::from_events(vec![
            check("r", 1, 1.0),
            health(300, 80_000_000, 0),
            health(200, 120_000_000, 1),
        ]);
        let h = s.serving_health().unwrap();
        assert_eq!(h.runs, 2);
        assert_eq!(h.queries, 500);
        assert_eq!(h.p99_ns, 120_000_000, "quantiles roll up as maxima");
        assert_eq!(h.hops, 1500);
        assert_eq!(h.bytes_shipped, 50_000);
        assert_eq!(h.slo_violations, 1);
        assert!(s.render_serving_health().render().contains("p99 ms"));

        let no_serving = TraceSummary::from_events(vec![check("r", 1, 1.0)]);
        assert_eq!(no_serving.serving_health(), None);
    }

    #[test]
    fn empty_trace_is_trivially_valid() {
        let s = TraceSummary::from_jsonl("").unwrap();
        assert!(s.runs().is_empty());
        assert!(s.unknown_events().is_empty());
        assert!(s.residual_monotone_after_last_injection().is_ok());
        assert_eq!(s.after_last_injection(), 0);
    }

    #[test]
    fn unknown_kinds_are_counted_not_swallowed() {
        let text = "{\"type\": \"doc_inserted\", \"seq\": 1, \"doc\": 2}\n\
                    {\"type\": \"warp_drive\", \"dilithium\": 9}\n\
                    {\"type\": \"warp_drive\"}\n\
                    {\"type\": \"mystery\"}\n";
        let s = TraceSummary::from_jsonl(text).unwrap();
        assert_eq!(s.events().len(), 1);
        assert_eq!(
            s.unknown_events(),
            &[
                UnknownKind {
                    kind: "warp_drive".into(),
                    count: 2,
                    first_line: 2,
                },
                UnknownKind {
                    kind: "mystery".into(),
                    count: 1,
                    first_line: 4,
                },
            ]
        );
        // The strict parser still rejects the same trace.
        assert_eq!(parse_jsonl(text).unwrap_err().line, 2);
    }

    #[test]
    fn tolerant_parse_still_rejects_corruption() {
        // Not JSON at all.
        assert_eq!(
            parse_jsonl_tolerant("garbage\n").unwrap_err().line,
            1,
            "non-JSON must fail"
        );
        // JSON without a discriminator.
        assert!(parse_jsonl_tolerant("{\"seq\": 1}\n")
            .unwrap_err()
            .message
            .contains("type"));
        // A known kind with a malformed body is corruption, not drift.
        assert_eq!(
            parse_jsonl_tolerant("{\"type\": \"doc_inserted\", \"seq\": 1}\n")
                .unwrap_err()
                .line,
            1
        );
    }
}
