//! Virtual-time causal spans for the chaotic (event-driven) runtime.
//!
//! The discrete-event runtime gives every action a principled duration
//! (the Eq. 4 exec model: compute time per step, serialization + base
//! latency per link transfer, coalescing holds under priority
//! scheduling). This module turns those durations into a causal span
//! model:
//!
//! * [`SpanKind::PeerStep`] — one local pass at a peer, `compute_ns`
//!   wide, ending at the `Step` event's virtual time;
//! * [`SpanKind::CoalesceWait`] — the residual-driven hold between a
//!   step being requested and its compute beginning (priority
//!   scheduling only; saturation forfeits it);
//! * [`SpanKind::LinkTransfer`] — one frame on one ordered link, from
//!   outbox emission to arrival, with the sender-side store-and-forward
//!   queueing recorded in `queue_ns`;
//! * [`SpanKind::InboxWait`] — a delivered frame waiting, folded but
//!   un-stepped, until the destination's next step consumes it;
//! * [`SpanKind::SafraProbe`] — one termination-token circuit.
//!
//! Causality travels in two fields: `cause` names the span whose
//! completion *scheduled* this one (the step that emitted a frame, the
//! delivery that requested a step, the coalesce hold that preceded a
//! compute), and — for inbox waits only — `consumed` names the
//! [`SpanKind::PeerStep`] span that finally folded the frame's mass
//! into an advertisement. Together they encode the ISSUE's edge "the
//! frame emitted by step S at peer A is consumed by step T at peer B"
//! as `S ← link ← inbox → T` without a separate edge table.
//!
//! The tracer is a pure observer: it never touches the event queue,
//! the clock, or any node state, so a traced run executes the exact
//! same schedule (`schedule_fnv`) and reaches bit-identical ranks —
//! the zero-perturbation property `tests/profile_differential.rs`
//! asserts. Span ids are dense (`1..=n`, assigned at close, in close
//! order), which is what lets [`crate::profile::Profile`] split
//! multi-segment traces and walk causal chains with plain indexing.

use crate::event::Event;
use crate::recorder::Recorder;
use std::collections::{HashMap, VecDeque};

/// The five span kinds of the chaotic runtime's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One local pass (compute) at a peer.
    PeerStep,
    /// A priority-scheduling coalescing hold before a step's compute.
    CoalesceWait,
    /// One payload traversing one ordered link (queue + tx + prop).
    LinkTransfer,
    /// A folded-but-unstepped arrival waiting for its consuming step.
    InboxWait,
    /// One Safra termination-token circuit.
    SafraProbe,
}

impl SpanKind {
    /// The wire form used in [`Event::SpanClosed`]'s `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::PeerStep => "peer_step",
            SpanKind::CoalesceWait => "coalesce_wait",
            SpanKind::LinkTransfer => "link_transfer",
            SpanKind::InboxWait => "inbox_wait",
            SpanKind::SafraProbe => "safra_probe",
        }
    }
}

impl std::str::FromStr for SpanKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "peer_step" => Ok(SpanKind::PeerStep),
            "coalesce_wait" => Ok(SpanKind::CoalesceWait),
            "link_transfer" => Ok(SpanKind::LinkTransfer),
            "inbox_wait" => Ok(SpanKind::InboxWait),
            "safra_probe" => Ok(SpanKind::SafraProbe),
            other => Err(format!("unknown span kind {other:?}")),
        }
    }
}

/// One closed span. Ids are implicit: a span stored at index `i` of a
/// tracer (or segment) has id `i + 1`; id `0` is the "no predecessor"
/// sentinel in `cause`/`consumed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRec {
    /// Span kind.
    pub kind: SpanKind,
    /// Primary peer: the stepping peer, a transfer's sender, an inbox
    /// wait's destination. For [`SpanKind::SafraProbe`], 0.
    pub peer: u32,
    /// Secondary peer: a transfer's destination, an inbox wait's
    /// sender. For probes: 1 if this circuit announced termination,
    /// else 0. Equals `peer` for step/coalesce spans.
    pub peer2: u32,
    /// Virtual start time in nanoseconds.
    pub start_ns: u64,
    /// Virtual end time in nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Transfers only: sender-side store-and-forward queueing at the
    /// head of the span (the link was still transmitting an earlier
    /// payload). Always `<= end_ns - start_ns`.
    pub queue_ns: u64,
    /// Transfers only: payload bytes on the wire.
    pub bytes: u64,
    /// Transfers and inbox waits: the cluster-wide frame provenance id
    /// stamped by `step_peer_observed` (0 when unknown, e.g. a
    /// departure redirect observed before tracing began).
    pub frame: u64,
    /// Id of the span whose completion scheduled this one (0 = run
    /// seed). Always a lower id: causal `cause` edges are acyclic by
    /// construction.
    pub cause: u64,
    /// Inbox waits only: id of the [`SpanKind::PeerStep`] span that
    /// consumed the waiting frame (0 = never consumed, e.g. the run's
    /// final cancellation left the mass inert). The step closes before
    /// its inbox waits, so `consumed < id` holds as well.
    pub consumed: u64,
}

impl SpanRec {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A scheduled-but-unexecuted step request (pairs with the runtime's
/// lazy-deletion `step_due` slot: only the authoritative request is
/// retained).
#[derive(Debug, Clone, Copy)]
struct StepSched {
    req_ns: u64,
    cause: u64,
}

/// A payload on the wire, pushed at `schedule_delivery` and popped at
/// the matching `Deliver` execution. Per-link arrivals are monotone
/// (store-and-forward), so a FIFO per ordered link aligns 1:1 with the
/// runtime's own delivery order — including displaced (lost-frame)
/// deliveries, which still pop.
#[derive(Debug, Clone, Copy)]
struct Flight {
    frame: u64,
    emit_ns: u64,
    depart_ns: u64,
    bytes: u64,
    cause: u64,
}

/// A folded arrival waiting for its consuming step.
#[derive(Debug, Clone, Copy)]
struct ArrivalRec {
    arrival_ns: u64,
    from: u32,
    link_span: u64,
    frame: u64,
}

/// The span observer the chaotic runtime drives. All methods are pure
/// state updates — the tracer reads the schedule, never shapes it.
#[derive(Debug)]
pub struct SpanTracer {
    spans: Vec<SpanRec>,
    sched: Vec<Option<StepSched>>,
    pending: Vec<Vec<ArrivalRec>>,
    in_flight: HashMap<(u32, u32), VecDeque<Flight>>,
    /// Span id of the event currently executing (0 while seeding).
    cur: u64,
    /// Most recent step/transfer span — what an announcing probe's
    /// `cause` points at (detection latency is the gap between them).
    last_work: u64,
    last_probe_end: u64,
}

impl SpanTracer {
    /// A tracer for a run over `num_peers` peers.
    pub fn new(num_peers: usize) -> Self {
        SpanTracer {
            spans: Vec::new(),
            sched: vec![None; num_peers],
            pending: vec![Vec::new(); num_peers],
            in_flight: HashMap::new(),
            cur: 0,
            last_work: 0,
            last_probe_end: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        kind: SpanKind,
        peer: u32,
        peer2: u32,
        start_ns: u64,
        end_ns: u64,
        queue_ns: u64,
        bytes: u64,
        frame: u64,
        cause: u64,
        consumed: u64,
    ) -> u64 {
        self.spans.push(SpanRec {
            kind,
            peer,
            peer2,
            start_ns: start_ns.min(end_ns),
            end_ns,
            queue_ns,
            bytes,
            frame,
            cause,
            consumed,
        });
        self.spans.len() as u64
    }

    /// A step for `peer` was (re)scheduled at virtual time `now` —
    /// this request is now the authoritative one (the runtime's
    /// `step_due` slot was overwritten).
    pub fn on_step_scheduled(&mut self, peer: u32, now: u64) {
        self.sched[peer as usize] = Some(StepSched {
            req_ns: now,
            cause: self.cur,
        });
    }

    /// The authoritative step of `peer` executed at `now` with compute
    /// time `compute_ns`. Closes the coalesce hold (if any), the step
    /// span, and every inbox wait the step consumed. Returns the step
    /// span id.
    pub fn on_step_executed(&mut self, peer: u32, now: u64, compute_ns: u64) -> u64 {
        let sched = self.sched[peer as usize].take().unwrap_or(StepSched {
            req_ns: now.saturating_sub(compute_ns),
            cause: 0,
        });
        // The step was scheduled at `req + hold + compute`, so compute
        // began at `now - compute`; anything between the request and
        // the compute start is the coalescing hold.
        let compute_start = now.saturating_sub(compute_ns).max(sched.req_ns);
        let mut cause = sched.cause;
        if compute_start > sched.req_ns {
            cause = self.push(
                SpanKind::CoalesceWait,
                peer,
                peer,
                sched.req_ns,
                compute_start,
                0,
                0,
                0,
                sched.cause,
                0,
            );
        }
        let step = self.push(
            SpanKind::PeerStep,
            peer,
            peer,
            compute_start,
            now,
            0,
            0,
            0,
            cause,
            0,
        );
        let consumed = std::mem::take(&mut self.pending[peer as usize]);
        for a in consumed {
            self.push(
                SpanKind::InboxWait,
                peer,
                a.from,
                a.arrival_ns,
                now,
                0,
                0,
                a.frame,
                a.link_span,
                step,
            );
        }
        self.cur = step;
        self.last_work = step;
        step
    }

    /// A payload left `from`'s outbox at `now` for `to`: transmission
    /// departs at `depart_ns` (store-and-forward queueing before that)
    /// and the matching `Deliver` will pop this flight.
    pub fn on_send(
        &mut self,
        frame: u64,
        from: u32,
        to: u32,
        bytes: u64,
        now: u64,
        depart_ns: u64,
    ) {
        self.in_flight
            .entry((from, to))
            .or_default()
            .push_back(Flight {
                frame,
                emit_ns: now,
                depart_ns,
                bytes,
                cause: self.cur,
            });
    }

    /// The next payload on `(from, to)` arrived at `now`. `folded` is
    /// whether the destination actually absorbed it (false for a
    /// displaced delivery — a staged lost frame or departure redirect).
    /// Returns the closed [`SpanKind::LinkTransfer`] span id.
    pub fn on_deliver(&mut self, from: u32, to: u32, now: u64, folded: bool) -> u64 {
        let flight = self
            .in_flight
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .unwrap_or(Flight {
                frame: 0,
                emit_ns: now,
                depart_ns: now,
                bytes: 0,
                cause: 0,
            });
        let queue = flight.depart_ns.saturating_sub(flight.emit_ns);
        let id = self.push(
            SpanKind::LinkTransfer,
            from,
            to,
            flight.emit_ns,
            now,
            queue.min(now.saturating_sub(flight.emit_ns)),
            flight.bytes,
            flight.frame,
            flight.cause,
            0,
        );
        self.cur = id;
        self.last_work = id;
        if folded {
            self.pending[to as usize].push(ArrivalRec {
                arrival_ns: now,
                from,
                link_span: id,
                frame: flight.frame,
            });
        }
        id
    }

    /// One Safra token circuit completed at `now`; `announced` is
    /// whether this circuit announced termination.
    pub fn on_probe(&mut self, now: u64, announced: bool) {
        let start = self.last_probe_end.min(now);
        self.push(
            SpanKind::SafraProbe,
            0,
            u32::from(announced),
            start,
            now,
            0,
            0,
            0,
            self.last_work,
            0,
        );
        self.last_probe_end = now;
    }

    /// Closes everything still open at the end of the run (`now` = the
    /// final virtual time): inbox waits whose mass was never consumed
    /// (a final cancellation can leave arrivals inert) and — only when
    /// the event budget cut the run short — payloads still on the
    /// wire. After this, "every opened span closes" holds.
    pub fn finish(&mut self, now: u64) {
        for peer in 0..self.pending.len() {
            let leftovers = std::mem::take(&mut self.pending[peer]);
            for a in leftovers {
                self.push(
                    SpanKind::InboxWait,
                    peer as u32,
                    a.from,
                    a.arrival_ns,
                    now.max(a.arrival_ns),
                    0,
                    0,
                    a.frame,
                    a.link_span,
                    0,
                );
            }
        }
        let mut stranded: Vec<((u32, u32), Flight)> = Vec::new();
        for (&link, q) in self.in_flight.iter_mut() {
            while let Some(f) = q.pop_front() {
                stranded.push((link, f));
            }
        }
        // Deterministic close order for the (rare) budget-exhausted
        // case: the HashMap iteration order above is not.
        stranded.sort_by_key(|&(link, f)| (f.emit_ns, link, f.frame));
        for ((from, to), f) in stranded {
            let end = now.max(f.emit_ns);
            let queue = f.depart_ns.saturating_sub(f.emit_ns);
            self.push(
                SpanKind::LinkTransfer,
                from,
                to,
                f.emit_ns,
                end,
                queue.min(end - f.emit_ns),
                f.bytes,
                f.frame,
                f.cause,
                0,
            );
        }
    }

    /// The closed spans so far, in close (= id) order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Consumes the tracer, returning its spans.
    pub fn into_spans(self) -> Vec<SpanRec> {
        self.spans
    }

    /// Replicates every span as an [`Event::SpanClosed`] into `rec`
    /// (ids are the dense close order, so a JSONL reader recovers the
    /// exact in-memory model).
    pub fn emit_events<R: Recorder + ?Sized>(&self, rec: &R) {
        for (i, s) in self.spans.iter().enumerate() {
            rec.event(&Event::SpanClosed {
                span: i as u64 + 1,
                kind: s.kind.as_str().to_string(),
                peer: s.peer,
                peer2: s.peer2,
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                queue_ns: s.queue_ns,
                bytes: s.bytes,
                frame: s.frame,
                cause: s.cause,
                consumed: s.consumed,
            });
        }
    }
}

/// Per-step fold depths: one `(peer, arrivals_consumed)` entry per
/// step that consumed at least one waiting frame, derived from the
/// inbox-wait spans (all waits consumed by one step are pushed
/// consecutively and share a `consumed` id). Feeds the
/// `dpr_inbox_depth` histogram, the coalesce-hit counter (depth ≥ 2)
/// and the per-peer high-water mark.
pub fn step_fold_depths(spans: &[SpanRec]) -> Vec<(u32, u64)> {
    let mut depths: Vec<(u32, u64)> = Vec::new();
    let mut run: Option<(u64, u32, u64)> = None; // (consumed, peer, count)
    for s in spans {
        if s.kind != SpanKind::InboxWait || s.consumed == 0 {
            continue;
        }
        match run {
            Some((c, peer, n)) if c == s.consumed => run = Some((c, peer, n + 1)),
            Some((_, peer, n)) => {
                depths.push((peer, n));
                run = Some((s.consumed, s.peer, 1));
            }
            None => run = Some((s.consumed, s.peer, 1)),
        }
    }
    if let Some((_, peer, n)) = run {
        depths.push((peer, n));
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_kind_roundtrips() {
        for k in [
            SpanKind::PeerStep,
            SpanKind::CoalesceWait,
            SpanKind::LinkTransfer,
            SpanKind::InboxWait,
            SpanKind::SafraProbe,
        ] {
            assert_eq!(k.as_str().parse::<SpanKind>().unwrap(), k);
        }
        assert!("rpc".parse::<SpanKind>().is_err());
    }

    #[test]
    fn step_with_hold_closes_coalesce_then_step_then_inbox_waits() {
        let mut tr = SpanTracer::new(2);
        // Peer 1 emits a frame at t=0 (seed step modeled manually).
        tr.on_step_scheduled(1, 0);
        let s1 = tr.on_step_executed(1, 100, 100);
        tr.on_send(7, 1, 0, 64, 100, 150);
        let link = tr.on_deliver(1, 0, 500, true);
        tr.on_step_scheduled(0, 500);
        let s0 = tr.on_step_executed(0, 800, 100); // 200 ns hold
        tr.finish(800);

        let spans = tr.spans();
        // step(1), link, coalesce(0), step(0), inbox(0<-1)
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[(s1 - 1) as usize].kind, SpanKind::PeerStep);
        let l = spans[(link - 1) as usize];
        assert_eq!(
            (l.kind, l.start_ns, l.end_ns, l.queue_ns, l.bytes, l.frame),
            (SpanKind::LinkTransfer, 100, 500, 50, 64, 7)
        );
        assert_eq!(l.cause, s1, "transfer caused by the emitting step");
        let c = spans[2];
        assert_eq!(
            (c.kind, c.start_ns, c.end_ns, c.cause),
            (SpanKind::CoalesceWait, 500, 700, link)
        );
        let st = spans[(s0 - 1) as usize];
        assert_eq!(
            (st.kind, st.start_ns, st.end_ns),
            (SpanKind::PeerStep, 700, 800)
        );
        assert_eq!(st.cause, 3, "step chained after its coalesce hold");
        let iw = spans[4];
        assert_eq!(
            (iw.kind, iw.peer, iw.peer2, iw.start_ns, iw.end_ns),
            (SpanKind::InboxWait, 0, 1, 500, 800)
        );
        assert_eq!((iw.cause, iw.consumed, iw.frame), (link, s0, 7));
        // Causal edges always reference earlier spans: acyclic.
        for (i, s) in spans.iter().enumerate() {
            assert!(s.cause <= i as u64);
            assert!(s.consumed <= i as u64);
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn finish_closes_unconsumed_waits_and_stranded_flights() {
        let mut tr = SpanTracer::new(2);
        tr.on_send(1, 0, 1, 32, 10, 10);
        tr.on_send(2, 0, 1, 32, 20, 42);
        tr.on_deliver(0, 1, 60, true); // folded but never stepped
        tr.finish(100);
        let spans = tr.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].kind, SpanKind::InboxWait);
        assert_eq!((spans[1].end_ns, spans[1].consumed), (100, 0));
        assert_eq!(spans[2].kind, SpanKind::LinkTransfer);
        assert_eq!((spans[2].frame, spans[2].end_ns), (2, 100));
    }

    #[test]
    fn fold_depths_group_consecutive_consumers() {
        let mut tr = SpanTracer::new(3);
        for _ in 0..3 {
            tr.on_send(0, 1, 2, 8, 0, 0);
            tr.on_deliver(1, 2, 10, true);
        }
        tr.on_step_scheduled(2, 10);
        tr.on_step_executed(2, 20, 10);
        tr.on_send(0, 1, 0, 8, 20, 20);
        tr.on_deliver(1, 0, 30, true);
        tr.on_step_scheduled(0, 30);
        tr.on_step_executed(0, 40, 10);
        let depths = step_fold_depths(tr.spans());
        assert_eq!(depths, vec![(2, 3), (0, 1)]);
    }
}
