//! The typed event taxonomy and its JSONL encoding.
//!
//! Every event serializes to one self-describing JSON object — a
//! `"type"` discriminator plus the variant's fields — so a trace file
//! is one event per line, readable by anything that speaks JSON and
//! validated by [`Event::from_value`] (the schema check the `dpr
//! trace --validate` path and the CI smoke step run).
//!
//! The vendored `serde_derive` only handles named-field structs, so
//! the enum's codec is written out by hand; the macro below keeps the
//! two directions and the field lists in one place.

use serde::{Deserialize, Error, Serialize, Value};

/// A structured telemetry event.
///
/// Ids are raw integers (`u32` peers, `u64` docs/passes) rather than
/// `PeerId`/`DocId`: this crate sits below every runtime crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One engine pass finished (the engine-level unit of progress).
    PassCompleted {
        /// Label of the engine run this pass belongs to (e.g.
        /// `"initial"`, `"wave@3"`, `"recompute@10"`).
        run: String,
        /// Pass index within the run, starting at 1.
        pass: u64,
        /// Documents whose pending increments were applied.
        applied: u64,
        /// Remote messages emitted during the pass.
        remote_messages: u64,
        /// Local (same-peer) rank updates during the pass.
        local_updates: u64,
        /// Distinct documents that emitted updates.
        senders: u64,
        /// Largest relative rank change seen in the pass.
        max_relative_change: f64,
        /// Overlay hops charged by the hop model during the pass.
        hops: u64,
        /// Wall-clock duration of the pass in nanoseconds.
        duration_ns: u64,
    },
    /// Residual mass and active-set size after a pass — the
    /// convergence trajectory. Residual is Σ|rank−advertised| +
    /// Σ|pending|: the mass not yet propagated. Absent injections
    /// (inserts, deletes) it is non-increasing pass over pass.
    ConvergenceCheck {
        /// Engine-run label (see [`Event::PassCompleted::run`]).
        run: String,
        /// Pass index within the run, starting at 1.
        pass: u64,
        /// Documents still scheduled for the next pass.
        active_docs: u64,
        /// Unpropagated rank mass after the pass.
        residual: f64,
    },
    /// Per-shard phase timings of one parallel pass.
    ShardPhase {
        /// Engine-run label.
        run: String,
        /// Pass index within the run, starting at 1.
        pass: u64,
        /// Shard index (0 for the sequential/inline path).
        shard: u32,
        /// Nanoseconds in the apply+emit phase.
        apply_ns: u64,
        /// Nanoseconds merging mailboxes into this shard.
        merge_ns: u64,
    },
    /// One message-level cluster round finished.
    RoundCompleted {
        /// Round index, starting at 1.
        round: u64,
        /// Wire payloads handed to the transport this round.
        sent: u64,
        /// Payloads placed in destination inboxes this round.
        delivered: u64,
        /// Parked payloads re-delivered this round.
        redelivered: u64,
        /// Overlay hops charged this round.
        hops: u64,
        /// Payloads parked at senders (store-and-resend depth) after
        /// the round.
        pending: u64,
    },
    /// One wire payload (single update or multi-update frame) left a
    /// node's outbox.
    FrameSent {
        /// Round index the send happened in.
        round: u64,
        /// Sending peer.
        from: u32,
        /// Destination peer.
        to: u32,
        /// Coalesced update entries in the payload (1 for singles).
        entries: u64,
        /// Payload bytes on the wire.
        bytes: u64,
    },
    /// A peer's presence changed.
    PeerChurn {
        /// Round (or pass) index at which the change took effect.
        round: u64,
        /// The peer whose presence changed.
        peer: u32,
        /// New presence state.
        online: bool,
    },
    /// A document was inserted into the live system.
    DocInserted {
        /// Insertion sequence number, starting at 1.
        seq: u64,
        /// The inserted document id.
        doc: u64,
    },
    /// Safra's termination-detection token was evaluated at the
    /// initiator after a ring circuit.
    TerminationProbe {
        /// Round index of the probe.
        round: u64,
        /// Completed token circuits so far.
        circuits: u64,
        /// Token message-count accumulator.
        token_count: i64,
        /// Whether the returned token was black.
        token_black: bool,
        /// Whether termination was announced.
        announced: bool,
        /// The Safra invariant Σ sent − Σ received as the detector
        /// sees it (0 when nothing is in flight).
        invariant: i64,
    },
    /// The priority scheduler's per-pass selection outcome
    /// (residual-driven scheduling; absent in full-sweep mode).
    SchedulerPass {
        /// Engine-run label (see [`Event::PassCompleted::run`]).
        run: String,
        /// Pass index within the run, starting at 1.
        pass: u64,
        /// Documents queued when the pass started.
        queued: u64,
        /// Documents selected for processing this pass.
        selected: u64,
        /// Documents deferred to a later pass.
        deferred: u64,
        /// Residual mass carried by the deferred documents.
        deferred_mass: f64,
        /// Fraction of the queued residual mass selected.
        budget_hit: f64,
    },
    /// An overlay lookup was resolved for a destination.
    RouteResolved {
        /// Source peer.
        src: u32,
        /// Destination peer (actual holder).
        dst: u32,
        /// Overlay hops charged.
        hops: u32,
        /// Whether a cached address short-circuited the route.
        cached: bool,
    },
    /// One snapshot of the rank-mass conservation ledger, emitted per
    /// engine pass or cluster round. The audited potential is
    ///
    /// `Φ = ranks + d/(1−d)·unadvertised + 1/(1−d)·(pending + in_flight)
    ///      + d/(1−d)·dangling`
    ///
    /// which every protocol step (apply, advertise, send, deliver)
    /// preserves exactly, so `Φ` must equal `expected` (its value when
    /// the run started) at every snapshot, up to float summation noise.
    MassLedger {
        /// Engine-run label, or `"cluster"` for cluster rounds.
        run: String,
        /// Pass (engine) or round (cluster) index, starting at 1.
        step: u64,
        /// Σ rank over all documents.
        ranks: f64,
        /// Σ (rank − advertised): applied but un-advertised mass.
        unadvertised: f64,
        /// Σ pending: delivered but un-applied increments.
        pending: f64,
        /// Σ decoded update values sitting in transport queues
        /// (inboxes + parked store-and-resend payloads); 0 for the
        /// engine, whose passes leave nothing in flight.
        in_flight: f64,
        /// Cumulative advertised delta of dangling (out-degree 0)
        /// documents — mass the protocol intentionally sinks.
        dangling: f64,
        /// Damping factor d the weights are built from.
        damping: f64,
        /// Φ at run start; the conservation target.
        expected: f64,
    },
    /// One snapshot of the per-round message-balance ledger (cluster
    /// runs only): cumulative entries addressed to peers versus
    /// entries received plus entries still in transport queues.
    BalanceLedger {
        /// Round index, starting at 1.
        round: u64,
        /// Cumulative logical remote emissions (pre-coalescing).
        emitted: u64,
        /// Cumulative coalesced entries handed to the transport.
        sent: u64,
        /// Cumulative entries received (applied) by nodes.
        received: u64,
        /// Entries currently in transport queues (inboxes + parked).
        in_flight_entries: u64,
        /// Peer with the largest absolute balance skew (meaningful
        /// only when `skew != 0`).
        skew_peer: u32,
        /// That peer's `sent_to − received − in_flight_to`: negative
        /// means entries materialized from nowhere (duplication),
        /// positive means entries vanished in transit (loss).
        skew: i64,
    },
    /// One closed virtual-time span of the chaotic runtime (see
    /// [`crate::span`]): the JSONL replica of a [`crate::span::SpanRec`],
    /// emitted in dense id order so a trace reader can rebuild the
    /// exact causal model (`dpr profile --input`).
    SpanClosed {
        /// Dense span id within this chaotic segment, starting at 1
        /// (a fresh segment restarts at 1 — the profiler splits on
        /// non-increasing ids).
        span: u64,
        /// Span kind wire form (`"peer_step"`, `"coalesce_wait"`,
        /// `"link_transfer"`, `"inbox_wait"`, `"safra_probe"`).
        kind: String,
        /// Primary peer (stepper / sender / wait destination).
        peer: u32,
        /// Secondary peer (transfer destination / wait sender; for
        /// probes, 1 iff the circuit announced termination).
        peer2: u32,
        /// Virtual start time, nanoseconds.
        start_ns: u64,
        /// Virtual end time, nanoseconds.
        end_ns: u64,
        /// Transfers: sender-side link queueing at the span head.
        queue_ns: u64,
        /// Transfers: payload bytes.
        bytes: u64,
        /// Frame provenance id (transfers and inbox waits; 0 = n/a).
        frame: u64,
        /// Id of the span whose completion scheduled this one (0 =
        /// run seed).
        cause: u64,
        /// Inbox waits: id of the step span that consumed the frame
        /// (0 = never consumed).
        consumed: u64,
    },
    /// End-of-run health summary of one chaotic segment: the
    /// event-runtime counters that round-mode telemetry has no
    /// equivalent for.
    ChaoticHealth {
        /// Events executed (steps + deliveries + probes + audits).
        events: u64,
        /// Local passes executed.
        steps: u64,
        /// Envelopes delivered.
        deliveries: u64,
        /// `Deliver` events displaced by a lost frame or redirect.
        displaced: u64,
        /// Deliveries that saturated the destination inbox
        /// (backpressure-forced steps).
        saturated: u64,
        /// Steps that consumed two or more waiting arrivals (the
        /// coalescing window doing its job).
        coalesce_hits: u64,
        /// Largest un-stepped arrival depth any peer reached.
        max_inbox_depth: u64,
    },
    /// One closed stage of a served query's causal chain
    /// (`query_issued` → `term_lookup` → `posting_ship` →
    /// `intersect` → `result_page`). Deliberately a separate kind
    /// from [`Event::SpanClosed`]: the chaotic profiler's span
    /// taxonomy is closed (unknown kinds are parse errors there), so
    /// query stages ride their own event.
    QuerySpan {
        /// Query sequence number within the serving run, starting
        /// at 1.
        query: u64,
        /// Stage name (`"query_issued"`, `"term_lookup"`,
        /// `"posting_ship"`, `"intersect"`, `"result_page"`).
        stage: String,
        /// Peer the stage executed at (the coordinating peer).
        peer: u32,
        /// Virtual start time, nanoseconds.
        start_ns: u64,
        /// Virtual end time, nanoseconds.
        end_ns: u64,
        /// Overlay hops charged by the stage.
        hops: u64,
        /// Bytes shipped by the stage (posting fragments, result
        /// page).
        bytes: u64,
        /// Stage ordinal of the cause within the same query (0 =
        /// the arrival event itself), forming the per-query causal
        /// chain.
        cause: u64,
    },
    /// End-of-run health summary of a serving workload: the query-side
    /// counterpart of [`Event::ChaoticHealth`].
    ServingHealth {
        /// Queries served.
        queries: u64,
        /// p50 end-to-end query latency, nanoseconds.
        p50_ns: u64,
        /// p99 end-to-end query latency, nanoseconds.
        p99_ns: u64,
        /// p999 end-to-end query latency, nanoseconds.
        p999_ns: u64,
        /// Total overlay hops across all queries.
        hops: u64,
        /// Total posting/result bytes shipped across all queries.
        bytes_shipped: u64,
        /// p99 rank staleness at query time vs. the converged fixed
        /// point, parts-per-million.
        stale_p99_ppm: u64,
        /// Number of SLO objectives that failed their error budget.
        slo_violations: u64,
    },
    /// The quiescence certificate emitted when a cluster run claims
    /// termination: every field must witness "truly done".
    QuiescenceCert {
        /// Final round index.
        round: u64,
        /// Entries still in transport queues (must be 0).
        in_flight_entries: u64,
        /// Payloads parked for store-and-resend (must be 0).
        parked: u64,
        /// Nodes still holding queued work (must be 0).
        nodes_with_work: u64,
        /// Safra token Σ sent − Σ received (must be 0).
        token: i64,
        /// Largest relative un-advertised residual across documents.
        max_residual: f64,
        /// The ε the run converged against.
        epsilon: f64,
    },
}

/// Builds the `match`es for both codec directions from one variant ×
/// field table.
macro_rules! event_codec {
    ($( $variant:ident => $tag:literal { $($field:ident),+ $(,)? } )+) => {
        impl Serialize for Event {
            fn to_value(&self) -> Value {
                match self {
                    $(Event::$variant { $($field),+ } => Value::Object(vec![
                        ("type".to_string(), Value::Str($tag.to_string())),
                        $( (stringify!($field).to_string(), $field.to_value()), )+
                    ]),)+
                }
            }
        }

        impl Deserialize for Event {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let tag = v
                    .get("type")
                    .and_then(Value::as_str)
                    .ok_or_else(|| Error::custom("event missing \"type\" discriminator"))?;
                match tag {
                    $($tag => Ok(Event::$variant {
                        $($field: Deserialize::from_value(v.get(stringify!($field)).ok_or_else(
                            || Error::custom(concat!(
                                $tag, " missing field \"", stringify!($field), "\""
                            )),
                        )?)
                        .map_err(|e| Error::custom(format!(
                            "{}.{}: {e}", $tag, stringify!($field)
                        )))?,)+
                    }),)+
                    other => Err(Error::custom(format!("unknown event type {other:?}"))),
                }
            }
        }

        impl Event {
            /// The wire discriminator of this event (`"type"` field).
            pub fn kind(&self) -> &'static str {
                match self {
                    $(Event::$variant { .. } => $tag,)+
                }
            }

            /// Every known discriminator, in taxonomy order.
            pub const KINDS: &'static [&'static str] = &[$($tag),+];
        }
    };
}

event_codec! {
    PassCompleted => "pass_completed" {
        run, pass, applied, remote_messages, local_updates, senders,
        max_relative_change, hops, duration_ns,
    }
    ConvergenceCheck => "convergence_check" { run, pass, active_docs, residual }
    ShardPhase => "shard_phase" { run, pass, shard, apply_ns, merge_ns }
    RoundCompleted => "round_completed" { round, sent, delivered, redelivered, hops, pending }
    FrameSent => "frame_sent" { round, from, to, entries, bytes }
    PeerChurn => "peer_churn" { round, peer, online }
    DocInserted => "doc_inserted" { seq, doc }
    TerminationProbe => "termination_probe" {
        round, circuits, token_count, token_black, announced, invariant,
    }
    SchedulerPass => "scheduler_pass" {
        run, pass, queued, selected, deferred, deferred_mass, budget_hit,
    }
    RouteResolved => "route_resolved" { src, dst, hops, cached }
    MassLedger => "mass_ledger" {
        run, step, ranks, unadvertised, pending, in_flight, dangling, damping, expected,
    }
    BalanceLedger => "balance_ledger" {
        round, emitted, sent, received, in_flight_entries, skew_peer, skew,
    }
    SpanClosed => "span_closed" {
        span, kind, peer, peer2, start_ns, end_ns, queue_ns, bytes, frame, cause, consumed,
    }
    ChaoticHealth => "chaotic_health" {
        events, steps, deliveries, displaced, saturated, coalesce_hits, max_inbox_depth,
    }
    QuerySpan => "query_span" {
        query, stage, peer, start_ns, end_ns, hops, bytes, cause,
    }
    ServingHealth => "serving_health" {
        queries, p50_ns, p99_ns, p999_ns, hops, bytes_shipped, stale_p99_ppm, slo_violations,
    }
    QuiescenceCert => "quiescence_cert" {
        round, in_flight_entries, parked, nodes_with_work, token, max_residual, epsilon,
    }
}

impl Event {
    /// Whether this event injects rank mass or changes membership —
    /// the events after whose last occurrence the residual series
    /// must be monotone non-increasing.
    pub fn is_injection(&self) -> bool {
        matches!(self, Event::PeerChurn { .. } | Event::DocInserted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::PassCompleted {
                run: "initial".into(),
                pass: 3,
                applied: 120,
                remote_messages: 40,
                local_updates: 80,
                senders: 33,
                max_relative_change: 0.0625,
                hops: 91,
                duration_ns: 12_345,
            },
            Event::ConvergenceCheck {
                run: "initial".into(),
                pass: 3,
                active_docs: 17,
                residual: 0.25,
            },
            Event::ShardPhase {
                run: "initial".into(),
                pass: 3,
                shard: 1,
                apply_ns: 900,
                merge_ns: 100,
            },
            Event::RoundCompleted {
                round: 9,
                sent: 12,
                delivered: 11,
                redelivered: 1,
                hops: 30,
                pending: 2,
            },
            Event::FrameSent {
                round: 9,
                from: 4,
                to: 7,
                entries: 5,
                bytes: 84,
            },
            Event::PeerChurn {
                round: 10,
                peer: 7,
                online: false,
            },
            Event::DocInserted {
                seq: 1,
                doc: 10_000,
            },
            Event::TerminationProbe {
                round: 12,
                circuits: 2,
                token_count: -3,
                token_black: false,
                announced: false,
                invariant: 3,
            },
            Event::SchedulerPass {
                run: "initial".into(),
                pass: 3,
                queued: 1_000,
                selected: 120,
                deferred: 880,
                deferred_mass: 0.375,
                budget_hit: 0.625,
            },
            Event::RouteResolved {
                src: 4,
                dst: 7,
                hops: 5,
                cached: false,
            },
            Event::MassLedger {
                run: "cluster".into(),
                step: 6,
                ranks: 412.5,
                unadvertised: 3.25,
                pending: 1.5,
                in_flight: 0.75,
                dangling: 0.0,
                damping: 0.85,
                expected: 500.0,
            },
            Event::BalanceLedger {
                round: 6,
                emitted: 900,
                sent: 640,
                received: 612,
                in_flight_entries: 28,
                skew_peer: 0,
                skew: 0,
            },
            Event::SpanClosed {
                span: 17,
                kind: "link_transfer".into(),
                peer: 4,
                peer2: 7,
                start_ns: 1_000,
                end_ns: 45_000,
                queue_ns: 4_000,
                bytes: 84,
                frame: 9,
                cause: 12,
                consumed: 0,
            },
            Event::ChaoticHealth {
                events: 10_000,
                steps: 1_200,
                deliveries: 8_700,
                displaced: 3,
                saturated: 41,
                coalesce_hits: 310,
                max_inbox_depth: 32,
            },
            Event::QuerySpan {
                query: 12,
                stage: "posting_ship".into(),
                peer: 4,
                start_ns: 1_000,
                end_ns: 38_000,
                hops: 5,
                bytes: 1_024,
                cause: 2,
            },
            Event::ServingHealth {
                queries: 500,
                p50_ns: 42_000_000,
                p99_ns: 180_000_000,
                p999_ns: 240_000_000,
                hops: 6_200,
                bytes_shipped: 2_400_000,
                stale_p99_ppm: 870,
                slo_violations: 0,
            },
            Event::QuiescenceCert {
                round: 41,
                in_flight_entries: 0,
                parked: 0,
                nodes_with_work: 0,
                token: 0,
                max_residual: 0.000_4,
                epsilon: 0.001,
            },
        ]
    }

    #[test]
    fn roundtrips_through_json() {
        for e in samples() {
            let line = serde_json::to_string(&e).unwrap();
            let v = serde_json::from_str(&line).unwrap();
            let back = Event::from_value(&v).unwrap();
            assert_eq!(back, e, "roundtrip of {line}");
        }
    }

    #[test]
    fn wire_form_is_tagged() {
        let e = &samples()[0];
        let line = serde_json::to_string(e).unwrap();
        assert!(line.starts_with("{\"type\":\"pass_completed\""), "{line}");
        assert_eq!(e.kind(), "pass_completed");
    }

    #[test]
    fn kinds_cover_every_variant() {
        for e in samples() {
            assert!(Event::KINDS.contains(&e.kind()));
        }
        assert_eq!(Event::KINDS.len(), samples().len());
    }

    #[test]
    fn rejects_malformed_values() {
        let missing_type = serde_json::from_str("{\"pass\": 1}").unwrap();
        assert!(Event::from_value(&missing_type).is_err());

        let unknown = serde_json::from_str("{\"type\": \"warp_drive\"}").unwrap();
        assert!(Event::from_value(&unknown).is_err());

        let missing_field =
            serde_json::from_str("{\"type\": \"doc_inserted\", \"seq\": 1}").unwrap();
        let err = Event::from_value(&missing_field).unwrap_err();
        assert!(err.to_string().contains("doc"), "{err}");

        let wrong_type =
            serde_json::from_str("{\"type\": \"doc_inserted\", \"seq\": 1, \"doc\": \"x\"}")
                .unwrap();
        assert!(Event::from_value(&wrong_type).is_err());
    }

    #[test]
    fn injection_classification() {
        assert!(Event::DocInserted { seq: 1, doc: 2 }.is_injection());
        assert!(Event::PeerChurn {
            round: 1,
            peer: 2,
            online: true
        }
        .is_injection());
        assert!(!samples()[0].is_injection());
    }
}
