//! Declarative latency SLOs evaluated over sliding windows.
//!
//! An [`SloSpec`] names a quantile target ("p99 query latency under
//! 250 ms") plus an error budget: the fraction of evaluation windows
//! allowed to violate the target before the SLO as a whole fails.
//! Observations stream into [`SlidingWindows`], which shards them
//! into fixed-width virtual-time windows each backed by a
//! [`QuantileSketch`](crate::quantile::QuantileSketch); because the
//! sketches merge losslessly, the same structure answers both
//! per-window verdicts and whole-run quantiles.
//!
//! [`evaluate`] turns specs + windows into [`SloReport`]s, and
//! [`verdict`] collapses a report set into the single pass/fail bit
//! the CLI maps onto its process exit status — the mechanism CI uses
//! to gate on serving behaviour.

use crate::quantile::QuantileSketch;
use serde::{Deserialize, Serialize};

/// One declarative service-level objective over a latency quantile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloSpec {
    /// Human-readable objective name (e.g. `"p99_query_latency"`).
    pub name: String,
    /// Quantile the objective constrains, in `(0, 1]` (e.g. `0.99`).
    pub quantile: f64,
    /// Upper bound the quantile must stay below, in nanoseconds.
    pub threshold_ns: u64,
    /// Error budget: fraction of windows allowed to violate the
    /// threshold while the objective still passes (e.g. `0.1`).
    pub budget: f64,
}

impl SloSpec {
    /// Convenience constructor.
    pub fn new(name: &str, quantile: f64, threshold_ns: u64, budget: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            quantile,
            threshold_ns,
            budget,
        }
    }
}

/// Evaluation outcome for one [`SloSpec`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloReport {
    /// Objective name, copied from the spec.
    pub name: String,
    /// Quantile constrained, copied from the spec.
    pub quantile: f64,
    /// Threshold, copied from the spec.
    pub threshold_ns: u64,
    /// Number of non-empty windows evaluated.
    pub windows_total: u64,
    /// Windows whose quantile exceeded the threshold.
    pub windows_violated: u64,
    /// `windows_violated / windows_total` (0 when no windows).
    pub budget_spent: f64,
    /// Allowed budget, copied from the spec.
    pub budget: f64,
    /// The quantile over the whole run (all windows merged).
    pub overall_quantile_ns: u64,
    /// True iff `budget_spent <= budget`.
    pub pass: bool,
}

/// Observations sharded into fixed-width virtual-time windows.
#[derive(Debug, Clone)]
pub struct SlidingWindows {
    window_ns: u64,
    windows: Vec<(u64, QuantileSketch)>,
}

impl SlidingWindows {
    /// New window set; `window_ns` is the window width (min 1).
    pub fn new(window_ns: u64) -> Self {
        SlidingWindows {
            window_ns: window_ns.max(1),
            windows: Vec::new(),
        }
    }

    /// Records `value` at virtual time `t_ns`. Observations must not
    /// go backwards across window boundaries (serving time is
    /// monotone), but any order within the current window is fine.
    pub fn observe(&mut self, t_ns: u64, value: u64) {
        let start = (t_ns / self.window_ns) * self.window_ns;
        match self.windows.last_mut() {
            Some((s, sketch)) if *s == start => sketch.observe(value),
            _ => {
                let mut sketch = QuantileSketch::new();
                sketch.observe(value);
                self.windows.push((start, sketch));
            }
        }
    }

    /// Number of non-empty windows so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Per-window `(start_ns, sketch)` pairs, in time order.
    pub fn windows(&self) -> &[(u64, QuantileSketch)] {
        &self.windows
    }

    /// All windows merged into one sketch (the whole-run view).
    pub fn merged(&self) -> QuantileSketch {
        let mut all = QuantileSketch::new();
        for (_, sketch) in &self.windows {
            all.merge(sketch);
        }
        all
    }
}

/// Evaluates each spec against the windows, producing one report per
/// spec. A window violates a spec when its quantile estimate exceeds
/// the threshold; the spec passes while the violated-window fraction
/// stays within its error budget.
pub fn evaluate(specs: &[SloSpec], windows: &SlidingWindows) -> Vec<SloReport> {
    let merged = windows.merged();
    specs
        .iter()
        .map(|spec| {
            let total = windows.len() as u64;
            let violated = windows
                .windows()
                .iter()
                .filter(|(_, sketch)| sketch.quantile(spec.quantile) > spec.threshold_ns)
                .count() as u64;
            let budget_spent = if total == 0 {
                0.0
            } else {
                violated as f64 / total as f64
            };
            SloReport {
                name: spec.name.clone(),
                quantile: spec.quantile,
                threshold_ns: spec.threshold_ns,
                windows_total: total,
                windows_violated: violated,
                budget_spent,
                budget: spec.budget,
                overall_quantile_ns: merged.quantile(spec.quantile),
                pass: budget_spent <= spec.budget,
            }
        })
        .collect()
}

/// Collapses a report set into the single verdict CI gates on: true
/// iff every objective passed (vacuously true when empty).
pub fn verdict(reports: &[SloReport]) -> bool {
    reports.iter().all(|r| r.pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn windows_shard_by_virtual_time_and_merge_to_whole_run() {
        let mut w = SlidingWindows::new(100 * MS);
        for i in 0..10u64 {
            w.observe(i * 30 * MS, (i + 1) * MS);
        }
        // 0..100ms, 100..200ms, 200..300ms windows → 4+3+3 observations.
        assert_eq!(w.len(), 3);
        let counts: Vec<u64> = w.windows().iter().map(|(_, s)| s.count()).collect();
        assert_eq!(counts, vec![4, 3, 3]);
        assert_eq!(w.merged().count(), 10);
        assert_eq!(w.merged().max(), 10 * MS);
    }

    #[test]
    fn budget_accounting_separates_pass_from_fail() {
        // 10 windows; two of them contain one slow (500 ms) request.
        let mut w = SlidingWindows::new(100 * MS);
        for win in 0..10u64 {
            let t = win * 100 * MS;
            for _ in 0..9 {
                w.observe(t, 10 * MS);
            }
            w.observe(t, if win < 2 { 500 * MS } else { 20 * MS });
        }
        let specs = [
            // p99 ≤ 250 ms with a 30% budget: 2/10 violated → passes.
            SloSpec::new("p99_roomy", 0.99, 250 * MS, 0.30),
            // p99 ≤ 250 ms with a 10% budget: 2/10 violated → fails.
            SloSpec::new("p99_tight", 0.99, 250 * MS, 0.10),
            // p50 ≤ 50 ms: never violated.
            SloSpec::new("p50", 0.50, 50 * MS, 0.0),
        ];
        let reports = evaluate(&specs, &w);
        assert_eq!(reports[0].windows_violated, 2);
        assert!(reports[0].pass);
        assert!(!reports[1].pass);
        assert!((reports[1].budget_spent - 0.2).abs() < 1e-9);
        assert!(reports[2].pass);
        assert_eq!(reports[2].windows_violated, 0);
        assert!(!verdict(&reports));
        assert!(verdict(&reports[..1]));
        assert!(verdict(&[]));
    }

    #[test]
    fn empty_windows_evaluate_vacuously() {
        let w = SlidingWindows::new(MS);
        let reports = evaluate(&[SloSpec::new("p99", 0.99, MS, 0.0)], &w);
        assert_eq!(reports[0].windows_total, 0);
        assert!(reports[0].pass);
        assert_eq!(reports[0].overall_quantile_ns, 0);
    }

    #[test]
    fn specs_round_trip_through_serde() {
        let spec = SloSpec::new("p999", 0.999, 750 * MS, 0.05);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SloSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "p999");
        assert_eq!(back.threshold_ns, 750 * MS);
    }
}
