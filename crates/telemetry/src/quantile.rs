//! Mergeable log-linear quantile sketches (HDR-histogram style).
//!
//! The log2 histogram in [`crate::hist`] answers quantile queries only
//! to bucket resolution — a factor of two. That is fine for inbox
//! depths; it is useless for latency SLOs, where p99 = 180 ms and
//! p99 = 350 ms are different verdicts. This sketch subdivides every
//! octave into [`SUBBUCKETS`] linear sub-buckets, so any reported
//! quantile is within [`RELATIVE_ERROR_BOUND`] (= `1/SUBBUCKETS`,
//! ~3.1%) of the exact order statistic — property-tested against a
//! sorted oracle below.
//!
//! Layout: values `0..SUBBUCKETS` index directly (exact); a larger
//! value with `floor(log2 v) = e` lands in group `e - B + 1` (where
//! `B = log2 SUBBUCKETS`), sub-indexed by the [`SUBBUCKETS`] bits
//! after the leading one. Each bucket of group `g ≥ 1` spans
//! `2^(g-1)` values, so the width-to-magnitude ratio — the relative
//! error — never exceeds `1/SUBBUCKETS`.
//!
//! Two sketches over disjoint observation sets merge by bucket-wise
//! addition, which makes per-window recording equivalent to one big
//! sketch of the union — the property SLO windowing relies on
//! (associativity/commutativity are property-tested too).

/// Number of linear sub-buckets per octave (a power of two).
pub const SUBBUCKETS: u64 = 32;

/// `log2(SUBBUCKETS)`.
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Guaranteed worst-case relative error of any quantile estimate:
/// `1 / SUBBUCKETS`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUBBUCKETS as f64;

/// Total bucket count: 59 groups of [`SUBBUCKETS`] cover all of `u64`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBBUCKETS as usize;

/// Bucket index of a value.
pub fn index_of(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let group = (e - SUB_BITS + 1) as u64;
    let sub = (v >> (e - SUB_BITS)) & (SUBBUCKETS - 1);
    (group * SUBBUCKETS + sub) as usize
}

/// Highest value contained in bucket `index` (the sketch's quantile
/// representative: reporting it can only overshoot, never undershoot,
/// the exact order statistic in the same bucket).
pub fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBBUCKETS {
        return index;
    }
    let group = index / SUBBUCKETS;
    let sub = index % SUBBUCKETS;
    let width = 1u64 << (group - 1);
    let low = (SUBBUCKETS + sub) << (group - 1);
    low.wrapping_add(width - 1)
}

/// A mergeable log-linear quantile sketch with bounded relative error.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`, bucket-wise. The result is
    /// indistinguishable from one sketch fed both observation sets.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile estimate: the high edge of the bucket holding
    /// the `ceil(q·n)`-th smallest observation, clamped to the exact
    /// observed maximum. Within [`RELATIVE_ERROR_BOUND`] of the exact
    /// order statistic; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// p50 / p95 / p99 / p999, in that order.
    pub fn latency_quantiles(&self) -> [u64; 4] {
        [
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.quantile(0.999),
        ]
    }

    /// Per-bucket counts (mostly for tests and merging proofs).
    pub fn snapshot(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUBBUCKETS {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn indexing_is_monotone_and_contiguous_across_the_domain() {
        // Every bucket's high edge maps back to that bucket, and the
        // next value starts the next bucket.
        for i in 0..NUM_BUCKETS - 1 {
            let hi = bucket_high(i);
            assert_eq!(index_of(hi), i, "high edge of bucket {i}");
            if hi < u64::MAX {
                assert_eq!(index_of(hi + 1), i + 1, "successor of bucket {i}");
            }
        }
        assert_eq!(index_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for i in SUBBUCKETS as usize..NUM_BUCKETS {
            let hi = bucket_high(i);
            let group = i as u64 / SUBBUCKETS;
            let width = 1u64 << (group - 1);
            let low = hi - (width - 1);
            assert!(
                (width - 1) as f64 <= RELATIVE_ERROR_BOUND * low as f64,
                "bucket {i}: width {width} low {low}"
            );
        }
    }

    #[test]
    fn quantiles_on_known_data() {
        let mut s = QuantileSketch::new();
        for v in 1..=1000u64 {
            s.observe(v);
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        let [p50, p95, p99, p999] = s.latency_quantiles();
        for (q, exact, est) in [
            (0.50, 500u64, p50),
            (0.95, 950, p95),
            (0.99, 990, p99),
            (0.999, 999, p999),
        ] {
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                est >= exact && rel <= RELATIVE_ERROR_BOUND,
                "q{q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.quantile(1.0), 1000, "p100 clamps to the exact max");
        assert_eq!(QuantileSketch::new().quantile(0.99), 0);
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    proptest! {
        #[test]
        fn relative_error_guarantee_vs_sorted_oracle(
            values in prop_vec(0u64..u64::MAX / 2, 1..300),
            q in 0.001f64..1.0,
        ) {
            let mut s = QuantileSketch::new();
            for &v in &values {
                s.observe(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact = exact_quantile(&sorted, q);
            let est = s.quantile(q);
            // The estimate never undershoots (bucket high edge) and
            // overshoots by at most the guaranteed relative error.
            prop_assert!(est >= exact, "est {est} < exact {exact}");
            let slack = RELATIVE_ERROR_BOUND * exact as f64;
            prop_assert!(
                est as f64 - exact as f64 <= slack.max(0.0),
                "est {est} exact {exact} slack {slack}"
            );
        }

        #[test]
        fn merge_is_commutative_and_associative(
            a in prop_vec(any::<u64>(), 0..100),
            b in prop_vec(any::<u64>(), 0..100),
            c in prop_vec(any::<u64>(), 0..100),
        ) {
            let mk = |vals: &[u64]| {
                let mut s = QuantileSketch::new();
                for &v in vals {
                    s.observe(v);
                }
                s
            };
            // (a ∪ b) = (b ∪ a)
            let mut ab = mk(&a);
            ab.merge(&mk(&b));
            let mut ba = mk(&b);
            ba.merge(&mk(&a));
            prop_assert_eq!(ab.snapshot(), ba.snapshot());
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
            // ((a ∪ b) ∪ c) = (a ∪ (b ∪ c)) = one sketch of everything
            let mut abc = ab;
            abc.merge(&mk(&c));
            let mut bc = mk(&b);
            bc.merge(&mk(&c));
            let mut a_bc = mk(&a);
            a_bc.merge(&bc);
            prop_assert_eq!(abc.snapshot(), a_bc.snapshot());
            let mut whole = QuantileSketch::new();
            for &v in a.iter().chain(&b).chain(&c) {
                whole.observe(v);
            }
            prop_assert_eq!(abc.snapshot(), whole.snapshot());
            prop_assert_eq!(abc.sum(), whole.sum());
        }
    }
}
