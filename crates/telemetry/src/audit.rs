//! Online invariant auditing over the event stream — the flight
//! recorder's analysis half.
//!
//! Three monitors own the protocol's silent invariants:
//!
//! * **Mass conservation** — every protocol step (apply, advertise,
//!   send, deliver) preserves the potential
//!   `Φ = ranks + d/(1−d)·unadvertised + 1/(1−d)·(pending +
//!   in-flight) + d/(1−d)·dangling`, so each [`Event::MassLedger`]
//!   snapshot must
//!   match the `expected` value captured at run start up to float
//!   summation noise. A payload whose rank value is corrupted in
//!   flight breaks this and nothing else.
//! * **Message balance** — entries can never *materialize*: at every
//!   [`Event::BalanceLedger`] snapshot, `received + in-flight ≤ sent`
//!   (globally and per peer). A duplicated delivery trips it at the
//!   round (and peer) of the duplication. Entries still *in transit*
//!   (`sent > received + in-flight` would mean loss, but mid-run the
//!   balance auditor cannot distinguish transit delay in a real
//!   asynchronous deployment) are the quiescence certifier's job.
//! * **Quiescence certification** — when the run claims termination
//!   ([`Event::QuiescenceCert`], or a Safra probe announcing), nothing
//!   may be outstanding: no in-flight or parked payloads, no queued
//!   work, Safra token `Σ sent − Σ received = 0`, and no residual
//!   above ε. A silently dropped payload leaves the token positive
//!   forever and is caught exactly here.
//!
//! The monitors overlap by nature (a duplicated frame also injects
//! mass), so [`AuditReport::primary`] attributes a failure to the
//! *deepest* violated invariant — balance before quiescence before
//! mass — which maps each of the three canonical transport faults to
//! the monitor that owns it.

use crate::event::Event;
use crate::fmt::fmt_f64;
use crate::table::TextTable;

/// Relative float tolerance of the mass-conservation check, scaled by
/// `max(|expected|, 1)`. Ledger sums fold millions of doubles, but the
/// relative error of those folds is orders of magnitude below this;
/// any real corruption clears it by orders of magnitude the other way.
pub const MASS_TOLERANCE: f64 = 1e-9;

/// Mass tolerance for runs under the *compact* wire codec. Compact
/// quantizes each update to `f32` on the wire while senders keep f64
/// books, so Φ legitimately drifts by the accumulated quantization
/// error (~1.2e-7 relative per update) — far above [`MASS_TOLERANCE`]
/// but still orders of magnitude below any real conservation bug.
pub const COMPACT_MASS_TOLERANCE: f64 = 1e-6;

/// One subsystem's summed mass-ledger terms, produced at a pass or
/// round boundary by the engine or a peer node. The audit potential
/// over a breakdown plus the in-flight wire mass is
/// `Φ = ranks + d/(1−d)·unadvertised + (pending + in_flight)/(1−d) +
/// d/(1−d)·dangling`; every protocol step preserves it, so emitters
/// fold their state into this struct and [`phi`] is the single place
/// the formula lives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MassBreakdown {
    /// Σ rank over documents.
    pub ranks: f64,
    /// Σ (rank − advertised): applied but not yet advertised mass.
    pub unadvertised: f64,
    /// Σ pending: parked increments not yet applied.
    pub pending: f64,
    /// Cumulative advertised delta of dangling (out-degree 0)
    /// documents — the mass the damping sink has absorbed.
    pub dangling: f64,
}

impl MassBreakdown {
    /// Folds another subsystem's terms into this one.
    pub fn merge(&mut self, other: MassBreakdown) {
        self.ranks += other.ranks;
        self.unadvertised += other.unadvertised;
        self.pending += other.pending;
        self.dangling += other.dangling;
    }

    /// The conserved potential for this breakdown plus `in_flight`
    /// wire mass under damping `d`.
    pub fn phi(&self, in_flight: f64, damping: f64) -> f64 {
        phi(
            self.ranks,
            self.unadvertised,
            self.pending,
            in_flight,
            self.dangling,
            damping,
        )
    }

    /// The [`Event::MassLedger`] snapshot for this breakdown.
    pub fn ledger_event(
        &self,
        run: &str,
        step: u64,
        in_flight: f64,
        damping: f64,
        expected: f64,
    ) -> Event {
        Event::MassLedger {
            run: run.to_string(),
            step,
            ranks: self.ranks,
            unadvertised: self.unadvertised,
            pending: self.pending,
            in_flight,
            dangling: self.dangling,
            damping,
            expected,
        }
    }
}

/// The conserved audit potential (see [`MassBreakdown`]).
pub fn phi(
    ranks: f64,
    unadvertised: f64,
    pending: f64,
    in_flight: f64,
    dangling: f64,
    damping: f64,
) -> f64 {
    let amp = damping / (1.0 - damping);
    ranks + amp * unadvertised + (pending + in_flight) / (1.0 - damping) + amp * dangling
}

/// The invariant monitors, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monitor {
    /// The mass-conservation ledger over `mass_ledger` snapshots.
    MassConservation,
    /// The message-balance auditor over `balance_ledger` snapshots.
    MessageBalance,
    /// The quiescence certifier over `quiescence_cert` /
    /// `termination_probe` events.
    Quiescence,
}

impl Monitor {
    /// Every monitor, in report order.
    pub const ALL: [Monitor; 3] = [
        Monitor::MassConservation,
        Monitor::MessageBalance,
        Monitor::Quiescence,
    ];

    /// Stable short name (used in tables and test assertions).
    pub fn name(self) -> &'static str {
        match self {
            Monitor::MassConservation => "mass-conservation",
            Monitor::MessageBalance => "message-balance",
            Monitor::Quiescence => "quiescence",
        }
    }

    /// One-line statement of the owned invariant.
    pub fn invariant(self) -> &'static str {
        match self {
            Monitor::MassConservation => "Φ(ranks, residual, in-flight) constant per run",
            Monitor::MessageBalance => "received + in-flight ≤ sent, globally and per peer",
            Monitor::Quiescence => "termination ⇒ nothing outstanding, token 0, residual ≤ ε",
        }
    }
}

impl std::fmt::Display for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The first violation a monitor observed.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Pass or round index of the violating snapshot.
    pub step: u64,
    /// Engine-run label, when the snapshot carries one.
    pub run: Option<String>,
    /// The peer localized as first violating, when the invariant is
    /// per-peer localizable.
    pub peer: Option<u32>,
    /// Human-readable account of what was off and by how much.
    pub detail: String,
}

/// One monitor's verdict over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorFinding {
    /// Which monitor.
    pub monitor: Monitor,
    /// Snapshots the monitor evaluated (0 means the trace never
    /// exercised this invariant — reported as such, not as a pass).
    pub checked: u64,
    /// The first violation, if any.
    pub violation: Option<Violation>,
}

impl MonitorFinding {
    fn new(monitor: Monitor) -> Self {
        MonitorFinding {
            monitor,
            checked: 0,
            violation: None,
        }
    }

    /// `"ok"`, `"FAIL"`, or `"n/a"` (never exercised).
    pub fn status(&self) -> &'static str {
        if self.violation.is_some() {
            "FAIL"
        } else if self.checked == 0 {
            "n/a"
        } else {
            "ok"
        }
    }

    fn record(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v);
        }
    }
}

/// The full audit verdict over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    findings: Vec<MonitorFinding>,
}

impl AuditReport {
    /// Runs every monitor over `events` in stream order at the default
    /// (raw-codec, bit-exact) mass tolerance.
    pub fn evaluate(events: &[Event]) -> Self {
        Self::evaluate_with_mass_tolerance(events, MASS_TOLERANCE)
    }

    /// Runs every monitor with an explicit mass-conservation
    /// tolerance — [`COMPACT_MASS_TOLERANCE`] for traces recorded
    /// under the compact wire codec.
    pub fn evaluate_with_mass_tolerance(events: &[Event], mass_tolerance: f64) -> Self {
        let mut mass = MonitorFinding::new(Monitor::MassConservation);
        let mut balance = MonitorFinding::new(Monitor::MessageBalance);
        let mut quiescence = MonitorFinding::new(Monitor::Quiescence);

        for e in events {
            match e {
                Event::MassLedger {
                    run,
                    step,
                    ranks,
                    unadvertised,
                    pending,
                    in_flight,
                    dangling,
                    damping,
                    expected,
                } => {
                    mass.checked += 1;
                    let phi = phi(
                        *ranks,
                        *unadvertised,
                        *pending,
                        *in_flight,
                        *dangling,
                        *damping,
                    );
                    let tol = mass_tolerance * expected.abs().max(1.0);
                    if (phi - expected).abs() > tol {
                        mass.record(Violation {
                            step: *step,
                            run: Some(run.clone()),
                            peer: None,
                            detail: format!(
                                "Φ = {} drifted from expected {} by {} (tolerance {})",
                                fmt_f64(phi),
                                fmt_f64(*expected),
                                fmt_f64(phi - expected),
                                fmt_f64(tol),
                            ),
                        });
                    }
                }
                Event::BalanceLedger {
                    round,
                    sent,
                    received,
                    in_flight_entries,
                    skew_peer,
                    skew,
                    ..
                } => {
                    balance.checked += 1;
                    let surplus = (received + in_flight_entries).saturating_sub(*sent);
                    if *skew < 0 || surplus > 0 {
                        balance.record(Violation {
                            step: *round,
                            run: None,
                            peer: (*skew < 0).then_some(*skew_peer),
                            detail: if *skew < 0 {
                                format!(
                                    "peer {} received {} more entr{} than were ever \
                                     addressed to it (duplication)",
                                    skew_peer,
                                    -skew,
                                    if *skew == -1 { "y" } else { "ies" },
                                )
                            } else {
                                format!(
                                    "received {received} + in-flight {in_flight_entries} \
                                     exceeds sent {sent} by {surplus} (duplication)"
                                )
                            },
                        });
                    }
                }
                Event::QuiescenceCert {
                    round,
                    in_flight_entries,
                    parked,
                    nodes_with_work,
                    token,
                    max_residual,
                    epsilon,
                } => {
                    quiescence.checked += 1;
                    let mut bad: Vec<String> = Vec::new();
                    if *in_flight_entries != 0 {
                        bad.push(format!("{in_flight_entries} entries still in flight"));
                    }
                    if *parked != 0 {
                        bad.push(format!("{parked} payloads still parked"));
                    }
                    if *nodes_with_work != 0 {
                        bad.push(format!("{nodes_with_work} nodes still hold work"));
                    }
                    if *token != 0 {
                        bad.push(format!("Safra token Σsent − Σreceived = {token}, not 0"));
                    }
                    if *max_residual > *epsilon {
                        bad.push(format!(
                            "residual {} above ε = {}",
                            fmt_f64(*max_residual),
                            fmt_f64(*epsilon),
                        ));
                    }
                    if !bad.is_empty() {
                        quiescence.record(Violation {
                            step: *round,
                            run: None,
                            peer: None,
                            detail: format!("termination claimed while {}", bad.join("; ")),
                        });
                    }
                }
                Event::TerminationProbe {
                    round,
                    announced: true,
                    invariant,
                    ..
                } => {
                    quiescence.checked += 1;
                    if *invariant != 0 {
                        quiescence.record(Violation {
                            step: *round,
                            run: None,
                            peer: None,
                            detail: format!(
                                "Safra announced termination with invariant \
                                 Σsent − Σreceived = {invariant}, not 0"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }

        AuditReport {
            findings: vec![mass, balance, quiescence],
        }
    }

    /// All findings, in [`Monitor::ALL`] order.
    pub fn findings(&self) -> &[MonitorFinding] {
        &self.findings
    }

    /// The finding of one monitor.
    pub fn finding(&self, m: Monitor) -> &MonitorFinding {
        self.findings
            .iter()
            .find(|f| f.monitor == m)
            .expect("every monitor has a finding")
    }

    /// Whether every monitor held.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.violation.is_none())
    }

    /// The violated monitor the failure is *attributed* to, by
    /// precedence balance > quiescence > mass (see module docs): a
    /// balance surplus explains any mass drift (duplication), an
    /// unclean termination explains loss, and only an otherwise clean
    /// ledger drift points at in-flight value corruption.
    pub fn primary(&self) -> Option<&MonitorFinding> {
        [
            Monitor::MessageBalance,
            Monitor::Quiescence,
            Monitor::MassConservation,
        ]
        .iter()
        .map(|&m| self.finding(m))
        .find(|f| f.violation.is_some())
    }

    /// One-sentence verdict naming the suspected fault archetype.
    pub fn diagnosis(&self) -> String {
        let Some(f) = self.primary() else {
            let checked: u64 = self.findings.iter().map(|f| f.checked).sum();
            return format!("all invariants held ({checked} snapshots audited)");
        };
        let v = f.violation.as_ref().expect("primary is violated");
        let locus = match (&v.run, v.peer) {
            (Some(run), Some(p)) => format!("{run} step {} peer {p}", v.step),
            (Some(run), None) => format!("{run} step {}", v.step),
            (None, Some(p)) => format!("round {} peer {p}", v.step),
            (None, None) => format!("round {}", v.step),
        };
        let suspect = match f.monitor {
            Monitor::MessageBalance => "a duplicated delivery (dup-frame)",
            Monitor::Quiescence => "an update lost in transit (lost-frame)",
            Monitor::MassConservation => "rank mass corrupted in flight (mass-leak)",
        };
        format!(
            "{} violated at {locus}: {} — consistent with {suspect}",
            f.monitor, v.detail
        )
    }

    /// Renders the pass/fail diagnosis table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["monitor", "checked", "status", "first violation"]);
        for f in &self.findings {
            let first = match &f.violation {
                Some(v) => {
                    let locus = match (&v.run, v.peer) {
                        (Some(run), _) => format!("{run} step {}", v.step),
                        (None, Some(p)) => format!("round {} peer {p}", v.step),
                        (None, None) => format!("round {}", v.step),
                    };
                    format!("{locus}: {}", v.detail)
                }
                None => "-".to_string(),
            };
            t.push([
                f.monitor.name().to_string(),
                f.checked.to_string(),
                f.status().to_string(),
                first,
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(step: u64, leak: f64) -> Event {
        // A consistent d = 0.85 snapshot: Φ == expected when leak = 0.
        let (d, ranks, unadv, pending, in_flight) = (0.85, 40.0, 3.0, 4.0, 2.0);
        Event::MassLedger {
            run: "cluster".into(),
            step,
            ranks,
            unadvertised: unadv,
            pending,
            in_flight: in_flight + leak,
            dangling: 0.0,
            damping: d,
            expected: ranks + d / (1.0 - d) * unadv + (pending + in_flight) / (1.0 - d),
        }
    }

    fn balance(round: u64, sent: u64, received: u64, in_flight: u64, skew: i64) -> Event {
        Event::BalanceLedger {
            round,
            emitted: sent,
            sent,
            received,
            in_flight_entries: in_flight,
            skew_peer: 7,
            skew,
        }
    }

    fn cert(token: i64, in_flight: u64) -> Event {
        Event::QuiescenceCert {
            round: 30,
            in_flight_entries: in_flight,
            parked: 0,
            nodes_with_work: 0,
            token,
            max_residual: 1e-4,
            epsilon: 1e-3,
        }
    }

    #[test]
    fn clean_trace_passes_every_monitor() {
        let r = AuditReport::evaluate(&[
            ledger(1, 0.0),
            ledger(2, 0.0),
            balance(1, 10, 4, 6, 0),
            balance(2, 12, 12, 0, 0),
            cert(0, 0),
        ]);
        assert!(r.passed(), "{}", r.diagnosis());
        assert!(r.primary().is_none());
        assert_eq!(r.finding(Monitor::MassConservation).checked, 2);
        assert_eq!(r.finding(Monitor::MassConservation).status(), "ok");
        assert!(r.diagnosis().contains("all invariants held"));
        assert!(r.render().render().contains("mass-conservation"));
    }

    #[test]
    fn unexercised_monitors_report_na() {
        let r = AuditReport::evaluate(&[]);
        assert!(r.passed());
        for f in r.findings() {
            assert_eq!(f.status(), "n/a");
        }
    }

    #[test]
    fn mass_drift_fires_the_ledger() {
        let r = AuditReport::evaluate(&[ledger(1, 0.0), ledger(2, 0.5), cert(0, 0)]);
        assert!(!r.passed());
        let f = r.primary().unwrap();
        assert_eq!(f.monitor, Monitor::MassConservation);
        let v = f.violation.as_ref().unwrap();
        assert_eq!(v.step, 2);
        assert_eq!(v.run.as_deref(), Some("cluster"));
        assert!(r.diagnosis().contains("mass-leak"), "{}", r.diagnosis());
    }

    #[test]
    fn entry_surplus_fires_balance_and_wins_attribution() {
        // Duplication: peer 7 over-received, and the mass ledger also
        // drifts — attribution must still blame the balance auditor.
        let r = AuditReport::evaluate(&[ledger(1, 0.3), balance(1, 10, 8, 3, -1), cert(-1, 0)]);
        assert!(!r.passed());
        let f = r.primary().unwrap();
        assert_eq!(f.monitor, Monitor::MessageBalance);
        assert_eq!(f.violation.as_ref().unwrap().peer, Some(7));
        assert_eq!(f.violation.as_ref().unwrap().step, 1);
        assert!(r.diagnosis().contains("dup-frame"), "{}", r.diagnosis());
    }

    #[test]
    fn transit_deficit_alone_is_not_a_balance_violation() {
        // sent > received + in-flight: loss, or just transit delay —
        // the balance auditor stays quiet; the certifier catches it.
        let r = AuditReport::evaluate(&[balance(1, 10, 4, 2, 4), cert(4, 0)]);
        assert_eq!(
            r.finding(Monitor::MessageBalance).violation,
            None,
            "deficit is the certifier's job"
        );
        let f = r.primary().unwrap();
        assert_eq!(f.monitor, Monitor::Quiescence);
        assert!(r.diagnosis().contains("lost-frame"), "{}", r.diagnosis());
    }

    #[test]
    fn certifier_checks_every_clause() {
        for bad in [
            cert(0, 3),
            Event::QuiescenceCert {
                round: 9,
                in_flight_entries: 0,
                parked: 2,
                nodes_with_work: 0,
                token: 0,
                max_residual: 0.0,
                epsilon: 1e-3,
            },
            Event::QuiescenceCert {
                round: 9,
                in_flight_entries: 0,
                parked: 0,
                nodes_with_work: 1,
                token: 0,
                max_residual: 5e-3,
                epsilon: 1e-3,
            },
        ] {
            let r = AuditReport::evaluate(&[bad]);
            assert_eq!(r.primary().unwrap().monitor, Monitor::Quiescence);
        }
    }

    #[test]
    fn announced_safra_probe_with_nonzero_invariant_fires() {
        let r = AuditReport::evaluate(&[Event::TerminationProbe {
            round: 12,
            circuits: 3,
            token_count: 0,
            token_black: false,
            announced: true,
            invariant: 2,
        }]);
        assert_eq!(r.primary().unwrap().monitor, Monitor::Quiescence);
        // An unannounced probe with in-flight messages is normal.
        let ok = AuditReport::evaluate(&[Event::TerminationProbe {
            round: 3,
            circuits: 1,
            token_count: 5,
            token_black: true,
            announced: false,
            invariant: 5,
        }]);
        assert!(ok.passed());
    }
}
