//! Shared number formatting for tables and trace summaries (moved
//! here from `dpr-sim::metrics`).

/// Formats a float compactly: scientific for very small/large, fixed
/// otherwise.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() < 1e-3 || v.abs() >= 1e6 {
        format!("{v:.2e}")
    } else if v.abs() < 1.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.1}")
    }
}

/// Formats a byte count with a binary-unit suffix ("712 B",
/// "3.4 KiB", "1.2 MiB"), for the bytes-on-wire columns.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{:.1} {}", v, UNITS[unit])
    }
}

/// Formats an epsilon threshold the way the paper writes them
/// ("0.2", "1e-3", …).
pub fn fmt_eps(eps: f64) -> String {
    if eps >= 0.01 {
        format!("{eps}")
    } else {
        format!("1e{}", eps.log10().round() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.25), "0.2500");
        assert_eq!(fmt_f64(33.71), "33.7");
        assert!(fmt_f64(1.0e-6).contains('e'));
        assert!(fmt_f64(2.0e7).contains('e'));
    }

    #[test]
    fn byte_formatting_scales_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(712), "712 B");
        assert_eq!(fmt_bytes(3 * 1024 + 512), "3.5 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.0 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn eps_formatting_matches_paper_style() {
        assert_eq!(fmt_eps(0.2), "0.2");
        assert_eq!(fmt_eps(1e-3), "1e-3");
        assert_eq!(fmt_eps(1e-6), "1e-6");
    }
}
