//! Plain-text table rendering for experiment and trace output.
//!
//! The `table*` binaries and `dpr trace` print the same row shapes
//! the paper's tables report; this module keeps the formatting in one
//! place (it moved here from `dpr-sim::metrics` so reporting lives
//! with the telemetry it renders).

/// A simple right-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{:>width$}", s, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["size", "passes"]);
        t.push(["10000", "74"]);
        t.push(["100", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[2].ends_with("74"));
        assert!(lines[3].ends_with(" 1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.push(["only one"]);
    }
}
