//! Lock-free log2-bucketed histograms.
//!
//! Bucket 0 counts observations of exactly 0; bucket `i ≥ 1` counts
//! values in `[2^(i-1), 2^i)`. 65 buckets cover the whole `u64`
//! domain, recording is one relaxed `fetch_add`, and two histograms
//! merge by bucket-wise addition — which is what makes per-thread
//! recording equivalent to single-threaded recording of the same
//! observation multiset (property-tested below).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket index out of range");
    if index == 0 {
        0
    } else if index == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A log2-bucketed histogram with atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts, in bucket order.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Folds another histogram into this one, bucket-wise.
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.snapshot()) {
            b.fetch_add(o, Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Smallest bucket upper bound at or below which at least
    /// `q × count` observations fall — a bucket-resolution quantile
    /// (exact for q=1.0; within a factor of 2 otherwise).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.snapshot().iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..BUCKETS - 1 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_of(hi), i, "upper bound stays in bucket {i}");
            assert_eq!(bucket_of(hi + 1), i + 1, "next value leaves bucket {i}");
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_of(lo), i, "lower bound enters bucket {i}");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    #[allow(clippy::cast_nan_to_int)] // the NaN edge is the point
    fn saturating_float_casts_feed_the_extreme_buckets() {
        // The priority scheduler maps f64 residuals onto this
        // histogram's u64 domain with an `as u64` cast. Rust saturates
        // float→int casts, so the behavior at the edges is
        // well-defined and pinned here: NaN and everything below 1.0
        // (subnormals included) truncate to bucket 0, ±overflow
        // saturates into the top bucket instead of wrapping.
        assert_eq!(bucket_of(f64::NAN as u64), 0);
        assert_eq!(bucket_of(0.0f64 as u64), 0);
        assert_eq!(bucket_of((-1.0f64) as u64), 0);
        assert_eq!(bucket_of(0.999_999_f64 as u64), 0);
        assert_eq!(bucket_of(f64::MIN_POSITIVE as u64), 0);
        assert_eq!(bucket_of(f64::INFINITY as u64), BUCKETS - 1);
        assert_eq!(bucket_of(f64::MAX as u64), BUCKETS - 1);
        assert_eq!(bucket_of(1.0f64 as u64), 1);
    }

    #[test]
    fn extreme_observations_do_not_distort_buckets() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[BUCKETS - 1], 1);
        assert_eq!(h.quantile_upper_bound(1.0), u64::MAX);
    }

    #[test]
    fn observe_tracks_count_sum_mean() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert!((h.mean() - 21.2).abs() < 1e-12);
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // 0
        assert_eq!(snap[1], 1); // 1
        assert_eq!(snap[2], 2); // 2, 3
        assert_eq!(snap[7], 1); // 100 ∈ [64, 128)
        assert_eq!(snap.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_have_bucket_resolution() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1000);
        assert_eq!(h.quantile_upper_bound(0.5), 1);
        // 1000 ∈ [512, 1024): the p100 bound is that bucket's top.
        assert_eq!(h.quantile_upper_bound(1.0), 1023);
        assert_eq!(Histogram::new().quantile_upper_bound(0.9), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(5);
        b.observe(5);
        b.observe(900);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 910);
        assert_eq!(a.snapshot()[3], 2, "both 5s in [4, 8)");
    }

    proptest! {
        #[test]
        fn split_recording_equals_sequential_recording(
            values in prop_vec(any::<u64>(), 0..200),
            split in 0usize..200,
        ) {
            let split = split.min(values.len());
            // One histogram fed sequentially...
            let whole = Histogram::new();
            for &v in &values {
                whole.observe(v);
            }
            // ...versus two fed a partition of the same multiset on
            // separate threads, then merged.
            let left = Histogram::new();
            let right = Histogram::new();
            std::thread::scope(|s| {
                s.spawn(|| {
                    for &v in &values[..split] {
                        left.observe(v);
                    }
                });
                s.spawn(|| {
                    for &v in &values[split..] {
                        right.observe(v);
                    }
                });
            });
            left.merge(&right);
            prop_assert_eq!(left.snapshot(), whole.snapshot());
            prop_assert_eq!(left.count(), whole.count());
            prop_assert_eq!(left.sum(), whole.sum());
        }
    }
}
