//! Pastry-style prefix routing — the second DHT discipline the paper
//! names (Sec. 1: "systems with bounded search such as CAN, Pastry or
//! Chord").
//!
//! Where Chord forwards by halving the clockwise *distance* to the
//! target, Pastry forwards by extending the shared hex-digit *prefix*
//! between the current peer's id and the key: each peer keeps a
//! routing table with one entry per (prefix length, next digit) pair
//! plus a *leaf set* of numerically adjacent peers, and a key is owned
//! by the peer numerically closest to it. Hops are O(log₁₆ n).
//!
//! Like [`crate::routing::Router`], tables are built from the full
//! membership (simulation-grade; real Pastry fills them from observed
//! traffic) — the point is faithful routing behaviour and hop counts,
//! which the tests verify against brute force.

use crate::guid::Guid;
use crate::peer::PeerId;
use fxhash::FxHashMap;

/// Hex digits per 128-bit id.
const DIGITS: usize = 32;
/// Leaf-set entries on each side.
const LEAF_EACH_SIDE: usize = 4;

/// The `i`-th hex digit of an id (0 = most significant).
#[inline]
fn digit(id: u128, i: usize) -> usize {
    debug_assert!(i < DIGITS);
    ((id >> (124 - 4 * i)) & 0xF) as usize
}

/// Length of the shared hex-digit prefix of two ids.
#[inline]
fn shared_prefix(a: u128, b: u128) -> usize {
    for i in 0..DIGITS {
        if digit(a, i) != digit(b, i) {
            return i;
        }
    }
    DIGITS
}

/// Circular numeric distance between two ids.
#[inline]
fn num_distance(a: u128, b: u128) -> u128 {
    let d = a.wrapping_sub(b);
    let e = b.wrapping_sub(a);
    d.min(e)
}

/// One peer's Pastry state: routing table + leaf set.
#[derive(Debug, Clone)]
struct NodeState {
    /// `table[row][col]`: a peer sharing `row` digits with us whose
    /// next digit is `col`.
    table: Vec<[Option<PeerId>; 16]>,
    /// Numerically adjacent peers (both sides), excluding self.
    leaves: Vec<PeerId>,
    /// The contiguous id arc `(arc_lo, arc_hi)` covered by the leaf
    /// set (clockwise from the farthest counter-clockwise leaf to the
    /// farthest clockwise leaf). A key inside this arc is owned by one
    /// of the leaves or by us.
    arc_lo: u128,
    arc_hi: u128,
    /// True when the leaf set is the whole membership.
    covers_all: bool,
}

/// A Pastry overlay over a fixed membership.
#[derive(Debug)]
pub struct PastryNetwork {
    /// `(guid value, peer)` sorted by id.
    points: Vec<(u128, PeerId)>,
    states: FxHashMap<PeerId, NodeState>,
}

/// A completed Pastry route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PastryRoute {
    /// The numerically closest peer to the key.
    pub owner: PeerId,
    /// Hops taken (0 if the source owns the key).
    pub hops: u32,
    /// Peers traversed, source first, owner last.
    pub path: Vec<PeerId>,
}

impl PastryNetwork {
    /// Builds the overlay for peers `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one peer");
        let mut points: Vec<(u128, PeerId)> = (0..n as u32)
            .map(|i| (Guid::for_peer(i).0, PeerId(i)))
            .collect();
        points.sort_unstable_by_key(|&(id, _)| id);
        let mut states = FxHashMap::with_capacity_and_hasher(n, Default::default());
        for (pos, &(id, peer)) in points.iter().enumerate() {
            // Leaf set: LEAF_EACH_SIDE sorted neighbours each way.
            let mut leaves = Vec::new();
            let side = LEAF_EACH_SIDE.min(n.saturating_sub(1));
            for k in 1..=side {
                leaves.push(points[(pos + k) % n].1);
                leaves.push(points[(pos + n - k) % n].1);
            }
            leaves.sort_unstable();
            leaves.dedup();
            leaves.retain(|&p| p != peer);
            let covers_all = leaves.len() >= n.saturating_sub(1);
            let arc_lo = points[(pos + n - side.max(1)) % n].0;
            let arc_hi = points[(pos + side.max(1)) % n].0;
            // Routing table: first match per (row, col) cell.
            let mut table = vec![[None; 16]; DIGITS];
            for &(oid, opeer) in &points {
                if opeer == peer {
                    continue;
                }
                let row = shared_prefix(id, oid);
                if row < DIGITS {
                    let col = digit(oid, row);
                    if table[row][col].is_none() {
                        table[row][col] = Some(opeer);
                    }
                }
            }
            states.insert(
                peer,
                NodeState {
                    table,
                    leaves,
                    arc_lo,
                    arc_hi,
                    covers_all,
                },
            );
        }
        PastryNetwork { points, states }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the overlay is empty (never true — see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The peer numerically closest to `key` (ties to the lower id).
    pub fn owner(&self, key: Guid) -> PeerId {
        self.points
            .iter()
            .copied()
            .min_by(|&(a, pa), &(b, pb)| {
                num_distance(a, key.0)
                    .cmp(&num_distance(b, key.0))
                    .then(pa.0.cmp(&pb.0))
            })
            .map(|(_, p)| p)
            .expect("non-empty overlay")
    }

    fn id_of(&self, p: PeerId) -> u128 {
        Guid::for_peer(p.0).0
    }

    /// Routes `key` from `from` to its owner via prefix routing.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a member.
    pub fn route(&self, from: PeerId, key: Guid) -> PastryRoute {
        assert!(self.states.contains_key(&from), "unknown source {from}");
        let owner = self.owner(key);
        let mut current = from;
        let mut path = vec![from];
        let mut hops = 0u32;
        let bound = 4 * DIGITS as u32 + self.len() as u32;
        while current != owner {
            let next = self.next_hop(current, key);
            debug_assert_ne!(next, current, "no progress toward {key}");
            current = next;
            path.push(current);
            hops += 1;
            assert!(hops <= bound, "routing loop");
        }
        PastryRoute { owner, hops, path }
    }

    /// Pastry's forwarding rule at one peer, in the paper's order:
    /// leaf-set delivery, then the prefix table, then the rare case.
    fn next_hop(&self, current: PeerId, key: Guid) -> PeerId {
        let state = &self.states[&current];
        let cur_id = self.id_of(current);
        let cur_dist = num_distance(cur_id, key.0);
        let row = shared_prefix(cur_id, key.0);

        // 1. Leaf-set delivery: if the key falls inside the contiguous
        //    run of peers covered by the leaf set, the numerically
        //    closest peer overall is one of the leaves (or us) — one
        //    final hop. This is what terminates every route.
        if let Some(closest) = self.leaf_delivery(state, current, key) {
            return closest;
        }
        // 2. Prefix rule: strictly extends the shared prefix with the
        //    key, so table hops can never revisit a node.
        if row < DIGITS {
            if let Some(p) = state.table[row][digit(key.0, row)] {
                return p;
            }
        }
        // 3. Rare case: no table entry. Forward to a known peer that
        //    shares at least as long a prefix AND is strictly closer
        //    numerically — the lexicographic potential
        //    (prefix, −distance) still strictly increases, so mixed
        //    sequences of rule-2 and rule-3 hops cannot loop.
        let mut best: Option<(u128, PeerId)> = None;
        let candidates = state
            .leaves
            .iter()
            .copied()
            .chain(state.table.iter().flatten().flatten().copied());
        for p in candidates {
            let pid = self.id_of(p);
            if shared_prefix(pid, key.0) < row {
                continue;
            }
            let d = num_distance(pid, key.0);
            if d < cur_dist && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, p));
            }
        }
        best.map(|(_, p)| p).expect(
            "Pastry invariant: leaf delivery, the prefix table, or the \
             rare case always applies with full-membership tables",
        )
    }

    /// If `key` lies within the contiguous id arc covered by this
    /// node's leaf set, the global owner is one of the leaves (or this
    /// node itself): return the numerically closest leaf. Purely local
    /// information — no global lookup.
    fn leaf_delivery(&self, state: &NodeState, current: PeerId, key: Guid) -> Option<PeerId> {
        let in_range = state.covers_all
            || key.0.wrapping_sub(state.arc_lo) <= state.arc_hi.wrapping_sub(state.arc_lo);
        if !in_range {
            return None;
        }
        // Closest among leaves ∪ self; ties to the lower peer id, the
        // same rule `owner` uses.
        let cur_entry = (num_distance(self.id_of(current), key.0), current);
        let best = state
            .leaves
            .iter()
            .copied()
            .map(|p| (num_distance(self.id_of(p), key.0), p))
            .chain(std::iter::once(cur_entry))
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)))
            .expect("non-empty");
        debug_assert_ne!(
            best.1, current,
            "caller guarantees current is not the owner"
        );
        Some(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::DocId;

    #[test]
    fn digits_and_prefixes() {
        let a = 0xABCD_0000_0000_0000_0000_0000_0000_0000u128;
        assert_eq!(digit(a, 0), 0xA);
        assert_eq!(digit(a, 3), 0xD);
        assert_eq!(digit(a, 4), 0x0);
        let b = 0xABCE_0000_0000_0000_0000_0000_0000_0000u128;
        assert_eq!(shared_prefix(a, b), 3);
        assert_eq!(shared_prefix(a, a), DIGITS);
    }

    #[test]
    fn num_distance_wraps() {
        assert_eq!(num_distance(u128::MAX, 1), 2);
        assert_eq!(num_distance(5, 10), 5);
        assert_eq!(num_distance(7, 7), 0);
    }

    #[test]
    fn owner_is_numerically_closest() {
        let net = PastryNetwork::new(32);
        for d in 0..200u32 {
            let key = Guid::for_document(DocId(d));
            let owner = net.owner(key);
            let od = num_distance(Guid::for_peer(owner.0).0, key.0);
            for p in 0..32u32 {
                let pd = num_distance(Guid::for_peer(p).0, key.0);
                assert!(od <= pd, "peer {p} closer than owner for key {key}");
            }
        }
    }

    #[test]
    fn routes_reach_the_owner() {
        let net = PastryNetwork::new(64);
        for d in 0..300u32 {
            let key = Guid::for_document(DocId(d));
            let r = net.route(PeerId(d % 64), key);
            assert_eq!(r.owner, net.owner(key));
            assert_eq!(*r.path.last().unwrap(), r.owner);
            assert_eq!(r.path.len() as u32, r.hops + 1);
        }
    }

    #[test]
    fn hops_are_logarithmic_base_16() {
        // With 256 peers, log16(256) = 2; prefix routing should need
        // only a few hops.
        let net = PastryNetwork::new(256);
        let mut total = 0u64;
        let mut max = 0u32;
        let samples = 400u32;
        for d in 0..samples {
            let r = net.route(PeerId(d % 256), Guid::for_document(DocId(d)));
            total += r.hops as u64;
            max = max.max(r.hops);
        }
        let mean = total as f64 / samples as f64;
        assert!(mean <= 5.0, "mean hops {mean}");
        assert!(max <= 12, "max hops {max}");
    }

    #[test]
    fn pastry_and_chord_agree_on_few_hops() {
        // Both disciplines should land in the same O(log n) ballpark.
        use crate::ring::Ring;
        use crate::routing::Router;
        let n = 128;
        let net = PastryNetwork::new(n);
        let ring = Ring::with_peers(n);
        let mut chord = Router::new();
        let (mut ph, mut ch) = (0u64, 0u64);
        for d in 0..200u32 {
            let key = Guid::for_document(DocId(d));
            ph += net.route(PeerId(d % n as u32), key).hops as u64;
            ch += chord.route(&ring, PeerId(d % n as u32), key).hops as u64;
        }
        let (pm, cm) = (ph as f64 / 200.0, ch as f64 / 200.0);
        assert!(pm < 6.0 && cm < 8.0, "pastry {pm}, chord {cm}");
    }

    #[test]
    fn single_peer_owns_everything_zero_hops() {
        let net = PastryNetwork::new(1);
        let r = net.route(PeerId(0), Guid::for_document(DocId(9)));
        assert_eq!(r.owner, PeerId(0));
        assert_eq!(r.hops, 0);
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn unknown_source_panics() {
        let net = PastryNetwork::new(4);
        net.route(PeerId(99), Guid::for_document(DocId(0)));
    }
}
