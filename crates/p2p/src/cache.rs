//! Per-peer document-location cache (paper Sec. 3.2).
//!
//! "When the first pagerank update message is sent for a document, the
//! P2P layer's routing mechanism is used to find the location of the
//! document. Once its location has been found the IP address is cached
//! at the source node, and subsequent update messages can be exchanged
//! directly between source and destination. Storage requirement for
//! this scheme scales linearly with the sum of the outlinks in all
//! documents in a peer."
//!
//! The cache maps a document's GUID to the peer currently holding it.
//! Entries are invalidated when the holding peer leaves, falling back
//! to routing on the next send — which re-populates the entry.

use crate::{guid::Guid, peer::PeerId};
use fxhash::FxHashMap;

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (a routed lookup follows).
    pub misses: u64,
    /// Entries dropped by peer invalidation.
    pub invalidated: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One peer's document-location cache.
#[derive(Debug, Default)]
pub struct AddressCache {
    entries: FxHashMap<Guid, PeerId>,
    stats: CacheStats,
}

impl AddressCache {
    /// An empty cache.
    pub fn new() -> Self {
        AddressCache::default()
    }

    /// Looks up the cached location of `doc`.
    pub fn lookup(&mut self, doc: Guid) -> Option<PeerId> {
        match self.entries.get(&doc) {
            Some(&p) => {
                self.stats.hits += 1;
                Some(p)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records that `doc` lives on `peer` (after a routed lookup).
    pub fn insert(&mut self, doc: Guid, peer: PeerId) {
        self.entries.insert(doc, peer);
    }

    /// Drops every entry pointing at `peer` (it left the network).
    /// Returns how many entries were dropped.
    pub fn invalidate_peer(&mut self, peer: PeerId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, &mut p| p != peer);
        let dropped = before - self.entries.len();
        self.stats.invalidated += dropped as u64;
        dropped
    }

    /// Number of live entries — the paper's linear-in-outlinks storage
    /// bound applies to this value.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// All peers' caches, indexed by peer.
#[derive(Debug, Default)]
pub struct CacheSet {
    caches: Vec<AddressCache>,
}

impl CacheSet {
    /// Caches for `n` peers.
    pub fn new(n: usize) -> Self {
        CacheSet {
            caches: (0..n).map(|_| AddressCache::new()).collect(),
        }
    }

    /// The cache belonging to `p`.
    pub fn of(&mut self, p: PeerId) -> &mut AddressCache {
        &mut self.caches[p.index()]
    }

    /// Invalidates `peer` in every cache (it left the network).
    pub fn invalidate_peer_everywhere(&mut self, peer: PeerId) -> usize {
        self.caches
            .iter_mut()
            .map(|c| c.invalidate_peer(peer))
            .sum()
    }

    /// Aggregated statistics across all caches.
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for c in &self.caches {
            agg.hits += c.stats.hits;
            agg.misses += c.stats.misses;
            agg.invalidated += c.stats.invalidated;
        }
        agg
    }

    /// Total entries across all caches.
    pub fn total_entries(&self) -> usize {
        self.caches.iter().map(AddressCache::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::DocId;

    fn g(d: u32) -> Guid {
        Guid::for_document(DocId(d))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = AddressCache::new();
        assert_eq!(c.lookup(g(1)), None);
        c.insert(g(1), PeerId(4));
        assert_eq!(c.lookup(g(1)), Some(PeerId(4)));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidation_drops_only_that_peer() {
        let mut c = AddressCache::new();
        c.insert(g(1), PeerId(4));
        c.insert(g(2), PeerId(4));
        c.insert(g(3), PeerId(5));
        assert_eq!(c.invalidate_peer(PeerId(4)), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(g(3)), Some(PeerId(5)));
        assert_eq!(c.lookup(g(1)), None);
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn reinsert_overwrites_stale_location() {
        let mut c = AddressCache::new();
        c.insert(g(1), PeerId(4));
        c.insert(g(1), PeerId(9));
        assert_eq!(c.lookup(g(1)), Some(PeerId(9)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cache_set_invalidates_everywhere() {
        let mut s = CacheSet::new(3);
        s.of(PeerId(0)).insert(g(1), PeerId(2));
        s.of(PeerId(1)).insert(g(1), PeerId(2));
        s.of(PeerId(1)).insert(g(2), PeerId(0));
        assert_eq!(s.invalidate_peer_everywhere(PeerId(2)), 2);
        assert_eq!(s.total_entries(), 1);
        let agg = s.aggregate_stats();
        assert_eq!(agg.invalidated, 2);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let c = AddressCache::new();
        assert_eq!(c.stats().hit_rate(), 0.0);
        assert!(c.is_empty());
    }
}
