//! # dpr-p2p — simulated DHT overlay for distributed PageRank
//!
//! The paper computes pageranks over documents stored in a DHT-based
//! peer-to-peer system (CAN / Pastry / Chord class). This crate builds
//! that substrate from scratch:
//!
//! * [`guid`] — 128-bit global unique identifiers and the consistent
//!   hash that maps documents and peers into the same id space.
//! * [`ring`] — a Chord-style ring: peers own arcs of the GUID circle,
//!   documents are placed on their successor peer, and finger tables
//!   give O(log n) lookup.
//! * [`routing`] — iterative lookup over the ring, counting hops so the
//!   caching ablation (route every message vs. cache the address after
//!   the first lookup, paper Sec. 3.2) can be measured.
//! * [`pastry`] — the alternative DHT discipline the paper names:
//!   Pastry-style prefix routing with leaf sets, O(log16 n) hops.
//! * [`peer`] — peer lifecycle: join, graceful leave, crash, rejoin;
//!   document re-placement on membership change.
//! * [`transport`] — message delivery with per-peer inboxes, the
//!   store-and-resend buffer for messages addressed to offline peers
//!   (paper Sec. 3.1), and traffic accounting.
//! * [`cache`] — the per-peer address cache that short-circuits routing
//!   after the first successful lookup.
//!
//! Everything is deterministic given a seed, single-process, and
//! instrumented — the goal is faithful *protocol* behaviour plus
//! precise message counts, matching the paper's simulation methodology
//! (Sec. 4.2: network latency is intentionally not modeled).

#![warn(missing_docs)]

pub mod cache;
pub mod guid;
pub mod pastry;
pub mod peer;
pub mod ring;
pub mod routing;
pub mod transport;

pub use guid::Guid;
pub use peer::PeerId;
pub use ring::Ring;
pub use transport::Transport;
