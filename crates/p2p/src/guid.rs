//! 128-bit GUIDs and the consistent-hash id space.
//!
//! DHT systems in the paper's class (Chord, Pastry, CAN) give every
//! document and every peer an identifier in one circular id space; a
//! document lives on the peer that *succeeds* its id on the circle.
//! The paper's pagerank update message is "128 bits for GUID, 64 bits
//! for pagerank value" — [`Guid`] is that 128-bit identifier.
//!
//! Hashing is a from-scratch FNV-1a/128 followed by an avalanche mix.
//! FNV alone distributes the low bits poorly for short sequential
//! inputs (like dense `DocId`s); the final mixing step gives the
//! near-uniform spread consistent hashing needs.

use dpr_graph::DocId;

/// A 128-bit identifier on the DHT circle.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Guid(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// FNV-1a over a byte slice, 128-bit variant.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Final avalanche: two rounds of xor-shift-multiply on each half
/// (splitmix64 finalizer constants), recombined.
fn avalanche(h: u128) -> u128 {
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let hi = mix64((h >> 64) as u64 ^ (h as u64).rotate_left(32));
    let lo = mix64(h as u64 ^ hi);
    ((hi as u128) << 64) | lo as u128
}

impl Guid {
    /// GUID of a document.
    pub fn for_document(d: DocId) -> Guid {
        let mut bytes = [0u8; 5];
        bytes[0] = b'D';
        bytes[1..5].copy_from_slice(&d.0.to_le_bytes());
        Guid(avalanche(fnv1a_128(&bytes)))
    }

    /// GUID of a peer, derived from its stable peer number.
    pub fn for_peer(peer_num: u32) -> Guid {
        let mut bytes = [0u8; 5];
        bytes[0] = b'P';
        bytes[1..5].copy_from_slice(&peer_num.to_le_bytes());
        Guid(avalanche(fnv1a_128(&bytes)))
    }

    /// GUID of an index term (used by the distributed keyword index).
    pub fn for_term(term: &str) -> Guid {
        let mut bytes = Vec::with_capacity(term.len() + 1);
        bytes.push(b'T');
        bytes.extend_from_slice(term.as_bytes());
        Guid(avalanche(fnv1a_128(&bytes)))
    }

    /// The 64-bit demultiplexing tag used inside multi-update frames.
    ///
    /// A frame is already addressed to the one peer holding all its
    /// target documents, so entries do not need the full 128-bit GUID
    /// that DHT *routing* needs — the low half identifies a document
    /// within one peer's document set. Receivers keep a `tag -> doc`
    /// index and check for collisions when documents are registered
    /// (see `PeerNode::add_document`); the avalanche mix makes a
    /// same-peer collision a ~2^-64 event.
    #[inline]
    pub fn frame_tag(self) -> u64 {
        self.0 as u64
    }

    /// Clockwise distance from `self` to `other` on the circle.
    #[inline]
    pub fn distance_to(self, other: Guid) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// The id `self + 2^k` (mod 2^128): the k-th Chord finger start.
    #[inline]
    pub fn finger_start(self, k: u32) -> Guid {
        debug_assert!(k < 128);
        Guid(self.0.wrapping_add(1u128 << k))
    }

    /// True if `self` lies in the half-open clockwise interval
    /// `(from, to]` on the circle — the Chord "is this id mine"
    /// predicate (a peer owns ids in `(predecessor, self]`).
    pub fn in_interval(self, from: Guid, to: Guid) -> bool {
        if from == to {
            // Interval covers the whole circle (single-peer ring).
            return true;
        }
        from.distance_to(self) <= from.distance_to(to) && self != from
    }
}

impl std::fmt::Display for Guid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_guids_are_distinct_and_stable() {
        let a = Guid::for_document(DocId(1));
        let b = Guid::for_document(DocId(2));
        assert_ne!(a, b);
        assert_eq!(a, Guid::for_document(DocId(1)));
    }

    #[test]
    fn namespaces_do_not_collide() {
        // Same underlying number, different kinds.
        assert_ne!(Guid::for_document(DocId(7)), Guid::for_peer(7));
        assert_ne!(Guid::for_term("7"), Guid::for_peer(7));
    }

    #[test]
    fn guids_spread_across_the_circle() {
        // Dense ids must map to well-spread points: split the circle
        // into 16 equal arcs and require every arc to be hit.
        let mut buckets = [0usize; 16];
        for i in 0..4096u32 {
            let g = Guid::for_document(DocId(i));
            buckets[(g.0 >> 124) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!(c > 128, "bucket {i} underfull: {c}");
        }
    }

    #[test]
    fn distance_wraps_around() {
        let a = Guid(u128::MAX - 1);
        let b = Guid(3);
        assert_eq!(a.distance_to(b), 5);
        assert_eq!(b.distance_to(a), u128::MAX - 4);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn interval_membership() {
        let (a, b, c) = (Guid(10), Guid(20), Guid(30));
        assert!(b.in_interval(a, c));
        assert!(c.in_interval(a, c)); // half-open: to is included
        assert!(!a.in_interval(a, c)); // from is excluded
        assert!(!Guid(31).in_interval(a, c));
        // Wrapping interval (from > to).
        assert!(Guid(5).in_interval(c, b));
        assert!(Guid(u128::MAX).in_interval(c, b));
        assert!(!Guid(25).in_interval(c, b));
        // Degenerate interval covers everything.
        assert!(Guid(99).in_interval(a, a));
    }

    #[test]
    fn finger_start_wraps() {
        let g = Guid(u128::MAX);
        assert_eq!(g.finger_start(0).0, 0);
        assert_eq!(Guid(0).finger_start(127).0, 1u128 << 127);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(Guid(0xab).to_string().len(), 32);
        assert!(Guid(0xab).to_string().ends_with("ab"));
    }
}
