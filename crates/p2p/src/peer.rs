//! Peer identity, liveness, and document placement.
//!
//! The paper's simulation (Sec. 4.2) assigns each document "randomly
//! … to a peer" on a 500-peer system, and between passes "sets of
//! peers randomly leave and join the network". [`PeerTable`] tracks
//! which peers exist and which are currently online; [`Placement`]
//! maps documents to peers either uniformly at random (the paper's
//! methodology) or by DHT successor (how a deployed Chord-like system
//! would place them).

use crate::{guid::Guid, ring::Ring};
use dpr_graph::DocId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Identifier of a peer computer in the P2P system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Liveness of every peer in the system.
///
/// Peers are created once and then oscillate between online and
/// offline (the paper's model: a leaving peer "is likely to rejoin the
/// network at a later time", taking its documents with it while away).
#[derive(Debug, Clone)]
pub struct PeerTable {
    online: Vec<bool>,
}

impl PeerTable {
    /// `n` peers, all online.
    pub fn new(n: usize) -> Self {
        PeerTable {
            online: vec![true; n],
        }
    }

    /// Total number of peers (online or not).
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// True if there are no peers at all.
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Whether `p` is currently online.
    #[inline]
    pub fn is_online(&self, p: PeerId) -> bool {
        self.online[p.index()]
    }

    /// Number of online peers.
    pub fn num_online(&self) -> usize {
        self.online.iter().filter(|&&b| b).count()
    }

    /// Marks `p` offline. Returns whether it was online.
    pub fn go_offline(&mut self, p: PeerId) -> bool {
        std::mem::replace(&mut self.online[p.index()], false)
    }

    /// Marks `p` online. Returns whether it was offline.
    pub fn go_online(&mut self, p: PeerId) -> bool {
        !std::mem::replace(&mut self.online[p.index()], true)
    }

    /// Iterator over all peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.online.len() as u32).map(PeerId)
    }

    /// Iterator over online peer ids.
    pub fn online_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.online
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(PeerId(i as u32)))
    }

    /// Resets the table so that exactly `fraction` of peers are online,
    /// chosen uniformly at random. Used by the Table 1 columns where
    /// only 75 % / 50 % of peers are present at any time.
    pub fn set_online_fraction<R: Rng>(&mut self, fraction: f64, rng: &mut R) {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let n = self.online.len();
        let k = ((n as f64) * fraction).round() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        self.online.iter_mut().for_each(|b| *b = false);
        for &i in ids.iter().take(k) {
            self.online[i] = true;
        }
    }
}

/// How documents are assigned to peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PlacementPolicy {
    /// Each document goes to a uniformly random peer — the paper's
    /// simulation methodology (Sec. 4.2).
    Random,
    /// Each document goes to the DHT successor of its GUID — how a
    /// deployed Chord-like system places it.
    DhtSuccessor,
    /// Owners supplied externally (e.g. the link-aware partitioner of
    /// `dpr_graph::partition`, the paper's Sec. 6 future-work idea).
    /// Only constructible through [`Placement::from_owner_vec`].
    Custom,
}

/// The document → peer map.
#[derive(Debug, Clone)]
pub struct Placement {
    owner: Vec<PeerId>,
    policy: PlacementPolicy,
}

impl Placement {
    /// Assigns `num_docs` documents across the peers of `ring`
    /// according to `policy`.
    pub fn assign<R: Rng>(
        num_docs: usize,
        ring: &Ring,
        policy: PlacementPolicy,
        rng: &mut R,
    ) -> Self {
        assert!(!ring.is_empty(), "cannot place documents on an empty ring");
        let owner = match policy {
            PlacementPolicy::Random => {
                let peers: Vec<PeerId> = ring.peers().collect();
                (0..num_docs)
                    .map(|_| peers[rng.gen_range(0..peers.len())])
                    .collect()
            }
            PlacementPolicy::DhtSuccessor => (0..num_docs)
                .map(|d| ring.successor(Guid::for_document(DocId::from(d))))
                .collect(),
            PlacementPolicy::Custom => {
                panic!("Custom placement comes from Placement::from_owner_vec")
            }
        };
        Placement { owner, policy }
    }

    /// Wraps an externally computed owner vector (e.g. a link-aware
    /// partitioning) as a placement.
    pub fn from_owner_vec(owner: Vec<PeerId>) -> Self {
        Placement {
            owner,
            policy: PlacementPolicy::Custom,
        }
    }

    /// The peer holding document `d`.
    #[inline]
    pub fn owner(&self, d: DocId) -> PeerId {
        self.owner[d.index()]
    }

    /// Number of placed documents.
    pub fn num_docs(&self) -> usize {
        self.owner.len()
    }

    /// The policy used at assignment time.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Extends the placement with one newly inserted document.
    pub fn place_new<R: Rng>(&mut self, ring: &Ring, rng: &mut R) -> PeerId {
        let d = DocId::from(self.owner.len());
        let p = match self.policy {
            // A custom (link-aware) placement has no rule for unseen
            // documents; fall back to random until the next
            // repartitioning, like Random.
            PlacementPolicy::Random | PlacementPolicy::Custom => {
                let peers: Vec<PeerId> = ring.peers().collect();
                peers[rng.gen_range(0..peers.len())]
            }
            PlacementPolicy::DhtSuccessor => ring.successor(Guid::for_document(d)),
        };
        self.owner.push(p);
        p
    }

    /// Documents per peer, for load-balance reporting.
    pub fn load_histogram(&self, num_peers: usize) -> Vec<usize> {
        let mut h = vec![0usize; num_peers];
        for &p in &self.owner {
            h[p.index()] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn peer_table_liveness_transitions() {
        let mut t = PeerTable::new(3);
        assert_eq!(t.num_online(), 3);
        assert!(t.go_offline(PeerId(1)));
        assert!(!t.go_offline(PeerId(1)));
        assert!(!t.is_online(PeerId(1)));
        assert_eq!(t.num_online(), 2);
        assert!(t.go_online(PeerId(1)));
        assert!(!t.go_online(PeerId(1)));
        assert_eq!(t.num_online(), 3);
    }

    #[test]
    fn online_fraction_is_exact() {
        let mut t = PeerTable::new(500);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        t.set_online_fraction(0.5, &mut rng);
        assert_eq!(t.num_online(), 250);
        t.set_online_fraction(0.75, &mut rng);
        assert_eq!(t.num_online(), 375);
        t.set_online_fraction(1.0, &mut rng);
        assert_eq!(t.num_online(), 500);
    }

    #[test]
    fn random_placement_covers_peers_roughly_evenly() {
        let ring = Ring::with_peers(50);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = Placement::assign(10_000, &ring, PlacementPolicy::Random, &mut rng);
        let hist = p.load_histogram(50);
        // Expected load 200 per peer; allow generous slack.
        assert!(hist.iter().all(|&c| c > 100 && c < 320), "{hist:?}");
    }

    #[test]
    fn dht_placement_matches_ring_successor() {
        let ring = Ring::with_peers(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = Placement::assign(100, &ring, PlacementPolicy::DhtSuccessor, &mut rng);
        for d in 0..100u32 {
            assert_eq!(
                p.owner(DocId(d)),
                ring.successor(Guid::for_document(DocId(d)))
            );
        }
    }

    #[test]
    fn place_new_extends_the_map() {
        let ring = Ring::with_peers(4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut p = Placement::assign(10, &ring, PlacementPolicy::DhtSuccessor, &mut rng);
        let owner = p.place_new(&ring, &mut rng);
        assert_eq!(p.num_docs(), 11);
        assert_eq!(p.owner(DocId(10)), owner);
    }
}
