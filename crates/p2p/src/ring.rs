//! The Chord-style consistent-hash ring.
//!
//! Peers sit at the points `Guid::for_peer(i)` on a 2^128 circle; the
//! peer responsible for any id is its *successor* — the first peer at
//! or after the id, wrapping around. [`Ring`] maintains the sorted
//! membership and answers successor queries in O(log n); it is the
//! membership source of truth for routing, placement, and the
//! distributed keyword index.

use crate::{guid::Guid, peer::PeerId};

/// Sorted ring membership.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// `(guid, peer)` sorted by guid. Guids are unique (the hash is
    /// collision-free over the tiny peer-number space in practice;
    /// insertion asserts it).
    points: Vec<(Guid, PeerId)>,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Self {
        Ring::default()
    }

    /// A ring with peers `0..n` already joined.
    pub fn with_peers(n: usize) -> Self {
        let mut r = Ring::new();
        for i in 0..n as u32 {
            r.join(PeerId(i));
        }
        r
    }

    /// Number of peers on the ring.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no peers.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds a peer to the ring.
    ///
    /// # Panics
    ///
    /// Panics if the peer is already present or its guid collides.
    pub fn join(&mut self, p: PeerId) {
        let g = Guid::for_peer(p.0);
        match self.points.binary_search_by_key(&g, |&(g, _)| g) {
            Ok(_) => panic!("peer {p} (or a guid collision) already on the ring"),
            Err(pos) => self.points.insert(pos, (g, p)),
        }
    }

    /// Removes a peer from the ring. Returns whether it was present.
    pub fn leave(&mut self, p: PeerId) -> bool {
        let g = Guid::for_peer(p.0);
        match self.points.binary_search_by_key(&g, |&(g, _)| g) {
            Ok(pos) => {
                self.points.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `p` is on the ring.
    pub fn contains(&self, p: PeerId) -> bool {
        let g = Guid::for_peer(p.0);
        self.points.binary_search_by_key(&g, |&(g, _)| g).is_ok()
    }

    /// The peer responsible for `id`: the first peer clockwise at or
    /// after `id`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    pub fn successor(&self, id: Guid) -> PeerId {
        assert!(!self.points.is_empty(), "successor on empty ring");
        let pos = self.points.partition_point(|&(g, _)| g < id);
        if pos == self.points.len() {
            self.points[0].1
        } else {
            self.points[pos].1
        }
    }

    /// The peer immediately preceding `id` (strictly before, wrapping).
    pub fn predecessor(&self, id: Guid) -> PeerId {
        assert!(!self.points.is_empty(), "predecessor on empty ring");
        let pos = self.points.partition_point(|&(g, _)| g < id);
        if pos == 0 {
            self.points[self.points.len() - 1].1
        } else {
            self.points[pos - 1].1
        }
    }

    /// Iterator over peers in ring (guid) order.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.points.iter().map(|&(_, p)| p)
    }

    /// Ring position (guid) of peer `p`, if present.
    pub fn guid_of(&self, p: PeerId) -> Option<Guid> {
        let g = Guid::for_peer(p.0);
        self.points
            .binary_search_by_key(&g, |&(g, _)| g)
            .ok()
            .map(|_| g)
    }

    /// The arc of the circle owned by `p`: `(predecessor_guid, own_guid]`.
    /// Returns `None` if `p` is not on the ring.
    pub fn owned_interval(&self, p: PeerId) -> Option<(Guid, Guid)> {
        let g = self.guid_of(p)?;
        let pos = self
            .points
            .binary_search_by_key(&g, |&(g, _)| g)
            .expect("guid_of said present");
        let pred = if pos == 0 {
            self.points[self.points.len() - 1].0
        } else {
            self.points[pos - 1].0
        };
        Some((pred, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_leave_contains() {
        let mut r = Ring::new();
        assert!(r.is_empty());
        r.join(PeerId(0));
        r.join(PeerId(1));
        assert_eq!(r.len(), 2);
        assert!(r.contains(PeerId(0)));
        assert!(r.leave(PeerId(0)));
        assert!(!r.leave(PeerId(0)));
        assert!(!r.contains(PeerId(0)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already on the ring")]
    fn double_join_panics() {
        let mut r = Ring::new();
        r.join(PeerId(3));
        r.join(PeerId(3));
    }

    #[test]
    fn successor_is_first_at_or_after() {
        let r = Ring::with_peers(8);
        // Brute-force check against a linear scan for many probe ids.
        let mut pts: Vec<(Guid, PeerId)> =
            (0..8u32).map(|i| (Guid::for_peer(i), PeerId(i))).collect();
        pts.sort_by_key(|&(g, _)| g);
        for probe in 0..1000u32 {
            let id = Guid::for_document(dpr_graph::DocId(probe));
            let expect = pts
                .iter()
                .find(|&&(g, _)| g >= id)
                .map(|&(_, p)| p)
                .unwrap_or(pts[0].1);
            assert_eq!(r.successor(id), expect);
        }
    }

    #[test]
    fn successor_of_own_guid_is_self() {
        let r = Ring::with_peers(5);
        for i in 0..5u32 {
            assert_eq!(r.successor(Guid::for_peer(i)), PeerId(i));
        }
    }

    #[test]
    fn predecessor_and_successor_are_adjacent() {
        let r = Ring::with_peers(16);
        for probe in 0..200u32 {
            let id = Guid::for_document(dpr_graph::DocId(probe));
            let succ = r.successor(id);
            let pred = r.predecessor(id);
            // pred's successor arc must contain id.
            let (lo, hi) = r.owned_interval(succ).unwrap();
            assert!(
                id.in_interval(lo, hi) || id == hi,
                "id {id} not in ({lo}, {hi}]"
            );
            assert_ne!(
                pred, succ,
                "with 16 peers pred and succ of a random id differ"
            );
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let r = Ring::with_peers(1);
        for probe in 0..50u32 {
            let id = Guid::for_document(dpr_graph::DocId(probe));
            assert_eq!(r.successor(id), PeerId(0));
        }
        let (lo, hi) = r.owned_interval(PeerId(0)).unwrap();
        assert_eq!(lo, hi, "single peer's interval is the whole circle");
    }

    #[test]
    fn leave_reassigns_arc_to_successor() {
        let mut r = Ring::with_peers(10);
        let id = Guid::for_document(dpr_graph::DocId(123));
        let owner = r.successor(id);
        r.leave(owner);
        let new_owner = r.successor(id);
        assert_ne!(owner, new_owner);
        // New owner must be the old owner's ring successor.
        assert!(r.contains(new_owner));
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn successor_on_empty_ring_panics() {
        Ring::new().successor(Guid(0));
    }

    #[test]
    fn peers_iterate_in_guid_order() {
        let r = Ring::with_peers(6);
        let guids: Vec<Guid> = r.peers().map(|p| r.guid_of(p).unwrap()).collect();
        assert!(guids.windows(2).all(|w| w[0] < w[1]));
    }
}
