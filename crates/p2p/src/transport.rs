//! Message transport with store-and-resend and traffic accounting.
//!
//! Paper Sec. 3.1: "when a peer is detected as unavailable, update
//! messages are stored at the sender and periodically resent until
//! delivered successfully. In the worst case, the amount of state
//! saved scales linearly with the sum of outlinks in all documents in
//! a peer." [`Transport`] implements exactly that: sends to online
//! peers are enqueued in the destination inbox; sends to offline peers
//! are parked in a per-sender pending buffer and re-delivered by
//! [`Transport::retry_pending`] once the destination returns.
//!
//! Delivery is instantaneous (the paper's simulation does not model
//! network latency) but every message is counted, because message
//! counts are the paper's primary traffic metric (Table 3).

use crate::peer::{PeerId, PeerTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Application payload.
    pub payload: M,
}

/// Counters kept by the transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct TrafficStats {
    /// Messages handed to `send` (delivered or parked).
    pub sent: u64,
    /// Messages placed in a destination inbox.
    pub delivered: u64,
    /// Messages parked because the destination was offline.
    pub parked: u64,
    /// Parked messages successfully re-delivered.
    pub redelivered: u64,
    /// Retry attempts that found the destination still offline.
    pub retry_failures: u64,
}

/// Per-peer inboxes plus the store-and-resend buffer.
#[derive(Debug)]
pub struct Transport<M> {
    inboxes: Vec<VecDeque<Envelope<M>>>,
    /// Messages waiting for an offline destination, stored at the
    /// sender as the paper prescribes — kept per *sender* so the
    /// worst-case state bound (sum of outlinks at the sender) can be
    /// audited via [`Transport::pending_at`].
    pending: Vec<Vec<Envelope<M>>>,
    stats: TrafficStats,
}

impl<M> Transport<M> {
    /// A transport for `n` peers.
    pub fn new(n: usize) -> Self {
        Transport {
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            pending: (0..n).map(|_| Vec::new()).collect(),
            stats: TrafficStats::default(),
        }
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.inboxes.len()
    }

    /// Sends `payload` from `from` to `to`. If `to` is offline the
    /// message is parked at the sender for later retry.
    pub fn send(&mut self, peers: &PeerTable, from: PeerId, to: PeerId, payload: M) {
        self.stats.sent += 1;
        let env = Envelope { from, to, payload };
        if peers.is_online(to) {
            self.stats.delivered += 1;
            self.inboxes[to.index()].push_back(env);
        } else {
            self.stats.parked += 1;
            self.pending[from.index()].push(env);
        }
    }

    /// Retries every parked message; messages whose destination is now
    /// online are delivered. Returns the number re-delivered.
    pub fn retry_pending(&mut self, peers: &PeerTable) -> u64 {
        let mut redelivered = 0u64;
        for sender in 0..self.pending.len() {
            let mut still_parked = Vec::new();
            for env in self.pending[sender].drain(..) {
                if peers.is_online(env.to) {
                    self.inboxes[env.to.index()].push_back(env);
                    redelivered += 1;
                } else {
                    self.stats.retry_failures += 1;
                    still_parked.push(env);
                }
            }
            self.pending[sender] = still_parked;
        }
        self.stats.redelivered += redelivered;
        redelivered
    }

    /// Removes and returns every message addressed to `dst` that is
    /// currently parked at any sender. Used when `dst` departs
    /// *permanently* and its documents are re-homed: the caller
    /// re-sends these to the documents' new holders instead of letting
    /// them wait forever for a peer that will never return.
    pub fn take_pending_for(&mut self, dst: PeerId) -> Vec<Envelope<M>> {
        let mut taken = Vec::new();
        for sender in &mut self.pending {
            let mut kept = Vec::new();
            for env in sender.drain(..) {
                if env.to == dst {
                    taken.push(env);
                } else {
                    kept.push(env);
                }
            }
            *sender = kept;
        }
        taken
    }

    /// Pops the next message from `p`'s inbox.
    pub fn receive(&mut self, p: PeerId) -> Option<Envelope<M>> {
        self.inboxes[p.index()].pop_front()
    }

    /// Drains every message currently in `p`'s inbox.
    pub fn drain_inbox(&mut self, p: PeerId) -> Vec<Envelope<M>> {
        self.inboxes[p.index()].drain(..).collect()
    }

    /// Number of messages waiting in `p`'s inbox.
    pub fn inbox_len(&self, p: PeerId) -> usize {
        self.inboxes[p.index()].len()
    }

    /// Number of messages parked at sender `p` (the paper's
    /// linear-in-outlinks state bound applies to this value).
    pub fn pending_at(&self, p: PeerId) -> usize {
        self.pending[p.index()].len()
    }

    /// Total parked messages across all senders.
    pub fn total_pending(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    /// Total undelivered messages (inboxes + parked).
    pub fn in_flight(&self) -> usize {
        self.inboxes.iter().map(VecDeque::len).sum::<usize>() + self.total_pending()
    }

    /// Traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Resets traffic counters (not queues).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }
}

/// The paper's pagerank update message: "128 bits for GUID, 64 bits
/// for pagerank value" — 24 bytes on the wire (Sec. 4.6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankUpdateWire {
    /// GUID of the document whose rank is being updated.
    pub guid: u128,
    /// The rank contribution being delivered (may be negative for
    /// document deletion).
    pub value: f64,
}

/// Exact wire size of [`RankUpdateWire`], as assumed by the paper's
/// execution-time model.
pub const RANK_UPDATE_WIRE_BYTES: usize = 24;

impl RankUpdateWire {
    /// Serializes to the 24-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(RANK_UPDATE_WIRE_BYTES);
        b.put_u128_le(self.guid);
        b.put_f64_le(self.value);
        b.freeze()
    }

    /// Parses the 24-byte wire form.
    pub fn decode(mut bytes: Bytes) -> Result<Self, WireError> {
        if bytes.len() != RANK_UPDATE_WIRE_BYTES {
            return Err(WireError::BadLength(bytes.len()));
        }
        let guid = bytes.get_u128_le();
        let value = bytes.get_f64_le();
        if !value.is_finite() {
            return Err(WireError::NonFiniteValue);
        }
        Ok(RankUpdateWire { guid, value })
    }
}

/// Wire decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload was not exactly 24 bytes.
    BadLength(usize),
    /// Rank value was NaN or infinite.
    NonFiniteValue,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadLength(n) => write!(f, "expected 24-byte rank update, got {n}"),
            WireError::NonFiniteValue => write!(f, "rank value is not finite"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let peers = PeerTable::new(2);
        let mut t: Transport<u32> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), 10);
        t.send(&peers, PeerId(0), PeerId(1), 11);
        assert_eq!(t.inbox_len(PeerId(1)), 2);
        assert_eq!(t.receive(PeerId(1)).unwrap().payload, 10);
        assert_eq!(t.receive(PeerId(1)).unwrap().payload, 11);
        assert!(t.receive(PeerId(1)).is_none());
        let s = t.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.parked, 0);
    }

    #[test]
    fn offline_destination_parks_at_sender() {
        let mut peers = PeerTable::new(2);
        peers.go_offline(PeerId(1));
        let mut t: Transport<u32> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), 7);
        assert_eq!(t.inbox_len(PeerId(1)), 0);
        assert_eq!(t.pending_at(PeerId(0)), 1);
        assert_eq!(t.stats().parked, 1);

        // Retry while still offline: stays parked.
        assert_eq!(t.retry_pending(&peers), 0);
        assert_eq!(t.stats().retry_failures, 1);
        assert_eq!(t.pending_at(PeerId(0)), 1);

        // Destination returns: message is redelivered exactly once.
        peers.go_online(PeerId(1));
        assert_eq!(t.retry_pending(&peers), 1);
        assert_eq!(t.pending_at(PeerId(0)), 0);
        assert_eq!(t.receive(PeerId(1)).unwrap().payload, 7);
        assert_eq!(t.stats().redelivered, 1);
    }

    #[test]
    fn drain_inbox_empties_queue() {
        let peers = PeerTable::new(3);
        let mut t: Transport<&str> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(2), "a");
        t.send(&peers, PeerId(1), PeerId(2), "b");
        let msgs = t.drain_inbox(PeerId(2));
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].from, PeerId(0));
        assert_eq!(t.inbox_len(PeerId(2)), 0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn wire_roundtrip_is_24_bytes() {
        let m = RankUpdateWire {
            guid: 0x0000_dead_beef_cafe_babe_0123,
            value: -0.125,
        };
        let b = m.encode();
        assert_eq!(b.len(), RANK_UPDATE_WIRE_BYTES);
        assert_eq!(RankUpdateWire::decode(b).unwrap(), m);
    }

    #[test]
    fn wire_rejects_bad_input() {
        assert_eq!(
            RankUpdateWire::decode(Bytes::from_static(b"short")),
            Err(WireError::BadLength(5))
        );
        let nan = RankUpdateWire {
            guid: 1,
            value: f64::NAN,
        }
        .encode();
        assert_eq!(RankUpdateWire::decode(nan), Err(WireError::NonFiniteValue));
    }

    #[test]
    fn take_pending_for_extracts_only_that_destination() {
        let mut peers = PeerTable::new(3);
        peers.go_offline(PeerId(1));
        peers.go_offline(PeerId(2));
        let mut t: Transport<u8> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(1), 1);
        t.send(&peers, PeerId(0), PeerId(2), 2);
        t.send(&peers, PeerId(0), PeerId(1), 3);
        let taken = t.take_pending_for(PeerId(1));
        assert_eq!(taken.len(), 2);
        assert!(taken.iter().all(|e| e.to == PeerId(1)));
        assert_eq!(t.total_pending(), 1, "message for peer 2 stays parked");
        assert!(t.take_pending_for(PeerId(1)).is_empty());
    }

    #[test]
    fn in_flight_counts_inboxes_and_pending() {
        let mut peers = PeerTable::new(2);
        let mut t: Transport<u8> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), 1);
        peers.go_offline(PeerId(1));
        t.send(&peers, PeerId(0), PeerId(1), 2);
        assert_eq!(t.in_flight(), 2);
        assert_eq!(t.total_pending(), 1);
    }
}
