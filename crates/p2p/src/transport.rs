//! Message transport with store-and-resend and traffic accounting.
//!
//! Paper Sec. 3.1: "when a peer is detected as unavailable, update
//! messages are stored at the sender and periodically resent until
//! delivered successfully. In the worst case, the amount of state
//! saved scales linearly with the sum of outlinks in all documents in
//! a peer." [`Transport`] implements exactly that: sends to online
//! peers are enqueued in the destination inbox; sends to offline peers
//! are parked in a per-sender pending buffer and re-delivered by
//! [`Transport::retry_pending`] once the destination returns.
//!
//! Delivery is instantaneous (the paper's simulation does not model
//! network latency) but every message is counted, because message
//! counts are the paper's primary traffic metric (Table 3).

use crate::peer::{PeerId, PeerTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dpr_telemetry::{Metric, Recorder};
use std::collections::VecDeque;
use std::sync::Arc;

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Application payload.
    pub payload: M,
}

/// Counters kept by the transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct TrafficStats {
    /// Messages handed to `send` (delivered or parked).
    pub sent: u64,
    /// Messages placed in a destination inbox.
    pub delivered: u64,
    /// Messages parked because the destination was offline.
    pub parked: u64,
    /// Parked messages successfully re-delivered.
    pub redelivered: u64,
    /// Retry attempts that found the destination still offline.
    pub retry_failures: u64,
    /// Payload bytes handed to `send`.
    pub bytes_sent: u64,
    /// Payload bytes placed in destination inboxes (first delivery and
    /// redelivery both count: a resent frame crosses the wire again).
    pub bytes_delivered: u64,
}

/// Payload byte size as it would appear on the wire, so the transport
/// can keep byte-accurate traffic counters for any payload type.
pub trait WireSize {
    /// Serialized size of this payload in bytes.
    fn wire_bytes(&self) -> usize;
}

impl WireSize for Bytes {
    fn wire_bytes(&self) -> usize {
        self.len()
    }
}

/// The transport corruptions `dpr doctor --inject-fault` can stage to
/// prove the audit monitors fire. Each fault breaks exactly one
/// protocol promise: `MassLeak` corrupts a rank value in flight (mass
/// conservation), `DupFrame` delivers one payload twice (message
/// balance), `LostFrame` drops one payload after counting it sent
/// (quiescence certification — Safra's token never returns to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt the first rank value of one payload in flight.
    MassLeak,
    /// Deliver one payload twice.
    DupFrame,
    /// Silently drop one payload after counting it as sent.
    LostFrame,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::MassLeak => "mass-leak",
            FaultKind::DupFrame => "dup-frame",
            FaultKind::LostFrame => "lost-frame",
        })
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mass-leak" => Ok(FaultKind::MassLeak),
            "dup-frame" => Ok(FaultKind::DupFrame),
            "lost-frame" => Ok(FaultKind::LostFrame),
            other => Err(format!(
                "unknown fault {other:?} (expected \"mass-leak\", \"dup-frame\" or \"lost-frame\")"
            )),
        }
    }
}

/// One staged fault: corrupt the first corruptible send at or after
/// the `nth_send`-th (0-based). Deterministic by construction — the
/// send sequence is deterministic, so the same plan corrupts the same
/// payload on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to do to the victim payload.
    pub kind: FaultKind,
    /// 0-based send index at (or after) which to strike.
    pub nth_send: u64,
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    sends_seen: u64,
    fired_at: Option<u64>,
}

/// How a payload type participates in fault injection. The defaults
/// make every fault inert (`MassLeak`/`DupFrame` skip payloads they
/// cannot corrupt); [`Bytes`] implements the real corruptions.
pub trait FaultTarget: Sized {
    /// A copy of this payload for duplicate delivery.
    fn duplicate(&self) -> Option<Self> {
        None
    }

    /// A version of this payload whose first rank value is corrupted
    /// (kept structurally valid and finite, so receivers apply it
    /// instead of rejecting it — that is what makes the leak silent).
    fn leak_mass(&self) -> Option<Self> {
        None
    }
}

/// How much a [`FaultTarget::leak_mass`] corruption adds to the first
/// rank value of the victim payload — far above the mass auditor's
/// float tolerance, far below anything that would destabilize a run.
pub const MASS_LEAK_DELTA: f64 = 0.5;

impl FaultTarget for Bytes {
    fn duplicate(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn leak_mass(&self) -> Option<Self> {
        if self.len() == RANK_UPDATE_WIRE_BYTES {
            let mut m = RankUpdateWire::decode(self.clone()).ok()?;
            m.value += MASS_LEAK_DELTA;
            m.value.is_finite().then(|| m.encode())
        } else if self.first() == Some(&COMPACT_MAGIC) {
            let mut f = CompactFrameWire::decode(self.clone()).ok()?;
            let e = f.entries.first_mut()?;
            e.value += MASS_LEAK_DELTA as f32;
            e.value.is_finite().then(|| f.encode())
        } else {
            let mut f = UpdateFrameWire::decode(self.clone()).ok()?;
            let e = f.entries.first_mut()?;
            e.value += MASS_LEAK_DELTA;
            e.value.is_finite().then(|| f.encode())
        }
    }
}

/// Per-peer inboxes plus the store-and-resend buffer.
pub struct Transport<M> {
    inboxes: Vec<VecDeque<Envelope<M>>>,
    /// Messages waiting for an offline destination, stored at the
    /// sender as the paper prescribes — kept per *sender* so the
    /// worst-case state bound (sum of outlinks at the sender) can be
    /// audited via [`Transport::pending_at`].
    pending: Vec<Vec<Envelope<M>>>,
    stats: TrafficStats,
    /// Optional telemetry recorder mirroring [`TrafficStats`] into the
    /// shared metric registry (`None` costs one branch per send).
    rec: Option<Arc<dyn Recorder>>,
    /// Staged fault, if any (`dpr doctor --inject-fault`).
    fault: Option<FaultState>,
}

impl<M: std::fmt::Debug> std::fmt::Debug for Transport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transport")
            .field("inboxes", &self.inboxes)
            .field("pending", &self.pending)
            .field("stats", &self.stats)
            .field("observed", &self.rec.is_some())
            .finish()
    }
}

impl<M> Transport<M> {
    /// A transport for `n` peers.
    pub fn new(n: usize) -> Self {
        Transport {
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            pending: (0..n).map(|_| Vec::new()).collect(),
            stats: TrafficStats::default(),
            rec: None,
            fault: None,
        }
    }

    /// Stages a deliberate corruption: the first corruptible send at
    /// or after `plan.nth_send` is struck (once). For proving that the
    /// audit monitors fire — never set on a run whose numbers you
    /// intend to keep.
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState {
            plan,
            sends_seen: 0,
            fired_at: None,
        });
    }

    /// The send index the staged fault actually struck, if it has.
    pub fn fault_fired_at(&self) -> Option<u64> {
        self.fault.as_ref().and_then(|f| f.fired_at)
    }

    /// Installs a telemetry recorder: every subsequent send observes
    /// [`Metric::PayloadsSent`], [`Metric::BytesOnWire`],
    /// [`Metric::FrameBytes`] and [`Metric::ParkedMessages`]. Purely
    /// additive — [`TrafficStats`] is kept identically either way.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.rec = Some(rec);
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.inboxes.len()
    }

    /// Removes and returns every message addressed to `dst` that is
    /// currently parked at any sender. Used when `dst` departs
    /// *permanently* and its documents are re-homed: the caller
    /// re-sends these to the documents' new holders instead of letting
    /// them wait forever for a peer that will never return.
    pub fn take_pending_for(&mut self, dst: PeerId) -> Vec<Envelope<M>> {
        let mut taken = Vec::new();
        for sender in &mut self.pending {
            let mut kept = Vec::new();
            for env in sender.drain(..) {
                if env.to == dst {
                    taken.push(env);
                } else {
                    kept.push(env);
                }
            }
            *sender = kept;
        }
        taken
    }

    /// Pops the next message from `p`'s inbox.
    pub fn receive(&mut self, p: PeerId) -> Option<Envelope<M>> {
        self.inboxes[p.index()].pop_front()
    }

    /// Pops the first message in `p`'s inbox that was sent by `from`,
    /// preserving per-link FIFO order. The event-driven runtime pops
    /// by sender because its `Deliver` events are scheduled per link:
    /// messages from different senders interleave on the virtual
    /// clock, but messages on one link never overtake each other.
    /// Returns `None` when no message from `from` is waiting (e.g. a
    /// staged lost-frame fault consumed the send).
    pub fn receive_from(&mut self, p: PeerId, from: PeerId) -> Option<Envelope<M>> {
        let inbox = &mut self.inboxes[p.index()];
        let pos = inbox.iter().position(|env| env.from == from)?;
        inbox.remove(pos)
    }

    /// Drains every message currently in `p`'s inbox.
    pub fn drain_inbox(&mut self, p: PeerId) -> Vec<Envelope<M>> {
        self.inboxes[p.index()].drain(..).collect()
    }

    /// Number of messages waiting in `p`'s inbox.
    pub fn inbox_len(&self, p: PeerId) -> usize {
        self.inboxes[p.index()].len()
    }

    /// Number of messages parked at sender `p` (the paper's
    /// linear-in-outlinks state bound applies to this value).
    pub fn pending_at(&self, p: PeerId) -> usize {
        self.pending[p.index()].len()
    }

    /// Total parked messages across all senders.
    pub fn total_pending(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    /// Total undelivered messages (inboxes + parked).
    pub fn in_flight(&self) -> usize {
        self.inboxes.iter().map(VecDeque::len).sum::<usize>() + self.total_pending()
    }

    /// Traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Resets traffic counters (not queues).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }
}

impl<M: WireSize + FaultTarget> Transport<M> {
    /// Sends `payload` from `from` to `to`. If `to` is offline the
    /// message is parked at the sender for later retry. Whole payloads
    /// park and resend as units — for multi-update frames this is the
    /// store-and-resend of entire frames.
    pub fn send(&mut self, peers: &PeerTable, from: PeerId, to: PeerId, payload: M) {
        // A staged fault rewrites this send before any accounting, so
        // the counters describe what the transport *claims* happened —
        // the gap to what actually happened is what the audit monitors
        // exist to catch.
        let mut payload = payload;
        let mut duplicate: Option<M> = None;
        let mut lost = false;
        if let Some(f) = &mut self.fault {
            let idx = f.sends_seen;
            f.sends_seen += 1;
            if f.fired_at.is_none() && idx >= f.plan.nth_send {
                match f.plan.kind {
                    FaultKind::MassLeak => {
                        if let Some(p) = payload.leak_mass() {
                            payload = p;
                            f.fired_at = Some(idx);
                        }
                    }
                    FaultKind::DupFrame => {
                        duplicate = payload.duplicate();
                        if duplicate.is_some() {
                            f.fired_at = Some(idx);
                        }
                    }
                    FaultKind::LostFrame => {
                        lost = true;
                        f.fired_at = Some(idx);
                    }
                }
            }
        }

        let wire = payload.wire_bytes() as u64;
        self.stats.sent += 1;
        self.stats.bytes_sent += wire;
        let online = peers.is_online(to);
        if let Some(rec) = &self.rec {
            rec.counter_add(Metric::PayloadsSent, 1);
            rec.counter_add(Metric::BytesOnWire, wire);
            rec.observe(Metric::FrameBytes, wire);
            if !online && !lost {
                rec.counter_add(Metric::ParkedMessages, 1);
            }
        }
        if lost {
            // Counted as sent, never enqueued anywhere: the victim
            // vanishes without a trace — except in the audit ledgers.
            return;
        }
        for payload in std::iter::once(payload).chain(duplicate) {
            let env = Envelope { from, to, payload };
            if online {
                self.stats.delivered += 1;
                self.stats.bytes_delivered += wire;
                self.inboxes[to.index()].push_back(env);
            } else {
                self.stats.parked += 1;
                self.pending[from.index()].push(env);
            }
        }
    }

    /// Retries every parked message; messages whose destination is now
    /// online are delivered. Returns the number re-delivered.
    pub fn retry_pending(&mut self, peers: &PeerTable) -> u64 {
        self.retry_pending_outcomes(peers).len() as u64
    }

    /// Like [`Transport::retry_pending`], but returns one
    /// `(from, to, wire_bytes)` record per re-delivered message, in
    /// delivery order. The event-driven runtime needs the per-message
    /// breakdown to schedule one `Deliver` event per redelivery; the
    /// counters move exactly as in `retry_pending`.
    pub fn retry_pending_outcomes(&mut self, peers: &PeerTable) -> Vec<(PeerId, PeerId, usize)> {
        let mut outcomes = Vec::new();
        for sender in 0..self.pending.len() {
            let mut still_parked = Vec::new();
            for env in self.pending[sender].drain(..) {
                if peers.is_online(env.to) {
                    let wire = env.payload.wire_bytes();
                    self.stats.bytes_delivered += wire as u64;
                    outcomes.push((env.from, env.to, wire));
                    self.inboxes[env.to.index()].push_back(env);
                } else {
                    self.stats.retry_failures += 1;
                    still_parked.push(env);
                }
            }
            self.pending[sender] = still_parked;
        }
        self.stats.redelivered += outcomes.len() as u64;
        outcomes
    }
}

/// Update entries carried by one wire payload: 24 bytes ⇒ one single
/// update, [`COMPACT_MAGIC`] ⇒ the compact frame's declared count,
/// else a `4 + 16k` raw frame.
pub fn payload_entries(payload: &Bytes) -> u64 {
    if payload.len() == RANK_UPDATE_WIRE_BYTES {
        1
    } else if payload.first() == Some(&COMPACT_MAGIC) {
        if payload.len() < COMPACT_HEADER_BYTES {
            0
        } else {
            u64::from(u16::from_le_bytes([payload[2], payload[3]]))
        }
    } else if payload.len() >= FRAME_HEADER_BYTES {
        ((payload.len() - FRAME_HEADER_BYTES) / FRAME_ENTRY_BYTES) as u64
    } else {
        0
    }
}

/// Total rank mass carried by one wire payload — the decoded sum of
/// its update values (0 for an undecodable payload, which the ledger
/// then reports as missing mass). Compact frames contribute their
/// `f32`-quantized values widened to `f64` — exactly what the
/// receiver will fold in.
pub fn payload_mass(payload: &Bytes) -> f64 {
    if payload.len() == RANK_UPDATE_WIRE_BYTES {
        RankUpdateWire::decode(payload.clone())
            .map(|m| m.value)
            .unwrap_or(0.0)
    } else if payload.first() == Some(&COMPACT_MAGIC) {
        CompactFrameWire::decode(payload.clone())
            .map(|f| f.entries.iter().map(|e| f64::from(e.value)).sum())
            .unwrap_or(0.0)
    } else {
        UpdateFrameWire::decode(payload.clone())
            .map(|f| f.entries.iter().map(|e| e.value).sum())
            .unwrap_or(0.0)
    }
}

impl Transport<Bytes> {
    /// Update entries currently undelivered (inboxes + parked),
    /// decoded from the queued payloads — the in-flight side of the
    /// message-balance invariant `Σ sent − Σ received = in flight`.
    pub fn in_flight_entries(&self) -> u64 {
        self.for_each_queued(payload_entries)
    }

    /// Update entries currently undelivered and addressed to `dst`.
    pub fn in_flight_entries_to(&self, dst: PeerId) -> u64 {
        self.inboxes[dst.index()]
            .iter()
            .map(|e| payload_entries(&e.payload))
            .sum::<u64>()
            + self
                .pending
                .iter()
                .flatten()
                .filter(|e| e.to == dst)
                .map(|e| payload_entries(&e.payload))
                .sum::<u64>()
    }

    /// Rank mass currently undelivered (inboxes + parked), decoded
    /// from the queued payloads — the in-flight term of the
    /// mass-conservation ledger.
    pub fn in_flight_mass(&self) -> f64 {
        let mut mass = 0.0;
        for q in &self.inboxes {
            for e in q {
                mass += payload_mass(&e.payload);
            }
        }
        for p in &self.pending {
            for e in p {
                mass += payload_mass(&e.payload);
            }
        }
        mass
    }

    fn for_each_queued(&self, f: impl Fn(&Bytes) -> u64) -> u64 {
        self.inboxes
            .iter()
            .flatten()
            .chain(self.pending.iter().flatten())
            .map(|e| f(&e.payload))
            .sum()
    }
}

/// The paper's pagerank update message: "128 bits for GUID, 64 bits
/// for pagerank value" — 24 bytes on the wire (Sec. 4.6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankUpdateWire {
    /// GUID of the document whose rank is being updated.
    pub guid: u128,
    /// The rank contribution being delivered (may be negative for
    /// document deletion).
    pub value: f64,
}

/// Exact wire size of [`RankUpdateWire`], as assumed by the paper's
/// execution-time model.
pub const RANK_UPDATE_WIRE_BYTES: usize = 24;

impl RankUpdateWire {
    /// Serializes to the 24-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(RANK_UPDATE_WIRE_BYTES);
        b.put_u128_le(self.guid);
        b.put_f64_le(self.value);
        b.freeze()
    }

    /// Parses the 24-byte wire form.
    pub fn decode(mut bytes: Bytes) -> Result<Self, WireError> {
        if bytes.len() != RANK_UPDATE_WIRE_BYTES {
            return Err(WireError::BadLength(bytes.len()));
        }
        let guid = bytes.get_u128_le();
        let value = bytes.get_f64_le();
        if !value.is_finite() {
            return Err(WireError::NonFiniteValue);
        }
        Ok(RankUpdateWire { guid, value })
    }
}

/// A multi-update frame: the per-destination aggregated form of k
/// rank updates.
///
/// Layout: `[magic u8][version u8][count u16 LE]` followed by `count`
/// entries of `[tag u64 LE][value f64 LE]`. The full 128-bit GUID is
/// what DHT *routing* needs; once a frame is addressed to the one peer
/// holding every target document, the 64-bit [`Guid::frame_tag`]
/// suffices to demultiplex within that peer's document set — so a
/// packed entry is 16 bytes against the 24-byte single-update message,
/// and a frame of k updates costs `4 + 16k < 24k` bytes for every
/// k ≥ 1.
///
/// Frame lengths are `4 + 16k` (20, 36, 52, …) and a single update is
/// exactly 24 bytes, so the two payload kinds never collide on length;
/// receivers dispatch on `len == RANK_UPDATE_WIRE_BYTES`.
///
/// [`Guid::frame_tag`]: crate::guid::Guid::frame_tag
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateFrameWire {
    /// The packed updates, in the sender's flush order.
    pub entries: Vec<FrameEntry>,
}

/// One packed update inside an [`UpdateFrameWire`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameEntry {
    /// [`Guid::frame_tag`] of the target document.
    ///
    /// [`Guid::frame_tag`]: crate::guid::Guid::frame_tag
    pub tag: u64,
    /// The coalesced rank contribution for that document.
    pub value: f64,
}

/// First byte of every frame.
pub const FRAME_MAGIC: u8 = 0xF7;
/// Wire-protocol version of the frame layout.
pub const FRAME_VERSION: u8 = 1;
/// Frame header size: magic + version + u16 entry count.
pub const FRAME_HEADER_BYTES: usize = 4;
/// Size of one packed entry: 64-bit tag + 64-bit value.
pub const FRAME_ENTRY_BYTES: usize = 16;
/// Hard cap on entries per frame (the count field is a u16).
pub const FRAME_MAX_ENTRIES: usize = u16::MAX as usize;

/// Bytes a frame of `k` entries occupies on the wire.
pub const fn frame_wire_bytes(k: usize) -> usize {
    FRAME_HEADER_BYTES + k * FRAME_ENTRY_BYTES
}

/// Largest entry count whose frame fits in `max_frame_bytes` — the
/// flush-policy size cap. Never below 1 (an undersized cap still has
/// to move single updates) and never above [`FRAME_MAX_ENTRIES`].
pub fn max_entries_for(max_frame_bytes: usize) -> usize {
    (max_frame_bytes.saturating_sub(FRAME_HEADER_BYTES) / FRAME_ENTRY_BYTES)
        .clamp(1, FRAME_MAX_ENTRIES)
}

impl UpdateFrameWire {
    /// Serializes to the length-implied wire form.
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty or exceeds [`FRAME_MAX_ENTRIES`].
    pub fn encode(&self) -> Bytes {
        assert!(!self.entries.is_empty(), "empty frame");
        assert!(self.entries.len() <= FRAME_MAX_ENTRIES, "oversized frame");
        let mut b = BytesMut::with_capacity(frame_wire_bytes(self.entries.len()));
        b.put_u8(FRAME_MAGIC);
        b.put_u8(FRAME_VERSION);
        b.put_u16_le(self.entries.len() as u16);
        for e in &self.entries {
            b.put_u64_le(e.tag);
            b.put_f64_le(e.value);
        }
        b.freeze()
    }

    /// Parses a frame payload.
    pub fn decode(mut bytes: Bytes) -> Result<Self, WireError> {
        let len = bytes.len();
        if len < FRAME_HEADER_BYTES {
            return Err(WireError::BadLength(len));
        }
        let magic = bytes.get_u8();
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = bytes.get_u8();
        if version != FRAME_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let count = bytes.get_u16_le() as usize;
        if count == 0 {
            return Err(WireError::EmptyFrame);
        }
        if len != frame_wire_bytes(count) {
            return Err(WireError::BadLength(len));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = bytes.get_u64_le();
            let value = bytes.get_f64_le();
            if !value.is_finite() {
                return Err(WireError::NonFiniteValue);
            }
            entries.push(FrameEntry { tag, value });
        }
        Ok(UpdateFrameWire { entries })
    }
}

/// Wire decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload length fits neither a 24-byte single update nor the
    /// declared frame entry count.
    BadLength(usize),
    /// Rank value was NaN or infinite.
    NonFiniteValue,
    /// Frame payload did not start with [`FRAME_MAGIC`].
    BadMagic(u8),
    /// Frame protocol version not understood.
    BadVersion(u8),
    /// Frame declared zero entries.
    EmptyFrame,
    /// A compact frame's varint doc-id stream was truncated,
    /// overflowed `u32`, or was not strictly ascending.
    BadDocEncoding,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadLength(n) => write!(f, "payload length {n} fits no update message"),
            WireError::NonFiniteValue => write!(f, "rank value is not finite"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            WireError::EmptyFrame => write!(f, "frame declares zero entries"),
            WireError::BadDocEncoding => write!(f, "malformed compact doc-id stream"),
        }
    }
}

impl std::error::Error for WireError {}

/// Which frame encoding a sender puts on the wire.
///
/// `Raw` is the bit-identity default: 16-byte `(tag u64, value f64)`
/// entries, so converged ranks are exactly the sequential engine's
/// bits. `Compact` trades that for bytes: doc ids are sorted ascending
/// and varint/delta-encoded, values are quantized to `f32` — a
/// bounded-error mode (per-doc relative error ≤ the f32 quantization
/// step, ~1.2e-7) whose parity bound is pinned by a differential test.
/// Single 24-byte updates always travel raw in either codec: routing a
/// single needs the full 128-bit GUID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Full-fidelity frames (`f64` values, 64-bit tags).
    #[default]
    Raw,
    /// Varint/delta doc ids + `f32` values.
    Compact,
}

impl std::fmt::Display for WireCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireCodec::Raw => "raw",
            WireCodec::Compact => "compact",
        })
    }
}

impl std::str::FromStr for WireCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "raw" => Ok(WireCodec::Raw),
            "compact" => Ok(WireCodec::Compact),
            other => Err(format!(
                "unknown wire codec {other:?} (expected \"raw\" or \"compact\")"
            )),
        }
    }
}

/// First byte of every compact frame. Distinct from [`FRAME_MAGIC`],
/// so receivers dispatch raw vs compact on the first byte after the
/// 24-byte single-update length check.
pub const COMPACT_MAGIC: u8 = 0xF8;
/// Wire-protocol version of the compact frame layout.
pub const COMPACT_VERSION: u8 = 1;
/// Compact frame header size: magic + version + u16 entry count.
pub const COMPACT_HEADER_BYTES: usize = 4;

/// One update inside a [`CompactFrameWire`]: the target document id
/// and the quantized rank contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactEntry {
    /// The target document id (node-local resolution, no GUID).
    pub doc: u32,
    /// The coalesced rank contribution, quantized to `f32`.
    pub value: f32,
}

/// The compact multi-update frame.
///
/// Layout: `[COMPACT_MAGIC][version u8][count u16 LE]` followed by
/// `count` entries of `[varint doc-delta][value f32 LE]`. Entries are
/// sorted by doc id strictly ascending (a flush buffer coalesces, so a
/// frame never repeats a doc); the first entry carries its absolute
/// doc id, each later entry the LEB128 varint of the gap to its
/// predecessor. When the encoded length would collide with the
/// 24-byte single-update dispatch, one pad byte is appended (decoders
/// ignore a single trailing byte).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompactFrameWire {
    /// The updates, sorted by doc id strictly ascending.
    pub entries: Vec<CompactEntry>,
}

fn put_varint(b: &mut BytesMut, mut v: u32) {
    while v >= 0x80 {
        b.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    b.put_u8(v as u8);
}

fn get_varint(bytes: &mut Bytes) -> Result<u32, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if bytes.is_empty() || shift > 28 {
            return Err(WireError::BadDocEncoding);
        }
        let byte = bytes.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    u32::try_from(v).map_err(|_| WireError::BadDocEncoding)
}

impl CompactFrameWire {
    /// Builds a frame from `(doc, value)` pairs, sorting by doc id.
    /// Callers must not pass duplicate doc ids (the flush buffer
    /// guarantees this); duplicates are rejected at encode time.
    pub fn new(mut entries: Vec<CompactEntry>) -> Self {
        entries.sort_unstable_by_key(|e| e.doc);
        CompactFrameWire { entries }
    }

    /// Serializes to the varint/delta wire form.
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty, exceeds [`FRAME_MAX_ENTRIES`],
    /// holds a non-finite value, or is not strictly ascending by doc.
    pub fn encode(&self) -> Bytes {
        assert!(!self.entries.is_empty(), "empty frame");
        assert!(self.entries.len() <= FRAME_MAX_ENTRIES, "oversized frame");
        let mut b = BytesMut::with_capacity(COMPACT_HEADER_BYTES + self.entries.len() * 9);
        b.put_u8(COMPACT_MAGIC);
        b.put_u8(COMPACT_VERSION);
        b.put_u16_le(self.entries.len() as u16);
        let mut prev: Option<u32> = None;
        for e in &self.entries {
            assert!(e.value.is_finite(), "non-finite value in compact frame");
            match prev {
                None => put_varint(&mut b, e.doc),
                Some(p) => {
                    assert!(e.doc > p, "compact frame docs must be strictly ascending");
                    put_varint(&mut b, e.doc - p);
                }
            }
            prev = Some(e.doc);
            b.put_u32_le(e.value.to_bits());
        }
        if b.len() == RANK_UPDATE_WIRE_BYTES {
            b.put_u8(0);
        }
        b.freeze()
    }

    /// Parses a compact frame payload.
    pub fn decode(mut bytes: Bytes) -> Result<Self, WireError> {
        let len = bytes.len();
        if len < COMPACT_HEADER_BYTES {
            return Err(WireError::BadLength(len));
        }
        let magic = bytes.get_u8();
        if magic != COMPACT_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = bytes.get_u8();
        if version != COMPACT_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let count = bytes.get_u16_le() as usize;
        if count == 0 {
            return Err(WireError::EmptyFrame);
        }
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<u32> = None;
        for _ in 0..count {
            let raw = get_varint(&mut bytes)?;
            let doc = match prev {
                None => raw,
                Some(p) => {
                    if raw == 0 {
                        return Err(WireError::BadDocEncoding);
                    }
                    p.checked_add(raw).ok_or(WireError::BadDocEncoding)?
                }
            };
            prev = Some(doc);
            if bytes.len() < 4 {
                return Err(WireError::BadLength(len));
            }
            let value = f32::from_bits(bytes.get_u32_le());
            if !value.is_finite() {
                return Err(WireError::NonFiniteValue);
            }
            entries.push(CompactEntry { doc, value });
        }
        // At most one trailing byte: the 24-byte-collision pad.
        if bytes.len() > 1 {
            return Err(WireError::BadLength(len));
        }
        Ok(CompactFrameWire { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Toy payloads for transport-mechanics tests report their
    // in-memory size and opt out of fault corruption (the trait's
    // defaults).
    impl WireSize for u8 {
        fn wire_bytes(&self) -> usize {
            1
        }
    }
    impl WireSize for u32 {
        fn wire_bytes(&self) -> usize {
            4
        }
    }
    impl WireSize for &str {
        fn wire_bytes(&self) -> usize {
            self.len()
        }
    }
    impl FaultTarget for u8 {}
    impl FaultTarget for u32 {}
    impl FaultTarget for &str {}

    #[test]
    fn send_and_receive_in_order() {
        let peers = PeerTable::new(2);
        let mut t: Transport<u32> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), 10);
        t.send(&peers, PeerId(0), PeerId(1), 11);
        assert_eq!(t.inbox_len(PeerId(1)), 2);
        assert_eq!(t.receive(PeerId(1)).unwrap().payload, 10);
        assert_eq!(t.receive(PeerId(1)).unwrap().payload, 11);
        assert!(t.receive(PeerId(1)).is_none());
        let s = t.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.parked, 0);
    }

    #[test]
    fn offline_destination_parks_at_sender() {
        let mut peers = PeerTable::new(2);
        peers.go_offline(PeerId(1));
        let mut t: Transport<u32> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), 7);
        assert_eq!(t.inbox_len(PeerId(1)), 0);
        assert_eq!(t.pending_at(PeerId(0)), 1);
        assert_eq!(t.stats().parked, 1);

        // Retry while still offline: stays parked.
        assert_eq!(t.retry_pending(&peers), 0);
        assert_eq!(t.stats().retry_failures, 1);
        assert_eq!(t.pending_at(PeerId(0)), 1);

        // Destination returns: message is redelivered exactly once.
        peers.go_online(PeerId(1));
        assert_eq!(t.retry_pending(&peers), 1);
        assert_eq!(t.pending_at(PeerId(0)), 0);
        assert_eq!(t.receive(PeerId(1)).unwrap().payload, 7);
        assert_eq!(t.stats().redelivered, 1);
    }

    #[test]
    fn retry_outcomes_report_each_redelivery() {
        let mut peers = PeerTable::new(3);
        peers.go_offline(PeerId(1));
        peers.go_offline(PeerId(2));
        let mut t: Transport<Bytes> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(1), Bytes::from_static(&[0; 24]));
        t.send(&peers, PeerId(0), PeerId(2), Bytes::from_static(&[0; 20]));
        // Only peer 1 returns: one outcome, the other stays parked.
        peers.go_online(PeerId(1));
        let outcomes = t.retry_pending_outcomes(&peers);
        assert_eq!(outcomes, vec![(PeerId(0), PeerId(1), 24)]);
        assert_eq!(t.stats().redelivered, 1);
        assert_eq!(t.stats().retry_failures, 1);
        assert_eq!(t.total_pending(), 1);
        assert_eq!(t.inbox_len(PeerId(1)), 1);
    }

    #[test]
    fn receive_from_pops_per_link_fifo() {
        let peers = PeerTable::new(3);
        let mut t: Transport<u32> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(2), 1);
        t.send(&peers, PeerId(1), PeerId(2), 2);
        t.send(&peers, PeerId(0), PeerId(2), 3);
        // Popping by sender skips interleaved messages from other
        // links but stays FIFO within each link.
        assert_eq!(t.receive_from(PeerId(2), PeerId(1)).unwrap().payload, 2);
        assert_eq!(t.receive_from(PeerId(2), PeerId(0)).unwrap().payload, 1);
        assert!(t.receive_from(PeerId(2), PeerId(1)).is_none());
        assert_eq!(t.receive_from(PeerId(2), PeerId(0)).unwrap().payload, 3);
        assert_eq!(t.inbox_len(PeerId(2)), 0);
    }

    #[test]
    fn drain_inbox_empties_queue() {
        let peers = PeerTable::new(3);
        let mut t: Transport<&str> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(2), "a");
        t.send(&peers, PeerId(1), PeerId(2), "b");
        let msgs = t.drain_inbox(PeerId(2));
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].from, PeerId(0));
        assert_eq!(t.inbox_len(PeerId(2)), 0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn wire_roundtrip_is_24_bytes() {
        let m = RankUpdateWire {
            guid: 0x0000_dead_beef_cafe_babe_0123,
            value: -0.125,
        };
        let b = m.encode();
        assert_eq!(b.len(), RANK_UPDATE_WIRE_BYTES);
        assert_eq!(RankUpdateWire::decode(b).unwrap(), m);
    }

    #[test]
    fn wire_rejects_bad_input() {
        assert_eq!(
            RankUpdateWire::decode(Bytes::from_static(b"short")),
            Err(WireError::BadLength(5))
        );
        let nan = RankUpdateWire {
            guid: 1,
            value: f64::NAN,
        }
        .encode();
        assert_eq!(RankUpdateWire::decode(nan), Err(WireError::NonFiniteValue));
    }

    #[test]
    fn take_pending_for_extracts_only_that_destination() {
        let mut peers = PeerTable::new(3);
        peers.go_offline(PeerId(1));
        peers.go_offline(PeerId(2));
        let mut t: Transport<u8> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(1), 1);
        t.send(&peers, PeerId(0), PeerId(2), 2);
        t.send(&peers, PeerId(0), PeerId(1), 3);
        let taken = t.take_pending_for(PeerId(1));
        assert_eq!(taken.len(), 2);
        assert!(taken.iter().all(|e| e.to == PeerId(1)));
        assert_eq!(t.total_pending(), 1, "message for peer 2 stays parked");
        assert!(t.take_pending_for(PeerId(1)).is_empty());
    }

    #[test]
    fn frame_roundtrip_and_length_discipline() {
        let f = UpdateFrameWire {
            entries: vec![
                FrameEntry {
                    tag: 0xdead_beef_cafe_f00d,
                    value: 0.5,
                },
                FrameEntry {
                    tag: 1,
                    value: -2.0,
                },
            ],
        };
        let b = f.encode();
        assert_eq!(b.len(), frame_wire_bytes(2));
        assert_eq!(b.len(), FRAME_HEADER_BYTES + 2 * FRAME_ENTRY_BYTES);
        assert_eq!(UpdateFrameWire::decode(b).unwrap(), f);
        // A packed frame always undercuts the 24-byte-per-update
        // baseline, even at k = 1, and never collides with the
        // single-update length.
        for k in 1..300 {
            assert!(frame_wire_bytes(k) < k * RANK_UPDATE_WIRE_BYTES);
            assert_ne!(frame_wire_bytes(k), RANK_UPDATE_WIRE_BYTES);
        }
    }

    #[test]
    fn frame_rejects_malformed_payloads() {
        let one = UpdateFrameWire {
            entries: vec![FrameEntry { tag: 7, value: 1.0 }],
        };
        let good = one.encode();

        let mut bad_magic = good.to_vec();
        bad_magic[0] = 0x00;
        assert_eq!(
            UpdateFrameWire::decode(Bytes::from(bad_magic)),
            Err(WireError::BadMagic(0x00))
        );

        let mut bad_version = good.to_vec();
        bad_version[1] = 9;
        assert_eq!(
            UpdateFrameWire::decode(Bytes::from(bad_version)),
            Err(WireError::BadVersion(9))
        );

        let mut zero_count = good.to_vec();
        zero_count[2] = 0;
        zero_count[3] = 0;
        assert_eq!(
            UpdateFrameWire::decode(Bytes::from(zero_count)),
            Err(WireError::EmptyFrame)
        );

        // Count says 2 but only one entry's bytes follow.
        let mut short = good.to_vec();
        short[2] = 2;
        assert_eq!(
            UpdateFrameWire::decode(Bytes::from(short)),
            Err(WireError::BadLength(frame_wire_bytes(1)))
        );

        let nan = UpdateFrameWire {
            entries: vec![FrameEntry {
                tag: 7,
                value: f64::NAN,
            }],
        }
        .encode();
        assert_eq!(UpdateFrameWire::decode(nan), Err(WireError::NonFiniteValue));
        assert_eq!(
            UpdateFrameWire::decode(Bytes::from_static(b"ab")),
            Err(WireError::BadLength(2))
        );
    }

    #[test]
    fn size_cap_maps_to_entry_budget() {
        // Below one entry's worth of space the cap still moves one
        // update per frame.
        assert_eq!(max_entries_for(0), 1);
        assert_eq!(max_entries_for(FRAME_HEADER_BYTES + FRAME_ENTRY_BYTES), 1);
        assert_eq!(max_entries_for(frame_wire_bytes(2)), 2);
        // A 1400-byte MTU-sized cap carries 87 packed updates.
        assert_eq!(max_entries_for(1400), 87);
        assert_eq!(max_entries_for(usize::MAX), FRAME_MAX_ENTRIES);
    }

    #[test]
    fn transport_counts_payload_bytes() {
        let mut peers = PeerTable::new(2);
        let mut t: Transport<Bytes> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), Bytes::from_static(&[0; 24]));
        peers.go_offline(PeerId(1));
        t.send(&peers, PeerId(0), PeerId(1), Bytes::from_static(&[0; 20]));
        assert_eq!(t.stats().bytes_sent, 44);
        assert_eq!(
            t.stats().bytes_delivered,
            24,
            "parked bytes not yet on the wire"
        );
        peers.go_online(PeerId(1));
        t.retry_pending(&peers);
        assert_eq!(t.stats().bytes_delivered, 44);
    }

    #[test]
    fn recorder_mirrors_traffic_counters() {
        use dpr_telemetry::TraceRecorder;
        let mut peers = PeerTable::new(2);
        let mut t: Transport<Bytes> = Transport::new(2);
        let rec = Arc::new(TraceRecorder::new());
        t.set_recorder(rec.clone());
        t.send(&peers, PeerId(0), PeerId(1), Bytes::from_static(&[0; 24]));
        peers.go_offline(PeerId(1));
        t.send(&peers, PeerId(0), PeerId(1), Bytes::from_static(&[0; 20]));
        assert_eq!(rec.counter(Metric::PayloadsSent), 2);
        assert_eq!(rec.counter(Metric::BytesOnWire), 44);
        assert_eq!(rec.counter(Metric::ParkedMessages), 1);
        let h = rec.histogram(Metric::FrameBytes);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 44);
        // The mirrored series agree with the transport's own stats.
        assert_eq!(rec.counter(Metric::PayloadsSent), t.stats().sent);
        assert_eq!(rec.counter(Metric::BytesOnWire), t.stats().bytes_sent);
        assert_eq!(rec.counter(Metric::ParkedMessages), t.stats().parked);
    }

    #[test]
    fn in_flight_counts_inboxes_and_pending() {
        let mut peers = PeerTable::new(2);
        let mut t: Transport<u8> = Transport::new(2);
        t.send(&peers, PeerId(0), PeerId(1), 1);
        peers.go_offline(PeerId(1));
        t.send(&peers, PeerId(0), PeerId(1), 2);
        assert_eq!(t.in_flight(), 2);
        assert_eq!(t.total_pending(), 1);
    }

    fn single(guid: u128, value: f64) -> Bytes {
        RankUpdateWire { guid, value }.encode()
    }

    fn frame(values: &[f64]) -> Bytes {
        UpdateFrameWire {
            entries: values
                .iter()
                .enumerate()
                .map(|(i, &value)| FrameEntry {
                    tag: i as u64,
                    value,
                })
                .collect(),
        }
        .encode()
    }

    #[test]
    fn in_flight_mass_and_entries_decode_queued_payloads() {
        let mut peers = PeerTable::new(3);
        peers.go_offline(PeerId(2));
        let mut t: Transport<Bytes> = Transport::new(3);
        t.send(&peers, PeerId(0), PeerId(1), single(7, 0.25));
        t.send(&peers, PeerId(0), PeerId(1), frame(&[0.5, 0.125]));
        t.send(&peers, PeerId(1), PeerId(2), single(9, 1.0)); // parked
        assert_eq!(t.in_flight_entries(), 4);
        assert_eq!(t.in_flight_entries_to(PeerId(1)), 3);
        assert_eq!(t.in_flight_entries_to(PeerId(2)), 1);
        assert_eq!(t.in_flight_mass(), 0.25 + 0.5 + 0.125 + 1.0);
        t.receive(PeerId(1)).unwrap();
        assert_eq!(t.in_flight_entries(), 3);
        assert_eq!(t.in_flight_mass(), 0.5 + 0.125 + 1.0);
    }

    #[test]
    fn mass_leak_corrupts_exactly_one_value_and_stays_decodable() {
        let peers = PeerTable::new(2);
        let mut t: Transport<Bytes> = Transport::new(2);
        t.inject_fault(FaultPlan {
            kind: FaultKind::MassLeak,
            nth_send: 1,
        });
        t.send(&peers, PeerId(0), PeerId(1), single(7, 0.25));
        t.send(&peers, PeerId(0), PeerId(1), frame(&[0.5, 0.125]));
        t.send(&peers, PeerId(0), PeerId(1), single(8, 1.0));
        assert_eq!(t.fault_fired_at(), Some(1));
        // First payload untouched, second leaked on its first entry
        // (still structurally valid), third untouched (strike once).
        let a = RankUpdateWire::decode(t.receive(PeerId(1)).unwrap().payload).unwrap();
        assert_eq!(a.value, 0.25);
        let b = UpdateFrameWire::decode(t.receive(PeerId(1)).unwrap().payload).unwrap();
        assert_eq!(b.entries[0].value, 0.5 + MASS_LEAK_DELTA);
        assert_eq!(b.entries[1].value, 0.125);
        let c = RankUpdateWire::decode(t.receive(PeerId(1)).unwrap().payload).unwrap();
        assert_eq!(c.value, 1.0);
        // The counters are none the wiser: that is the point.
        assert_eq!(t.stats().sent, 3);
        assert_eq!(t.stats().delivered, 3);
    }

    #[test]
    fn dup_frame_delivers_twice() {
        let peers = PeerTable::new(2);
        let mut t: Transport<Bytes> = Transport::new(2);
        t.inject_fault(FaultPlan {
            kind: FaultKind::DupFrame,
            nth_send: 0,
        });
        t.send(&peers, PeerId(0), PeerId(1), single(7, 0.25));
        t.send(&peers, PeerId(0), PeerId(1), single(8, 0.5));
        assert_eq!(t.fault_fired_at(), Some(0));
        assert_eq!(t.stats().sent, 2);
        assert_eq!(t.inbox_len(PeerId(1)), 3, "victim arrived twice");
        assert_eq!(t.in_flight_entries(), 3);
        let dup1 = t.receive(PeerId(1)).unwrap().payload;
        let dup2 = t.receive(PeerId(1)).unwrap().payload;
        assert_eq!(dup1, dup2);
    }

    #[test]
    fn lost_frame_counts_sent_but_never_arrives() {
        let peers = PeerTable::new(2);
        let mut t: Transport<Bytes> = Transport::new(2);
        t.inject_fault(FaultPlan {
            kind: FaultKind::LostFrame,
            nth_send: 1,
        });
        t.send(&peers, PeerId(0), PeerId(1), single(7, 0.25));
        t.send(&peers, PeerId(0), PeerId(1), single(8, 0.5));
        t.send(&peers, PeerId(0), PeerId(1), single(9, 1.0));
        assert_eq!(t.fault_fired_at(), Some(1));
        assert_eq!(t.stats().sent, 3, "the victim is still counted sent");
        assert_eq!(t.stats().delivered, 2);
        assert_eq!(t.inbox_len(PeerId(1)), 2);
        assert_eq!(t.in_flight_mass(), 0.25 + 1.0);
    }

    #[test]
    fn faults_wait_for_a_corruptible_send() {
        // nth_send in the past plus an uncorruptible payload type:
        // MassLeak keeps waiting (u8 cannot leak) and never fires.
        let peers = PeerTable::new(2);
        let mut t: Transport<u8> = Transport::new(2);
        t.inject_fault(FaultPlan {
            kind: FaultKind::MassLeak,
            nth_send: 0,
        });
        t.send(&peers, PeerId(0), PeerId(1), 1);
        t.send(&peers, PeerId(0), PeerId(1), 2);
        assert_eq!(t.fault_fired_at(), None);
        assert_eq!(t.inbox_len(PeerId(1)), 2);

        // A Bytes transport fires on the first send at/after the mark.
        let mut tb: Transport<Bytes> = Transport::new(2);
        tb.inject_fault(FaultPlan {
            kind: FaultKind::LostFrame,
            nth_send: 5,
        });
        for g in 0..5 {
            tb.send(&peers, PeerId(0), PeerId(1), single(g, 0.1));
        }
        assert_eq!(tb.fault_fired_at(), None);
        tb.send(&peers, PeerId(0), PeerId(1), single(99, 0.1));
        assert_eq!(tb.fault_fired_at(), Some(5));
    }

    fn compact(entries: &[(u32, f32)]) -> CompactFrameWire {
        CompactFrameWire::new(
            entries
                .iter()
                .map(|&(doc, value)| CompactEntry { doc, value })
                .collect(),
        )
    }

    #[test]
    fn compact_roundtrip_with_boundary_doc_ids() {
        let f = compact(&[(0, 0.5), (1, -2.0), (300, 1.5e-30), (u32::MAX, -0.0)]);
        let b = f.encode();
        assert_eq!(b[0], COMPACT_MAGIC);
        assert_eq!(CompactFrameWire::decode(b.clone()).unwrap(), f);
        // Varint/delta ids + f32 values always undercut the raw frame.
        assert!(b.len() < frame_wire_bytes(4));
        assert_eq!(payload_entries(&b), 4);
        let mass: f64 = f.entries.iter().map(|e| f64::from(e.value)).sum();
        assert_eq!(payload_mass(&b), mass);
    }

    #[test]
    fn compact_encoder_sorts_and_pads_away_from_single_length() {
        // `new` sorts whatever order the flush produced.
        let f = compact(&[(9, 1.0), (2, 2.0), (5, 3.0)]);
        let docs: Vec<u32> = f.entries.iter().map(|e| e.doc).collect();
        assert_eq!(docs, vec![2, 5, 9]);
        // Find an entry set whose natural encoding is exactly 24 bytes:
        // 4 header + 4 × (1-byte delta + 4-byte value) = 24.
        let collide = compact(&[(1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)]);
        let b = collide.encode();
        assert_eq!(b.len(), 25, "pad byte dodges the single-update length");
        assert_eq!(CompactFrameWire::decode(b).unwrap(), collide);
    }

    #[test]
    fn compact_rejects_malformed_payloads() {
        let good = compact(&[(7, 1.0), (9, 2.0)]).encode();

        let mut bad_magic = good.to_vec();
        bad_magic[0] = 0x00;
        assert_eq!(
            CompactFrameWire::decode(Bytes::from(bad_magic)),
            Err(WireError::BadMagic(0x00))
        );

        let mut bad_version = good.to_vec();
        bad_version[1] = 9;
        assert_eq!(
            CompactFrameWire::decode(Bytes::from(bad_version)),
            Err(WireError::BadVersion(9))
        );

        let mut zero_count = good.to_vec();
        zero_count[2] = 0;
        zero_count[3] = 0;
        assert_eq!(
            CompactFrameWire::decode(Bytes::from(zero_count)),
            Err(WireError::EmptyFrame)
        );

        // Count says 3 but only two entries' bytes follow.
        let mut short = good.to_vec();
        short[2] = 3;
        assert_eq!(
            CompactFrameWire::decode(Bytes::from(short)),
            Err(WireError::BadDocEncoding)
        );

        // A NaN value bit pattern is rejected.
        let nan_frame = {
            let mut b = BytesMut::with_capacity(16);
            b.put_u8(COMPACT_MAGIC);
            b.put_u8(COMPACT_VERSION);
            b.put_u16_le(1);
            b.put_u8(7); // doc 7
            b.put_u32_le(f32::NAN.to_bits());
            b.freeze()
        };
        assert_eq!(
            CompactFrameWire::decode(nan_frame),
            Err(WireError::NonFiniteValue)
        );

        // A zero delta (duplicate doc) is rejected.
        let dup = {
            let mut b = BytesMut::with_capacity(16);
            b.put_u8(COMPACT_MAGIC);
            b.put_u8(COMPACT_VERSION);
            b.put_u16_le(2);
            b.put_u8(7);
            b.put_u32_le(1.0f32.to_bits());
            b.put_u8(0); // delta 0: doc 7 again
            b.put_u32_le(1.0f32.to_bits());
            b.freeze()
        };
        assert_eq!(
            CompactFrameWire::decode(dup),
            Err(WireError::BadDocEncoding)
        );

        // A varint stream overflowing u32 is rejected.
        let overflow = {
            let mut b = BytesMut::with_capacity(16);
            b.put_u8(COMPACT_MAGIC);
            b.put_u8(COMPACT_VERSION);
            b.put_u16_le(2);
            b.put_u8(0xFF); // doc u32::MAX...
            b.put_u8(0xFF);
            b.put_u8(0xFF);
            b.put_u8(0xFF);
            b.put_u8(0x0F);
            b.put_u32_le(1.0f32.to_bits());
            b.put_u8(1); // ...plus one: overflow
            b.put_u32_le(1.0f32.to_bits());
            b.freeze()
        };
        assert_eq!(
            CompactFrameWire::decode(overflow),
            Err(WireError::BadDocEncoding)
        );
    }

    #[test]
    fn compact_mass_leak_still_fires() {
        let peers = PeerTable::new(2);
        let mut t: Transport<Bytes> = Transport::new(2);
        t.inject_fault(FaultPlan {
            kind: FaultKind::MassLeak,
            nth_send: 0,
        });
        t.send(&peers, PeerId(0), PeerId(1), compact(&[(3, 0.5)]).encode());
        assert_eq!(t.fault_fired_at(), Some(0));
        let got = CompactFrameWire::decode(t.receive(PeerId(1)).unwrap().payload).unwrap();
        assert_eq!(got.entries[0].value, 0.5 + MASS_LEAK_DELTA as f32);
    }

    proptest::proptest! {
        /// Codec round-trip: sorted-unique doc ids (boundaries
        /// included), finite values (subnormal and negative included)
        /// survive encode -> decode exactly, and the length accounting
        /// holds: every compact frame is strictly smaller than its raw
        /// equivalent, never 24 bytes, and [`payload_entries`] /
        /// [`payload_mass`] agree across the two codecs.
        #[test]
        fn compact_roundtrip_proptest(
            raw_docs in proptest::collection::vec(
                proptest::prelude::any::<u32>(),
                1..62,
            ),
            bits in proptest::collection::vec(proptest::prelude::any::<u32>(), 64..65),
        ) {
            // Dedupe and always exercise the boundary ids 0 and
            // u32::MAX (5-byte varint, largest possible delta).
            let docs: std::collections::BTreeSet<u32> = raw_docs
                .into_iter()
                .chain([0, u32::MAX])
                .collect();
            let entries: Vec<CompactEntry> = docs
                .iter()
                .zip(&bits)
                .map(|(&doc, &b)| {
                    let mut v = f32::from_bits(b);
                    if !v.is_finite() {
                        v = 0.25;
                    }
                    CompactEntry { doc, value: v }
                })
                .collect();
            let k = entries.len();
            let frame = CompactFrameWire::new(entries);
            let b = frame.encode();
            proptest::prop_assert_eq!(&CompactFrameWire::decode(b.clone()).unwrap(), &frame);
            proptest::prop_assert!(b.len() < frame_wire_bytes(k), "compact must beat raw");
            proptest::prop_assert_ne!(b.len(), RANK_UPDATE_WIRE_BYTES);
            proptest::prop_assert_eq!(payload_entries(&b), k as u64);
            // Accounting parity with the raw codec: same entry count,
            // same (quantized) mass, fewer bytes on the wire.
            let raw = UpdateFrameWire {
                entries: frame
                    .entries
                    .iter()
                    .map(|e| FrameEntry { tag: u64::from(e.doc), value: f64::from(e.value) })
                    .collect(),
            }
            .encode();
            proptest::prop_assert_eq!(payload_entries(&raw), payload_entries(&b));
            proptest::prop_assert_eq!(payload_mass(&raw), payload_mass(&b));
        }
    }
}
