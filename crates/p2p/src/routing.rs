//! Chord-style O(log n) lookup with finger tables.
//!
//! "When the first pagerank update message is sent for a document, the
//! P2P layer's routing mechanism is used to find the location of the
//! document" (paper Sec. 3.2). This module is that routing mechanism:
//! each peer keeps 128 fingers (`successor(own_guid + 2^k)`), and a
//! lookup greedily forwards through the closest preceding finger,
//! taking O(log n) hops. Hop counts feed the caching-vs-routing
//! ablation.
//!
//! The router rebuilds finger tables from the [`Ring`] on demand
//! (generation-checked) instead of running Chord's incremental
//! stabilization protocol — the simulation needs correct routing
//! tables and hop counts, not the maintenance traffic, and the paper
//! likewise excludes "message routing and other system overheads" from
//! its model.

use crate::{guid::Guid, peer::PeerId, ring::Ring};
use dpr_telemetry::{Event, Metric, Recorder};
use fxhash::FxHashMap;

/// Result of routing a lookup through the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The peer responsible for the target id.
    pub owner: PeerId,
    /// Overlay hops taken, counting the final delivery hop; 0 when the
    /// source already owns the id.
    pub hops: u32,
    /// The peers traversed, starting with the source, ending with the
    /// owner.
    pub path: Vec<PeerId>,
}

/// Finger-table router over a [`Ring`].
#[derive(Debug, Default)]
pub struct Router {
    /// finger tables: peer -> 128 successors of guid + 2^k. Sparse
    /// (deduplicated, ordered by k) to keep the common case fast.
    fingers: FxHashMap<PeerId, Vec<(Guid, PeerId)>>,
    generation: u64,
}

impl Router {
    /// A router with no tables built yet.
    pub fn new() -> Self {
        Router::default()
    }

    /// Drops all cached finger tables; call after ring membership
    /// changes.
    pub fn invalidate(&mut self) {
        self.fingers.clear();
        self.generation += 1;
    }

    /// The current invalidation generation (for tests/metrics).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn table_for(&mut self, ring: &Ring, p: PeerId) -> &Vec<(Guid, PeerId)> {
        self.fingers.entry(p).or_insert_with(|| {
            let own = Guid::for_peer(p.0);
            let mut table = Vec::new();
            let mut last: Option<PeerId> = None;
            for k in 0..128u32 {
                let start = own.finger_start(k);
                let succ = ring.successor(start);
                if succ == p {
                    continue;
                }
                if last != Some(succ) {
                    table.push((Guid::for_peer(succ.0), succ));
                    last = Some(succ);
                }
            }
            table
        })
    }

    /// Routes a lookup for `target` starting at `from`, using greedy
    /// closest-preceding-finger forwarding.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring or the ring is empty.
    pub fn route(&mut self, ring: &Ring, from: PeerId, target: Guid) -> Route {
        assert!(ring.contains(from), "source peer {from} not on the ring");
        let owner = ring.successor(target);
        let mut path = vec![from];
        let mut current = from;
        let mut hops = 0u32;
        // Greedy forwarding always strictly decreases clockwise
        // distance to the target, so it terminates; the bound is a
        // defensive guard against table corruption.
        let max_hops = 2 * 128 + ring.len() as u32;
        while current != owner {
            let next = self.next_hop(ring, current, target, owner);
            debug_assert_ne!(next, current, "routing made no progress");
            current = next;
            hops += 1;
            path.push(current);
            assert!(hops <= max_hops, "routing loop detected");
        }
        Route { owner, hops, path }
    }

    /// [`Router::route`] recording the resolution: one
    /// [`Event::RouteResolved`] (with `cached: false` — a full overlay
    /// lookup) plus the [`Metric::RouteHops`] distribution and the
    /// [`Metric::RoutedHops`] running total. Callers that satisfy a
    /// lookup from an address cache instead record the hit themselves
    /// and never reach this method.
    pub fn route_observed<R: Recorder + ?Sized>(
        &mut self,
        ring: &Ring,
        from: PeerId,
        target: Guid,
        rec: &R,
    ) -> Route {
        let route = self.route(ring, from, target);
        if rec.enabled() {
            rec.counter_add(Metric::RoutedHops, u64::from(route.hops));
            rec.observe(Metric::RouteHops, u64::from(route.hops));
            rec.event(&Event::RouteResolved {
                src: from.0,
                dst: route.owner.0,
                hops: route.hops,
                cached: false,
            });
        }
        route
    }

    /// The next peer on the path from `current` toward `target`: the
    /// finger whose guid most closely precedes `target`, or the owner
    /// directly when a finger reaches it.
    fn next_hop(&mut self, ring: &Ring, current: PeerId, target: Guid, owner: PeerId) -> PeerId {
        let own = Guid::for_peer(current.0);
        let table = self.table_for(ring, current);
        // Choose the finger with maximal clockwise distance from
        // `current` without passing `target`.
        let mut best: Option<(u128, PeerId)> = None;
        for &(g, p) in table.iter() {
            let d = own.distance_to(g);
            if d <= own.distance_to(target) && best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, p));
            }
        }
        match best {
            Some((_, p)) if p != current => p,
            // No finger strictly precedes the target: the owner is the
            // immediate successor; deliver directly.
            _ => owner,
        }
    }
}

/// Expected hop statistics over many routes — convenience for tests
/// and the caching ablation bench.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct HopStats {
    /// Number of routes measured.
    pub routes: u64,
    /// Total hops across all routes.
    pub total_hops: u64,
    /// Maximum hops seen on a single route.
    pub max_hops: u32,
}

impl HopStats {
    /// Records a route.
    pub fn record(&mut self, r: &Route) {
        self.routes += 1;
        self.total_hops += r.hops as u64;
        self.max_hops = self.max_hops.max(r.hops);
    }

    /// Mean hops per route.
    pub fn mean(&self) -> f64 {
        if self.routes == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.routes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::DocId;

    #[test]
    fn route_reaches_the_owner() {
        let ring = Ring::with_peers(64);
        let mut router = Router::new();
        for d in 0..200u32 {
            let target = Guid::for_document(DocId(d));
            let r = router.route(&ring, PeerId(0), target);
            assert_eq!(r.owner, ring.successor(target));
            assert_eq!(*r.path.last().unwrap(), r.owner);
            assert_eq!(r.path[0], PeerId(0));
            assert_eq!(r.path.len() as u32, r.hops + 1);
        }
    }

    #[test]
    fn self_owned_ids_take_zero_hops() {
        let ring = Ring::with_peers(16);
        let mut router = Router::new();
        // Find an id owned by peer 3 and route from peer 3.
        let (lo, hi) = ring.owned_interval(PeerId(3)).unwrap();
        let _ = lo;
        let r = router.route(&ring, PeerId(3), hi);
        assert_eq!(r.owner, PeerId(3));
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn hops_are_logarithmic() {
        // With n peers, Chord lookups take O(log2 n) hops; for n = 256
        // the mean should be well under 16 and the max under ~24.
        let ring = Ring::with_peers(256);
        let mut router = Router::new();
        let mut stats = HopStats::default();
        for d in 0..500u32 {
            let r = router.route(&ring, PeerId(d % 256), Guid::for_document(DocId(d)));
            stats.record(&r);
        }
        assert!(stats.mean() <= 8.0, "mean hops {}", stats.mean());
        assert!(stats.max_hops <= 24, "max hops {}", stats.max_hops);
    }

    #[test]
    fn path_makes_monotone_progress() {
        let ring = Ring::with_peers(128);
        let mut router = Router::new();
        let target = Guid::for_document(DocId(9999));
        let r = router.route(&ring, PeerId(5), target);
        // Clockwise distance to target strictly decreases along the
        // path (except possibly the final delivery hop).
        let dist = |p: PeerId| Guid::for_peer(p.0).distance_to(target);
        for w in r.path.windows(2) {
            if w[1] != r.owner {
                assert!(dist(w[1]) < dist(w[0]), "no progress {w:?}");
            }
        }
    }

    #[test]
    fn invalidate_survives_membership_change() {
        let mut ring = Ring::with_peers(32);
        let mut router = Router::new();
        let target = Guid::for_document(DocId(77));
        let before = router.route(&ring, PeerId(1), target);
        ring.leave(before.owner);
        router.invalidate();
        let after = router.route(&ring, PeerId(1), target);
        assert_ne!(before.owner, after.owner);
        assert_eq!(after.owner, ring.successor(target));
    }

    #[test]
    fn observed_route_records_metrics_and_event() {
        use dpr_telemetry::TraceRecorder;
        let ring = Ring::with_peers(64);
        let mut router = Router::new();
        let target = Guid::for_document(DocId(5));
        let owner = ring.successor(target);
        let src = ring.peers().find(|&p| p != owner).unwrap();
        let rec = TraceRecorder::new();
        let r = router.route_observed(&ring, src, target, &rec);
        assert!(r.hops >= 1);
        assert_eq!(rec.counter(Metric::RoutedHops), u64::from(r.hops));
        assert_eq!(rec.histogram(Metric::RouteHops).count(), 1);
        match &rec.events()[..] {
            [Event::RouteResolved {
                src: s,
                dst,
                hops,
                cached,
            }] => {
                assert_eq!(*s, src.0);
                assert_eq!(*dst, r.owner.0);
                assert_eq!(*hops, r.hops);
                assert!(!cached);
            }
            other => panic!("unexpected events {other:?}"),
        }
        // The no-op recorder records nothing and routes identically.
        let r2 = router.route_observed(&ring, src, target, &dpr_telemetry::NOOP);
        assert_eq!(r2, r);
    }

    #[test]
    fn two_peer_ring_routes_in_one_hop() {
        let ring = Ring::with_peers(2);
        let mut router = Router::new();
        for d in 0..50u32 {
            let target = Guid::for_document(DocId(d));
            let owner = ring.successor(target);
            let src = PeerId(1 - owner.0); // the other peer
            let r = router.route(&ring, src, target);
            assert_eq!(r.hops, 1);
        }
    }
}
