//! Criterion micro-benchmarks over the hot kernels of every subsystem.
//!
//! These complement the `table*` regenerator binaries: the binaries
//! reproduce the paper's *measurements*; these benches track the
//! *implementation's* performance so regressions are visible.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::incremental::{propagate, PropagationConfig};
use dpr_core::sync_solver::SyncSolver;
use dpr_graph::powerlaw::paper_graph;
use dpr_graph::DocId;
use dpr_p2p::guid::Guid;
use dpr_p2p::peer::PeerTable;
use dpr_p2p::ring::Ring;
use dpr_p2p::routing::Router;
use dpr_search::bloom::BloomFilter;
use dpr_search::corpus::{generate_queries, Corpus, CorpusConfig};
use dpr_search::index::DistributedIndex;
use dpr_search::query::{
    execute_baseline, execute_incremental, IncrementalConfig, Query, TrafficModel,
};
use std::sync::Arc;

fn bench_graph_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_generation");
    for &n in &[10_000usize, 50_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| paper_graph(black_box(n), 42));
        });
    }
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let graph = paper_graph(50_000, 1);
    c.bench_function("transpose_50k", |b| {
        b.iter(|| black_box(&graph).transpose())
    });
}

fn bench_sync_solver(c: &mut Criterion) {
    let graph = paper_graph(10_000, 2);
    c.bench_function("sync_solver_10k_1e-9", |b| {
        b.iter(|| SyncSolver::new().tolerance(1e-9).solve(black_box(&graph)))
    });
}

fn bench_chaotic_pass(c: &mut Criterion) {
    let graph = Arc::new(paper_graph(50_000, 3));
    let peers = PeerTable::new(1);
    // First pass (everything dirty) — the heaviest pass of a run.
    c.bench_function("chaotic_first_pass_50k", |b| {
        b.iter_batched(
            || ChaoticEngine::local(graph.clone(), EngineConfig::with_epsilon(1e-3)),
            |mut eng| {
                eng.pass(&peers);
                eng
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_chaotic_convergence(c: &mut Criterion) {
    let graph = Arc::new(paper_graph(10_000, 4));
    c.bench_function("chaotic_converge_10k_1e-3", |b| {
        b.iter_batched(
            || ChaoticEngine::local(graph.clone(), EngineConfig::with_epsilon(1e-3)),
            |mut eng| {
                let run = eng.run_static();
                assert!(run.converged);
                eng
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// Sequential engine vs the sharded executor at 1/2/4/8 threads, each
/// running the same 50k-doc paper workload to convergence. Every
/// configuration computes bit-identical ranks, so the timings are
/// directly comparable; `continuous --pass-scaling` writes the same
/// measurement to `BENCH_pass_scaling.json`.
fn bench_pass_scaling(c: &mut Criterion) {
    use dpr_core::parallel::ShardedExecutor;
    use dpr_sim::workload::Workload;

    let w = Workload::paper(50_000, 500, 6);
    let mut g = c.benchmark_group("pass_scaling");
    g.sample_size(10);
    let fresh = |w: &Workload| {
        (
            ChaoticEngine::new(
                w.graph.clone(),
                w.owners(),
                EngineConfig::with_epsilon(1e-3),
            ),
            w.peer_table(),
        )
    };
    g.bench_function(BenchmarkId::new("converge_50k", "seq"), |b| {
        b.iter_batched(
            || fresh(&w),
            |(mut eng, mut peers)| {
                let run = eng.run_to_convergence(&mut peers, None);
                assert!(run.converged);
                eng
            },
            criterion::BatchSize::LargeInput,
        )
    });
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_function(BenchmarkId::new("converge_50k", threads), |b| {
            b.iter_batched(
                || fresh(&w),
                |(mut eng, mut peers)| {
                    let run = ShardedExecutor::new(threads)
                        .run_to_convergence(&mut eng, &mut peers, None);
                    assert!(run.converged);
                    eng
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_insert_wave(c: &mut Criterion) {
    let graph = paper_graph(100_000, 5);
    let cfg = PropagationConfig {
        damping: 0.85,
        epsilon: 1e-3,
    };
    c.bench_function("insert_wave_100k_1e-3", |b| {
        b.iter(|| propagate(black_box(&graph), DocId(17), 1.0, cfg, None))
    });
}

fn bench_routing(c: &mut Criterion) {
    let ring = Ring::with_peers(500);
    c.bench_function("chord_route_500_peers", |b| {
        let mut router = Router::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            router.route(
                &ring,
                dpr_p2p::peer::PeerId(i % 500),
                Guid::for_document(DocId(i)),
            )
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let docs: Vec<DocId> = (0..10_000u32).map(DocId).collect();
    c.bench_function("bloom_build_10k", |b| {
        b.iter(|| BloomFilter::from_docs(black_box(&docs), 0.01))
    });
    let filter = BloomFilter::from_docs(&docs, 0.01);
    c.bench_function("bloom_probe", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            filter.contains(DocId(i % 20_000))
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: 11_000,
        vocab_size: 1880,
        ..Default::default()
    });
    let ranks: Vec<f64> = (0..11_000).map(|i| 0.15 + (i as f64 * 2.3) % 4.0).collect();
    let ring = Ring::with_peers(50);
    let index = DistributedIndex::build(&corpus, &ranks, &ring);
    let query = Query::new(generate_queries(&corpus, 3, 1, 9).remove(0));
    c.bench_function("search_baseline_3term", |b| {
        b.iter(|| execute_baseline(black_box(&index), &query, TrafficModel::AllHopsRemote))
    });
    c.bench_function("search_incremental_3term", |b| {
        b.iter(|| execute_incremental(black_box(&index), &query, IncrementalConfig::top10()))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets =
        bench_graph_generation,
        bench_transpose,
        bench_sync_solver,
        bench_chaotic_pass,
        bench_chaotic_convergence,
        bench_pass_scaling,
        bench_insert_wave,
        bench_routing,
        bench_bloom,
        bench_search,
}
criterion_main!(kernels);
