//! Criterion micro-benchmarks for the aggregation wire path: frame
//! encode/decode and the per-destination flush buffer.
//!
//! `cargo bench -p dpr-bench --bench wire` (or `-- --test` in CI for a
//! single-shot smoke run).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpr_core::message::{FlushBuffer, UpdateFrame};
use dpr_graph::DocId;
use dpr_p2p::guid::Guid;
use dpr_p2p::transport::UpdateFrameWire;
use std::collections::HashMap;

/// A frame of `n` distinct-document updates, as the flush path builds
/// them.
fn frame(n: u32) -> UpdateFrame {
    let mut buf = FlushBuffer::default();
    for d in 0..n {
        buf.push(DocId(d), 0.15 + d as f64 * 1e-3);
    }
    buf.flush(usize::MAX).remove(0)
}

fn bench_frame_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_encode");
    for &n in &[1u32, 16, 87, 1024] {
        let f = frame(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| black_box(f).to_wire().encode())
        });
    }
    g.finish();
}

fn bench_frame_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_decode");
    for &n in &[1u32, 16, 87, 1024] {
        let payload = frame(n).to_wire().encode();
        let tags: HashMap<u64, DocId> = (0..n)
            .map(|d| (Guid::for_document(DocId(d)).frame_tag(), DocId(d)))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &payload, |b, payload| {
            b.iter(|| {
                let wire =
                    UpdateFrameWire::decode(black_box(payload).clone()).expect("well-formed frame");
                UpdateFrame::from_wire(&wire, |t| tags.get(&t).copied()).expect("known tags")
            })
        });
    }
    g.finish();
}

fn bench_flush_buffer(c: &mut Criterion) {
    // The coalescing hot path: every remote emission of a pass goes
    // through push(); repeated documents fold in place.
    c.bench_function("flush_buffer_push_1k_x4", |b| {
        b.iter(|| {
            let mut buf = FlushBuffer::default();
            for round in 0..4u32 {
                for d in 0..1_000u32 {
                    buf.push(DocId(d), round as f64 + 1e-3);
                }
            }
            assert_eq!(buf.len(), 1_000);
            buf.flush(1400)
        })
    });
}

criterion_group! {
    name = wire;
    config = Criterion::default().sample_size(20);
    targets = bench_frame_encode, bench_frame_decode, bench_flush_buffer,
}
criterion_main!(wire);
