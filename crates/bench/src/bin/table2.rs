//! Table 2: relative-error distribution of the distributed pagerank
//! versus the synchronous reference, across error thresholds.
//!
//! Paper: for each graph size and each ε ∈ {0.2, 1e-1 … 1e-6}, the
//! maximum relative error `|R_d − R_c| / R_c` within the best 50 %,
//! 75 %, 90 %, 99 %, 99.9 % of pages, plus max and average. Headline:
//! "a threshold as high as 0.2 performs extremely well … a threshold
//! of 1e-3 produces extremely good results for all graph sizes."
//!
//! ```text
//! cargo run --release -p dpr-bench --bin table2 [--sizes ...] \
//!     [--peers 500] [--seed N] [--threads T] [--sched pass|priority|greedy] \
//!     [--json] [--full]
//! ```

use dpr_bench::{Args, TABLE23_EPSILONS};
use dpr_sim::metrics::{fmt_eps, TextTable};
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::{QualityResult, QualitySweep};

fn main() {
    let args = Args::parse();
    let trace = args.trace();
    let peers: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);

    println!("Table 2 — relative error distribution (vs synchronous R_c)");
    println!("cells: relative error (not %); rows: best-x% of pages\n");

    let mut records: Vec<QualityResult> = Vec::new();
    for size in args.sizes() {
        eprintln!("  … building sweep for size {size}");
        let sweep = QualitySweep::new(size, peers, args.seed());
        let results: Vec<QualityResult> = TABLE23_EPSILONS
            .iter()
            .map(|&eps| {
                let label = format!("{size}@{}", fmt_eps(eps));
                sweep.run_observed(
                    eps,
                    args.exec_mode(),
                    args.sched_mode(),
                    trace.recorder(),
                    &label,
                )
            })
            .collect();

        let mut header = vec!["% pages".to_string()];
        header.extend(TABLE23_EPSILONS.iter().map(|&e| fmt_eps(e)));
        let mut table = TextTable::new(header);
        let pct_labels = ["50", "75", "90", "99", "99.9"];
        for (row_idx, label) in pct_labels.iter().enumerate() {
            let mut cells = vec![label.to_string()];
            for r in &results {
                cells.push(format!("{:.2e}", r.distribution.percentiles[row_idx].1));
            }
            table.push(cells);
        }
        let mut max_row = vec!["Max.".to_string()];
        let mut avg_row = vec!["Avg.".to_string()];
        for r in &results {
            max_row.push(format!("{:.2e}", r.distribution.max));
            avg_row.push(format!("{:.2e}", r.distribution.avg));
        }
        table.push(max_row);
        table.push(avg_row);

        println!("Relative error for {size} nodes:");
        println!("{}", table.render());
        records.extend(results);
    }

    if args.json() {
        let path = ExperimentRecord::new(
            "table2",
            format!(
                "peers={peers} sched={} seed={}",
                args.sched_mode(),
                args.seed()
            ),
            records,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("wrote {}", path.display());
    }
    trace.finish();
}
