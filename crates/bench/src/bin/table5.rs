//! Table 5: the paper's qualitative summary, regenerated from this
//! repository's *measured* results.
//!
//! Reads the JSON records the other table binaries wrote into
//! `results/` (run them with `--json` first; any missing experiment is
//! simply skipped) and prints the five summary rows of the paper's
//! Table 5 with the measured numbers backing each claim.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin table5
//! ```

use dpr_sim::report::results_dir;
use serde_json::Value;
use std::fs;

fn load(name: &str) -> Option<Value> {
    let path = results_dir().join(format!("{name}.json"));
    let text = fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

fn rows(v: &Value) -> &[Value] {
    v.get("rows")
        .and_then(Value::as_array)
        .map(Vec::as_slice)
        .unwrap_or(&[])
}

fn main() {
    println!("Table 5 — distributed pagerank computation summary (measured)\n");

    // Convergence (table1).
    match load("table1") {
        Some(v) => {
            let passes: Vec<u64> = rows(&v)
                .iter()
                .filter(|r| r["presence"] == 1.0)
                .filter_map(|r| r["passes"].as_u64())
                .collect();
            let slowest_half: Vec<u64> = rows(&v)
                .iter()
                .filter(|r| r["presence"] == 0.5)
                .filter_map(|r| r["passes"].as_u64())
                .collect();
            println!("Convergence:");
            println!(
                "  fast ({} passes at full presence across sizes), tolerant of churn \
                 ({} at 50% presence — ~2x), scalable with graph size.",
                summarize(&passes),
                summarize(&slowest_half)
            );
        }
        None => println!("Convergence: (run table1 --json first)"),
    }

    // Quality (table2).
    match load("table2") {
        Some(v) => {
            let at_1e3: Vec<f64> = rows(&v)
                .iter()
                .filter(|r| (r["epsilon"].as_f64().unwrap_or(0.0) - 1e-3).abs() < 1e-9)
                .filter_map(|r| r["distribution"]["max"].as_f64())
                .collect();
            println!("Pagerank quality:");
            println!(
                "  very high — max relative error {} at the recommended eps = 1e-3 \
                 (< 1%), scaling ~linearly with eps.",
                at_1e3
                    .iter()
                    .map(|e| format!("{e:.2e}"))
                    .collect::<Vec<_>>()
                    .join(" / ")
            );
        }
        None => println!("Pagerank quality: (run table2 --json first)"),
    }

    // Traffic (table3).
    match load("table3") {
        Some(v) => {
            let mpn: Vec<f64> = rows(&v)
                .iter()
                .filter(|r| (r["epsilon"].as_f64().unwrap_or(0.0) - 1e-3).abs() < 1e-9)
                .filter_map(|r| r["messages_per_node"].as_f64())
                .collect();
            println!("Message traffic:");
            println!(
                "  reasonably low — {} messages/document at eps = 1e-3, nearly \
                 constant across graph sizes; logarithmic growth with accuracy.",
                mpn.iter()
                    .map(|m| format!("{m:.1}"))
                    .collect::<Vec<_>>()
                    .join(" / ")
            );
        }
        None => println!("Message traffic: (run table3 --json first)"),
    }

    // Inserts (table4).
    match load("table4") {
        Some(v) => {
            let at_1e3: Vec<f64> = rows(&v)
                .iter()
                .filter(|r| (r["epsilon"].as_f64().unwrap_or(0.0) - 1e-3).abs() < 1e-9)
                .filter_map(|r| r["avg_path_length"].as_f64())
                .collect();
            println!("Document insertion/deletion:");
            println!(
                "  handled naturally — insert waves travel {} hops on average at \
                 eps = 1e-3; no global recomputes, ranks continuously updated.",
                at_1e3
                    .iter()
                    .map(|p| format!("{p:.1}"))
                    .collect::<Vec<_>>()
                    .join(" / ")
            );
        }
        None => println!("Document insertion/deletion: (run table4 --json first)"),
    }

    // Search (table6).
    match load("table6") {
        Some(v) => {
            let reductions: Vec<f64> = rows(&v)
                .iter()
                .filter(|r| r["strategy"] == "top10")
                .filter_map(|r| r["avg_traffic_reduction"].as_f64())
                .collect();
            println!("Search integration:");
            println!(
                "  ~{}x traffic reduction with top-10% incremental forwarding on \
                 2- and 3-word queries.",
                reductions
                    .iter()
                    .map(|r| format!("{r:.0}"))
                    .collect::<Vec<_>>()
                    .join("x / ")
            );
        }
        None => println!("Search integration: (run table6 --json first)"),
    }

    println!("\nExecution time: dominated by network transfer (Table 3's model);");
    println!("see EXPERIMENTS.md for the full paper-vs-measured comparison.");
}

fn summarize(values: &[u64]) -> String {
    if values.is_empty() {
        return "n/a".into();
    }
    let min = values.iter().min().unwrap();
    let max = values.iter().max().unwrap();
    if min == max {
        format!("{min}")
    } else {
        format!("{min}-{max}")
    }
}
