//! Table 3: message traffic and execution time vs error threshold.
//!
//! Paper: total update messages (millions) and messages per node for
//! each ε, and convergence wall-time under the serialized-transfer
//! model at 32 KB/s and 200 KB/s (24-byte messages). "The increase in
//! message traffic with the threshold is approximately logarithmic …
//! message traffic per node is largely independent of the graph size."
//!
//! With `--internet`, also prints the Sec. 4.6.2 extrapolation: a
//! 3-billion-document web served by web servers over T3 links.
//!
//! With `--batch`, runs the *message-level cluster* in both wire modes
//! instead of the array engine, and prints the aggregation columns:
//! logical messages, coalesced entries, frames, measured bytes on the
//! wire vs the paper's 24-byte-per-update baseline, and routed overlay
//! transmissions (per-update DHT routing vs one route — then one
//! cached IP send — per frame). Ranks are asserted bit-identical
//! between the modes. `--frame-bytes N` sets the frame size cap.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin table3 [--sizes ...] \
//!     [--peers 500] [--seed N] [--threads T] [--sched pass|priority|greedy] \
//!     [--internet] [--json] [--full] \
//!     [--paper-compute | --compute-secs N] \
//!     [--batch [--frame-bytes 1400] [--eps e1,e2,...]]
//! ```

use dpr_bench::{Args, TABLE23_EPSILONS};
use dpr_core::exec_model::{
    aggregate_time_secs, internet_scale_days, RATE_200KBS, RATE_32KBS, RATE_T3, SECS_PER_HOUR,
};
use dpr_node::node::DEFAULT_MAX_FRAME_BYTES;
use dpr_sim::metrics::{fmt_bytes, fmt_eps, TextTable};
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::{BatchedQualityResult, QualityResult, QualitySweep};

/// The ε sweep of the `--batch` mode. The cluster simulates every
/// wire payload individually (twice — once per mode), so the sweep
/// stops at 1e-3; override with `--eps`.
const BATCH_EPSILONS: [f64; 4] = [0.2, 1e-1, 1e-2, 1e-3];

fn batch_mode(args: &Args) {
    let trace = args.trace();
    let peers: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let cap: usize = args.get("frame-bytes", DEFAULT_MAX_FRAME_BYTES);
    let epsilons: Vec<f64> = match args.get("eps", String::new()) {
        s if s.is_empty() => BATCH_EPSILONS.to_vec(),
        s => s
            .split(',')
            .map(|e| e.trim().parse().expect("bad --eps entry"))
            .collect(),
    };

    println!("Table 3 (batched wire path) — traffic vs eps, frames capped at {cap} B");
    println!("(both wire modes converge to bit-identical ranks; asserted per row)\n");

    let mut records: Vec<BatchedQualityResult> = Vec::new();
    for size in args.sizes() {
        eprintln!("  … running batched sweep for size {size}");
        let sweep = QualitySweep::new(size, peers, args.seed());
        let mut table = TextTable::new([
            "eps",
            "msgs",
            "entries",
            "frames",
            "bytes on wire",
            "24-B baseline",
            "routed unbatched",
            "routed batched",
            "reduction",
            "max rel err",
        ]);
        for &eps in &epsilons {
            let r = match trace.recorder_arc() {
                Some(rec) => sweep.run_batched_observed(eps, cap, args.sched_mode(), rec),
                None => sweep.run_batched(eps, cap, args.sched_mode()),
            };
            table.push([
                fmt_eps(eps),
                r.report.batched.updates.to_string(),
                r.report.batched.entries.to_string(),
                r.report.batched.frames.to_string(),
                fmt_bytes(r.report.batched.bytes_on_wire),
                fmt_bytes(r.report.baseline_bytes),
                r.report.unbatched.routed_messages.to_string(),
                r.report.batched.routed_messages.to_string(),
                format!("{:.1}x", r.report.routed_reduction),
                format!("{:.2e}", r.distribution.max),
            ]);
            records.push(r);
        }
        println!("{size} nodes:");
        println!("{}", table.render());
    }
    println!("aggregation coalesces each pass's updates per destination peer and pays one");
    println!("route (then one cached IP send) per frame instead of one route per update");

    if args.json() {
        let path = ExperimentRecord::new(
            "table3_batch",
            format!(
                "peers={peers} frame_bytes={cap} sched={} seed={}",
                args.sched_mode(),
                args.seed()
            ),
            records,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("wrote {}", path.display());
    }
    trace.finish();
}

fn main() {
    let args = Args::parse();
    if args.has("batch") {
        batch_mode(&args);
        return;
    }
    let trace = args.trace();
    let peers: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    // Per-pass computation time added to the transfer model. The paper
    // estimates "a minute or less" per pass for the 5000k graph;
    // --paper-compute uses that 60 s constant, --compute-secs N sets
    // any other value. Default 0 (the transfer-dominated model whose
    // numbers match the paper's printed hours columns).
    let compute_secs: f64 = if args.has("paper-compute") {
        60.0
    } else {
        args.get("compute-secs", 0.0)
    };

    println!("Table 3 — message traffic and execution time vs eps");
    println!("(paper: traffic/node size-independent, ~logarithmic in 1/eps)\n");

    let mut records: Vec<QualityResult> = Vec::new();
    let mut last_mpn: Vec<(f64, f64)> = Vec::new();
    for size in args.sizes() {
        eprintln!("  … running sweep for size {size}");
        let sweep = QualitySweep::new(size, peers, args.seed());
        let mut table = TextTable::new([
            "eps",
            "total msgs (M)",
            "msgs/node",
            "passes",
            "hrs @32KB/s",
            "hrs @200KB/s",
        ]);
        last_mpn.clear();
        for &eps in &TABLE23_EPSILONS {
            let label = format!("{size}@{}", fmt_eps(eps));
            let r = sweep.run_observed(
                eps,
                args.exec_mode(),
                args.sched_mode(),
                trace.recorder(),
                &label,
            );
            let t32 =
                aggregate_time_secs(r.total_remote_messages, RATE_32KBS, r.passes, compute_secs)
                    / SECS_PER_HOUR;
            let t200 =
                aggregate_time_secs(r.total_remote_messages, RATE_200KBS, r.passes, compute_secs)
                    / SECS_PER_HOUR;
            table.push([
                fmt_eps(eps),
                format!("{:.3}", r.total_remote_messages as f64 / 1e6),
                format!("{:.1}", r.messages_per_node),
                r.passes.to_string(),
                format!("{t32:.2}"),
                format!("{t200:.2}"),
            ]);
            last_mpn.push((eps, r.messages_per_node));
            records.push(r);
        }
        println!("{size} nodes:");
        println!("{}", table.render());
    }

    if args.has("internet") {
        const WEB: u64 = 3_000_000_000;
        println!("Sec. 4.6.2 — Internet-scale estimate ({WEB} docs, T3 = 5.6 MB/s):");
        let mut t = TextTable::new(["eps", "msgs/node (measured)", "days"]);
        for &(eps, mpn) in &last_mpn {
            t.push([
                fmt_eps(eps),
                format!("{mpn:.1}"),
                format!("{:.1}", internet_scale_days(WEB, mpn, RATE_T3)),
            ]);
        }
        println!("{}", t.render());
        println!("(paper: ~14 days at a moderate threshold, ~35 days at a strict one)");
    }

    if args.json() {
        let path = ExperimentRecord::new(
            "table3",
            format!(
                "peers={peers} sched={} seed={}",
                args.sched_mode(),
                args.seed()
            ),
            records,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("wrote {}", path.display());
    }
    trace.finish();
}
