//! Table 1: convergence rate of the distributed pagerank algorithm.
//!
//! Paper: 500 peers, ε = 1e-3, graph sizes 10k–5000k, peer presence
//! 100 % / 75 % / 50 %. "When all peers are present, the number of
//! passes for convergence is of the order of 100 … With only half the
//! peers present … only a factor of two slowdown."
//!
//! ```text
//! cargo run --release -p dpr-bench --bin table1 [--sizes 10000,100000] \
//!     [--peers 500] [--eps 1e-3] [--seed N] [--threads T] \
//!     [--sched pass|priority|greedy] [--json] [--full]
//! ```

use dpr_bench::Args;
use dpr_sim::metrics::TextTable;
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::{run_convergence_observed, ConvergenceResult};
use dpr_sim::workload::Workload;

fn main() {
    let args = Args::parse();
    let trace = args.trace();
    let peers: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", 1e-3);
    let presences = [1.0f64, 0.75, 0.5];

    println!("Table 1 — convergence rate ({peers} peers, eps {eps})");
    println!("(paper: ~74-241 passes; slower with fewer peers present)\n");

    let mut table = TextTable::new(["graph size", "100%", "75%", "50%"]);
    let mut rows: Vec<ConvergenceResult> = Vec::new();
    for size in args.sizes() {
        let w = Workload::paper(size, peers, args.seed());
        let mut cells = vec![size.to_string()];
        for presence in presences {
            let label = format!("{size}@{:.0}%", presence * 100.0);
            let r = run_convergence_observed(
                &w,
                eps,
                presence,
                args.seed(),
                args.exec_mode(),
                args.sched_mode(),
                trace.recorder(),
                &label,
            );
            assert!(r.converged, "run must converge");
            cells.push(r.passes.to_string());
            rows.push(r);
        }
        table.push(cells);
        eprintln!("  … finished size {size}");
    }
    println!("{}", table.render());
    println!("passes per cell; each column re-draws the online peer set after every pass");

    if args.json() {
        let path = ExperimentRecord::new(
            "table1",
            format!(
                "peers={peers} eps={eps} sched={} seed={}",
                args.sched_mode(),
                args.seed()
            ),
            rows,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("\nwrote {}", path.display());
    }
    trace.finish();
}
