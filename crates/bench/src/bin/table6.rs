//! Table 6: network traffic reduction from incremental search.
//!
//! Paper: ~11k-document corpus, 1880 terms, 50 peers; twenty 2-word
//! and twenty 3-word queries from the top-100 terms. "When the top
//! 10% of the hits are forwarded, more than a factor of 10 reduction
//! in traffic is obtained … top 20% … more than a factor of 6." The
//! top-20%-returns-fewer-3-word-hits artifact of the min-forward
//! floor (=20) is reproduced as well.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin table6 [--docs 11000] \
//!     [--vocab 1880] [--peers 50] [--queries 20] [--seed N] [--json]
//! ```

use dpr_bench::Args;
use dpr_sim::metrics::TextTable;
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::{search_experiment, SearchExperimentConfig, SearchRow};

fn main() {
    let args = Args::parse();
    let cfg = SearchExperimentConfig {
        num_docs: args.get("docs", 11_000),
        vocab_size: args.get("vocab", 1880u32),
        num_peers: args.get("peers", 50),
        queries_per_len: args.get("queries", 20),
        pagerank_epsilon: args.get("eps", dpr_core::RECOMMENDED_EPSILON),
        seed: args.seed(),
    };

    println!(
        "Table 6 — incremental search ({} docs, {} terms, {} peers, {} queries/length)\n",
        cfg.num_docs, cfg.vocab_size, cfg.num_peers, cfg.queries_per_len
    );
    let rows: Vec<SearchRow> = search_experiment(&cfg);

    let pick = |strategy: &str, qlen: usize| -> &SearchRow {
        rows.iter()
            .find(|r| r.strategy == strategy && r.query_len == qlen)
            .expect("row present")
    };

    let mut reduction = TextTable::new(["", "2-term queries", "3-term queries"]);
    for strat in ["top10", "top20"] {
        reduction.push([
            format!("Top {}% forwarded", &strat[3..]),
            format!("{:.1}", pick(strat, 2).avg_traffic_reduction),
            format!("{:.1}", pick(strat, 3).avg_traffic_reduction),
        ]);
    }
    println!("Average traffic reduction (x):");
    println!("{}", reduction.render());

    let mut hits = TextTable::new(["", "2-term queries", "3-term queries"]);
    for strat in ["top10", "top20", "baseline"] {
        let label = match strat {
            "baseline" => "Baseline".to_string(),
            s => format!("Top {}% forwarded", &s[3..]),
        };
        hits.push([
            label,
            format!("{:.1}", pick(strat, 2).avg_hits_returned),
            format!("{:.1}", pick(strat, 3).avg_hits_returned),
        ]);
    }
    println!("Average # hits returned:");
    println!("{}", hits.render());
    println!("(paper: 12.2 / 11.9 reduction at top-10%, 6.5 / 6.9 at top-20%;\n baseline returns 1603.9 / 835.6 hits)");

    if args.json() {
        let path = ExperimentRecord::new("table6", format!("{cfg:?}"), rows)
            .write_to_dir(results_dir())
            .expect("write results");
        println!("wrote {}", path.display());
    }
}
