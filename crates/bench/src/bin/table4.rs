//! Table 4: path length and node coverage of document-insert waves.
//!
//! Paper: for each graph size and ε ∈ {0.2, 1e-1 … 1e-5}, average over
//! 1000 random insert origins of (a) the longest update-message chain
//! and (b) the number of distinct documents receiving an update. "Both
//! … are largely independent of, or grow extremely slowly with, the
//! graph size" and coverage grows ~linearly in 1/ε.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin table4 [--sizes ...] \
//!     [--samples 1000] [--damping 0.85] [--seed N] [--json] [--full]
//! ```

use dpr_bench::{Args, TABLE4_EPSILONS};
use dpr_graph::powerlaw::paper_graph;
use dpr_sim::metrics::{fmt_eps, TextTable};
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::{insert_experiment, InsertResult};

fn main() {
    let args = Args::parse();
    let samples: usize = args.get("samples", 1000);
    let damping: f64 = args.get("damping", dpr_core::DEFAULT_DAMPING);

    println!("Table 4 — insert propagation ({samples} random origins, damping {damping})\n");

    let sizes = args.sizes();
    let graphs: Vec<_> = sizes
        .iter()
        .map(|&s| {
            eprintln!("  … generating graph {s}");
            paper_graph(s, args.seed())
        })
        .collect();

    let mut records: Vec<InsertResult> = Vec::new();
    let mut path_table = TextTable::new(
        std::iter::once("eps".to_string()).chain(sizes.iter().map(|s| s.to_string())),
    );
    let mut cov_table = TextTable::new(
        std::iter::once("eps".to_string()).chain(sizes.iter().map(|s| s.to_string())),
    );
    for &eps in &TABLE4_EPSILONS {
        let mut path_row = vec![fmt_eps(eps)];
        let mut cov_row = vec![fmt_eps(eps)];
        for g in &graphs {
            let r = insert_experiment(g, eps, damping, samples, args.seed() ^ 0xfeed);
            path_row.push(format!("{:.1}", r.avg_path_length));
            cov_row.push(format!("{:.0}", r.avg_node_coverage));
            records.push(r);
        }
        path_table.push(path_row);
        cov_table.push(cov_row);
        eprintln!("  … finished eps {eps}");
    }

    println!("Path length:");
    println!("{}", path_table.render());
    println!("Node coverage:");
    println!("{}", cov_table.render());
    println!("(paper: path length 2-24 growing ~log(1/eps); coverage ~linear in 1/eps,\n bounded by graph size at tiny thresholds)");

    if args.json() {
        let path = ExperimentRecord::new(
            "table4",
            format!("samples={samples} damping={damping} seed={}", args.seed()),
            records,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("wrote {}", path.display());
    }
}
