//! Ablations of the design choices called out in DESIGN.md.
//!
//! 1. **Chaotic vs synchronous iteration** — message cost of the
//!    threshold-gated asynchronous scheme vs a synchronous solver
//!    where every document re-sends on every sweep.
//! 2. **ε-suppression** — the message/quality trade-off of the send
//!    threshold itself.
//! 3. **Address caching vs routing every message** — overlay hops
//!    with and without the Sec. 3.2 cache.
//! 4. **Store-and-resend vs dropping updates** — rank mass lost when
//!    updates to offline peers are discarded.
//! 5. **Min-forward floor** — how the incremental-search floor (=20)
//!    shapes hits returned.
//! 6. **Link-aware placement** — the paper's Sec. 6 future-work idea:
//!    partition documents by link structure instead of randomly, and
//!    measure the remote-message savings.
//! 7. **Chaotic vs extrapolation-accelerated solvers** — the paper's
//!    related-work remark that asynchronous iteration "may converge
//!    more rapidly than the acceleration methods", measured.
//! 8. **Per-peer aggregation × IP caching** — overlay transmissions
//!    for the four combinations of batched frames and the Sec. 3.2
//!    address cache, charging one route (or one cached send) per
//!    frame rather than per update when aggregation is on.
//! 9. **Priority and greedy vs pass scheduling** — the residual-driven
//!    Gauss-Southwell bucket ordering and the greedy matching-pursuit
//!    budget cut against the classic full sweep: messages and passes
//!    to clear the same ε, and the rank agreement between the fixed
//!    points.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin ablations [--nodes 20000] [--seed N]
//! ```

use dpr_bench::{Args, Trace};
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::error_stats;
use dpr_core::sync_solver::SyncSolver;
use dpr_p2p::peer::PeerId;
use dpr_search::corpus::{generate_queries, Corpus, CorpusConfig};
use dpr_search::index::DistributedIndex;
use dpr_search::query::{
    execute_baseline, execute_incremental, IncrementalConfig, Query, TrafficModel,
};
use dpr_sim::hops::HopAccounting;
use dpr_sim::metrics::{fmt_eps, TextTable};
use dpr_sim::workload::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let trace = args.trace();
    let nodes: usize = args.get("nodes", 20_000);
    let seed = args.seed();

    ablation_sync_vs_async(nodes, seed);
    ablation_epsilon_suppression(nodes, seed);
    ablation_caching(seed, &trace);
    ablation_store_and_resend(seed);
    ablation_min_forward_floor(seed);
    ablation_link_aware_placement(nodes, seed);
    ablation_acceleration(nodes, seed);
    ablation_aggregation_grid(seed, &trace);
    ablation_priority_sched(nodes, seed);
    trace.finish();
}

/// 1. Chaotic+threshold vs synchronous all-send.
fn ablation_sync_vs_async(nodes: usize, seed: u64) {
    println!("== ablation 1: chaotic (async, eps-gated) vs synchronous all-send ==\n");
    let w = Workload::paper(nodes, 500, seed);
    let remote_links: u64 = w.remote_links_per_peer().iter().sum();

    let mut table = TextTable::new(["scheme", "passes/iters", "remote msgs", "max rel err"]);
    let reference = SyncSolver::new().tolerance(1e-12).solve(&w.graph);

    for eps in [1e-3, 1e-5] {
        let mut eng =
            ChaoticEngine::new(w.graph.clone(), w.owners(), EngineConfig::with_epsilon(eps));
        let mut peers = w.peer_table();
        let run = eng.run_to_convergence(&mut peers, None);
        let err = error_stats::compare(eng.ranks(), &reference.ranks);
        table.push([
            format!("chaotic eps={}", fmt_eps(eps)),
            run.passes.to_string(),
            run.total_remote_messages.to_string(),
            format!("{:.2e}", err.max),
        ]);
    }

    // Synchronous distributed: every sweep, every document re-sends to
    // every remote out-link (no threshold gating possible because the
    // sweep is global).
    let sync = SyncSolver::new()
        .tolerance(1e-3)
        .max_iterations(500)
        .solve(&w.graph);
    let sync_msgs = remote_links * sync.iterations as u64;
    let err = error_stats::compare(&sync.ranks, &reference.ranks);
    table.push([
        "synchronous (all-send)".to_string(),
        sync.iterations.to_string(),
        sync_msgs.to_string(),
        format!("{:.2e}", err.max),
    ]);
    println!("{}", table.render());
    println!("threshold gating sends only what changed; all-send pays every link every sweep\n");
}

/// 2. The send threshold's message/quality trade-off.
fn ablation_epsilon_suppression(nodes: usize, seed: u64) {
    println!("== ablation 2: epsilon send-suppression trade-off ==\n");
    let sweep = dpr_sim::scenario::QualitySweep::new(nodes, 500, seed);
    let mut table = TextTable::new([
        "eps",
        "remote msgs",
        "msgs/node",
        "avg rel err",
        "max rel err",
    ]);
    for eps in [0.2, 1e-2, 1e-4, 1e-6] {
        let r = sweep.run(eps);
        table.push([
            fmt_eps(eps),
            r.total_remote_messages.to_string(),
            format!("{:.1}", r.messages_per_node),
            format!("{:.2e}", r.distribution.avg),
            format!("{:.2e}", r.distribution.max),
        ]);
    }
    println!("{}", table.render());
    println!("~3x the messages buys ~4 more digits of accuracy (log-linear trade)\n");
}

/// 3. Address caching vs routing every message.
fn ablation_caching(seed: u64, trace: &Trace) {
    println!("== ablation 3: address caching vs routing every message ==\n");
    let w = Workload::build(
        3_000,
        64,
        seed,
        dpr_p2p::peer::PlacementPolicy::DhtSuccessor,
    );
    let mut table = TextTable::new(["policy", "remote msgs", "overlay hops", "hops/msg"]);
    for (name, mut acc) in [
        ("route every message", HopAccounting::routed(w.ring.clone())),
        ("cache after first", HopAccounting::cached(w.ring.clone())),
    ] {
        if let Some(rec) = trace.recorder_arc() {
            acc.set_recorder(rec);
        }
        let mut eng = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(1e-4),
        );
        let peers = w.peer_table();
        let (mut msgs, mut hops) = (0u64, 0u64);
        let mut model = acc.model();
        while !eng.is_quiescent() {
            let s = eng.pass_with_hops(&peers, Some(&mut model));
            msgs += s.remote_messages;
            hops += s.hops;
        }
        table.push([
            name.to_string(),
            msgs.to_string(),
            hops.to_string(),
            format!("{:.2}", hops as f64 / msgs.max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!("caching amortizes the O(log n) route to ~1 hop per message (Sec. 3.2)\n");
}

/// 4. Store-and-resend vs dropping updates for offline peers.
fn ablation_store_and_resend(seed: u64) {
    println!("== ablation 4: store-and-resend vs dropping parked updates ==\n");
    let w = Workload::paper(5_000, 100, seed);
    let reference = SyncSolver::new().tolerance(1e-12).solve(&w.graph);
    let mut table = TextTable::new(["protocol", "total rank mass", "avg rel err vs R_c"]);
    for drop in [false, true] {
        let mut eng = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(1e-6),
        );
        let mut peers = w.peer_table();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let mut pass = 0;
        while !eng.is_quiescent() && pass < 5_000 {
            eng.pass(&peers);
            pass += 1;
            peers.set_online_fraction(0.5, &mut rng);
            if drop {
                eng.drop_parked(&peers);
            }
        }
        (0..100).for_each(|p| {
            peers.go_online(PeerId(p));
        });
        eng.run_to_convergence(&mut peers, None);
        let err = error_stats::compare(eng.ranks(), &reference.ranks);
        table.push([
            if drop {
                "drop parked updates"
            } else {
                "store-and-resend (paper)"
            }
            .to_string(),
            format!("{:.1}", eng.ranks().iter().sum::<f64>()),
            format!("{:.2e}", err.avg),
        ]);
    }
    println!("{}", table.render());
    println!("dropping updates for offline peers loses rank mass permanently (Sec. 3.1)\n");
}

/// 5. The min-forward floor in incremental search.
fn ablation_min_forward_floor(seed: u64) {
    println!("== ablation 5: incremental-search min-forward floor ==\n");
    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: 5_000,
        vocab_size: 800,
        seed,
        ..Default::default()
    });
    let graph = dpr_graph::powerlaw::PowerLawConfig::paper(5_000, seed ^ 2).generate();
    let mut eng =
        ChaoticEngine::local(std::sync::Arc::new(graph), EngineConfig::with_epsilon(1e-3));
    eng.run_static();
    let ring = dpr_p2p::ring::Ring::with_peers(50);
    let index = DistributedIndex::build(&corpus, eng.ranks(), &ring);
    let queries: Vec<Query> = generate_queries(&corpus, 3, 20, seed ^ 3)
        .into_iter()
        .map(Query::new)
        .collect();

    let mut table = TextTable::new(["floor", "avg reduction (x)", "avg hits returned"]);
    for floor in [1usize, 20, 100, 1000] {
        let cfg = IncrementalConfig {
            forward_fraction: 0.10,
            min_forward: floor,
            traffic: TrafficModel::AllHopsRemote,
        };
        let (mut red, mut hits) = (0.0, 0.0);
        for q in &queries {
            let b = execute_baseline(&index, q, TrafficModel::AllHopsRemote);
            let i = execute_incremental(&index, q, cfg);
            red += b.traffic_ids as f64 / i.traffic_ids.max(1) as f64;
            hits += i.hits_returned() as f64;
        }
        table.push([
            floor.to_string(),
            format!("{:.1}", red / queries.len() as f64),
            format!("{:.1}", hits / queries.len() as f64),
        ]);
    }
    println!("{}", table.render());
    println!("a higher floor returns more hits but erodes the traffic win (paper used 20)");
}

/// 6. Link-aware vs random document placement (paper Sec. 6).
fn ablation_link_aware_placement(nodes: usize, seed: u64) {
    println!("\n== ablation 6: link-aware vs random document placement ==\n");
    let mut table = TextTable::new([
        "placement",
        "remote links",
        "remote msgs",
        "local updates",
        "passes",
    ]);
    for (name, w) in [
        ("random (paper Sec. 4.2)", Workload::paper(nodes, 500, seed)),
        (
            "link-aware (Sec. 6)",
            Workload::build_link_aware(nodes, 500, seed, 6),
        ),
    ] {
        let remote_links: u64 = w.remote_links_per_peer().iter().sum();
        let mut eng = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(1e-3),
        );
        let mut peers = w.peer_table();
        let run = eng.run_to_convergence(&mut peers, None);
        table.push([
            name.to_string(),
            remote_links.to_string(),
            run.total_remote_messages.to_string(),
            run.total_local_updates.to_string(),
            run.passes.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("partitioning by link structure turns remote messages into free local updates");
}

/// 8. Per-peer aggregation × IP caching, on the message-level cluster.
///
/// When tracing is on, the "frames + IP cache" cell (the shipping
/// configuration) runs observed so the trace describes one coherent
/// run rather than four interleaved ones.
fn ablation_aggregation_grid(seed: u64, trace: &Trace) {
    use dpr_node::node::WireMode;
    use dpr_sim::batch::{run_wire_mode, run_wire_mode_observed};
    println!("\n== ablation 8: per-peer aggregation x IP caching ==\n");
    let w = Workload::paper(2_000, 64, seed);
    let mut table = TextTable::new([
        "wire mode",
        "payloads",
        "bytes on wire",
        "routed msgs",
        "hops/payload",
    ]);
    let mut ranks: Option<Vec<f64>> = None;
    for (name, wire, cache) in [
        ("singles, route every msg", WireMode::Single, false),
        ("singles + IP cache", WireMode::Single, true),
        ("frames, route every frame", WireMode::frames(), false),
        ("frames + IP cache", WireMode::frames(), true),
    ] {
        let observe = cache && matches!(wire, WireMode::Frames { .. });
        let run = match trace.recorder_arc().filter(|_| observe) {
            Some(rec) => run_wire_mode_observed(&w, 1e-3, wire, cache, rec),
            None => run_wire_mode(&w, 1e-3, wire, cache),
        };
        match &ranks {
            Some(r) => assert_eq!(r, &run.ranks, "all four cells must agree bitwise"),
            None => ranks = Some(run.ranks),
        }
        let t = run.traffic;
        table.push([
            name.to_string(),
            t.payloads.to_string(),
            dpr_sim::metrics::fmt_bytes(t.bytes_on_wire),
            t.routed_messages.to_string(),
            format!("{:.2}", t.routed_messages as f64 / t.payloads.max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the two optimizations compose: aggregation divides the payload count,\n\
         caching divides the hops per payload — and neither moves a single rank bit"
    );
}

/// 9. Residual-driven priority and greedy matching-pursuit
///    scheduling vs the classic full sweep.
fn ablation_priority_sched(nodes: usize, seed: u64) {
    use dpr_core::SchedMode;
    println!("\n== ablation 9: priority (Gauss-Southwell) and greedy vs pass scheduling ==\n");
    let w = Workload::paper(nodes, 500, seed);
    let reference = SyncSolver::new().tolerance(1e-12).solve(&w.graph);
    let mut table = TextTable::new([
        "scheduler",
        "eps",
        "passes",
        "remote msgs",
        "saving",
        "max rel err",
    ]);
    for eps in [1e-3, 1e-6] {
        let mut pass_msgs = 0u64;
        for sched in [SchedMode::Pass, SchedMode::Priority, SchedMode::Greedy] {
            let mut eng = ChaoticEngine::new(
                w.graph.clone(),
                w.owners(),
                EngineConfig::with_epsilon(eps).with_sched(sched),
            );
            let mut peers = w.peer_table();
            let run = eng.run_to_convergence(&mut peers, None);
            assert!(run.converged);
            let saving = match sched {
                SchedMode::Pass => {
                    pass_msgs = run.total_remote_messages;
                    "—".to_string()
                }
                SchedMode::Priority | SchedMode::Greedy => format!(
                    "{:.1}%",
                    100.0 * (1.0 - run.total_remote_messages as f64 / pass_msgs.max(1) as f64)
                ),
            };
            let err = error_stats::compare(eng.ranks(), &reference.ranks);
            table.push([
                sched.to_string(),
                fmt_eps(eps),
                run.passes.to_string(),
                run.total_remote_messages.to_string(),
                saving,
                format!("{:.2e}", err.max),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "pushing the largest residuals first suppresses low-value re-advertisements;\n\
         the deferred mass is carried, not dropped, so every scheduler clears the\n\
         same ε — priority with a fraction of the messages, and greedy's exact\n\
         per-message budget cut at or below priority's whole-bucket boundary"
    );
}

/// 7. Chaotic iteration vs extrapolation-accelerated power iteration.
fn ablation_acceleration(nodes: usize, seed: u64) {
    use dpr_core::accel::{ExtrapolatedSolver, Method};
    println!("\n== ablation 7: chaotic vs extrapolation-accelerated solvers ==\n");
    let w = Workload::paper(nodes, 500, seed);
    let mut table = TextTable::new(["solver", "sweeps/passes", "note"]);

    let plain = SyncSolver::new()
        .tolerance(1e-10)
        .max_iterations(2_000)
        .solve(&w.graph);
    table.push([
        "plain power iteration".into(),
        plain.iterations.to_string(),
        String::new(),
    ]);
    for (name, method) in [
        ("A^d2 extrapolation", Method::PowerD),
        ("quadratic extrapolation", Method::Quadratic),
    ] {
        let r = ExtrapolatedSolver::new()
            .method(method)
            .tolerance(1e-10)
            .max_sweeps(2_000)
            .solve(&w.graph);
        table.push([
            name.to_string(),
            r.sweeps.to_string(),
            format!("{} extrapolations", r.extrapolations),
        ]);
    }
    let mut eng = ChaoticEngine::new(
        w.graph.clone(),
        w.owners(),
        EngineConfig::with_epsilon(1e-10),
    );
    let mut peers = w.peer_table();
    let run = eng.run_to_convergence(&mut peers, None);
    table.push([
        "chaotic (eps 1e-10)".into(),
        run.passes.to_string(),
        "no synchronization, no global state".into(),
    ]);
    println!("{}", table.render());
    println!(
        "the paper's remark holds here: acceleration does not reliably beat the\n\
         plain sweep on power-law link graphs. The chaotic scheme uses more —\n\
         but far cheaper — passes (only changed documents act), and needs no\n\
         synchronization or central state at all"
    );
}
