//! Figure 2: propagation of pagerank increments on document insert.
//!
//! The paper's worked example: G has out-links to H, I, J (so each
//! gets 1/3 of G's unit rank); H forwards 1/6 to K and L; I forwards
//! 1/3 to M. This binary builds exactly that graph, runs the
//! increment wave, and prints the received increments — they match
//! the figure's fractions digit for digit.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin figure2
//! ```

use dpr_core::incremental::{propagate, PropagationConfig};
use dpr_graph::builder::from_edges;
use dpr_graph::{DocId, Edge};

fn main() {
    // Ids: G=0, H=1, I=2, J=3, K=4, L=5, M=6.
    let names = ["G", "H", "I", "J", "K", "L", "M"];
    let graph = from_edges(
        7,
        [
            Edge::new(0u32, 1u32), // G -> H
            Edge::new(0u32, 2u32), // G -> I
            Edge::new(0u32, 3u32), // G -> J
            Edge::new(1u32, 4u32), // H -> K
            Edge::new(1u32, 5u32), // H -> L
            Edge::new(2u32, 6u32), // I -> M
        ],
    );

    println!("Figure 2 — increment propagation on inserting G (rank 1.0)\n");
    println!("graph: G -> {{H, I, J}}, H -> {{K, L}}, I -> M\n");

    // The figure's fractions carry no damping factor.
    let cfg = PropagationConfig {
        damping: 1.0,
        epsilon: 1e-9,
    };
    let mut ranks = vec![0.0f64; 7];
    let stats = propagate(&graph, DocId(0), 1.0, cfg, Some(&mut ranks));

    println!("received increments:");
    for (i, name) in names.iter().enumerate().skip(1) {
        let frac = match ranks[i] {
            r if (r - 1.0 / 3.0).abs() < 1e-12 => "1/3",
            r if (r - 1.0 / 6.0).abs() < 1e-12 => "1/6",
            _ => "?",
        };
        println!("  {name}: {:.6}  (= {frac})", ranks[i]);
    }
    println!(
        "\nwave: path length {}, node coverage {}, {} update messages",
        stats.path_length, stats.node_coverage, stats.messages
    );
    println!("(paper figure: H, I, J receive 1/3; K, L receive 1/6; M receives 1/3)");

    assert!((ranks[1] - 1.0 / 3.0).abs() < 1e-12);
    assert!((ranks[4] - 1.0 / 6.0).abs() < 1e-12);
    assert!((ranks[6] - 1.0 / 3.0).abs() < 1e-12);
    println!("\nall fractions match the paper exactly ✓");
}
