//! The abstract's headline operational claim, measured: "Incremental
//! update enables continuously accurate pageranks whereas the
//! currently centralized web crawl and computation over Internet
//! documents requires several days."
//!
//! After initial convergence, documents are inserted continuously and
//! ranks are maintained *only* by incremental waves. At checkpoints we
//! compare against a full recompute of the grown graph: how far have
//! the maintained ranks drifted, and what would periodic recomputation
//! have cost instead?
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous \
//!     [--nodes 20000] [--inserts 200] [--checkpoints 5] [--eps 1e-3] \
//!     [--threads T] [--json]
//! ```
//!
//! With `--pass-scaling`, instead runs the sequential engine and the
//! sharded executor at 1/2/4/8 threads to convergence on a 50k-doc
//! paper graph and writes `BENCH_pass_scaling.json` (passes/sec and
//! speedup per thread count) so the perf trajectory is tracked:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --pass-scaling \
//!     [--nodes 50000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```

use dpr_bench::Args;
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::parallel::ShardedExecutor;
use dpr_sim::metrics::TextTable;
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::continuous_update_experiment_with;
use dpr_sim::workload::Workload;
use serde::Serialize;

/// One row of `BENCH_pass_scaling.json`: a full convergence run under
/// one executor configuration (`threads == 0` is the sequential
/// engine).
#[derive(Debug, Clone, Serialize)]
struct PassScalingRow {
    threads: usize,
    passes: usize,
    secs: f64,
    passes_per_sec: f64,
    speedup_vs_seq: f64,
}

fn pass_scaling(args: &Args) {
    let nodes: usize = args.get("nodes", 50_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let w = Workload::paper(nodes, peers_n, args.seed());

    println!("Pass-throughput scaling ({nodes} docs, {peers_n} peers, eps {eps})\n");
    let run_once = |threads: usize| -> PassScalingRow {
        let mut engine =
            ChaoticEngine::new(w.graph.clone(), w.owners(), EngineConfig::with_epsilon(eps));
        let mut peers = w.peer_table();
        let start = std::time::Instant::now();
        let run = if threads == 0 {
            engine.run_to_convergence(&mut peers, None)
        } else {
            ShardedExecutor::new(threads).run_to_convergence(&mut engine, &mut peers, None)
        };
        let secs = start.elapsed().as_secs_f64();
        assert!(run.converged, "scaling run must converge");
        PassScalingRow {
            threads,
            passes: run.passes,
            secs,
            passes_per_sec: run.passes as f64 / secs,
            speedup_vs_seq: 1.0, // filled in below
        }
    };

    let mut rows = vec![run_once(0)];
    for threads in [1usize, 2, 4, 8] {
        rows.push(run_once(threads));
    }
    let seq_secs = rows[0].secs;
    for row in &mut rows {
        row.speedup_vs_seq = seq_secs / row.secs;
    }

    let mut table = TextTable::new(["executor", "passes", "secs", "passes/sec", "speedup"]);
    for r in &rows {
        let name = if r.threads == 0 {
            "sequential".to_string()
        } else {
            format!("sharded x{}", r.threads)
        };
        table.push([
            name,
            r.passes.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.2}", r.passes_per_sec),
            format!("{:.2}x", r.speedup_vs_seq),
        ]);
    }
    println!("{}", table.render());
    println!("(every row computes bit-identical ranks; only the wall clock moves)");

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = ExperimentRecord::new(
        "BENCH_pass_scaling",
        format!(
            "nodes={nodes} peers={peers_n} eps={eps} seed={}",
            args.seed()
        ),
        rows,
    )
    .write_to_dir(dir)
    .expect("write BENCH_pass_scaling.json");
    println!("\nwrote {}", path.display());
}

fn main() {
    let args = Args::parse();
    if args.has("pass-scaling") {
        pass_scaling(&args);
        return;
    }
    let nodes: usize = args.get("nodes", 20_000);
    let inserts: usize = args.get("inserts", 200);
    let checkpoints: usize = args.get("checkpoints", 5);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);

    println!(
        "Continuous accuracy under document churn \
         ({nodes} docs, {inserts} inserts, eps {eps})\n"
    );
    let points = continuous_update_experiment_with(
        nodes,
        inserts,
        checkpoints,
        eps,
        args.seed(),
        args.exec_mode(),
    );

    let mut table = TextTable::new([
        "inserts",
        "avg rel err",
        "max rel err",
        "wave msgs (cum.)",
        "one recompute",
    ]);
    for p in &points {
        table.push([
            p.inserts.to_string(),
            format!("{:.2e}", p.avg_rel_error),
            format!("{:.2e}", p.max_rel_error),
            p.wave_messages.to_string(),
            p.recompute_messages.to_string(),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().expect("at least one checkpoint");
    println!(
        "after {} inserts the incrementally maintained ranks sit at {:.2e} average\n\
         relative error from a from-scratch solve — and maintaining them cost {} \n\
         messages total, vs {} for a single recompute (which a crawler-based\n\
         pipeline would have to repeat every cycle).",
        last.inserts, last.avg_rel_error, last.wave_messages, last.recompute_messages
    );

    if args.json() {
        let path = ExperimentRecord::new(
            "continuous",
            format!(
                "nodes={nodes} inserts={inserts} eps={eps} seed={}",
                args.seed()
            ),
            points,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("\nwrote {}", path.display());
    }
}
