//! The abstract's headline operational claim, measured: "Incremental
//! update enables continuously accurate pageranks whereas the
//! currently centralized web crawl and computation over Internet
//! documents requires several days."
//!
//! After initial convergence, documents are inserted continuously and
//! ranks are maintained *only* by incremental waves. At checkpoints we
//! compare against a full recompute of the grown graph: how far have
//! the maintained ranks drifted, and what would periodic recomputation
//! have cost instead?
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous \
//!     [--nodes 20000] [--inserts 200] [--checkpoints 5] [--eps 1e-3] \
//!     [--threads T] [--sched pass|priority] [--json]
//! ```
//!
//! With `--pass-scaling`, instead runs the sequential engine and the
//! sharded executor at 1/2/4/8 threads to convergence on a 50k-doc
//! paper graph and writes `BENCH_pass_scaling.json` (passes/sec and
//! speedup per thread count) so the perf trajectory is tracked:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --pass-scaling \
//!     [--nodes 50000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```
//!
//! With `--batch-scaling`, runs the message-level cluster on the
//! Table 3 default scenario unbatched and then batched at a sweep of
//! frame-size caps, asserts every cap converges to bit-identical
//! ranks, and writes `BENCH_node_batching.json` (frames, measured
//! bytes vs the 24-byte baseline, routed overlay transmissions, and
//! the reduction factors per cap):
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --batch-scaling \
//!     [--nodes 10000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```
//!
//! With `--scale`, runs the message-level cluster to quiescence at a
//! sweep of graph sizes (default 10k/100k/1M documents) under both
//! wire codecs and writes `BENCH_scale.json`: convergence throughput
//! (doc·rounds per second under the raw codec) and measured payload
//! bytes per document for raw vs compact frames, asserting the compact
//! codec cuts bytes/doc by at least 30% at every size:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --scale \
//!     [--sizes 10000,100000,1000000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```
//!
//! With `--sched-scaling`, measures the residual-driven priority
//! scheduler against the classic full-sweep pass scheduler on the
//! reference scenario and writes `BENCH_sched_quality.json`: the
//! remote-message saving at the working ε, rank parity (per-document
//! L1 vs the pass engine) at the strict parity ε across executor
//! thread counts, and the message-level cluster under both wire modes:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --sched-scaling \
//!     [--nodes 10000] [--peers 500] [--eps 1e-3] [--parity-eps 1e-9] \
//!     [--skip-cluster] [--seed N]
//! ```

use dpr_bench::Args;
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::parallel::ShardedExecutor;
use dpr_core::SchedMode;
use dpr_node::node::{WireMode, DEFAULT_MAX_FRAME_BYTES};
use dpr_sim::batch::{compare_runs, run_wire_mode, run_wire_mode_observed, run_wire_mode_sched};
use dpr_sim::metrics::{fmt_bytes, fmt_eps, TextTable};
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::continuous_update_experiment_observed;
use dpr_sim::workload::Workload;
use serde::Serialize;

/// One row of `BENCH_pass_scaling.json`: a full convergence run under
/// one executor configuration (`threads == 0` is the sequential
/// engine). `secs` is the best of `--reps` repetitions. A row whose
/// `sharded_passes` is zero ran the sequential engine's exact code
/// path on every pass (the auto-inline guard delegated: threshold
/// unmet or single-core host), so its speedup is definitionally 1.0 —
/// reporting the measured ratio there would only report timer noise.
#[derive(Debug, Clone, Serialize)]
struct PassScalingRow {
    threads: usize,
    passes: usize,
    secs: f64,
    passes_per_sec: f64,
    speedup_vs_seq: f64,
    delegated_passes: u64,
    sharded_passes: u64,
}

fn pass_scaling(args: &Args) {
    let nodes: usize = args.get("nodes", 50_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let reps: usize = args.get("reps", 3);
    let w = Workload::paper(nodes, peers_n, args.seed());

    println!(
        "Pass-throughput scaling ({nodes} docs, {peers_n} peers, eps {eps}, best of {reps})\n"
    );
    let run_once = |threads: usize| -> PassScalingRow {
        let mut best = f64::INFINITY;
        let mut passes = 0;
        let mut mix = (0u64, 0u64);
        for _ in 0..reps.max(1) {
            let mut engine =
                ChaoticEngine::new(w.graph.clone(), w.owners(), EngineConfig::with_epsilon(eps));
            let mut peers = w.peer_table();
            let mut exec = ShardedExecutor::new(threads.max(1));
            let start = std::time::Instant::now();
            let run = if threads == 0 {
                engine.run_to_convergence(&mut peers, None)
            } else {
                exec.run_to_convergence(&mut engine, &mut peers, None)
            };
            let secs = start.elapsed().as_secs_f64();
            assert!(run.converged, "scaling run must converge");
            best = best.min(secs);
            passes = run.passes;
            mix = exec.pass_mix();
        }
        PassScalingRow {
            threads,
            passes,
            secs: best,
            passes_per_sec: passes as f64 / best,
            speedup_vs_seq: 1.0, // filled in below
            delegated_passes: mix.0,
            sharded_passes: mix.1,
        }
    };

    let mut rows = vec![run_once(0)];
    for threads in [1usize, 2, 4, 8] {
        rows.push(run_once(threads));
    }
    let seq_secs = rows[0].secs;
    for row in &mut rows {
        // Fully-delegated rows executed the sequential engine pass for
        // pass: same instruction stream, speedup exactly 1.0 (the
        // guard's contract — see the row-struct docs).
        row.speedup_vs_seq = if row.threads > 0 && row.sharded_passes == 0 {
            1.0
        } else {
            seq_secs / row.secs
        };
    }

    let mut table = TextTable::new([
        "executor",
        "passes",
        "secs",
        "passes/sec",
        "speedup",
        "delegated/sharded",
    ]);
    for r in &rows {
        let name = if r.threads == 0 {
            "sequential".to_string()
        } else {
            format!("sharded x{}", r.threads)
        };
        table.push([
            name,
            r.passes.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.2}", r.passes_per_sec),
            format!("{:.2}x", r.speedup_vs_seq),
            if r.threads == 0 {
                "-".to_string()
            } else {
                format!("{}/{}", r.delegated_passes, r.sharded_passes)
            },
        ]);
    }
    println!("{}", table.render());
    println!("(every row computes bit-identical ranks; only the wall clock moves)");

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = ExperimentRecord::new(
        "BENCH_pass_scaling",
        format!(
            "nodes={nodes} peers={peers_n} eps={eps} seed={}",
            args.seed()
        ),
        rows,
    )
    .write_to_dir(dir)
    .expect("write BENCH_pass_scaling.json");
    println!("\nwrote {}", path.display());
}

/// One row of `BENCH_scale.json`: the message-level cluster run to
/// quiescence at one graph size under each wire codec. `secs` and
/// `docs_per_sec` (documents × rounds / secs — per-document round
/// throughput) time the raw-codec run; the byte columns compare the
/// two codecs' measured payload traffic on the identical schedule.
#[derive(Debug, Clone, Serialize)]
struct ScaleRow {
    docs: usize,
    peers: usize,
    rounds: usize,
    secs: f64,
    docs_per_sec: f64,
    raw_bytes_on_wire: u64,
    compact_bytes_on_wire: u64,
    raw_bytes_per_doc: f64,
    compact_bytes_per_doc: f64,
    byte_reduction: f64,
}

fn scale(args: &Args) {
    use dpr_p2p::transport::WireCodec;
    use dpr_sim::batch::run_wire_mode_codec;

    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let sizes = args.sizes_or(&[10_000, 100_000, 1_000_000]);

    println!("Wire-codec scale sweep ({peers_n} peers, eps {eps}, sizes {sizes:?})\n");
    let mut rows = Vec::with_capacity(sizes.len());
    for docs in sizes {
        let w = Workload::paper(docs, peers_n, args.seed());
        eprintln!("  … {docs} docs, raw codec");
        let start = std::time::Instant::now();
        let raw = run_wire_mode_codec(&w, eps, WireMode::frames(), WireCodec::Raw, true);
        let secs = start.elapsed().as_secs_f64();
        eprintln!("  … {docs} docs, compact codec");
        let compact = run_wire_mode_codec(&w, eps, WireMode::frames(), WireCodec::Compact, true);

        // The codec only changes frame encoding, never the schedule:
        // identical rounds and identical coalesced entry counts.
        assert_eq!(raw.traffic.rounds, compact.traffic.rounds, "{docs} docs");
        assert_eq!(raw.traffic.entries, compact.traffic.entries, "{docs} docs");
        let row = ScaleRow {
            docs,
            peers: peers_n,
            rounds: raw.traffic.rounds,
            secs,
            docs_per_sec: docs as f64 * raw.traffic.rounds as f64 / secs,
            raw_bytes_on_wire: raw.traffic.bytes_on_wire,
            compact_bytes_on_wire: compact.traffic.bytes_on_wire,
            raw_bytes_per_doc: raw.traffic.bytes_on_wire as f64 / docs as f64,
            compact_bytes_per_doc: compact.traffic.bytes_on_wire as f64 / docs as f64,
            byte_reduction: 1.0
                - compact.traffic.bytes_on_wire as f64 / raw.traffic.bytes_on_wire.max(1) as f64,
        };
        assert!(
            row.byte_reduction >= 0.30,
            "{docs} docs: compact must cut payload bytes >= 30%, got {:.1}%",
            100.0 * row.byte_reduction
        );
        rows.push(row);
    }

    let mut table = TextTable::new([
        "docs",
        "rounds",
        "secs",
        "docs/sec",
        "raw B/doc",
        "compact B/doc",
        "byte reduction",
    ]);
    for r in &rows {
        table.push([
            r.docs.to_string(),
            r.rounds.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.0}", r.docs_per_sec),
            format!("{:.1}", r.raw_bytes_per_doc),
            format!("{:.1}", r.compact_bytes_per_doc),
            format!("{:.1}%", 100.0 * r.byte_reduction),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(compact frames carry varint-delta doc ids and f32 values; ranks stay\n\
         within the pinned L1 parity bound of the raw codec at every size)"
    );

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = ExperimentRecord::new(
        "BENCH_scale",
        format!("peers={peers_n} eps={eps} seed={}", args.seed()),
        rows,
    )
    .write_to_dir(dir)
    .expect("write BENCH_scale.json");
    println!("\nwrote {}", path.display());
}

/// One row of `BENCH_node_batching.json`: a full cluster convergence
/// run at one frame-size cap (`max_frame_bytes == 0` is the unbatched
/// single-message baseline).
#[derive(Debug, Clone, Serialize)]
struct BatchScalingRow {
    max_frame_bytes: usize,
    updates: u64,
    entries: u64,
    frames: u64,
    payloads: u64,
    bytes_on_wire: u64,
    baseline_bytes: u64,
    routed_messages: u64,
    routed_reduction: f64,
    byte_reduction: f64,
}

fn batch_scaling(args: &Args) {
    let trace = args.trace();
    let nodes: usize = args.get("nodes", 10_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let w = Workload::paper(nodes, peers_n, args.seed());
    // 36 B = 2 entries/frame (the worst useful cap) up to 64 KiB
    // (effectively uncapped at this scale); 1400 B is the default
    // Ethernet-MTU-ish cap.
    let caps = [36usize, 164, DEFAULT_MAX_FRAME_BYTES, 65_536];

    println!("Frame-cap scaling on the message-level cluster ({nodes} docs, {peers_n} peers, eps {eps})\n");
    eprintln!("  … unbatched baseline");
    let unbatched = run_wire_mode(&w, eps, WireMode::Single, false);
    let t = unbatched.traffic;
    let mut rows = vec![BatchScalingRow {
        max_frame_bytes: 0,
        updates: t.updates,
        entries: t.entries,
        frames: 0,
        payloads: t.payloads,
        bytes_on_wire: t.bytes_on_wire,
        baseline_bytes: t.bytes_on_wire,
        routed_messages: t.routed_messages,
        routed_reduction: 1.0,
        byte_reduction: 1.0,
    }];
    for cap in caps {
        eprintln!("  … frames capped at {cap} B");
        let frames = WireMode::Frames {
            max_frame_bytes: cap,
        };
        let batched = match trace.recorder_arc() {
            Some(rec) => run_wire_mode_observed(&w, eps, frames, true, rec),
            None => run_wire_mode(&w, eps, frames, true),
        };
        let r = compare_runs(&w, eps, cap, &unbatched, &batched);
        assert!(
            r.batched.bytes_on_wire < r.baseline_bytes,
            "cap {cap}: frame bytes must beat the 24-byte-per-update baseline"
        );
        rows.push(BatchScalingRow {
            max_frame_bytes: cap,
            updates: r.batched.updates,
            entries: r.batched.entries,
            frames: r.batched.frames,
            payloads: r.batched.payloads,
            bytes_on_wire: r.batched.bytes_on_wire,
            baseline_bytes: r.baseline_bytes,
            routed_messages: r.batched.routed_messages,
            routed_reduction: r.routed_reduction,
            byte_reduction: r.byte_reduction,
        });
    }
    let default_row = rows
        .iter()
        .find(|r| r.max_frame_bytes == DEFAULT_MAX_FRAME_BYTES)
        .expect("default cap is in the sweep");
    assert!(
        default_row.routed_reduction >= 5.0,
        "default cap must cut routed transport messages at least 5x, got {:.1}x",
        default_row.routed_reduction
    );

    let mut table = TextTable::new([
        "frame cap",
        "entries",
        "frames",
        "payloads",
        "bytes on wire",
        "routed msgs",
        "reduction",
    ]);
    for r in &rows {
        table.push([
            if r.max_frame_bytes == 0 {
                "unbatched".to_string()
            } else {
                format!("{} B", r.max_frame_bytes)
            },
            r.entries.to_string(),
            r.frames.to_string(),
            r.payloads.to_string(),
            fmt_bytes(r.bytes_on_wire),
            r.routed_messages.to_string(),
            format!("{:.1}x", r.routed_reduction),
        ]);
    }
    println!("{}", table.render());
    println!("(every cap converges to bit-identical ranks; only the wire framing moves)");

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = ExperimentRecord::new(
        "BENCH_node_batching",
        format!(
            "nodes={nodes} peers={peers_n} eps={eps} seed={}",
            args.seed()
        ),
        rows,
    )
    .write_to_dir(dir)
    .expect("write BENCH_node_batching.json");
    println!("\nwrote {}", path.display());
    trace.finish();
}

/// One row of `BENCH_sched_quality.json`: a full convergence run of
/// one (layer, scheduler, executor, wire) configuration. Reduction and
/// parity columns compare against the pass-scheduled baseline of the
/// same layer and ε (zero on the baseline rows themselves).
#[derive(Debug, Clone, Serialize)]
struct SchedQualityRow {
    layer: String,
    sched: String,
    threads: usize,
    wire: String,
    epsilon: f64,
    passes: usize,
    remote_messages: u64,
    msg_reduction_vs_pass: f64,
    l1_per_doc_vs_pass: f64,
}

fn sched_scaling(args: &Args) {
    let nodes: usize = args.get("nodes", 10_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let parity_eps: f64 = args.get("parity-eps", 1e-9);
    let w = Workload::paper(nodes, peers_n, args.seed());
    let n = nodes as f64;

    println!(
        "Scheduler quality scaling ({nodes} docs, {peers_n} peers, \
         working eps {eps}, parity eps {parity_eps})\n"
    );

    let run_engine = |sched: SchedMode, threads: usize, epsilon: f64| {
        let mut engine = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(epsilon).with_sched(sched),
        );
        let mut peers = w.peer_table();
        let run = if threads == 0 {
            engine.run_to_convergence(&mut peers, None)
        } else {
            ShardedExecutor::new(threads).run_to_convergence(&mut engine, &mut peers, None)
        };
        assert!(run.converged, "sched-scaling run must converge");
        (run, engine.ranks().to_vec())
    };
    let l1_per_doc =
        |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / n;
    let engine_row = |sched: SchedMode, threads: usize, epsilon: f64, passes: usize, msgs: u64| {
        SchedQualityRow {
            layer: "engine".into(),
            sched: sched.to_string(),
            threads,
            wire: "array".into(),
            epsilon,
            passes,
            remote_messages: msgs,
            msg_reduction_vs_pass: 0.0,
            l1_per_doc_vs_pass: 0.0,
        }
    };
    let mut rows: Vec<SchedQualityRow> = Vec::new();

    // 1. Message saving at the working ε (sequential engine). This is
    // the headline: the same fixed point for >= 25 % fewer remote
    // messages, because residual-ordered pushes stop low-value
    // re-advertisements from ever reaching the wire.
    eprintln!("  … engine, pass sched, eps {eps}");
    let (pass_run, pass_ranks) = run_engine(SchedMode::Pass, 0, eps);
    eprintln!("  … engine, priority sched, eps {eps}");
    let (pri_run, pri_ranks) = run_engine(SchedMode::Priority, 0, eps);
    let reduction =
        1.0 - pri_run.total_remote_messages as f64 / pass_run.total_remote_messages.max(1) as f64;
    assert!(
        reduction >= 0.25,
        "priority must cut remote messages >= 25% at eps {eps}, got {:.1}%",
        100.0 * reduction
    );
    rows.push(engine_row(
        SchedMode::Pass,
        0,
        eps,
        pass_run.passes,
        pass_run.total_remote_messages,
    ));
    rows.push(SchedQualityRow {
        msg_reduction_vs_pass: reduction,
        l1_per_doc_vs_pass: l1_per_doc(&pri_ranks, &pass_ranks),
        ..engine_row(
            SchedMode::Priority,
            0,
            eps,
            pri_run.passes,
            pri_run.total_remote_messages,
        )
    });

    // 2. Rank parity at the strict ε, across executor thread counts.
    // The priority schedule is a function of the dirty *set*, so every
    // executor must produce the same bits; vs the pass engine the gap
    // is O(ε) per document.
    eprintln!("  … engine, pass sched, eps {parity_eps} (parity reference)");
    let (pass_ref_run, pass_ref) = run_engine(SchedMode::Pass, 0, parity_eps);
    rows.push(engine_row(
        SchedMode::Pass,
        0,
        parity_eps,
        pass_ref_run.passes,
        pass_ref_run.total_remote_messages,
    ));
    let mut canonical: Option<Vec<f64>> = None;
    for threads in [0usize, 2, 4, 8] {
        eprintln!("  … engine, priority sched, eps {parity_eps}, threads {threads}");
        let (run, ranks) = run_engine(SchedMode::Priority, threads, parity_eps);
        match &canonical {
            Some(c) => assert_eq!(
                c, &ranks,
                "priority schedule must be bit-identical across executors"
            ),
            None => canonical = Some(ranks.clone()),
        }
        let l1 = l1_per_doc(&ranks, &pass_ref);
        assert!(
            l1 <= 1e-9,
            "parity: l1 per doc {l1:e} at {threads} threads exceeds 1e-9"
        );
        rows.push(SchedQualityRow {
            msg_reduction_vs_pass: 1.0
                - run.total_remote_messages as f64
                    / pass_ref_run.total_remote_messages.max(1) as f64,
            l1_per_doc_vs_pass: l1,
            ..engine_row(
                SchedMode::Priority,
                threads,
                parity_eps,
                run.passes,
                run.total_remote_messages,
            )
        });
    }

    // 3. The message-level cluster, both wire modes. Deferred residual
    // mass interoperates with flush scheduling and store-and-resend:
    // the wire path must not perturb the schedule, and the fixed point
    // must still sit within the parity band of the pass cluster.
    if !args.has("skip-cluster") {
        eprintln!("  … cluster, pass sched, singles, eps {parity_eps}");
        let cl_pass = run_wire_mode_sched(&w, parity_eps, SchedMode::Pass, WireMode::Single, false);
        eprintln!("  … cluster, priority sched, singles, eps {parity_eps}");
        let cl_pri =
            run_wire_mode_sched(&w, parity_eps, SchedMode::Priority, WireMode::Single, false);
        eprintln!("  … cluster, priority sched, frames, eps {parity_eps}");
        let cl_pri_frames = run_wire_mode_sched(
            &w,
            parity_eps,
            SchedMode::Priority,
            WireMode::frames(),
            true,
        );
        assert_eq!(
            cl_pri.ranks, cl_pri_frames.ranks,
            "wire path must not perturb the priority schedule"
        );
        let l1 = l1_per_doc(&cl_pri.ranks, &cl_pass.ranks);
        assert!(l1 <= 1e-9, "cluster parity: l1 per doc {l1:e} exceeds 1e-9");
        // At the paper's reference sharding each peer holds only
        // nodes/peers documents — below the bypass threshold the
        // priority queue degenerates to the full sweep by design, so
        // the update count may only tie, never regress.
        assert!(
            cl_pri.traffic.updates <= cl_pass.traffic.updates,
            "cluster priority {} vs pass {} updates",
            cl_pri.traffic.updates,
            cl_pass.traffic.updates
        );
        for (sched, wire, run, l1pd) in [
            (SchedMode::Pass, "single", &cl_pass, 0.0),
            (SchedMode::Priority, "single", &cl_pri, l1),
            (SchedMode::Priority, "frames", &cl_pri_frames, l1),
        ] {
            rows.push(SchedQualityRow {
                layer: "cluster".into(),
                sched: sched.to_string(),
                threads: 0,
                wire: wire.into(),
                epsilon: parity_eps,
                passes: run.traffic.rounds,
                remote_messages: run.traffic.updates,
                msg_reduction_vs_pass: 1.0
                    - run.traffic.updates as f64 / cl_pass.traffic.updates.max(1) as f64,
                l1_per_doc_vs_pass: l1pd,
            });
        }

        // 4. A denser sharding (~250 docs per peer) where the per-peer
        // residual queues clear the bypass threshold: here selection
        // engages at the node layer too and the wire itself carries
        // measurably fewer logical updates.
        let dense_peers = (nodes / 250).max(4);
        let w_dense = Workload::paper(nodes, dense_peers, args.seed());
        eprintln!("  … dense cluster ({dense_peers} peers), pass sched, eps {eps}");
        let dn_pass = run_wire_mode_sched(&w_dense, eps, SchedMode::Pass, WireMode::Single, false);
        eprintln!("  … dense cluster ({dense_peers} peers), priority sched, eps {eps}");
        let dn_pri =
            run_wire_mode_sched(&w_dense, eps, SchedMode::Priority, WireMode::Single, false);
        assert!(
            dn_pri.traffic.updates < dn_pass.traffic.updates,
            "dense cluster priority {} vs pass {} updates",
            dn_pri.traffic.updates,
            dn_pass.traffic.updates
        );
        let dn_l1 = l1_per_doc(&dn_pri.ranks, &dn_pass.ranks);
        for (sched, run, l1pd) in [
            (SchedMode::Pass, &dn_pass, 0.0),
            (SchedMode::Priority, &dn_pri, dn_l1),
        ] {
            rows.push(SchedQualityRow {
                layer: "cluster-dense".into(),
                sched: sched.to_string(),
                threads: 0,
                wire: "single".into(),
                epsilon: eps,
                passes: run.traffic.rounds,
                remote_messages: run.traffic.updates,
                msg_reduction_vs_pass: 1.0
                    - run.traffic.updates as f64 / dn_pass.traffic.updates.max(1) as f64,
                l1_per_doc_vs_pass: l1pd,
            });
        }
    }

    let mut table = TextTable::new([
        "layer",
        "sched",
        "threads",
        "wire",
        "eps",
        "passes",
        "remote msgs",
        "reduction",
        "l1/doc vs pass",
    ]);
    for r in &rows {
        table.push([
            r.layer.clone(),
            r.sched.clone(),
            r.threads.to_string(),
            r.wire.clone(),
            fmt_eps(r.epsilon),
            r.passes.to_string(),
            r.remote_messages.to_string(),
            format!("{:.1}%", 100.0 * r.msg_reduction_vs_pass),
            format!("{:.1e}", r.l1_per_doc_vs_pass),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(priority rows are bit-identical across executors and wire modes; deferred\n\
         residual mass is never lost — quiescence still means no residual above eps)"
    );

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = ExperimentRecord::new(
        "BENCH_sched_quality",
        format!(
            "nodes={nodes} peers={peers_n} eps={eps} parity_eps={parity_eps} seed={}",
            args.seed()
        ),
        rows,
    )
    .write_to_dir(dir)
    .expect("write BENCH_sched_quality.json");
    println!("\nwrote {}", path.display());
}

fn main() {
    let args = Args::parse();
    if args.has("pass-scaling") {
        pass_scaling(&args);
        return;
    }
    if args.has("batch-scaling") {
        batch_scaling(&args);
        return;
    }
    if args.has("scale") {
        scale(&args);
        return;
    }
    if args.has("sched-scaling") {
        sched_scaling(&args);
        return;
    }
    let trace = args.trace();
    let nodes: usize = args.get("nodes", 20_000);
    let inserts: usize = args.get("inserts", 200);
    let checkpoints: usize = args.get("checkpoints", 5);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);

    println!(
        "Continuous accuracy under document churn \
         ({nodes} docs, {inserts} inserts, eps {eps})\n"
    );
    let points = continuous_update_experiment_observed(
        nodes,
        inserts,
        checkpoints,
        eps,
        args.seed(),
        args.exec_mode(),
        args.sched_mode(),
        trace.recorder(),
    );

    let mut table = TextTable::new([
        "inserts",
        "avg rel err",
        "max rel err",
        "wave msgs (cum.)",
        "one recompute",
    ]);
    for p in &points {
        table.push([
            p.inserts.to_string(),
            format!("{:.2e}", p.avg_rel_error),
            format!("{:.2e}", p.max_rel_error),
            p.wave_messages.to_string(),
            p.recompute_messages.to_string(),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().expect("at least one checkpoint");
    println!(
        "after {} inserts the incrementally maintained ranks sit at {:.2e} average\n\
         relative error from a from-scratch solve — and maintaining them cost {} \n\
         messages total, vs {} for a single recompute (which a crawler-based\n\
         pipeline would have to repeat every cycle).",
        last.inserts, last.avg_rel_error, last.wave_messages, last.recompute_messages
    );

    if args.json() {
        let path = ExperimentRecord::new(
            "continuous",
            format!(
                "nodes={nodes} inserts={inserts} eps={eps} sched={} seed={}",
                args.sched_mode(),
                args.seed()
            ),
            points,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("\nwrote {}", path.display());
    }
    trace.finish();
}
