//! The abstract's headline operational claim, measured: "Incremental
//! update enables continuously accurate pageranks whereas the
//! currently centralized web crawl and computation over Internet
//! documents requires several days."
//!
//! After initial convergence, documents are inserted continuously and
//! ranks are maintained *only* by incremental waves. At checkpoints we
//! compare against a full recompute of the grown graph: how far have
//! the maintained ranks drifted, and what would periodic recomputation
//! have cost instead?
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous \
//!     [--nodes 20000] [--inserts 200] [--checkpoints 5] [--eps 1e-3] [--json]
//! ```

use dpr_bench::Args;
use dpr_sim::metrics::TextTable;
use dpr_sim::report::{results_dir, ExperimentRecord};
use dpr_sim::scenario::continuous_update_experiment;

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 20_000);
    let inserts: usize = args.get("inserts", 200);
    let checkpoints: usize = args.get("checkpoints", 5);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);

    println!(
        "Continuous accuracy under document churn \
         ({nodes} docs, {inserts} inserts, eps {eps})\n"
    );
    let points = continuous_update_experiment(nodes, inserts, checkpoints, eps, args.seed());

    let mut table = TextTable::new([
        "inserts",
        "avg rel err",
        "max rel err",
        "wave msgs (cum.)",
        "one recompute",
    ]);
    for p in &points {
        table.push([
            p.inserts.to_string(),
            format!("{:.2e}", p.avg_rel_error),
            format!("{:.2e}", p.max_rel_error),
            p.wave_messages.to_string(),
            p.recompute_messages.to_string(),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().expect("at least one checkpoint");
    println!(
        "after {} inserts the incrementally maintained ranks sit at {:.2e} average\n\
         relative error from a from-scratch solve — and maintaining them cost {} \n\
         messages total, vs {} for a single recompute (which a crawler-based\n\
         pipeline would have to repeat every cycle).",
        last.inserts, last.avg_rel_error, last.wave_messages, last.recompute_messages
    );

    if args.json() {
        let path = ExperimentRecord::new(
            "continuous",
            format!("nodes={nodes} inserts={inserts} eps={eps} seed={}", args.seed()),
            points,
        )
        .write_to_dir(results_dir())
        .expect("write results");
        println!("\nwrote {}", path.display());
    }
}
