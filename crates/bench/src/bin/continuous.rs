//! The abstract's headline operational claim, measured: "Incremental
//! update enables continuously accurate pageranks whereas the
//! currently centralized web crawl and computation over Internet
//! documents requires several days."
//!
//! After initial convergence, documents are inserted continuously and
//! ranks are maintained *only* by incremental waves. At checkpoints we
//! compare against a full recompute of the grown graph: how far have
//! the maintained ranks drifted, and what would periodic recomputation
//! have cost instead?
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous \
//!     [--nodes 20000] [--inserts 200] [--checkpoints 5] [--eps 1e-3] \
//!     [--threads T] [--sched pass|priority|greedy] [--json]
//! ```
//!
//! With `--pass-scaling`, instead runs the sequential engine and the
//! sharded executor at 1/2/4/8 threads to convergence on a 50k-doc
//! paper graph and writes `BENCH_pass_scaling.json` (passes/sec and
//! speedup per thread count) so the perf trajectory is tracked:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --pass-scaling \
//!     [--nodes 50000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```
//!
//! With `--batch-scaling`, runs the message-level cluster on the
//! Table 3 default scenario unbatched and then batched at a sweep of
//! frame-size caps, asserts every cap converges to bit-identical
//! ranks, and writes `BENCH_node_batching.json` (frames, measured
//! bytes vs the 24-byte baseline, routed overlay transmissions, and
//! the reduction factors per cap):
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --batch-scaling \
//!     [--nodes 10000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```
//!
//! With `--scale`, runs the message-level cluster to quiescence at a
//! sweep of graph sizes (default 10k/100k/1M documents) under both
//! wire codecs and writes `BENCH_scale.json`: convergence throughput
//! (doc·rounds per second under the raw codec) and measured payload
//! bytes per document for raw vs compact frames, asserting the compact
//! codec cuts bytes/doc by at least 30% at every size:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --scale \
//!     [--sizes 10000,100000,1000000] [--peers 500] [--eps 1e-3] [--seed N]
//! ```
//!
//! With `--sched-scaling`, measures the residual-driven priority
//! scheduler against the classic full-sweep pass scheduler on the
//! reference scenario and writes `BENCH_sched_quality.json`: the
//! remote-message saving at the working ε, rank parity (per-document
//! L1 vs the pass engine) at the strict parity ε across executor
//! thread counts, and the message-level cluster under both wire modes:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --sched-scaling \
//!     [--nodes 10000] [--peers 500] [--eps 1e-3] [--parity-eps 1e-9] \
//!     [--skip-cluster] [--seed N]
//! ```
//!
//! With `--async-scaling`, measures the event-driven chaotic runtime
//! against the round-barrier cluster and writes `BENCH_async.json`:
//! priority-vs-pass remote-message reduction at the cluster layer
//! under each latency model (strictly positive by assertion, where the
//! rounds rows show ~0% at the same density), virtual
//! wall-clock-to-convergence across latency distributions, and
//! matched-error rows at the strict parity ε showing chaotic mode
//! lands within 1e-9/doc of the round-barrier fixed point:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --async-scaling \
//!     [--nodes 10000] [--peers 500] [--eps 1e-3] [--parity-eps 1e-9] \
//!     [--seed N]
//! ```
//!
//! With `--accel-scaling`, measures the PR's two update accelerators
//! together and writes `BENCH_accel.json`. The `clean` rows run the
//! greedy matching-pursuit scheduler against pass and priority on full
//! convergence runs — the sequential engine plus the chaotic cluster
//! under every latency model — at matched L1-vs-sync error, asserting
//! greedy beats or matches priority's remote-message count in at least
//! one latency model. The `burst` rows replay insert and delete
//! mutation bursts under the global per-document wave protocol and the
//! SCC-localized merged-wave protocol, asserting the localized bursts
//! generate strictly fewer update messages at ≤ 1e-9/doc rank parity:
//!
//! ```text
//! cargo run --release -p dpr-bench --bin continuous -- --accel-scaling \
//!     [--nodes 10000] [--peers 500] [--eps 1e-3] [--burst-eps 1e-14] \
//!     [--inserts 24] [--deletes 12] [--seed N]
//! ```
//!
//! Every mode additionally accepts `--git-sha SHA` and `--stamp TS`
//! (an ISO-8601 timestamp): the driver-supplied provenance stamped
//! into the shared `meta` envelope of each BENCH_*.json, alongside the
//! scenario parameters and the codec/run-mode/scheduler axes the rows
//! cover.

use dpr_bench::Args;
use dpr_core::engine::{ChaoticEngine, EngineConfig};
use dpr_core::parallel::ShardedExecutor;
use dpr_core::sync_solver::SyncSolver;
use dpr_core::SchedMode;
use dpr_node::cluster::Cluster;
use dpr_node::node::{WireMode, DEFAULT_MAX_FRAME_BYTES};
use dpr_node::termination::TerminationDetector;
use dpr_p2p::peer::PeerId;
use dpr_sim::batch::{compare_runs, run_wire_mode, run_wire_mode_observed, run_wire_mode_sched};
use dpr_sim::event::{run_chaotic_profiled, ChaoticConfig, ChaoticOutcome, LatencyModel};
use dpr_sim::metrics::{fmt_bytes, fmt_eps, TextTable};
use dpr_sim::report::{results_dir, BenchMeta, ExperimentRecord};
use dpr_sim::scenario::continuous_update_experiment_observed;
use dpr_sim::workload::Workload;
use dpr_telemetry::Profile;
use serde::Serialize;

/// The provenance envelope every BENCH_*.json is stamped with. The
/// commit and timestamp come from the driver (`--git-sha`, `--stamp`);
/// the binary never guesses them.
fn bench_meta(
    args: &Args,
    scenario: String,
    codec: &str,
    run_mode: &str,
    sched: &str,
) -> BenchMeta {
    BenchMeta::default()
        .provenance(
            args.get::<String>("git-sha", "unknown".into()),
            args.get::<String>("stamp", "unknown".into()),
        )
        .scenario(scenario)
        .axes(codec, run_mode, sched)
}

/// Runs the message-level cluster to quiescence under the event-driven
/// chaotic runtime and returns the outcome, the final ranks, the total
/// remote entries the peers emitted (the paper's traffic metric,
/// counted identically to the round-driven cluster runs), and the
/// causal profile of the run (critical-path compute/wire/wait
/// attribution of the virtual wall-clock).
fn run_chaotic_cluster(
    w: &Workload,
    eps: f64,
    sched: SchedMode,
    latency: LatencyModel,
    seed: u64,
) -> (ChaoticOutcome, Vec<f64>, u64, Profile) {
    let mut cluster = Cluster::build_with(
        &w.graph,
        &w.placement,
        w.num_peers,
        EngineConfig::with_epsilon(eps).with_sched(sched),
        WireMode::frames(),
    );
    let peers = w.peer_table();
    let mut det = TerminationDetector::new(w.num_peers);
    let ccfg = ChaoticConfig {
        seed,
        latency,
        sched,
        epsilon: eps,
    };
    let (out, profile) = run_chaotic_profiled(
        &mut cluster,
        &peers,
        &ccfg,
        &mut det,
        2_000_000_000,
        &dpr_telemetry::NOOP,
    );
    assert!(out.quiesced, "chaotic bench run must quiesce");
    // The profiler's acceptance gate, enforced at bench scale: the
    // critical-path attribution must sum to the virtual wall-clock
    // within 1e-6 relative (it is in fact integer-exact).
    let sum = profile.compute_ns + profile.wire_ns + profile.wait_ns;
    let rel = (sum as f64 - profile.virtual_ns as f64).abs() / (profile.virtual_ns.max(1) as f64);
    assert!(
        rel <= 1e-6,
        "profile breakdown {sum} ns vs virtual clock {} ns (rel err {rel:e})",
        profile.virtual_ns
    );
    assert_eq!(
        profile.virtual_ns, out.virtual_ns,
        "profile horizon must equal the runtime's virtual clock"
    );
    let emitted = (0..w.num_peers as u32)
        .map(|p| cluster.node(PeerId(p)).stats().emitted_remote)
        .sum();
    (
        out,
        cluster.collect_ranks(w.graph.num_nodes()),
        emitted,
        profile,
    )
}

/// One row of `BENCH_pass_scaling.json`: a full convergence run under
/// one executor configuration (`threads == 0` is the sequential
/// engine). `secs` is the best of `--reps` repetitions. A row whose
/// `sharded_passes` is zero ran the sequential engine's exact code
/// path on every pass (the auto-inline guard delegated: threshold
/// unmet or single-core host), so no parallel speedup was *measured*
/// at all — `speedup_vs_seq` is `null` on those rows rather than a
/// fabricated 1.0 that would read as a measured tie.
#[derive(Debug, Clone, Serialize)]
struct PassScalingRow {
    threads: usize,
    passes: usize,
    secs: f64,
    passes_per_sec: f64,
    speedup_vs_seq: Option<f64>,
    delegated_passes: u64,
    sharded_passes: u64,
}

fn pass_scaling(args: &Args) {
    let nodes: usize = args.get("nodes", 50_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let reps: usize = args.get("reps", 3);
    let w = Workload::paper(nodes, peers_n, args.seed());

    println!(
        "Pass-throughput scaling ({nodes} docs, {peers_n} peers, eps {eps}, best of {reps})\n"
    );
    let run_once = |threads: usize| -> PassScalingRow {
        let mut best = f64::INFINITY;
        let mut passes = 0;
        let mut mix = (0u64, 0u64);
        for _ in 0..reps.max(1) {
            let mut engine =
                ChaoticEngine::new(w.graph.clone(), w.owners(), EngineConfig::with_epsilon(eps));
            let mut peers = w.peer_table();
            let mut exec = ShardedExecutor::new(threads.max(1));
            let start = std::time::Instant::now();
            let run = if threads == 0 {
                engine.run_to_convergence(&mut peers, None)
            } else {
                exec.run_to_convergence(&mut engine, &mut peers, None)
            };
            let secs = start.elapsed().as_secs_f64();
            assert!(run.converged, "scaling run must converge");
            best = best.min(secs);
            passes = run.passes;
            mix = exec.pass_mix();
        }
        PassScalingRow {
            threads,
            passes,
            secs: best,
            passes_per_sec: passes as f64 / best,
            speedup_vs_seq: None, // filled in below
            delegated_passes: mix.0,
            sharded_passes: mix.1,
        }
    };

    let mut rows = vec![run_once(0)];
    for threads in [1usize, 2, 4, 8] {
        rows.push(run_once(threads));
    }
    let seq_secs = rows[0].secs;
    for row in &mut rows {
        // Fully-delegated rows executed the sequential engine pass for
        // pass: same instruction stream, nothing parallel was measured
        // (the guard's contract — see the row-struct docs), so they
        // report no speedup at all rather than a timer-noise ratio.
        row.speedup_vs_seq = if row.threads > 0 && row.sharded_passes == 0 {
            None
        } else {
            Some(seq_secs / row.secs)
        };
    }

    let mut table = TextTable::new([
        "executor",
        "passes",
        "secs",
        "passes/sec",
        "speedup",
        "delegated/sharded",
    ]);
    for r in &rows {
        let name = if r.threads == 0 {
            "sequential".to_string()
        } else {
            format!("sharded x{}", r.threads)
        };
        table.push([
            name,
            r.passes.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.2}", r.passes_per_sec),
            match r.speedup_vs_seq {
                Some(s) => format!("{s:.2}x"),
                None => "delegated".to_string(),
            },
            if r.threads == 0 {
                "-".to_string()
            } else {
                format!("{}/{}", r.delegated_passes, r.sharded_passes)
            },
        ]);
    }
    println!("{}", table.render());
    println!("(every row computes bit-identical ranks; only the wall clock moves)");

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let params = format!(
        "nodes={nodes} peers={peers_n} eps={eps} seed={}",
        args.seed()
    );
    let path = ExperimentRecord::new("BENCH_pass_scaling", params.clone(), rows)
        .with_meta(bench_meta(args, params, "none", "rounds", "pass"))
        .write_to_dir(dir)
        .expect("write BENCH_pass_scaling.json");
    println!("\nwrote {}", path.display());
}

/// One row of `BENCH_scale.json`: the message-level cluster run to
/// quiescence at one graph size under each wire codec. `secs` and
/// `docs_per_sec` (documents × rounds / secs — per-document round
/// throughput) time the raw-codec run; the byte columns compare the
/// two codecs' measured payload traffic on the identical schedule.
#[derive(Debug, Clone, Serialize)]
struct ScaleRow {
    docs: usize,
    peers: usize,
    rounds: usize,
    secs: f64,
    docs_per_sec: f64,
    raw_bytes_on_wire: u64,
    compact_bytes_on_wire: u64,
    raw_bytes_per_doc: f64,
    compact_bytes_per_doc: f64,
    byte_reduction: f64,
}

fn scale(args: &Args) {
    use dpr_p2p::transport::WireCodec;
    use dpr_sim::batch::run_wire_mode_codec;

    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let sizes = args.sizes_or(&[10_000, 100_000, 1_000_000]);

    println!("Wire-codec scale sweep ({peers_n} peers, eps {eps}, sizes {sizes:?})\n");
    let mut rows = Vec::with_capacity(sizes.len());
    for docs in sizes {
        let w = Workload::paper(docs, peers_n, args.seed());
        eprintln!("  … {docs} docs, raw codec");
        let start = std::time::Instant::now();
        let raw = run_wire_mode_codec(&w, eps, WireMode::frames(), WireCodec::Raw, true);
        let secs = start.elapsed().as_secs_f64();
        eprintln!("  … {docs} docs, compact codec");
        let compact = run_wire_mode_codec(&w, eps, WireMode::frames(), WireCodec::Compact, true);

        // The codec only changes frame encoding, never the schedule:
        // identical rounds and identical coalesced entry counts.
        assert_eq!(raw.traffic.rounds, compact.traffic.rounds, "{docs} docs");
        assert_eq!(raw.traffic.entries, compact.traffic.entries, "{docs} docs");
        let row = ScaleRow {
            docs,
            peers: peers_n,
            rounds: raw.traffic.rounds,
            secs,
            docs_per_sec: docs as f64 * raw.traffic.rounds as f64 / secs,
            raw_bytes_on_wire: raw.traffic.bytes_on_wire,
            compact_bytes_on_wire: compact.traffic.bytes_on_wire,
            raw_bytes_per_doc: raw.traffic.bytes_on_wire as f64 / docs as f64,
            compact_bytes_per_doc: compact.traffic.bytes_on_wire as f64 / docs as f64,
            byte_reduction: 1.0
                - compact.traffic.bytes_on_wire as f64 / raw.traffic.bytes_on_wire.max(1) as f64,
        };
        assert!(
            row.byte_reduction >= 0.30,
            "{docs} docs: compact must cut payload bytes >= 30%, got {:.1}%",
            100.0 * row.byte_reduction
        );
        rows.push(row);
    }

    let mut table = TextTable::new([
        "docs",
        "rounds",
        "secs",
        "docs/sec",
        "raw B/doc",
        "compact B/doc",
        "byte reduction",
    ]);
    for r in &rows {
        table.push([
            r.docs.to_string(),
            r.rounds.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.0}", r.docs_per_sec),
            format!("{:.1}", r.raw_bytes_per_doc),
            format!("{:.1}", r.compact_bytes_per_doc),
            format!("{:.1}%", 100.0 * r.byte_reduction),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(compact frames carry varint-delta doc ids and f32 values; ranks stay\n\
         within the pinned L1 parity bound of the raw codec at every size)"
    );

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let params = format!("peers={peers_n} eps={eps} seed={}", args.seed());
    let path = ExperimentRecord::new("BENCH_scale", params.clone(), rows)
        .with_meta(bench_meta(args, params, "raw+compact", "rounds", "pass"))
        .write_to_dir(dir)
        .expect("write BENCH_scale.json");
    println!("\nwrote {}", path.display());
}

/// One row of `BENCH_node_batching.json`: a full cluster convergence
/// run at one frame-size cap (`max_frame_bytes == 0` is the unbatched
/// single-message baseline).
#[derive(Debug, Clone, Serialize)]
struct BatchScalingRow {
    max_frame_bytes: usize,
    updates: u64,
    entries: u64,
    frames: u64,
    payloads: u64,
    bytes_on_wire: u64,
    baseline_bytes: u64,
    routed_messages: u64,
    routed_reduction: f64,
    byte_reduction: f64,
}

fn batch_scaling(args: &Args) {
    let trace = args.trace();
    let nodes: usize = args.get("nodes", 10_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let w = Workload::paper(nodes, peers_n, args.seed());
    // 36 B = 2 entries/frame (the worst useful cap) up to 64 KiB
    // (effectively uncapped at this scale); 1400 B is the default
    // Ethernet-MTU-ish cap.
    let caps = [36usize, 164, DEFAULT_MAX_FRAME_BYTES, 65_536];

    println!("Frame-cap scaling on the message-level cluster ({nodes} docs, {peers_n} peers, eps {eps})\n");
    eprintln!("  … unbatched baseline");
    let unbatched = run_wire_mode(&w, eps, WireMode::Single, false);
    let t = unbatched.traffic;
    let mut rows = vec![BatchScalingRow {
        max_frame_bytes: 0,
        updates: t.updates,
        entries: t.entries,
        frames: 0,
        payloads: t.payloads,
        bytes_on_wire: t.bytes_on_wire,
        baseline_bytes: t.bytes_on_wire,
        routed_messages: t.routed_messages,
        routed_reduction: 1.0,
        byte_reduction: 1.0,
    }];
    for cap in caps {
        eprintln!("  … frames capped at {cap} B");
        let frames = WireMode::Frames {
            max_frame_bytes: cap,
        };
        let batched = match trace.recorder_arc() {
            Some(rec) => run_wire_mode_observed(&w, eps, frames, true, rec),
            None => run_wire_mode(&w, eps, frames, true),
        };
        let r = compare_runs(&w, eps, cap, &unbatched, &batched);
        assert!(
            r.batched.bytes_on_wire < r.baseline_bytes,
            "cap {cap}: frame bytes must beat the 24-byte-per-update baseline"
        );
        rows.push(BatchScalingRow {
            max_frame_bytes: cap,
            updates: r.batched.updates,
            entries: r.batched.entries,
            frames: r.batched.frames,
            payloads: r.batched.payloads,
            bytes_on_wire: r.batched.bytes_on_wire,
            baseline_bytes: r.baseline_bytes,
            routed_messages: r.batched.routed_messages,
            routed_reduction: r.routed_reduction,
            byte_reduction: r.byte_reduction,
        });
    }
    let default_row = rows
        .iter()
        .find(|r| r.max_frame_bytes == DEFAULT_MAX_FRAME_BYTES)
        .expect("default cap is in the sweep");
    assert!(
        default_row.routed_reduction >= 5.0,
        "default cap must cut routed transport messages at least 5x, got {:.1}x",
        default_row.routed_reduction
    );

    let mut table = TextTable::new([
        "frame cap",
        "entries",
        "frames",
        "payloads",
        "bytes on wire",
        "routed msgs",
        "reduction",
    ]);
    for r in &rows {
        table.push([
            if r.max_frame_bytes == 0 {
                "unbatched".to_string()
            } else {
                format!("{} B", r.max_frame_bytes)
            },
            r.entries.to_string(),
            r.frames.to_string(),
            r.payloads.to_string(),
            fmt_bytes(r.bytes_on_wire),
            r.routed_messages.to_string(),
            format!("{:.1}x", r.routed_reduction),
        ]);
    }
    println!("{}", table.render());
    println!("(every cap converges to bit-identical ranks; only the wire framing moves)");

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let params = format!(
        "nodes={nodes} peers={peers_n} eps={eps} seed={}",
        args.seed()
    );
    let path = ExperimentRecord::new("BENCH_node_batching", params.clone(), rows)
        .with_meta(bench_meta(args, params, "raw", "rounds", "pass"))
        .write_to_dir(dir)
        .expect("write BENCH_node_batching.json");
    println!("\nwrote {}", path.display());
    trace.finish();
}

/// One row of `BENCH_sched_quality.json`: a full convergence run of
/// one (layer, scheduler, executor, wire) configuration. Reduction and
/// parity columns compare against the pass-scheduled baseline of the
/// same layer and ε (zero on the baseline rows themselves).
#[derive(Debug, Clone, Serialize)]
struct SchedQualityRow {
    layer: String,
    sched: String,
    threads: usize,
    wire: String,
    epsilon: f64,
    passes: usize,
    remote_messages: u64,
    msg_reduction_vs_pass: f64,
    l1_per_doc_vs_pass: f64,
}

fn sched_scaling(args: &Args) {
    let nodes: usize = args.get("nodes", 10_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let parity_eps: f64 = args.get("parity-eps", 1e-9);
    let w = Workload::paper(nodes, peers_n, args.seed());
    let n = nodes as f64;

    println!(
        "Scheduler quality scaling ({nodes} docs, {peers_n} peers, \
         working eps {eps}, parity eps {parity_eps})\n"
    );

    let run_engine = |sched: SchedMode, threads: usize, epsilon: f64| {
        let mut engine = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(epsilon).with_sched(sched),
        );
        let mut peers = w.peer_table();
        let run = if threads == 0 {
            engine.run_to_convergence(&mut peers, None)
        } else {
            ShardedExecutor::new(threads).run_to_convergence(&mut engine, &mut peers, None)
        };
        assert!(run.converged, "sched-scaling run must converge");
        (run, engine.ranks().to_vec())
    };
    let l1_per_doc =
        |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / n;
    let engine_row = |sched: SchedMode, threads: usize, epsilon: f64, passes: usize, msgs: u64| {
        SchedQualityRow {
            layer: "engine".into(),
            sched: sched.to_string(),
            threads,
            wire: "array".into(),
            epsilon,
            passes,
            remote_messages: msgs,
            msg_reduction_vs_pass: 0.0,
            l1_per_doc_vs_pass: 0.0,
        }
    };
    let mut rows: Vec<SchedQualityRow> = Vec::new();

    // 1. Message saving at the working ε (sequential engine). This is
    // the headline: the same fixed point for >= 25 % fewer remote
    // messages, because residual-ordered pushes stop low-value
    // re-advertisements from ever reaching the wire.
    eprintln!("  … engine, pass sched, eps {eps}");
    let (pass_run, pass_ranks) = run_engine(SchedMode::Pass, 0, eps);
    eprintln!("  … engine, priority sched, eps {eps}");
    let (pri_run, pri_ranks) = run_engine(SchedMode::Priority, 0, eps);
    let reduction =
        1.0 - pri_run.total_remote_messages as f64 / pass_run.total_remote_messages.max(1) as f64;
    assert!(
        reduction >= 0.25,
        "priority must cut remote messages >= 25% at eps {eps}, got {:.1}%",
        100.0 * reduction
    );
    rows.push(engine_row(
        SchedMode::Pass,
        0,
        eps,
        pass_run.passes,
        pass_run.total_remote_messages,
    ));
    rows.push(SchedQualityRow {
        msg_reduction_vs_pass: reduction,
        l1_per_doc_vs_pass: l1_per_doc(&pri_ranks, &pass_ranks),
        ..engine_row(
            SchedMode::Priority,
            0,
            eps,
            pri_run.passes,
            pri_run.total_remote_messages,
        )
    });

    // 2. Rank parity at the strict ε, across executor thread counts.
    // The priority schedule is a function of the dirty *set*, so every
    // executor must produce the same bits; vs the pass engine the gap
    // is O(ε) per document.
    eprintln!("  … engine, pass sched, eps {parity_eps} (parity reference)");
    let (pass_ref_run, pass_ref) = run_engine(SchedMode::Pass, 0, parity_eps);
    rows.push(engine_row(
        SchedMode::Pass,
        0,
        parity_eps,
        pass_ref_run.passes,
        pass_ref_run.total_remote_messages,
    ));
    let mut canonical: Option<Vec<f64>> = None;
    for threads in [0usize, 2, 4, 8] {
        eprintln!("  … engine, priority sched, eps {parity_eps}, threads {threads}");
        let (run, ranks) = run_engine(SchedMode::Priority, threads, parity_eps);
        match &canonical {
            Some(c) => assert_eq!(
                c, &ranks,
                "priority schedule must be bit-identical across executors"
            ),
            None => canonical = Some(ranks.clone()),
        }
        let l1 = l1_per_doc(&ranks, &pass_ref);
        assert!(
            l1 <= 1e-9,
            "parity: l1 per doc {l1:e} at {threads} threads exceeds 1e-9"
        );
        rows.push(SchedQualityRow {
            msg_reduction_vs_pass: 1.0
                - run.total_remote_messages as f64
                    / pass_ref_run.total_remote_messages.max(1) as f64,
            l1_per_doc_vs_pass: l1,
            ..engine_row(
                SchedMode::Priority,
                threads,
                parity_eps,
                run.passes,
                run.total_remote_messages,
            )
        });
    }

    // 3. The message-level cluster, both wire modes. Deferred residual
    // mass interoperates with flush scheduling and store-and-resend:
    // the wire path must not perturb the schedule, and the fixed point
    // must still sit within the parity band of the pass cluster.
    if !args.has("skip-cluster") {
        eprintln!("  … cluster, pass sched, singles, eps {parity_eps}");
        let cl_pass = run_wire_mode_sched(&w, parity_eps, SchedMode::Pass, WireMode::Single, false);
        eprintln!("  … cluster, priority sched, singles, eps {parity_eps}");
        let cl_pri =
            run_wire_mode_sched(&w, parity_eps, SchedMode::Priority, WireMode::Single, false);
        eprintln!("  … cluster, priority sched, frames, eps {parity_eps}");
        let cl_pri_frames = run_wire_mode_sched(
            &w,
            parity_eps,
            SchedMode::Priority,
            WireMode::frames(),
            true,
        );
        assert_eq!(
            cl_pri.ranks, cl_pri_frames.ranks,
            "wire path must not perturb the priority schedule"
        );
        let l1 = l1_per_doc(&cl_pri.ranks, &cl_pass.ranks);
        assert!(l1 <= 1e-9, "cluster parity: l1 per doc {l1:e} exceeds 1e-9");
        // At the paper's reference sharding each peer holds only
        // nodes/peers documents — below the bypass threshold the
        // priority queue degenerates to the full sweep by design, so
        // the update count may only tie, never regress.
        assert!(
            cl_pri.traffic.updates <= cl_pass.traffic.updates,
            "cluster priority {} vs pass {} updates",
            cl_pri.traffic.updates,
            cl_pass.traffic.updates
        );
        for (sched, wire, run, l1pd) in [
            (SchedMode::Pass, "single", &cl_pass, 0.0),
            (SchedMode::Priority, "single", &cl_pri, l1),
            (SchedMode::Priority, "frames", &cl_pri_frames, l1),
        ] {
            rows.push(SchedQualityRow {
                layer: "cluster".into(),
                sched: sched.to_string(),
                threads: 0,
                wire: wire.into(),
                epsilon: parity_eps,
                passes: run.traffic.rounds,
                remote_messages: run.traffic.updates,
                msg_reduction_vs_pass: 1.0
                    - run.traffic.updates as f64 / cl_pass.traffic.updates.max(1) as f64,
                l1_per_doc_vs_pass: l1pd,
            });
        }

        // 4. A denser sharding (~250 docs per peer) where the per-peer
        // residual queues clear the bypass threshold: here selection
        // engages at the node layer too and the wire itself carries
        // measurably fewer logical updates.
        let dense_peers = (nodes / 250).max(4);
        let w_dense = Workload::paper(nodes, dense_peers, args.seed());
        eprintln!("  … dense cluster ({dense_peers} peers), pass sched, eps {eps}");
        let dn_pass = run_wire_mode_sched(&w_dense, eps, SchedMode::Pass, WireMode::Single, false);
        eprintln!("  … dense cluster ({dense_peers} peers), priority sched, eps {eps}");
        let dn_pri =
            run_wire_mode_sched(&w_dense, eps, SchedMode::Priority, WireMode::Single, false);
        assert!(
            dn_pri.traffic.updates < dn_pass.traffic.updates,
            "dense cluster priority {} vs pass {} updates",
            dn_pri.traffic.updates,
            dn_pass.traffic.updates
        );
        let dn_l1 = l1_per_doc(&dn_pri.ranks, &dn_pass.ranks);
        for (sched, run, l1pd) in [
            (SchedMode::Pass, &dn_pass, 0.0),
            (SchedMode::Priority, &dn_pri, dn_l1),
        ] {
            rows.push(SchedQualityRow {
                layer: "cluster-dense".into(),
                sched: sched.to_string(),
                threads: 0,
                wire: "single".into(),
                epsilon: eps,
                passes: run.traffic.rounds,
                remote_messages: run.traffic.updates,
                msg_reduction_vs_pass: 1.0
                    - run.traffic.updates as f64 / dn_pass.traffic.updates.max(1) as f64,
                l1_per_doc_vs_pass: l1pd,
            });
        }

        // 5. The event-driven chaotic runtime at the *default* density,
        // where the round-barrier rows of section 3 can only tie.
        // Residual-driven step timing (hot peers step promptly, cold
        // peers hold a coalescing window) moves the priority win to the
        // cluster layer itself: this is a hard regression gate — a
        // chaotic priority row reporting a reduction <= 0% fails the
        // bench.
        eprintln!("  … chaotic cluster, pass sched, eps {eps}");
        let (ch_pass_out, ch_pass_ranks, ch_pass_msgs, _) = run_chaotic_cluster(
            &w,
            eps,
            SchedMode::Pass,
            LatencyModel::default(),
            args.seed(),
        );
        eprintln!("  … chaotic cluster, priority sched, eps {eps}");
        let (ch_pri_out, ch_pri_ranks, ch_pri_msgs, _) = run_chaotic_cluster(
            &w,
            eps,
            SchedMode::Priority,
            LatencyModel::default(),
            args.seed(),
        );
        let ch_reduction = 1.0 - ch_pri_msgs as f64 / ch_pass_msgs.max(1) as f64;
        assert!(
            ch_reduction > 0.0,
            "chaotic cluster: priority must strictly cut remote messages \
             at eps {eps}, got {:.1}% ({ch_pri_msgs} vs {ch_pass_msgs})",
            100.0 * ch_reduction
        );
        let ch_l1 = l1_per_doc(&ch_pri_ranks, &ch_pass_ranks);
        for (sched, out, msgs, red, l1pd) in [
            (SchedMode::Pass, &ch_pass_out, ch_pass_msgs, 0.0, 0.0),
            (
                SchedMode::Priority,
                &ch_pri_out,
                ch_pri_msgs,
                ch_reduction,
                ch_l1,
            ),
        ] {
            rows.push(SchedQualityRow {
                layer: "cluster-chaotic".into(),
                sched: sched.to_string(),
                threads: 0,
                wire: "frames".into(),
                epsilon: eps,
                passes: out.steps as usize,
                remote_messages: msgs,
                msg_reduction_vs_pass: red,
                l1_per_doc_vs_pass: l1pd,
            });
        }
    }

    let mut table = TextTable::new([
        "layer",
        "sched",
        "threads",
        "wire",
        "eps",
        "passes",
        "remote msgs",
        "reduction",
        "l1/doc vs pass",
    ]);
    for r in &rows {
        table.push([
            r.layer.clone(),
            r.sched.clone(),
            r.threads.to_string(),
            r.wire.clone(),
            fmt_eps(r.epsilon),
            r.passes.to_string(),
            r.remote_messages.to_string(),
            format!("{:.1}%", 100.0 * r.msg_reduction_vs_pass),
            format!("{:.1e}", r.l1_per_doc_vs_pass),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(priority rows are bit-identical across executors and wire modes; deferred\n\
         residual mass is never lost — quiescence still means no residual above eps)"
    );

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let params = format!(
        "nodes={nodes} peers={peers_n} eps={eps} parity_eps={parity_eps} seed={}",
        args.seed()
    );
    let path = ExperimentRecord::new("BENCH_sched_quality", params.clone(), rows)
        .with_meta(bench_meta(
            args,
            params,
            "raw",
            "rounds+chaotic",
            "pass+priority",
        ))
        .write_to_dir(dir)
        .expect("write BENCH_sched_quality.json");
    println!("\nwrote {}", path.display());
}

/// One row of `BENCH_async.json`: a full convergence run of one
/// (run mode, latency model, scheduler) configuration of the
/// message-level cluster. `steps` counts cluster rounds in rounds mode
/// and peer step events in chaotic mode; `virtual_secs` is the
/// event-clock time to quiescence under the per-link latency/bandwidth
/// model (zero in rounds mode, which has no network clock).
/// `msg_reduction_vs_pass` compares against the pass-scheduled run of
/// the same mode, latency, and ε; `l1_per_doc_vs_rounds` is the
/// matched-error column — the per-document gap to the round-barrier
/// pass cluster at the same ε. The three `*_pct` columns are the
/// causal profiler's attribution of the virtual wall-clock (they sum
/// to 100 by the exact-telescoping invariant); `null` on rounds rows,
/// which have no network clock to attribute.
#[derive(Debug, Clone, Serialize)]
struct AsyncScalingRow {
    run_mode: String,
    latency: String,
    sched: String,
    epsilon: f64,
    steps: u64,
    deliveries: u64,
    remote_messages: u64,
    virtual_secs: f64,
    msg_reduction_vs_pass: f64,
    l1_per_doc_vs_sync: f64,
    l1_per_doc_vs_rounds: f64,
    compute_pct: Option<f64>,
    wire_pct: Option<f64>,
    wait_pct: Option<f64>,
}

fn async_scaling(args: &Args) {
    let nodes: usize = args.get("nodes", 10_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let parity_eps: f64 = args.get("parity-eps", 1e-9);
    let w = Workload::paper(nodes, peers_n, args.seed());
    let n = nodes as f64;

    println!(
        "Chaotic async runtime scaling ({nodes} docs, {peers_n} peers, \
         working eps {eps}, parity eps {parity_eps})\n"
    );

    let sync = SyncSolver::new().tolerance(1e-13).solve(&w.graph).ranks;
    let l1 = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / n;
    let mut rows: Vec<AsyncScalingRow> = Vec::new();

    // Context: the engine-layer priority win at the working ε, so the
    // summary can report how much of it the cluster recovers.
    let run_engine = |sched: SchedMode| {
        let mut engine = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(eps).with_sched(sched),
        );
        let mut peers = w.peer_table();
        let run = engine.run_to_convergence(&mut peers, None);
        assert!(run.converged, "async-scaling engine run must converge");
        run.total_remote_messages
    };
    eprintln!("  … engine reference, eps {eps}");
    let engine_reduction =
        1.0 - run_engine(SchedMode::Priority) as f64 / run_engine(SchedMode::Pass).max(1) as f64;

    // 1. Round-barrier reference at the working ε. At the paper's
    // default density (nodes/peers docs per peer) the priority cluster
    // can only tie the pass cluster here — every round sweeps every
    // peer regardless of residual, so there is nothing for the
    // schedule to skip. This is the 0% the chaotic rows beat.
    eprintln!("  … rounds cluster, pass sched, eps {eps}");
    let rd_pass = run_wire_mode_sched(&w, eps, SchedMode::Pass, WireMode::frames(), true);
    eprintln!("  … rounds cluster, priority sched, eps {eps}");
    let rd_pri = run_wire_mode_sched(&w, eps, SchedMode::Priority, WireMode::frames(), true);
    for (sched, run, red, l1r) in [
        (SchedMode::Pass, &rd_pass, 0.0, 0.0),
        (
            SchedMode::Priority,
            &rd_pri,
            1.0 - rd_pri.traffic.updates as f64 / rd_pass.traffic.updates.max(1) as f64,
            l1(&rd_pri.ranks, &rd_pass.ranks),
        ),
    ] {
        rows.push(AsyncScalingRow {
            run_mode: "rounds".into(),
            latency: "none".into(),
            sched: sched.to_string(),
            epsilon: eps,
            steps: run.traffic.rounds as u64,
            deliveries: 0,
            remote_messages: run.traffic.updates,
            virtual_secs: 0.0,
            msg_reduction_vs_pass: red,
            l1_per_doc_vs_sync: l1(&run.ranks, &sync),
            l1_per_doc_vs_rounds: l1r,
            compute_pct: None,
            wire_pct: None,
            wait_pct: None,
        });
    }

    // 2. The chaotic runtime across latency distributions. Event-driven
    // stepping gives the priority schedule something rounds never did:
    // *when* to step. Hot peers (residual mass far above ε) step as
    // soon as their Eq. 4 compute time allows; cold peers hold a
    // coalescing window so late-arriving updates merge into one step.
    // Every latency model must show a strictly positive reduction.
    let mut chaotic_reductions: Vec<(LatencyModel, f64)> = Vec::new();
    for latency in [
        LatencyModel::Modem,
        LatencyModel::Broadband,
        LatencyModel::Lan,
    ] {
        eprintln!("  … chaotic cluster ({latency}), pass sched, eps {eps}");
        let (pass_out, pass_ranks, pass_msgs, pass_prof) =
            run_chaotic_cluster(&w, eps, SchedMode::Pass, latency, args.seed());
        eprintln!("  … chaotic cluster ({latency}), priority sched, eps {eps}");
        let (pri_out, pri_ranks, pri_msgs, pri_prof) =
            run_chaotic_cluster(&w, eps, SchedMode::Priority, latency, args.seed());
        let red = 1.0 - pri_msgs as f64 / pass_msgs.max(1) as f64;
        assert!(
            red > 0.0,
            "chaotic {latency}: priority must strictly cut remote messages, \
             got {:.1}% ({pri_msgs} vs {pass_msgs})",
            100.0 * red
        );
        chaotic_reductions.push((latency, red));
        for (sched, out, ranks, msgs, r, prof) in [
            (
                SchedMode::Pass,
                &pass_out,
                &pass_ranks,
                pass_msgs,
                0.0,
                &pass_prof,
            ),
            (
                SchedMode::Priority,
                &pri_out,
                &pri_ranks,
                pri_msgs,
                red,
                &pri_prof,
            ),
        ] {
            rows.push(AsyncScalingRow {
                run_mode: "chaotic".into(),
                latency: latency.to_string(),
                sched: sched.to_string(),
                epsilon: eps,
                steps: out.steps,
                deliveries: out.deliveries,
                remote_messages: msgs,
                virtual_secs: out.virtual_ns as f64 / 1e9,
                msg_reduction_vs_pass: r,
                l1_per_doc_vs_sync: l1(ranks, &sync),
                l1_per_doc_vs_rounds: l1(ranks, &rd_pass.ranks),
                compute_pct: Some(prof.compute_pct()),
                wire_pct: Some(prof.wire_pct()),
                wait_pct: Some(prof.wait_pct()),
            });
        }
    }

    // 3. Matched error at the strict parity ε: the reduction above is
    // only meaningful if chaotic mode lands on the same fixed point.
    // Both chaotic schedules must sit within 1e-9/doc of the
    // round-barrier pass cluster — stronger (by the triangle
    // inequality) than merely matching its distance to the sync
    // solution.
    eprintln!("  … rounds cluster, pass sched, eps {parity_eps} (parity reference)");
    let rd_ref = run_wire_mode_sched(&w, parity_eps, SchedMode::Pass, WireMode::frames(), true);
    rows.push(AsyncScalingRow {
        run_mode: "rounds".into(),
        latency: "none".into(),
        sched: SchedMode::Pass.to_string(),
        epsilon: parity_eps,
        steps: rd_ref.traffic.rounds as u64,
        deliveries: 0,
        remote_messages: rd_ref.traffic.updates,
        virtual_secs: 0.0,
        msg_reduction_vs_pass: 0.0,
        l1_per_doc_vs_sync: l1(&rd_ref.ranks, &sync),
        l1_per_doc_vs_rounds: 0.0,
        compute_pct: None,
        wire_pct: None,
        wait_pct: None,
    });
    for sched in [SchedMode::Pass, SchedMode::Priority] {
        eprintln!("  … chaotic cluster (broadband), {sched} sched, eps {parity_eps}");
        let (out, ranks, msgs, prof) =
            run_chaotic_cluster(&w, parity_eps, sched, LatencyModel::Broadband, args.seed());
        let gap = l1(&ranks, &rd_ref.ranks);
        assert!(
            gap <= 1e-9,
            "matched error: chaotic {sched} l1 per doc {gap:e} vs rounds \
             exceeds 1e-9 at eps {parity_eps}"
        );
        rows.push(AsyncScalingRow {
            run_mode: "chaotic".into(),
            latency: LatencyModel::Broadband.to_string(),
            sched: sched.to_string(),
            epsilon: parity_eps,
            steps: out.steps,
            deliveries: out.deliveries,
            remote_messages: msgs,
            virtual_secs: out.virtual_ns as f64 / 1e9,
            msg_reduction_vs_pass: 0.0,
            l1_per_doc_vs_sync: l1(&ranks, &sync),
            l1_per_doc_vs_rounds: gap,
            compute_pct: Some(prof.compute_pct()),
            wire_pct: Some(prof.wire_pct()),
            wait_pct: Some(prof.wait_pct()),
        });
    }

    let mut table = TextTable::new([
        "mode",
        "latency",
        "sched",
        "eps",
        "steps",
        "deliveries",
        "remote msgs",
        "virtual s",
        "cmp/wire/wait",
        "reduction",
        "l1/doc vs rounds",
    ]);
    for r in &rows {
        table.push([
            r.run_mode.clone(),
            r.latency.clone(),
            r.sched.clone(),
            fmt_eps(r.epsilon),
            r.steps.to_string(),
            r.deliveries.to_string(),
            r.remote_messages.to_string(),
            if r.virtual_secs == 0.0 {
                "-".into()
            } else {
                format!("{:.2}", r.virtual_secs)
            },
            match (r.compute_pct, r.wire_pct, r.wait_pct) {
                (Some(c), Some(wi), Some(wa)) => format!("{c:.0}/{wi:.0}/{wa:.0}%"),
                _ => "-".into(),
            },
            format!("{:.1}%", 100.0 * r.msg_reduction_vs_pass),
            format!("{:.1e}", r.l1_per_doc_vs_rounds),
        ]);
    }
    println!("{}", table.render());
    let best = chaotic_reductions
        .iter()
        .map(|&(_, r)| r)
        .fold(0.0, f64::max);
    println!(
        "(engine-layer priority reduction at eps {eps}: {:.1}%; best chaotic \
         cluster reduction: {:.1}% — {:.0}% of the engine win recovered at the \
         cluster layer, vs 0% under round barriers)",
        100.0 * engine_reduction,
        100.0 * best,
        100.0 * best / engine_reduction.max(1e-12)
    );

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let params = format!(
        "nodes={nodes} peers={peers_n} eps={eps} parity_eps={parity_eps} seed={}",
        args.seed()
    );
    let path = ExperimentRecord::new("BENCH_async", params.clone(), rows)
        .with_meta(bench_meta(
            args,
            params,
            "raw",
            "rounds+chaotic",
            "pass+priority",
        ))
        .write_to_dir(dir)
        .expect("write BENCH_async.json");
    println!("\nwrote {}", path.display());
}

/// One row of `BENCH_accel.json`. `section == "clean"` rows are full
/// convergence runs (engine or chaotic cluster) under one scheduler at
/// the working ε — `remote_messages` counts engine remote messages or
/// cluster emitted remote entries, and every row must sit inside the
/// same L1-vs-sync error band, so the reduction column compares equal
/// answers. `section == "burst"` rows replay one mutation burst
/// (insert or delete) under one strategy (`sched` is `global` or
/// `localized`) at the strict burst ε — `remote_messages` counts wave
/// update messages and `l1_per_doc_vs_baseline` is the rank parity
/// against the global protocol. `virtual_secs` is the chaotic event
/// clock (`null` where no network clock exists); cone columns are the
/// SCC cone the localized wave was certified against (`null`
/// elsewhere).
#[derive(Debug, Clone, Serialize)]
struct AccelRow {
    section: String,
    layer: String,
    latency: String,
    sched: String,
    epsilon: f64,
    steps: u64,
    remote_messages: u64,
    virtual_secs: Option<f64>,
    msg_reduction_vs_baseline: f64,
    l1_per_doc_vs_sync: Option<f64>,
    l1_per_doc_vs_baseline: f64,
    cone_docs: Option<usize>,
    cone_components: Option<usize>,
}

fn accel_scaling(args: &Args) {
    use dpr_core::incremental::{
        delete_burst, delete_document, insert_burst, insert_document, PropagationConfig,
    };
    use dpr_graph::scc::SccIndex;
    use dpr_graph::{DocId, DynamicGraph};

    let nodes: usize = args.get("nodes", 10_000);
    let peers_n: usize = args.get("peers", dpr_sim::workload::PAPER_NUM_PEERS);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);
    let burst_eps: f64 = args.get("burst-eps", 1e-14);
    let inserts: usize = args.get("inserts", 24);
    let deletes: usize = args.get("deletes", 12).min(inserts);
    let w = Workload::paper(nodes, peers_n, args.seed());
    let n = nodes as f64;

    println!(
        "Update-accelerator sweep ({nodes} docs, {peers_n} peers, working eps {eps}, \
         burst eps {burst_eps}, {inserts} inserts / {deletes} deletes)\n"
    );

    let sync = SyncSolver::new().tolerance(1e-13).solve(&w.graph).ranks;
    let l1 = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / n;
    let mut rows: Vec<AccelRow> = Vec::new();

    // 1. Clean convergence, sequential engine: greedy matching pursuit
    // vs whole-bucket priority vs full-sweep pass. All three must land
    // in the same L1-vs-sync error band (that is the "matched error"
    // that makes the message counts comparable), and greedy's exact
    // budget cut must spend no more remote messages than priority's
    // bucket boundary.
    let run_engine = |sched: SchedMode| {
        let mut engine = ChaoticEngine::new(
            w.graph.clone(),
            w.owners(),
            EngineConfig::with_epsilon(eps).with_sched(sched),
        );
        let mut peers = w.peer_table();
        let run = engine.run_to_convergence(&mut peers, None);
        assert!(run.converged, "accel-scaling engine run must converge");
        (run, engine.ranks().to_vec())
    };
    let scheds = [SchedMode::Pass, SchedMode::Priority, SchedMode::Greedy];
    // The shared matched-error band: per-document quiescence residual
    // < ε amplifies through the damped link structure by at most
    // d/(1−d) ≈ 5.7×, so 10ε bounds every scheduler's honest distance
    // to the synchronous fixed point.
    let band = 10.0 * eps;
    let mut engine_msgs = [0u64; 3];
    let mut engine_pass_ranks: Vec<f64> = Vec::new();
    for (i, sched) in scheds.into_iter().enumerate() {
        eprintln!("  … engine, {sched} sched, eps {eps}");
        let (run, ranks) = run_engine(sched);
        engine_msgs[i] = run.total_remote_messages;
        let l1_sync = l1(&ranks, &sync);
        assert!(
            l1_sync <= band,
            "engine {sched}: l1 per doc vs sync {l1_sync:e} escapes the 10eps band {band:e}"
        );
        if i == 0 {
            engine_pass_ranks = ranks.clone();
        }
        rows.push(AccelRow {
            section: "clean".into(),
            layer: "engine".into(),
            latency: "none".into(),
            sched: sched.to_string(),
            epsilon: eps,
            steps: run.passes as u64,
            remote_messages: run.total_remote_messages,
            virtual_secs: None,
            msg_reduction_vs_baseline: 1.0
                - run.total_remote_messages as f64 / engine_msgs[0].max(1) as f64,
            l1_per_doc_vs_sync: Some(l1_sync),
            l1_per_doc_vs_baseline: l1(&ranks, &engine_pass_ranks),
            cone_docs: None,
            cone_components: None,
        });
    }
    assert!(
        engine_msgs[2] < engine_msgs[0] && engine_msgs[2] <= engine_msgs[1],
        "engine greedy must beat pass and not exceed priority: \
         greedy {} vs priority {} vs pass {}",
        engine_msgs[2],
        engine_msgs[1],
        engine_msgs[0]
    );

    // 2. Clean convergence, chaotic cluster, every latency model. The
    // greedy schedule feeds the same residual-driven step timing as
    // priority; the acceptance gate is that its tighter selection wins
    // (or ties) the remote-message count in at least one latency model
    // while staying inside the shared error band.
    let mut greedy_wins = 0usize;
    for latency in [
        LatencyModel::Modem,
        LatencyModel::Broadband,
        LatencyModel::Lan,
    ] {
        let mut msgs = [0u64; 3];
        for (i, sched) in scheds.into_iter().enumerate() {
            eprintln!("  … chaotic cluster ({latency}), {sched} sched, eps {eps}");
            let (out, ranks, m, _) = run_chaotic_cluster(&w, eps, sched, latency, args.seed());
            msgs[i] = m;
            let l1_sync = l1(&ranks, &sync);
            assert!(
                l1_sync <= band,
                "chaotic {latency} {sched}: l1 per doc vs sync {l1_sync:e} \
                 escapes the 10eps band {band:e}"
            );
            rows.push(AccelRow {
                section: "clean".into(),
                layer: "cluster-chaotic".into(),
                latency: latency.to_string(),
                sched: sched.to_string(),
                epsilon: eps,
                steps: out.steps,
                remote_messages: m,
                virtual_secs: Some(out.virtual_ns as f64 / 1e9),
                msg_reduction_vs_baseline: 1.0 - m as f64 / msgs[0].max(1) as f64,
                l1_per_doc_vs_sync: Some(l1_sync),
                l1_per_doc_vs_baseline: 0.0,
                cone_docs: None,
                cone_components: None,
            });
        }
        if msgs[2] <= msgs[1] && msgs[2] < msgs[0] {
            greedy_wins += 1;
        }
    }
    assert!(
        greedy_wins >= 1,
        "greedy must beat or match priority's remote messages (while beating pass) \
         in at least one latency model"
    );

    // 3. Mutation bursts: the global Sec. 3.1 protocol (one wave per
    // document, swept over the whole graph) vs the SCC-localized
    // protocol (one merged wave per burst, certified against the
    // condensation-DAG downstream cone). Same strict ε on both sides,
    // so the parity gap is pure wave-merging truncation —
    // O(ε × generations), held under 1e-9/doc — while the merged wave
    // must generate strictly fewer update messages.
    let cfg = PropagationConfig {
        damping: dpr_core::DEFAULT_DAMPING,
        epsilon: burst_eps,
    };
    let base = DynamicGraph::from_csr(&w.graph);
    let base_ranks = vec![1.0f64; nodes];
    // xorshift64* link picks: deterministic in the seed, no rand dep.
    let mut state = args.seed().wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let batches: Vec<Vec<DocId>> = (0..inserts)
        .map(|_| {
            (0..1 + (next() % 4) as usize)
                .map(|_| DocId((next() % nodes as u64) as u32))
                .collect()
        })
        .collect();

    eprintln!("  … insert burst, global per-document waves, eps {burst_eps}");
    let mut g_graph = base.clone();
    let mut g_ranks = base_ranks.clone();
    let mut global_insert = dpr_core::incremental::PropagationStats::default();
    for links in &batches {
        let (_, s) = insert_document(&mut g_graph, links, &mut g_ranks, cfg);
        global_insert.messages += s.messages;
        global_insert.node_coverage += s.node_coverage;
        global_insert.path_length = global_insert.path_length.max(s.path_length);
    }
    eprintln!("  … insert burst, SCC-localized merged wave, eps {burst_eps}");
    let mut l_graph = base.clone();
    let mut index = SccIndex::new(&l_graph);
    let mut l_ranks = base_ranks.clone();
    let (new_ids, ins) = insert_burst(&mut l_graph, &mut index, &batches, &mut l_ranks, cfg);
    assert!(
        ins.wave.messages < global_insert.messages,
        "localized insert burst must generate strictly fewer update messages: \
         {} vs {}",
        ins.wave.messages,
        global_insert.messages
    );
    let insert_parity = g_ranks
        .iter()
        .zip(&l_ranks)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        insert_parity <= 1e-9,
        "insert burst parity: max per-doc gap {insert_parity:e} exceeds 1e-9"
    );
    let burst_row = |burst: &str,
                     sched: &str,
                     steps: u64,
                     msgs: u64,
                     baseline: u64,
                     parity: f64,
                     cone: Option<(usize, usize)>| {
        AccelRow {
            section: "burst".into(),
            layer: burst.into(),
            latency: "none".into(),
            sched: sched.into(),
            epsilon: burst_eps,
            steps,
            remote_messages: msgs,
            virtual_secs: None,
            msg_reduction_vs_baseline: 1.0 - msgs as f64 / baseline.max(1) as f64,
            l1_per_doc_vs_sync: None,
            l1_per_doc_vs_baseline: parity,
            cone_docs: cone.map(|(d, _)| d),
            cone_components: cone.map(|(_, c)| c),
        }
    };
    rows.push(burst_row(
        "insert",
        "global",
        global_insert.node_coverage as u64,
        global_insert.messages,
        global_insert.messages,
        0.0,
        None,
    ));
    rows.push(burst_row(
        "insert",
        "localized",
        ins.wave.node_coverage as u64,
        ins.wave.messages,
        global_insert.messages,
        insert_parity,
        Some((ins.cone_docs, ins.cone_components)),
    ));

    eprintln!("  … delete burst, global per-document waves, eps {burst_eps}");
    let victims: Vec<DocId> = new_ids.iter().take(deletes).copied().collect();
    let mut global_delete = dpr_core::incremental::PropagationStats::default();
    for &d in &victims {
        let s = delete_document(&mut g_graph, d, &mut g_ranks, cfg);
        global_delete.messages += s.messages;
        global_delete.node_coverage += s.node_coverage;
        global_delete.path_length = global_delete.path_length.max(s.path_length);
    }
    eprintln!("  … delete burst, SCC-localized merged wave, eps {burst_eps}");
    let del = delete_burst(&mut l_graph, &mut index, &victims, &mut l_ranks, cfg);
    assert!(
        del.wave.messages < global_delete.messages,
        "localized delete burst must generate strictly fewer update messages: \
         {} vs {}",
        del.wave.messages,
        global_delete.messages
    );
    let delete_parity = g_ranks
        .iter()
        .zip(&l_ranks)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        delete_parity <= 1e-9,
        "delete burst parity: max per-doc gap {delete_parity:e} exceeds 1e-9"
    );
    rows.push(burst_row(
        "delete",
        "global",
        global_delete.node_coverage as u64,
        global_delete.messages,
        global_delete.messages,
        0.0,
        None,
    ));
    rows.push(burst_row(
        "delete",
        "localized",
        del.wave.node_coverage as u64,
        del.wave.messages,
        global_delete.messages,
        delete_parity,
        Some((del.cone_docs, del.cone_components)),
    ));

    let mut table = TextTable::new([
        "section",
        "layer",
        "latency",
        "sched",
        "eps",
        "steps",
        "remote msgs",
        "virtual s",
        "reduction",
        "cone docs",
    ]);
    for r in &rows {
        table.push([
            r.section.clone(),
            r.layer.clone(),
            r.latency.clone(),
            r.sched.clone(),
            fmt_eps(r.epsilon),
            r.steps.to_string(),
            r.remote_messages.to_string(),
            match r.virtual_secs {
                Some(s) => format!("{s:.2}"),
                None => "-".into(),
            },
            format!("{:.1}%", 100.0 * r.msg_reduction_vs_baseline),
            match r.cone_docs {
                Some(d) => d.to_string(),
                None => "-".into(),
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "(clean rows all sit within the 10eps L1-vs-sync band, so the message counts\n\
         compare equal answers; burst rows hold 1e-9/doc parity while the localized\n\
         merged wave never leaves its certified SCC downstream cone)"
    );

    let dir = std::env::var_os("DPR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let params = format!(
        "nodes={nodes} peers={peers_n} eps={eps} burst_eps={burst_eps} \
         inserts={inserts} deletes={deletes} seed={}",
        args.seed()
    );
    let path = ExperimentRecord::new("BENCH_accel", params.clone(), rows)
        .with_meta(bench_meta(
            args,
            params,
            "raw",
            "rounds+chaotic+waves",
            "pass+priority+greedy",
        ))
        .write_to_dir(dir)
        .expect("write BENCH_accel.json");
    println!("\nwrote {}", path.display());
}

/// `--serving`: the serving-path workload. Serves a Poisson query
/// stream against the live rank computation — concurrent updates and
/// transient churn included — under each latency model and each of the
/// three query strategies (baseline full transfer, top-10 %
/// incremental, Bloom-assisted intersection), and writes the latency
/// quantiles, per-query hop/byte averages, the rank-staleness gauge,
/// and the SLO verdicts to BENCH_serving.json. Gates enforced here:
/// the incremental and Bloom strategies must move less traffic than
/// the baseline, every run's SLO verdict must pass, serving must be
/// deterministic per seed, and telemetry must not perturb the served
/// run (bit-identical schedule fingerprint and quantiles with the
/// recorder on).
fn serving_scaling(args: &Args) {
    use dpr_sim::serving::{serving_experiment, ServeStrategy, ServingConfig, ServingReport};
    use dpr_telemetry::{SloSpec, TraceRecorder};

    let nodes: usize = args.get("nodes", 2_000);
    let peers_n: usize = args.get("peers", 32);
    let queries: usize = args.get("queries", 120);
    let updates: usize = args.get("updates", 24);
    let qps: f64 = args.get("qps", 20.0);
    let churn: f64 = args.get("churn", 0.8);
    let eps: f64 = args.get("eps", 1e-4);
    println!(
        "Serving-path workload ({nodes} docs, {peers_n} peers, {queries} queries at \
         {qps} qps, {updates} concurrent updates, churn {churn})\n"
    );

    let base_cfg = |latency: LatencyModel, strategy: ServeStrategy| ServingConfig {
        num_docs: nodes,
        vocab_size: args.get("vocab", 400),
        num_peers: peers_n,
        queries,
        query_len: 2,
        qps,
        updates,
        churn_fraction: churn,
        strategy,
        latency,
        sched: args.sched_mode(),
        epsilon: eps,
        seed: args.seed(),
        // The bench SLO: p99 within 60 s of virtual time on every
        // window — generous enough for modem, real enough to catch a
        // latency-model regression by orders of magnitude.
        slos: vec![SloSpec::new("p99-latency", 0.99, 60_000_000_000, 0.0)],
        window_ns: 2_000_000_000,
    };

    let mut rows: Vec<ServingReport> = Vec::new();
    for latency in [
        LatencyModel::Lan,
        LatencyModel::Broadband,
        LatencyModel::Modem,
    ] {
        let mut traffic = std::collections::HashMap::new();
        for strategy in [
            ServeStrategy::Baseline,
            ServeStrategy::Incremental {
                forward_fraction: 0.10,
            },
            ServeStrategy::Bloom,
        ] {
            let run = serving_experiment(&base_cfg(latency, strategy), &dpr_telemetry::NOOP);
            assert!(run.report.quiesced, "serving run must quiesce");
            assert!(
                run.report.slo_pass,
                "{latency}/{strategy}: bench SLO verdict failed"
            );
            traffic.insert(strategy.to_string(), run.report.total_traffic_ids);
            rows.push(run.report);
        }
        let base = traffic["baseline"];
        for s in ["incremental", "bloom"] {
            assert!(
                traffic[s] < base,
                "{latency}: {s} traffic {} must undercut baseline {base}",
                traffic[s]
            );
        }
    }

    // Determinism + zero perturbation, pinned at bench scale: the same
    // config re-served (with telemetry on) reproduces the schedule
    // fingerprint and every latency quantile bit for bit.
    let pin_cfg = base_cfg(
        LatencyModel::Broadband,
        ServeStrategy::Incremental {
            forward_fraction: 0.10,
        },
    );
    let pin = rows
        .iter()
        .find(|r| r.latency == "broadband" && r.strategy == "incremental")
        .expect("pinned row exists");
    let rec = TraceRecorder::new();
    let again = serving_experiment(&pin_cfg, &rec).report;
    assert_eq!(pin.schedule_fnv, again.schedule_fnv, "schedule perturbed");
    assert_eq!(
        (pin.p50_ns, pin.p95_ns, pin.p99_ns, pin.p999_ns),
        (again.p50_ns, again.p95_ns, again.p99_ns, again.p999_ns),
        "quantiles perturbed"
    );
    assert_eq!(pin.total_traffic_ids, again.total_traffic_ids);
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e, dpr_telemetry::Event::ServingHealth { .. })),
        "traced serving run must emit serving_health"
    );

    let mut table = TextTable::new([
        "latency",
        "strategy",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "hops/q",
        "bytes/q",
        "traffic ids",
        "stale p99 ppm",
        "slo",
    ]);
    for r in &rows {
        table.push([
            r.latency.clone(),
            r.strategy.clone(),
            format!("{:.1}", r.p50_ns as f64 / 1e6),
            format!("{:.1}", r.p99_ns as f64 / 1e6),
            format!("{:.1}", r.p999_ns as f64 / 1e6),
            format!("{:.1}", r.avg_hops),
            fmt_bytes(r.avg_bytes as u64),
            r.total_traffic_ids.to_string(),
            r.stale_p99_ppm.to_string(),
            if r.slo_pass {
                "pass".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "(every row serves the same schedule: queries never perturb the rank\n\
         computation, and the incremental/bloom strategies undercut baseline\n\
         traffic under every latency model — the paper's Sec. 2.4.3 cut, held\n\
         under concurrent updates and churn)"
    );

    let params = format!(
        "nodes={nodes} peers={peers_n} queries={queries} qps={qps} updates={updates} \
         churn={churn} eps={eps} seed={}",
        args.seed()
    );
    let path = ExperimentRecord::new("BENCH_serving", params.clone(), rows)
        .with_meta(bench_meta(
            args,
            params,
            "raw",
            "chaotic+serving",
            &args.sched_mode().to_string(),
        ))
        .write_to_dir(results_dir())
        .expect("write BENCH_serving.json");
    println!("\nwrote {}", path.display());
}

fn main() {
    let args = Args::parse();
    if args.has("pass-scaling") {
        pass_scaling(&args);
        return;
    }
    if args.has("batch-scaling") {
        batch_scaling(&args);
        return;
    }
    if args.has("scale") {
        scale(&args);
        return;
    }
    if args.has("sched-scaling") {
        sched_scaling(&args);
        return;
    }
    if args.has("async-scaling") {
        async_scaling(&args);
        return;
    }
    if args.has("accel-scaling") {
        accel_scaling(&args);
        return;
    }
    if args.has("serving") {
        serving_scaling(&args);
        return;
    }
    let trace = args.trace();
    let nodes: usize = args.get("nodes", 20_000);
    let inserts: usize = args.get("inserts", 200);
    let checkpoints: usize = args.get("checkpoints", 5);
    let eps: f64 = args.get("eps", dpr_core::RECOMMENDED_EPSILON);

    println!(
        "Continuous accuracy under document churn \
         ({nodes} docs, {inserts} inserts, eps {eps})\n"
    );
    let points = continuous_update_experiment_observed(
        nodes,
        inserts,
        checkpoints,
        eps,
        args.seed(),
        args.exec_mode(),
        args.sched_mode(),
        trace.recorder(),
    );

    let mut table = TextTable::new([
        "inserts",
        "avg rel err",
        "max rel err",
        "wave msgs (cum.)",
        "one recompute",
    ]);
    for p in &points {
        table.push([
            p.inserts.to_string(),
            format!("{:.2e}", p.avg_rel_error),
            format!("{:.2e}", p.max_rel_error),
            p.wave_messages.to_string(),
            p.recompute_messages.to_string(),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().expect("at least one checkpoint");
    println!(
        "after {} inserts the incrementally maintained ranks sit at {:.2e} average\n\
         relative error from a from-scratch solve — and maintaining them cost {} \n\
         messages total, vs {} for a single recompute (which a crawler-based\n\
         pipeline would have to repeat every cycle).",
        last.inserts, last.avg_rel_error, last.wave_messages, last.recompute_messages
    );

    if args.json() {
        let params = format!(
            "nodes={nodes} inserts={inserts} eps={eps} sched={} seed={}",
            args.sched_mode(),
            args.seed()
        );
        let sched = args.sched_mode().to_string();
        let path = ExperimentRecord::new("continuous", params.clone(), points)
            .with_meta(bench_meta(&args, params, "none", "rounds", &sched))
            .write_to_dir(results_dir())
            .expect("write results");
        println!("\nwrote {}", path.display());
    }
    trace.finish();
}
