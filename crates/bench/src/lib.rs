//! # dpr-bench — experiment regenerators and micro-benchmarks
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary | regenerates | paper section |
//! |--------|-------------|---------------|
//! | `table1` | convergence passes vs size × presence | Sec. 4.3, Table 1 |
//! | `table2` | relative-error distribution vs ε | Sec. 4.4, Table 2 |
//! | `table3` | message traffic + execution time vs ε | Sec. 4.5/4.6, Table 3 |
//! | `table4` | insert path length & node coverage vs ε | Sec. 4.7, Table 4 |
//! | `table5` | qualitative summary from measured JSON | Table 5 |
//! | `table6` | incremental-search traffic reduction | Sec. 4.9, Table 6 |
//! | `continuous` | continuously-accurate ranks under churn | abstract claim |
//! | `figure2` | the increment-propagation worked example | Sec. 4.7, Fig. 2 |
//! | `ablations` | design-choice ablations from DESIGN.md | — |
//!
//! Every binary accepts `--sizes a,b,c`, `--seed n`, `--json` (dump a
//! JSON record into `results/`), and `--full` (paper-scale sizes; slow
//! on a laptop). The engine-driving binaries (`table1`–`table3`,
//! `continuous`, `ablations`) also take `--trace-out FILE` (JSONL
//! telemetry event trace, viewable with `dpr trace`) and `--prom-out
//! FILE` (Prometheus text snapshot of the run's metrics), and
//! `table1`–`table3`/`continuous` take `--threads n` to run passes on
//! the sharded executor — results are bit-identical to the default
//! sequential run — and `--sched pass|priority|greedy` (the shared
//! [`dpr_core::SCHED_HELP`] mode list) to pick the scheduler: full
//! sweep, residual-driven Gauss–Southwell bucket selection, or greedy
//! matching pursuit. `continuous --sched-scaling` measures the priority
//! scheduler's message saving and parity and writes
//! `BENCH_sched_quality.json`. `cargo bench -p dpr-bench` runs the
//! criterion micro-benchmarks over the hot kernels.

use dpr_telemetry::{Recorder, TraceRecorder, NOOP};
use std::collections::HashMap;
use std::sync::Arc;

/// The ε sweep of Tables 2 and 3.
pub const TABLE23_EPSILONS: [f64; 7] = [0.2, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];

/// The ε sweep of Table 4.
pub const TABLE4_EPSILONS: [f64; 6] = [0.2, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

/// Default graph sizes for laptop runs.
pub const DEFAULT_SIZES: [usize; 2] = [10_000, 100_000];

/// Minimal flag parser: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                panic!("unexpected positional argument: {a}");
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(name.to_string(), it.next().unwrap());
                }
                _ => out.switches.push(name.to_string()),
            }
        }
        out
    }

    /// Whether a bare switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("bad --{name} {v}: {e:?}")),
            None => default,
        }
    }

    /// A comma-separated list of sizes, honoring `--full`.
    pub fn sizes(&self) -> Vec<usize> {
        if let Some(v) = self.values.get("sizes") {
            return v
                .split(',')
                .map(|s| s.trim().parse().expect("bad --sizes entry"))
                .collect();
        }
        if self.has("full") {
            dpr_sim::workload::PAPER_GRAPH_SIZES.to_vec()
        } else {
            DEFAULT_SIZES.to_vec()
        }
    }

    /// Like [`sizes`](Self::sizes), but with an explicit fallback when
    /// neither `--sizes` nor `--full` was given (for experiments whose
    /// natural sweep differs from [`DEFAULT_SIZES`]).
    pub fn sizes_or(&self, default: &[usize]) -> Vec<usize> {
        if self.values.contains_key("sizes") || self.has("full") {
            self.sizes()
        } else {
            default.to_vec()
        }
    }

    /// RNG seed (`--seed`, default 2003 — the venue year).
    pub fn seed(&self) -> u64 {
        self.get("seed", 2003u64)
    }

    /// Whether to dump JSON records (`--json`).
    pub fn json(&self) -> bool {
        self.has("json")
    }

    /// Execution mode from `--threads n` (absent, `0` or `1` mean the
    /// sequential engine; results are identical either way).
    pub fn exec_mode(&self) -> dpr_core::parallel::ExecMode {
        let threads = self.values.get("threads").map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|e| panic!("bad --threads {v}: {e:?}"))
        });
        dpr_core::parallel::ExecMode::from_threads(threads)
    }

    /// Scheduling mode from `--sched` (the [`dpr_core::SCHED_HELP`]
    /// modes; default `pass`, the paper's full-sweep ordering;
    /// `priority` enables residual-driven Gauss–Southwell bucket
    /// selection, `greedy` the exact matching-pursuit budget cut —
    /// same fixed point to O(ε), fewer remote messages).
    pub fn sched_mode(&self) -> dpr_core::SchedMode {
        self.get("sched", dpr_core::SchedMode::Pass)
    }

    /// The telemetry side-channel from `--trace-out FILE` (JSONL event
    /// trace) and `--prom-out FILE` (Prometheus snapshot, written at
    /// [`Trace::finish`]). Without either flag the returned handle is
    /// the no-op recorder and `finish` does nothing.
    pub fn trace(&self) -> Trace {
        let trace_out = self.values.get("trace-out").cloned();
        let prom_out = self.values.get("prom-out").cloned();
        let rec = match &trace_out {
            Some(p) => Some(Arc::new(
                TraceRecorder::with_jsonl(p).unwrap_or_else(|e| panic!("create {p}: {e}")),
            )),
            None if prom_out.is_some() => Some(Arc::new(TraceRecorder::new())),
            None => None,
        };
        Trace {
            rec,
            trace_out,
            prom_out,
        }
    }
}

/// The optional telemetry trace of one experiment binary run; see
/// [`Args::trace`].
pub struct Trace {
    rec: Option<Arc<TraceRecorder>>,
    trace_out: Option<String>,
    prom_out: Option<String>,
}

impl Trace {
    /// The recorder to thread into observed run loops (no-op when no
    /// trace flag was given).
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.rec {
            Some(r) => r.as_ref() as &dyn Recorder,
            None => &NOOP,
        }
    }

    /// Shared handle for components that store their recorder (the
    /// cluster transport and hop models); `None` when tracing is off.
    pub fn recorder_arc(&self) -> Option<Arc<dyn Recorder>> {
        self.rec.as_ref().map(|r| r.clone() as Arc<dyn Recorder>)
    }

    /// The live aggregate, for cross-checking printed numbers against
    /// the recorder's counters; `None` when tracing is off.
    pub fn aggregate(&self) -> Option<&TraceRecorder> {
        self.rec.as_deref()
    }

    /// Flushes the JSONL sink and writes the Prometheus snapshot.
    ///
    /// # Panics
    ///
    /// Panics when a sink cannot be written — these are experiment
    /// binaries, so failing loudly beats losing a trace silently.
    pub fn finish(&self) {
        let Some(rec) = &self.rec else { return };
        rec.flush().expect("flush trace sink");
        if let Some(p) = &self.prom_out {
            std::fs::write(p, rec.prometheus_text()).unwrap_or_else(|e| panic!("write {p}: {e}"));
            println!("wrote {p} (prometheus snapshot)");
        }
        if let Some(p) = &self.trace_out {
            println!("wrote {p} ({} events)", rec.event_count());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args("--seed 7 --json --sizes 100,200");
        assert_eq!(a.seed(), 7);
        assert!(a.json());
        assert_eq!(a.sizes(), vec![100, 200]);
        assert!(!a.has("full"));
    }

    #[test]
    fn defaults() {
        let a = args("");
        assert_eq!(a.seed(), 2003);
        assert!(!a.json());
        assert_eq!(a.sizes(), DEFAULT_SIZES.to_vec());
    }

    #[test]
    fn full_selects_paper_sizes() {
        let a = args("--full");
        assert_eq!(a.sizes(), dpr_sim::workload::PAPER_GRAPH_SIZES.to_vec());
    }

    #[test]
    fn threads_flag_selects_exec_mode() {
        use dpr_core::parallel::ExecMode;
        assert_eq!(args("").exec_mode(), ExecMode::Sequential);
        assert_eq!(args("--threads 1").exec_mode(), ExecMode::Sequential);
        assert_eq!(args("--threads 4").exec_mode(), ExecMode::Parallel(4));
    }

    #[test]
    fn sched_flag_selects_sched_mode() {
        use dpr_core::SchedMode;
        assert_eq!(args("").sched_mode(), SchedMode::Pass);
        assert_eq!(args("--sched pass").sched_mode(), SchedMode::Pass);
        assert_eq!(args("--sched priority").sched_mode(), SchedMode::Priority);
    }

    #[test]
    fn typed_get() {
        let a = args("--eps 0.5");
        let eps: f64 = a.get("eps", 1.0);
        assert_eq!(eps, 0.5);
        let missing: usize = a.get("nope", 9);
        assert_eq!(missing, 9);
    }

    #[test]
    #[should_panic(expected = "unexpected positional")]
    fn rejects_positional() {
        args("loose");
    }

    #[test]
    fn trace_flag_builds_a_live_recorder() {
        let dir = std::env::temp_dir().join(format!("dpr-bench-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.jsonl");
        let t = args(&format!("--trace-out {}", p.display())).trace();
        assert!(t.recorder().enabled());
        assert!(t.recorder_arc().is_some());
        t.finish();
        assert!(p.exists());
        std::fs::remove_dir_all(&dir).unwrap();

        let off = args("").trace();
        assert!(!off.recorder().enabled());
        assert!(off.recorder_arc().is_none());
        off.finish();
    }
}
