//! Conventional synchronous (Jacobi) PageRank — the paper's `R_c`.
//!
//! "To test the quality of the pagerank, we computed the pageranks
//! using a conventional synchronous iterative solver and compared the
//! error between the pagerank from our distributed asynchronous
//! scheme (R_d) and the pagerank from the conventional approach (R_c)"
//! (Sec. 4.3). This solver is that reference: full-vector Jacobi
//! sweeps pulling rank along in-links until the largest relative
//! change falls below a (tight) tolerance.
//!
//! Dangling documents (no out-links) simply do not forward rank — the
//! same convention the distributed engine uses — so the two schemes
//! share a fixed point and Table 2 compares like with like.

use dpr_graph::CsrGraph;

/// Synchronous PageRank solver.
#[derive(Debug, Clone)]
pub struct SyncSolver {
    damping: f64,
    tolerance: f64,
    max_iterations: usize,
}

/// Result of a synchronous solve.
#[derive(Debug, Clone)]
pub struct SyncResult {
    /// Final ranks, indexed by document.
    pub ranks: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Largest relative change in the final sweep.
    pub final_residual: f64,
    /// Whether `final_residual <= tolerance` was reached within the
    /// iteration budget.
    pub converged: bool,
}

impl Default for SyncSolver {
    fn default() -> Self {
        SyncSolver {
            damping: crate::DEFAULT_DAMPING,
            tolerance: 1e-12,
            max_iterations: 500,
        }
    }
}

impl SyncSolver {
    /// A solver with the default reference-quality settings
    /// (tolerance 1e-12, damping 0.85).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the damping factor `d`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < d <= 1`.
    pub fn damping(mut self, d: f64) -> Self {
        assert!(d > 0.0 && d <= 1.0, "damping must be in (0, 1]");
        self.damping = d;
        self
    }

    /// Sets the convergence tolerance on the max relative change.
    pub fn tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tolerance = tol;
        self
    }

    /// Caps the number of sweeps.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Solves for the pageranks of `graph`.
    pub fn solve(&self, graph: &CsrGraph) -> SyncResult {
        let n = graph.num_nodes();
        let base = 1.0 - self.damping;
        let mut ranks = vec![1.0f64; n];
        let mut contrib = vec![0.0f64; n];
        let mut iterations = 0;
        let mut final_residual = f64::INFINITY;

        // Push-style sweep over out-links: equivalent to pulling along
        // in-links but avoids materializing the transpose, and walks
        // the CSR arrays sequentially.
        while iterations < self.max_iterations {
            contrib.iter_mut().for_each(|c| *c = 0.0);
            for v in graph.nodes() {
                let out = graph.out_neighbors(v);
                if out.is_empty() {
                    continue;
                }
                let share = ranks[v.index()] / out.len() as f64;
                for &t in out {
                    contrib[t as usize] += share;
                }
            }
            let mut max_rel = 0.0f64;
            for i in 0..n {
                let new = base + self.damping * contrib[i];
                let rel = (new - ranks[i]).abs() / new.max(f64::MIN_POSITIVE);
                max_rel = max_rel.max(rel);
                ranks[i] = new;
            }
            iterations += 1;
            final_residual = max_rel;
            if max_rel <= self.tolerance {
                break;
            }
        }

        SyncResult {
            ranks,
            iterations,
            final_residual,
            converged: final_residual <= self.tolerance,
        }
    }
}

/// Verifies that `ranks` satisfies the PageRank fixed-point equation
/// on `graph` to within `tol` (max relative residual). Used by tests
/// of both solvers.
pub fn fixed_point_residual(graph: &CsrGraph, ranks: &[f64], damping: f64) -> f64 {
    assert_eq!(ranks.len(), graph.num_nodes());
    let base = 1.0 - damping;
    let mut contrib = vec![0.0f64; ranks.len()];
    for v in graph.nodes() {
        let out = graph.out_neighbors(v);
        if out.is_empty() {
            continue;
        }
        let share = ranks[v.index()] / out.len() as f64;
        for &t in out {
            contrib[t as usize] += share;
        }
    }
    let mut max_rel = 0.0f64;
    for i in 0..ranks.len() {
        let expect = base + damping * contrib[i];
        let rel = (expect - ranks[i]).abs() / expect.max(f64::MIN_POSITIVE);
        max_rel = max_rel.max(rel);
    }
    max_rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::builder::from_edges;
    use dpr_graph::powerlaw::paper_graph;
    use dpr_graph::Edge;

    #[test]
    fn two_node_cycle_has_uniform_rank() {
        // 0 <-> 1 is symmetric: both ranks are exactly 1.
        let g = from_edges(2, [Edge::new(0u32, 1u32), Edge::new(1u32, 0u32)]);
        let r = SyncSolver::new().solve(&g);
        assert!(r.converged);
        assert!((r.ranks[0] - 1.0).abs() < 1e-9);
        assert!((r.ranks[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_outranks_leaves() {
        // Leaves 1..=4 all point at 0; 0 points back at 1.
        let g = from_edges(
            5,
            [
                Edge::new(1u32, 0u32),
                Edge::new(2u32, 0u32),
                Edge::new(3u32, 0u32),
                Edge::new(4u32, 0u32),
                Edge::new(0u32, 1u32),
            ],
        );
        let r = SyncSolver::new().solve(&g);
        assert!(r.converged);
        assert!(r.ranks[0] > r.ranks[1]);
        assert!(r.ranks[1] > r.ranks[2]); // 1 gets 0's endorsement
        assert!((r.ranks[2] - r.ranks[3]).abs() < 1e-12); // symmetric leaves
    }

    #[test]
    fn analytic_chain_values() {
        // 0 -> 1 -> 2 (2 dangling), d = 0.85:
        // R0 = 0.15; R1 = 0.15 + 0.85*R0; R2 = 0.15 + 0.85*R1.
        let g = from_edges(3, [Edge::new(0u32, 1u32), Edge::new(1u32, 2u32)]);
        let r = SyncSolver::new().solve(&g);
        let r0 = 0.15;
        let r1 = 0.15 + 0.85 * r0;
        let r2 = 0.15 + 0.85 * r1;
        assert!((r.ranks[0] - r0).abs() < 1e-9, "{}", r.ranks[0]);
        assert!((r.ranks[1] - r1).abs() < 1e-9, "{}", r.ranks[1]);
        assert!((r.ranks[2] - r2).abs() < 1e-9, "{}", r.ranks[2]);
    }

    #[test]
    fn solution_satisfies_fixed_point_on_powerlaw_graph() {
        let g = paper_graph(3_000, 21);
        let r = SyncSolver::new().solve(&g);
        assert!(r.converged, "residual {}", r.final_residual);
        let res = fixed_point_residual(&g, &r.ranks, crate::DEFAULT_DAMPING);
        assert!(res < 1e-10, "fixed point residual {res}");
        assert!(
            r.ranks.iter().all(|&x| x >= 0.15 - 1e-12),
            "ranks below base"
        );
    }

    #[test]
    fn iteration_budget_is_respected() {
        let g = paper_graph(1_000, 22);
        let r = SyncSolver::new()
            .tolerance(1e-15)
            .max_iterations(3)
            .solve(&g);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn damping_one_is_supported() {
        // d = 1 on a cycle: pure rank circulation, uniform stays 1.
        let g = from_edges(
            3,
            [
                Edge::new(0u32, 1u32),
                Edge::new(1u32, 2u32),
                Edge::new(2u32, 0u32),
            ],
        );
        let r = SyncSolver::new().damping(1.0).solve(&g);
        for &x in &r.ranks {
            assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let _ = SyncSolver::new().damping(0.0);
    }

    #[test]
    fn total_rank_is_bounded_by_n() {
        // With rank leakage at dangling nodes, total rank <= n and
        // >= n * (1 - d).
        let g = paper_graph(2_000, 23);
        let r = SyncSolver::new().solve(&g);
        let total: f64 = r.ranks.iter().sum();
        let n = g.num_nodes() as f64;
        assert!(total <= n + 1e-6);
        assert!(total >= n * 0.15 - 1e-6);
    }
}
