//! Residual-driven priority scheduling (Gauss-Southwell-style push
//! ordering).
//!
//! The paper's chaotic iteration (Sec. 2.3) is order-free: peers may
//! apply and emit updates in any order and still reach the same fixed
//! point. The pass engine exploits that freedom only trivially — every
//! pass sweeps the whole dirty set. D-Iteration (Hong et al.) and the
//! asynchronous-iteration analysis of Kollias, Gallopoulos & Szyld
//! show that *ordering pushes by residual magnitude* — diffusing from
//! the documents holding the most un-propagated mass first — reaches
//! the same fixed point in substantially fewer updates, and therefore
//! fewer remote messages (the paper's headline Table 3 metric).
//!
//! ## Queue layout
//!
//! The scheduler never maintains a heap. Each pass it classifies the
//! queued documents into the log2 residual buckets of the
//! `dpr-telemetry` histogram scheme ([`dpr_telemetry::hist::bucket_of`]
//! over a fixed-point rescaling of the residual), accumulates the
//! residual mass per bucket, and selects *whole buckets* from the top
//! down until the selected mass reaches the adaptive emission budget
//! ([`PRIORITY_BUDGET_FRACTION`] of the total queued mass). Selecting
//! whole buckets keeps the selected set a pure function of the queued
//! *set* and the engine state — independent of queue order, shard
//! layout, and thread count — which is what lets the sharded executor
//! keep its deterministic mailbox-merge contract in `Priority` mode.
//!
//! ## Residual carryover
//!
//! Deferred documents are never dropped: they stay queued with their
//! pending increments intact, so quiescence still means "no residual
//! above ε anywhere, nothing parked or in flight" — the paper's strong
//! convergence criterion is unchanged. Deferral only *coalesces*
//! low-value advertisements: a deferred document keeps accumulating
//! increments and later advertises the combined change in one burst of
//! messages instead of several.
//!
//! ## Greedy matching pursuit
//!
//! `Greedy` replaces the whole-bucket cut with a Dai–Freris-style
//! matching-pursuit selection: documents are ranked by *projected
//! residual reduction per emitted message* — |residual| · 1/outdeg —
//! and the pass takes the exact prefix of that ranking whose residual
//! mass meets the emission budget, instead of rounding the cut up to a
//! whole log2 bucket. The ranking is a total order ((score desc, doc
//! asc), compared bit-exactly), so the selected set is still a pure
//! function of the queued set and engine state, and the sharded
//! executor's mailbox-merge determinism carries over unchanged.

use dpr_telemetry::hist::bucket_of;

/// The one canonical help string for every `--sched` flag — CLI
/// commands and bench binaries all cite this so a new mode lands in
/// every usage banner at once.
pub const SCHED_HELP: &str = "pass|priority|greedy";

/// How an engine (or node) schedules its queued documents each pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedMode {
    /// The classic full sweep: every queued document is applied and
    /// (when over ε) re-advertised every pass.
    #[default]
    Pass,
    /// Gauss-Southwell-style priority scheduling: each pass processes
    /// only the top residual-mass buckets and defers the rest.
    Priority,
    /// Matching-pursuit greedy scheduling: each pass processes the
    /// exact prefix of documents with the largest projected residual
    /// reduction per message and defers the rest.
    Greedy,
}

impl SchedMode {
    /// Whether this mode *selects* a subset of the queue each pass
    /// (and therefore wants residual telemetry, coalescing step
    /// timing, and deferred-work bookkeeping). `Pass` sweeps
    /// everything; `Priority` and `Greedy` are selective.
    pub fn is_selective(self) -> bool {
        matches!(self, SchedMode::Priority | SchedMode::Greedy)
    }
}

impl std::fmt::Display for SchedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedMode::Pass => "pass",
            SchedMode::Priority => "priority",
            SchedMode::Greedy => "greedy",
        })
    }
}

impl std::str::FromStr for SchedMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pass" => Ok(SchedMode::Pass),
            "priority" => Ok(SchedMode::Priority),
            "greedy" => Ok(SchedMode::Greedy),
            other => Err(format!(
                "unknown sched mode {other:?} (expected {SCHED_HELP})"
            )),
        }
    }
}

/// How the cluster layer advances its peers.
///
/// `Rounds` is the historical lockstep driver: every online peer
/// drains its inbox, steps once, and flushes, all inside one global
/// round barrier with instantaneous delivery. `Chaotic` is the
/// paper's actual operating regime — peers step whenever updates
/// arrive, delivery takes link-dependent virtual time, and there is
/// no barrier to re-synchronize what the scheduler deferred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunMode {
    /// Lockstep rounds with instantaneous delivery (the default;
    /// bit-identical to the pre-event-runtime behavior).
    #[default]
    Rounds,
    /// Event-driven asynchronous stepping over a seeded deterministic
    /// discrete-event queue with per-link latency models.
    Chaotic,
}

impl std::fmt::Display for RunMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunMode::Rounds => "rounds",
            RunMode::Chaotic => "chaotic",
        })
    }
}

impl std::str::FromStr for RunMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rounds" => Ok(RunMode::Rounds),
            "chaotic" => Ok(RunMode::Chaotic),
            other => Err(format!(
                "unknown run mode {other:?} (expected \"rounds\" or \"chaotic\")"
            )),
        }
    }
}

/// Fraction of the queued residual mass a `Priority` pass aims to
/// process. The cut is adaptive: whole buckets are taken from the top
/// until the running mass reaches this fraction, so the number of
/// selected documents tracks the shape of the residual distribution
/// (a heavy-tailed queue selects few documents, a flat one most).
pub const PRIORITY_BUDGET_FRACTION: f64 = 0.5;

/// Queue size at or below which a `Priority` pass bypasses selection
/// and processes everything. On the convergence tail the queue is
/// small and deferral would only stretch the run without saving
/// messages.
pub const PRIORITY_BYPASS_THRESHOLD: usize = 64;

/// Fixed-point scale mapping f64 residuals onto the u64 domain of the
/// telemetry histogram buckets: residuals down to 2⁻⁴⁰ (≈ 9·10⁻¹³,
/// well below any useful ε) land in distinct log2 buckets.
const RESIDUAL_SCALE: f64 = (1u64 << 40) as f64;

/// Log2 bucket index of a residual magnitude, reusing the telemetry
/// histogram bucketing scheme over the fixed-point rescaling.
pub fn residual_bucket(residual: f64) -> usize {
    bucket_of((residual.abs() * RESIDUAL_SCALE) as u64)
}

/// Per-pass outcome of the work selection, identical across executors
/// by construction (and asserted by the differential tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedStats {
    /// Documents queued when the pass started.
    pub queued: u64,
    /// Documents selected for this pass.
    pub selected: u64,
    /// Documents deferred to a later pass.
    pub deferred: u64,
    /// Residual mass carried by the deferred documents.
    pub deferred_mass: f64,
    /// Fraction of the queued residual mass selected (1.0 when
    /// nothing was deferred or the queue carried no mass).
    pub budget_hit: f64,
}

impl SchedStats {
    /// Stats of a full sweep: everything selected, nothing deferred.
    pub fn full_sweep(queued: usize) -> Self {
        SchedStats {
            queued: queued as u64,
            selected: queued as u64,
            deferred: 0,
            deferred_mass: 0.0,
            budget_hit: 1.0,
        }
    }
}

/// Partitions `work` by residual priority: the selected documents stay
/// in `work` (relative order preserved), deferred ones are appended to
/// `deferred`. `residual(doc)` must return the un-propagated mass of
/// the document; `scratch` is a reusable per-item bucket buffer.
///
/// The caller must present `work` in a canonical order (the engine
/// sorts ascending first): the per-bucket mass sums are floating-point
/// folds over `work`, and the budget cut compares them — so two
/// executors agree on the selected set exactly when they fold in the
/// same order.
pub fn partition_by_residual(
    work: &mut Vec<u32>,
    deferred: &mut Vec<u32>,
    scratch: &mut Vec<u8>,
    mut residual: impl FnMut(u32) -> f64,
) -> SchedStats {
    let queued = work.len();
    if queued <= PRIORITY_BYPASS_THRESHOLD {
        return SchedStats::full_sweep(queued);
    }

    const BUCKETS: usize = dpr_telemetry::hist::BUCKETS;
    let mut mass = [0.0f64; BUCKETS];
    let mut count = [0u32; BUCKETS];
    scratch.clear();
    scratch.reserve(queued);
    for &d in work.iter() {
        let r = residual(d).abs();
        let b = residual_bucket(r);
        scratch.push(b as u8);
        mass[b] += r;
        count[b] += 1;
    }
    let total: f64 = mass.iter().sum();

    // Take whole buckets from the top until the budget is met. At
    // least one non-empty bucket is always selected, so a non-empty
    // queue always makes progress.
    let mut cut = 0usize;
    let mut selected_mass = 0.0f64;
    for b in (0..BUCKETS).rev() {
        if count[b] == 0 {
            continue;
        }
        selected_mass += mass[b];
        cut = b;
        if selected_mass >= PRIORITY_BUDGET_FRACTION * total {
            break;
        }
    }

    let mut kept = 0usize;
    for idx in 0..queued {
        let d = work[idx];
        if scratch[idx] as usize >= cut {
            work[kept] = d;
            kept += 1;
        } else {
            deferred.push(d);
        }
    }
    work.truncate(kept);

    SchedStats {
        queued: queued as u64,
        selected: kept as u64,
        deferred: (queued - kept) as u64,
        deferred_mass: total - selected_mass,
        budget_hit: if total > 0.0 {
            selected_mass / total
        } else {
            1.0
        },
    }
}

/// Sort key for the greedy ranking: non-negative f64 scores have
/// monotone IEEE-754 bit patterns, so `!bits` orders descending under
/// an ascending integer sort. NaN scores (a NaN residual) map to 0 —
/// never prioritized — mirroring [`residual_bucket`]'s NaN handling.
fn greedy_key(score: f64) -> u64 {
    let s = if score.is_nan() { 0.0 } else { score };
    !s.to_bits()
}

/// Partitions `work` by greedy matching pursuit: documents are ranked
/// by projected residual reduction per emitted message — |residual| /
/// max(outdeg, 1) — and the top of the ranking is kept in `work`
/// (score-descending order) until the selected residual mass reaches
/// [`PRIORITY_BUDGET_FRACTION`]; the rest is appended to `deferred`.
/// `scratch` is a reusable (key, doc) buffer.
///
/// Unlike [`partition_by_residual`], `work` comes back in
/// *selection-priority* order, not the caller's canonical order: the
/// engine re-sorts ascending before its floating-point apply fold, the
/// node layer uses the order directly so flush buffers fill
/// highest-value-first. Determinism is preserved because the ranking
/// is a total order — (score desc, doc asc) with bit-exact score
/// comparison — making the selected set and both output orders pure
/// functions of the queued set and the residual/out-degree state.
///
/// Dangling documents (outdeg 0) are scored as outdeg 1: applying
/// them retires their whole residual into the sink for zero messages,
/// so they are never worth deferring below that.
pub fn partition_by_greedy(
    work: &mut Vec<u32>,
    deferred: &mut Vec<u32>,
    scratch: &mut Vec<(u64, u32)>,
    mut residual: impl FnMut(u32) -> f64,
    mut out_degree: impl FnMut(u32) -> usize,
) -> SchedStats {
    let queued = work.len();
    if queued <= PRIORITY_BYPASS_THRESHOLD {
        return SchedStats::full_sweep(queued);
    }

    // Total queued mass folds in the caller's canonical (ascending)
    // order; the selection fold below runs in ranked order. Both are
    // deterministic given the set, which is all bit-identity needs.
    scratch.clear();
    scratch.reserve(queued);
    let mut total = 0.0f64;
    for &d in work.iter() {
        let r = residual(d).abs();
        total += r;
        let score = r / out_degree(d).max(1) as f64;
        scratch.push((greedy_key(score), d));
    }
    if total <= 0.0 {
        // A queue of exactly-zero residuals drains in one sweep
        // instead of parking forever (same escape as `Priority`).
        return SchedStats::full_sweep(queued);
    }
    scratch.sort_unstable();

    let budget = PRIORITY_BUDGET_FRACTION * total;
    let mut selected_mass = 0.0f64;
    let mut kept = 0usize;
    work.clear();
    for &(_, d) in scratch.iter() {
        if kept > 0 && selected_mass >= budget {
            deferred.push(d);
        } else {
            work.push(d);
            selected_mass += residual(d).abs();
            kept += 1;
        }
    }

    SchedStats {
        queued: queued as u64,
        selected: kept as u64,
        deferred: (queued - kept) as u64,
        deferred_mass: total - selected_mass,
        budget_hit: selected_mass / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("pass".parse::<SchedMode>().unwrap(), SchedMode::Pass);
        assert_eq!(
            "priority".parse::<SchedMode>().unwrap(),
            SchedMode::Priority
        );
        assert_eq!("greedy".parse::<SchedMode>().unwrap(), SchedMode::Greedy);
        assert!("pri".parse::<SchedMode>().is_err());
        let err = "bogus".parse::<SchedMode>().unwrap_err();
        assert!(err.contains(SCHED_HELP), "error must cite the help: {err}");
        assert_eq!(SchedMode::Priority.to_string(), "priority");
        assert_eq!(SchedMode::Greedy.to_string(), "greedy");
        assert_eq!(SchedMode::default(), SchedMode::Pass);
        assert!(!SchedMode::Pass.is_selective());
        assert!(SchedMode::Priority.is_selective());
        assert!(SchedMode::Greedy.is_selective());
    }

    #[test]
    fn run_mode_parses_and_displays() {
        assert_eq!("rounds".parse::<RunMode>().unwrap(), RunMode::Rounds);
        assert_eq!("chaotic".parse::<RunMode>().unwrap(), RunMode::Chaotic);
        assert!("async".parse::<RunMode>().is_err());
        assert_eq!(RunMode::Chaotic.to_string(), "chaotic");
        assert_eq!(RunMode::default(), RunMode::Rounds);
    }

    #[test]
    fn residual_buckets_are_log2() {
        assert_eq!(residual_bucket(0.0), 0);
        // Monotone in magnitude, one bucket per doubling.
        let b1 = residual_bucket(1e-3);
        let b2 = residual_bucket(2e-3);
        let b4 = residual_bucket(4e-3);
        assert_eq!(b2, b1 + 1);
        assert_eq!(b4, b2 + 1);
        assert_eq!(residual_bucket(-2e-3), b2);
        // Huge residuals saturate into the top bucket instead of
        // wrapping.
        assert!(residual_bucket(1e30) >= residual_bucket(1e6));
    }

    #[test]
    fn residual_bucket_handles_the_fp_edge_cases() {
        // Zero (either sign) carries no mass: bucket 0.
        assert_eq!(residual_bucket(0.0), 0);
        assert_eq!(residual_bucket(-0.0), 0);
        // Subnormals (~1e-308) sit far below the 2⁻⁴⁰ fixed-point
        // resolution floor and truncate to bucket 0 — they are
        // scheduling noise, not signal.
        assert_eq!(residual_bucket(f64::MIN_POSITIVE), 0);
        assert_eq!(residual_bucket(f64::MIN_POSITIVE / 2.0), 0);
        assert_eq!(residual_bucket(5e-324), 0);
        // The rescaling boundary: 2⁻⁴⁰ is the smallest residual with
        // its own bucket; one ulp below truncates to 0, each doubling
        // above climbs one bucket.
        let floor = 2f64.powi(-40);
        assert_eq!(residual_bucket(floor), 1);
        assert_eq!(residual_bucket(floor * 0.999), 0);
        assert_eq!(residual_bucket(floor * 2.0), 2);
        // Non-finite residuals must not panic or wrap: ±∞ saturates
        // into the top bucket (always selected first), NaN falls to
        // bucket 0 (never prioritized).
        assert_eq!(residual_bucket(f64::INFINITY), 64);
        assert_eq!(residual_bucket(f64::NEG_INFINITY), 64);
        assert_eq!(residual_bucket(f64::NAN), 0);
    }

    #[test]
    fn small_queues_bypass_selection() {
        let mut work: Vec<u32> = (0..PRIORITY_BYPASS_THRESHOLD as u32).collect();
        let mut deferred = Vec::new();
        let mut scratch = Vec::new();
        let st = partition_by_residual(&mut work, &mut deferred, &mut scratch, |d| d as f64);
        assert_eq!(st, SchedStats::full_sweep(PRIORITY_BYPASS_THRESHOLD));
        assert_eq!(work.len(), PRIORITY_BYPASS_THRESHOLD);
        assert!(deferred.is_empty());
    }

    #[test]
    fn selects_top_mass_and_defers_the_rest() {
        // 100 docs with residual 1.0, 900 with residual 1/1024: the
        // heavy bucket holds ~99% of the mass, so it alone is selected.
        let mut work: Vec<u32> = (0..1000).collect();
        let mut deferred = Vec::new();
        let mut scratch = Vec::new();
        let st = partition_by_residual(&mut work, &mut deferred, &mut scratch, |d| {
            if d < 100 {
                1.0
            } else {
                1.0 / 1024.0
            }
        });
        assert_eq!(work, (0..100).collect::<Vec<u32>>());
        assert_eq!(deferred.len(), 900);
        assert_eq!(st.selected, 100);
        assert_eq!(st.deferred, 900);
        assert!(st.budget_hit > PRIORITY_BUDGET_FRACTION);
        assert!((st.deferred_mass - 900.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn flat_queue_selects_everything() {
        // Equal residuals: one bucket, selected whole.
        let mut work: Vec<u32> = (0..500).collect();
        let mut deferred = Vec::new();
        let mut scratch = Vec::new();
        let st = partition_by_residual(&mut work, &mut deferred, &mut scratch, |_| 0.125);
        assert_eq!(st.selected, 500);
        assert_eq!(st.deferred, 0);
        assert!(deferred.is_empty());
        assert_eq!(st.budget_hit, 1.0);
    }

    #[test]
    fn zero_mass_queue_still_progresses() {
        let mut work: Vec<u32> = (0..200).collect();
        let mut deferred = Vec::new();
        let mut scratch = Vec::new();
        let st = partition_by_residual(&mut work, &mut deferred, &mut scratch, |_| 0.0);
        // All residuals land in bucket 0 — everything is selected, so
        // a queue of exactly-zero residuals drains instead of parking
        // forever.
        assert_eq!(st.selected, 200);
        assert_eq!(st.budget_hit, 1.0);
    }

    #[test]
    fn greedy_small_queues_bypass_selection() {
        let mut work: Vec<u32> = (0..PRIORITY_BYPASS_THRESHOLD as u32).collect();
        let (mut deferred, mut scratch) = (Vec::new(), Vec::new());
        let st = partition_by_greedy(&mut work, &mut deferred, &mut scratch, |d| d as f64, |_| 3);
        assert_eq!(st, SchedStats::full_sweep(PRIORITY_BYPASS_THRESHOLD));
        assert_eq!(work.len(), PRIORITY_BYPASS_THRESHOLD);
        assert!(deferred.is_empty());
    }

    #[test]
    fn greedy_cuts_exactly_at_the_budget() {
        // 1000 docs with equal residual and equal fanout: priority
        // would select the whole (single) bucket; greedy takes exactly
        // the budget-fraction prefix, tie-broken by doc id.
        let mut work: Vec<u32> = (0..1000).collect();
        let (mut deferred, mut scratch) = (Vec::new(), Vec::new());
        let st = partition_by_greedy(&mut work, &mut deferred, &mut scratch, |_| 0.25, |_| 4);
        assert_eq!(st.selected, 500);
        assert_eq!(st.deferred, 500);
        assert_eq!(work, (0..500).collect::<Vec<u32>>());
        assert_eq!(deferred, (500..1000).collect::<Vec<u32>>());
        assert!((st.budget_hit - PRIORITY_BUDGET_FRACTION).abs() < 1e-12);
    }

    #[test]
    fn greedy_prefers_residual_reduction_per_message() {
        // Docs 0..100 carry residual 1.0 but fan out to 100 targets;
        // docs 100..200 carry 0.5 with a single target. Per-message
        // value is 0.01 vs 0.5, so the low-fanout half ranks first.
        let mut work: Vec<u32> = (0..200).collect();
        let (mut deferred, mut scratch) = (Vec::new(), Vec::new());
        let st = partition_by_greedy(
            &mut work,
            &mut deferred,
            &mut scratch,
            |d| if d < 100 { 1.0 } else { 0.5 },
            |d| if d < 100 { 100 } else { 1 },
        );
        // The cheap half's 50.0 mass is below the 75.0 budget, so the
        // selection spills into the expensive half.
        assert!(work.starts_with(&(100..200).collect::<Vec<u32>>()[..]));
        assert!(st.selected > 100);
        assert!(st.selected < 200);
        assert!(st.budget_hit >= PRIORITY_BUDGET_FRACTION);
    }

    #[test]
    fn greedy_zero_mass_queue_still_progresses() {
        let mut work: Vec<u32> = (0..200).collect();
        let (mut deferred, mut scratch) = (Vec::new(), Vec::new());
        let st = partition_by_greedy(&mut work, &mut deferred, &mut scratch, |_| 0.0, |_| 2);
        assert_eq!(st.selected, 200);
        assert_eq!(st.budget_hit, 1.0);
        assert!(deferred.is_empty());
    }

    #[test]
    fn greedy_selection_is_order_independent_as_a_set() {
        let res = |d: u32| 1.0 / (1.0 + d as f64);
        let deg = |d: u32| (d as usize % 7) + 1;
        let mut fwd: Vec<u32> = (0..300).collect();
        let mut rev: Vec<u32> = (0..300).rev().collect();
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        rev.sort_unstable();
        let st1 = partition_by_greedy(&mut fwd, &mut d1, &mut s1, res, deg);
        let st2 = partition_by_greedy(&mut rev, &mut d2, &mut s2, res, deg);
        assert_eq!(st1, st2);
        assert_eq!(fwd, rev);
        assert_eq!(d1, d2);
    }

    #[test]
    fn greedy_dangling_docs_rank_by_full_residual() {
        // A dangling doc with residual r scores r (outdeg clamped to
        // 1), so it outranks a linked doc with the same residual and
        // higher fanout.
        let mut work: Vec<u32> = (0..100).collect();
        let (mut deferred, mut scratch) = (Vec::new(), Vec::new());
        partition_by_greedy(
            &mut work,
            &mut deferred,
            &mut scratch,
            |_| 0.5,
            |d| if d == 42 { 0 } else { 8 },
        );
        assert_eq!(work[0], 42, "the dangling doc must rank first");
    }

    #[test]
    fn selection_is_order_independent_as_a_set() {
        let res = |d: u32| 1.0 / (1.0 + d as f64);
        let mut fwd: Vec<u32> = (0..300).collect();
        let mut rev: Vec<u32> = (0..300).rev().collect();
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        // Canonicalize both to ascending order — the contract the
        // engine upholds — then check identical outcomes.
        rev.sort_unstable();
        let st1 = partition_by_residual(&mut fwd, &mut d1, &mut s1, res);
        let st2 = partition_by_residual(&mut rev, &mut d2, &mut s2, res);
        assert_eq!(st1, st2);
        assert_eq!(fwd, rev);
        assert_eq!(d1, d2);
    }
}
