//! Incremental pagerank updates for document inserts and deletes.
//!
//! Paper Sec. 3.1 and 4.7: inserting a document initializes its rank
//! to a constant (1.0) and propagates contributions to its out-links;
//! each receiving document forwards its own (shrunken) increment to
//! *its* out-links, until increments drop below the error threshold ε
//! and the wave dies out. Deleting a document propagates the negated
//! rank. Figure 2 illustrates the wave: G (rank 1, three out-links)
//! sends H an increment of 1/3; H (two out-links) forwards 1/6 to K
//! and L; and so on.
//!
//! Table 4 measures two quantities over this wave, both reproduced by
//! [`propagate`]:
//!
//! * **path length** — the longest chain of update messages before
//!   the wave dies;
//! * **node coverage** — the number of distinct documents that
//!   receive at least one update message ("an upper bound on the
//!   number of messages a document insert can generate").
//!
//! ## Bursts and localization
//!
//! The paper's protocol runs one wave per mutation. When mutations
//! arrive in *bursts*, the per-mutation waves re-touch their shared
//! downstream regions once each — [`propagate_burst`] instead merges
//! the whole burst into a single generation-synchronous wave, so a
//! document forwards its accumulated increment once per generation no
//! matter how many origins feed it, and node coverage / message counts
//! are deduplicated across the burst. [`propagate_burst_localized`]
//! additionally consults an [`SccIndex`] downstream cone and *proves*
//! the wave stays inside it (every message target is asserted to be in
//! the cone): upstream components receive nothing and are therefore
//! fixed — the certification the engine's localized dirty-set seeding
//! relies on.

use dpr_graph::scc::{ConeSet, SccIndex};
use dpr_graph::{CsrGraph, DocId, DynamicGraph};

/// Outcome of one increment wave.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct PropagationStats {
    /// Longest message chain (hops from the origin document).
    pub path_length: u32,
    /// Distinct documents that received an update message.
    pub node_coverage: usize,
    /// Total update messages generated.
    pub messages: u64,
}

/// Tuning of the increment wave.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Damping applied at every forwarding step. Figure 2's worked
    /// example uses `1.0` (pure fractions 1/3, 1/6, …); Table 4 runs
    /// use the engine's damping.
    pub damping: f64,
    /// Error threshold ε: a document forwards its received increment
    /// only while the increment (relative to the unit initial rank)
    /// exceeds this.
    pub epsilon: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            damping: crate::DEFAULT_DAMPING,
            epsilon: crate::RECOMMENDED_EPSILON,
        }
    }
}

/// Out-link access used by the wave — implemented for both graph
/// representations so inserts can be measured on a static snapshot
/// (Table 4 picks existing nodes) or on a live dynamic graph.
pub trait OutLinks {
    /// Number of documents.
    fn len(&self) -> usize;
    /// Whether there are no documents.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Out-links of `v`.
    fn out(&self, v: DocId) -> &[u32];
}

impl OutLinks for CsrGraph {
    fn len(&self) -> usize {
        self.num_nodes()
    }
    fn out(&self, v: DocId) -> &[u32] {
        self.out_neighbors(v)
    }
}

impl OutLinks for DynamicGraph {
    fn len(&self) -> usize {
        self.id_bound()
    }
    fn out(&self, v: DocId) -> &[u32] {
        self.out_links(v)
    }
}

/// Propagates an increment wave of size `initial` (the inserted
/// document's rank, or its negation for a delete) starting at
/// `origin`, applying increments into `ranks` if provided.
///
/// The origin itself distributes `initial / N(origin)` to each of its
/// out-links — Figure 2's first step — and every receiver forwards
/// `damping · received / N` while `|received| > ε`.
pub fn propagate<G: OutLinks>(
    graph: &G,
    origin: DocId,
    initial: f64,
    cfg: PropagationConfig,
    ranks: Option<&mut [f64]>,
) -> PropagationStats {
    wave(graph, &[(origin, initial)], cfg, ranks, None)
}

/// Propagates a whole burst of increment waves as *one* merged
/// generation-synchronous wave: every origin distributes its initial
/// in generation zero, and from then on each document forwards its
/// accumulated increment once per generation no matter how many
/// origins' waves flow through it. Message and node-coverage counts
/// are therefore deduplicated across the burst — never more than the
/// sum of the per-origin waves, strictly fewer whenever the waves
/// overlap.
pub fn propagate_burst<G: OutLinks>(
    graph: &G,
    origins: &[(DocId, f64)],
    cfg: PropagationConfig,
    ranks: Option<&mut [f64]>,
) -> PropagationStats {
    wave(graph, origins, cfg, ranks, None)
}

/// The shared wave core. When `cone` is given, every message target is
/// asserted to lie inside it — the upstream-fixedness certificate.
fn wave<G: OutLinks>(
    graph: &G,
    origins: &[(DocId, f64)],
    cfg: PropagationConfig,
    mut ranks: Option<&mut [f64]>,
    cone: Option<&ConeSet>,
) -> PropagationStats {
    assert!(cfg.epsilon > 0.0, "epsilon must be positive");
    assert!(cfg.damping > 0.0 && cfg.damping <= 1.0, "damping in (0,1]");
    let mut stats = PropagationStats::default();
    let mut covered = vec![false; graph.len()];

    // Generation-synchronous wave: all increments reaching a document
    // within one generation are accumulated and forwarded as one
    // message per out-link — what a peer batching its inbox does, and
    // the only formulation whose work is bounded by O(E) per
    // generation at very small thresholds (a per-message event queue
    // blows up combinatorially in cyclic graphs).
    let mut acc = vec![0.0f64; graph.len()];
    let mut frontier: Vec<u32> = Vec::new();
    let mut on_frontier = vec![false; graph.len()];
    let mut depth = 0u32;
    // Safety valve: with damping = 1 on a cyclic graph the wave mass
    // never decays and the loop below would not terminate; cap the
    // generations far above anything a damped wave can reach.
    const MAX_GENERATIONS: u32 = 1_000_000;

    // Generation zero: every origin's initial distribution, carrying
    // no damping — the full initial rank is what the new (or deleted)
    // document advertises (Fig. 2).
    for &(origin, initial) in origins {
        if let Some(c) = cone {
            assert!(c.contains(origin), "origin {origin} outside its own cone");
        }
        let out = graph.out(origin);
        if out.is_empty() {
            continue;
        }
        let share = initial / out.len() as f64;
        for &t in out {
            stats.messages += 1;
            if let Some(c) = cone {
                assert!(
                    c.contains(DocId(t)),
                    "wave escaped the cone at document {t}"
                );
            }
            if !covered[t as usize] {
                covered[t as usize] = true;
                stats.node_coverage += 1;
            }
            acc[t as usize] += share;
            if !on_frontier[t as usize] {
                on_frontier[t as usize] = true;
                frontier.push(t);
            }
        }
        depth = 1;
        stats.path_length = 1;
    }

    while !frontier.is_empty() {
        let mut next: Vec<u32> = Vec::new();
        for &v in &frontier {
            on_frontier[v as usize] = false;
            let delta = std::mem::take(&mut acc[v as usize]);
            if let Some(r) = ranks.as_deref_mut() {
                r[v as usize] += delta;
            }
            // Forward while the received increment is significant.
            if delta.abs() <= cfg.epsilon {
                continue;
            }
            let out = graph.out(DocId(v));
            if out.is_empty() {
                continue;
            }
            let share = cfg.damping * delta / out.len() as f64;
            for &t in out {
                stats.messages += 1;
                if let Some(c) = cone {
                    assert!(
                        c.contains(DocId(t)),
                        "wave escaped the cone at document {t}"
                    );
                }
                if !covered[t as usize] {
                    covered[t as usize] = true;
                    stats.node_coverage += 1;
                }
                acc[t as usize] += share;
                if !on_frontier[t as usize] {
                    on_frontier[t as usize] = true;
                    next.push(t);
                }
            }
        }
        frontier = next;
        if !frontier.is_empty() {
            depth += 1;
            stats.path_length = depth;
            if depth >= MAX_GENERATIONS {
                break;
            }
        }
    }
    stats
}

/// Outcome of a localized burst: the merged wave's statistics plus the
/// SCC cone that certified it.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct BurstStats {
    /// The merged wave's Table 4 statistics.
    pub wave: PropagationStats,
    /// Origins in the burst.
    pub origins: usize,
    /// Live documents inside the downstream cone.
    pub cone_docs: usize,
    /// Components inside the downstream cone.
    pub cone_components: usize,
}

/// Runs a burst as one merged wave, restricted to — and certified
/// against — the [`SccIndex`] downstream cone of its origins. Every
/// update message is asserted to land inside the cone, so every
/// document outside it provably receives nothing and keeps its rank
/// bit-identically: upstream components are never re-swept.
///
/// # Panics
///
/// Panics if `index` is stale (refresh it first) or if the wave would
/// escape the cone (which would indicate index corruption).
pub fn propagate_burst_localized(
    graph: &DynamicGraph,
    index: &SccIndex,
    origins: &[(DocId, f64)],
    cfg: PropagationConfig,
    ranks: Option<&mut [f64]>,
) -> BurstStats {
    let origin_docs: Vec<DocId> = origins.iter().map(|&(d, _)| d).collect();
    let cone = index.downstream_cone(graph, &origin_docs);
    let wave_stats = wave(graph, origins, cfg, ranks, Some(&cone));
    BurstStats {
        wave: wave_stats,
        origins: origins.len(),
        cone_docs: cone.docs,
        cone_components: cone.components,
    }
}

/// Inserts a whole batch of documents structurally (updating `index`
/// incrementally — inserts are exact, no rebuild), then runs one
/// localized merged wave seeding each new document's base rank.
/// Returns the new ids and the burst statistics.
pub fn insert_burst(
    graph: &mut DynamicGraph,
    index: &mut SccIndex,
    batches: &[Vec<DocId>],
    ranks: &mut Vec<f64>,
    cfg: PropagationConfig,
) -> (Vec<DocId>, BurstStats) {
    let seed = 1.0 - cfg.damping;
    let mut origins: Vec<(DocId, f64)> = Vec::with_capacity(batches.len());
    for links in batches {
        let id = graph.insert_document(links);
        index.on_insert_document(id);
        ranks.push(seed);
        origins.push((id, seed));
    }
    assert_eq!(ranks.len(), graph.id_bound(), "rank vector out of sync");
    let stats = propagate_burst_localized(graph, index, &origins, cfg, Some(ranks.as_mut_slice()));
    (origins.into_iter().map(|(d, _)| d).collect(), stats)
}

/// Deletes a batch of documents: one merged localized wave propagates
/// every negated rank over the pre-deletion topology (the negation
/// must follow the links the documents had), then the documents are
/// unlinked and `index` coarsens.
pub fn delete_burst(
    graph: &mut DynamicGraph,
    index: &mut SccIndex,
    docs: &[DocId],
    ranks: &mut [f64],
    cfg: PropagationConfig,
) -> BurstStats {
    assert_eq!(ranks.len(), graph.id_bound(), "rank vector out of sync");
    let origins: Vec<(DocId, f64)> = docs.iter().map(|&d| (d, -ranks[d.index()])).collect();
    let stats = propagate_burst_localized(graph, index, &origins, cfg, Some(ranks));
    for &d in docs {
        ranks[d.index()] = 0.0;
        graph.delete_document(d);
        index.on_delete_document(d);
    }
    stats
}

/// Inserts a new document into `graph` and propagates the insert wave
/// (the full Sec. 3.1 protocol). Extends `ranks` with the new
/// document's rank. Returns the new id and the wave statistics.
///
/// The paper says the new document's pagerank is "initialized to some
/// fixed constant value"; its Table 4 measurement uses 1.0. For
/// *maintenance* the mathematically right constant is `1 − d`: a
/// freshly inserted document has no in-links, so its fixed-point rank
/// is exactly the base rank, and seeding anything larger permanently
/// over-injects rank mass into its neighborhood. We seed `1 − d`
/// (keeping the system at the true fixed point of the grown graph, to
/// within ε); the Table 4 experiment measures waves with
/// [`crate::INITIAL_RANK`] via [`propagate`] directly.
pub fn insert_document(
    graph: &mut DynamicGraph,
    out_links: &[DocId],
    ranks: &mut Vec<f64>,
    cfg: PropagationConfig,
) -> (DocId, PropagationStats) {
    let id = graph.insert_document(out_links);
    assert_eq!(ranks.len() + 1, graph.id_bound(), "rank vector out of sync");
    let seed = 1.0 - cfg.damping;
    ranks.push(seed);
    let stats = propagate(graph, id, seed, cfg, Some(ranks.as_mut_slice()));
    (id, stats)
}

/// Deletes a document from `graph` and propagates its negated rank
/// (Sec. 3.1: "when a document is removed, a pagerank update message
/// is sent with the value of the pagerank negated"). The wave runs
/// over the graph *before* unlinking, because the negation must follow
/// the links the document had. Returns the wave statistics.
pub fn delete_document(
    graph: &mut DynamicGraph,
    doc: DocId,
    ranks: &mut [f64],
    cfg: PropagationConfig,
) -> PropagationStats {
    assert_eq!(ranks.len(), graph.id_bound(), "rank vector out of sync");
    let rank = ranks[doc.index()];
    let stats = propagate(graph, doc, -rank, cfg, Some(ranks));
    ranks[doc.index()] = 0.0;
    graph.delete_document(doc);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::builder::from_edges;
    use dpr_graph::powerlaw::paper_graph;
    use dpr_graph::Edge;

    /// Figure 2's graph: G -> {H, I, J}; H -> {K, L}; I -> M.
    /// Ids: G=0, H=1, I=2, J=3, K=4, L=5, M=6.
    fn figure2() -> CsrGraph {
        from_edges(
            7,
            [
                Edge::new(0u32, 1u32),
                Edge::new(0u32, 2u32),
                Edge::new(0u32, 3u32),
                Edge::new(1u32, 4u32),
                Edge::new(1u32, 5u32),
                Edge::new(2u32, 6u32),
            ],
        )
    }

    #[test]
    fn figure2_fractions_are_exact() {
        // With damping 1 and a threshold small enough to let the wave
        // flow, the increments are the paper's exact fractions:
        // H, I, J get 1/3; K, L get 1/6; M gets 1/3 * 1/1 = 1/3.
        let g = figure2();
        let mut ranks = vec![0.0; 7];
        let cfg = PropagationConfig {
            damping: 1.0,
            epsilon: 1e-9,
        };
        let stats = propagate(&g, DocId(0), 1.0, cfg, Some(&mut ranks));
        assert!((ranks[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ranks[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ranks[3] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ranks[4] - 1.0 / 6.0).abs() < 1e-12);
        assert!((ranks[5] - 1.0 / 6.0).abs() < 1e-12);
        assert!((ranks[6] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.node_coverage, 6);
        assert_eq!(stats.messages, 6);
        assert_eq!(stats.path_length, 2);
    }

    #[test]
    fn threshold_stops_the_wave() {
        // With eps = 0.3, H/I/J's received 1/3 still exceeds it, so
        // they forward; K/L/M receive ~1/6..1/3 but K and L (1/6)
        // would forward only if 1/6 > 0.3 — it is not, and they have
        // no out-links anyway. With eps = 0.4 the wave stops at depth 1.
        let g = figure2();
        let cfg = PropagationConfig {
            damping: 1.0,
            epsilon: 0.4,
        };
        let stats = propagate(&g, DocId(0), 1.0, cfg, None);
        assert_eq!(stats.path_length, 1);
        assert_eq!(stats.node_coverage, 3);
    }

    #[test]
    fn lower_epsilon_reaches_further() {
        let g = paper_graph(5_000, 41);
        let loose = propagate(
            &g,
            DocId(17),
            1.0,
            PropagationConfig {
                damping: 0.85,
                epsilon: 0.2,
            },
            None,
        );
        let tight = propagate(
            &g,
            DocId(17),
            1.0,
            PropagationConfig {
                damping: 0.85,
                epsilon: 1e-4,
            },
            None,
        );
        assert!(tight.node_coverage >= loose.node_coverage);
        assert!(tight.path_length >= loose.path_length);
        assert!(tight.messages >= loose.messages);
    }

    #[test]
    fn dangling_origin_generates_nothing() {
        let g = from_edges(2, [Edge::new(0u32, 1u32)]);
        let stats = propagate(&g, DocId(1), 1.0, PropagationConfig::default(), None);
        assert_eq!(stats, PropagationStats::default());
    }

    #[test]
    fn insert_then_delete_restores_ranks() {
        // Insert a document, then delete it: the negated-rank wave
        // must cancel the insert wave exactly (same links, same rank).
        let base = paper_graph(300, 42);
        let mut graph = DynamicGraph::from_csr(&base);
        let mut ranks = vec![1.0; 300];
        let before = ranks.clone();
        // Insert and delete waves are mirror images (same links, same
        // magnitude, opposite sign, same truncation), so cancellation
        // is exact regardless of epsilon.
        let cfg = PropagationConfig {
            damping: 0.85,
            epsilon: 1e-6,
        };
        let targets = [DocId(3), DocId(7), DocId(11)];
        let (id, ins) = insert_document(&mut graph, &targets, &mut ranks, cfg);
        assert!(ins.messages > 0);
        assert!(ranks[3] > before[3]);
        let del = delete_document(&mut graph, id, &mut ranks, cfg);
        assert!(del.messages > 0);
        for i in 0..300 {
            assert!(
                (ranks[i] - before[i]).abs() < 1e-6,
                "rank {i}: {} vs {}",
                ranks[i],
                before[i]
            );
        }
        assert!(!graph.is_alive(id));
        graph.check_invariants().unwrap();
    }

    #[test]
    fn delete_uses_current_rank() {
        let base = from_edges(2, [Edge::new(0u32, 1u32)]);
        let mut graph = DynamicGraph::from_csr(&base);
        let mut ranks = vec![2.0, 5.0];
        let cfg = PropagationConfig {
            damping: 1.0,
            epsilon: 1e-9,
        };
        delete_document(&mut graph, DocId(0), &mut ranks, cfg);
        // Document 1 received -2.0 (0's whole rank over 1 out-link).
        assert!((ranks[1] - 3.0).abs() < 1e-12);
        assert_eq!(ranks[0], 0.0);
    }

    #[test]
    fn coverage_is_bounded_by_graph_size() {
        // The paper notes the 10k graph saturates at tiny thresholds.
        let g = paper_graph(200, 43);
        let stats = propagate(
            &g,
            DocId(0),
            1.0,
            PropagationConfig {
                damping: 0.85,
                epsilon: 1e-12,
            },
            None,
        );
        assert!(stats.node_coverage <= 200);
    }

    #[test]
    fn works_on_dynamic_graph_too() {
        let base = figure2();
        let dg = DynamicGraph::from_csr(&base);
        let s1 = propagate(&base, DocId(0), 1.0, PropagationConfig::default(), None);
        let s2 = propagate(&dg, DocId(0), 1.0, PropagationConfig::default(), None);
        assert_eq!(s1, s2);
    }

    #[test]
    fn burst_with_single_origin_matches_propagate_exactly() {
        let g = paper_graph(2_000, 44);
        let cfg = PropagationConfig {
            damping: 0.85,
            epsilon: 1e-9,
        };
        let mut r1 = vec![0.0; 2_000];
        let mut r2 = vec![0.0; 2_000];
        let s1 = propagate(&g, DocId(17), 1.0, cfg, Some(&mut r1));
        let s2 = propagate_burst(&g, &[(DocId(17), 1.0)], cfg, Some(&mut r2));
        assert_eq!(s1, s2);
        assert_eq!(r1, r2, "single-origin burst must be bit-identical");
    }

    #[test]
    fn overlapping_burst_dedupes_coverage_and_messages() {
        // A(0) -> C(2) -> D(3) and B(1) -> C(2): both waves flow
        // through C. Run separately, C forwards twice (4 messages,
        // coverage 2 + 2); merged, C forwards its accumulated
        // increment once (3 messages, coverage 2).
        let g = from_edges(
            4,
            [
                Edge::new(0u32, 2u32),
                Edge::new(1u32, 2u32),
                Edge::new(2u32, 3u32),
            ],
        );
        let cfg = PropagationConfig {
            damping: 1.0,
            epsilon: 1e-9,
        };
        let sep_a = propagate(&g, DocId(0), 1.0, cfg, None);
        let sep_b = propagate(&g, DocId(1), 1.0, cfg, None);
        assert_eq!(sep_a.messages + sep_b.messages, 4);
        assert_eq!(sep_a.node_coverage + sep_b.node_coverage, 4);
        let burst = propagate_burst(&g, &[(DocId(0), 1.0), (DocId(1), 1.0)], cfg, None);
        assert_eq!(burst.messages, 3, "C must forward once, not twice");
        assert_eq!(burst.node_coverage, 2, "coverage counts distinct docs");
        assert_eq!(burst.path_length, 2);
    }

    #[test]
    fn burst_never_exceeds_the_sum_of_separate_waves() {
        let g = paper_graph(5_000, 45);
        let cfg = PropagationConfig {
            damping: 0.85,
            epsilon: 1e-8,
        };
        let origins: Vec<(DocId, f64)> = [3u32, 700, 701, 1_900, 4_999]
            .iter()
            .map(|&d| (DocId(d), 1.0))
            .collect();
        let mut sum_messages = 0u64;
        let mut sum_coverage = 0usize;
        for &(d, v) in &origins {
            let s = propagate(&g, d, v, cfg, None);
            sum_messages += s.messages;
            sum_coverage += s.node_coverage;
        }
        let burst = propagate_burst(&g, &origins, cfg, None);
        assert!(
            burst.messages < sum_messages,
            "overlapping waves must coalesce: {} vs {sum_messages}",
            burst.messages
        );
        // Coverage counts each document once across the burst (the
        // separate waves count shared downstream docs once *each*).
        assert!(burst.node_coverage < sum_coverage);
        assert!(burst.node_coverage <= 5_000);
    }

    #[test]
    fn localized_burst_stays_in_cone_and_upstream_is_bit_fixed() {
        let base = paper_graph(3_000, 46);
        let graph = DynamicGraph::from_csr(&base);
        let index = SccIndex::new(&graph);
        let cfg = PropagationConfig {
            damping: 0.85,
            epsilon: 1e-10,
        };
        // Seed the burst deep in the DAG: documents whose component
        // ids are small sit near the sinks of the condensation, so
        // most of the graph stays strictly upstream of their cone.
        let mut low: Vec<DocId> = (0..3_000u32).map(DocId).collect();
        low.sort_by_key(|&d| index.component_of(d));
        let origins = [(low[0], 1.0), (low[1], -0.5)];
        let origin_docs = [low[0], low[1]];
        let before: Vec<f64> = (0..3_000).map(|i| i as f64 * 0.001).collect();
        let mut ranks = before.clone();
        let stats =
            propagate_burst_localized(&graph, &index, &origins, cfg, Some(ranks.as_mut_slice()));
        assert!(stats.cone_docs >= stats.wave.node_coverage);
        assert!(stats.cone_components > 0);
        // The certificate: documents outside the cone kept their rank
        // bit-identically — upstream components were never re-swept.
        let cone = index.downstream_cone(&graph, &origin_docs);
        let mut outside = 0;
        for i in 0..3_000usize {
            if !cone.contains(DocId::from(i)) {
                assert_eq!(ranks[i].to_bits(), before[i].to_bits(), "doc {i} moved");
                outside += 1;
            }
        }
        assert!(outside > 0, "scenario must leave some documents upstream");
    }

    #[test]
    fn insert_burst_and_sequential_inserts_agree_to_epsilon() {
        let base = paper_graph(800, 47);
        // ε far below the 1e-9 parity bar: the two protocols apply the
        // same linear increments and differ only at ε-truncation
        // points, whose accumulated effect is O(ε · generations).
        let cfg = PropagationConfig {
            damping: 0.85,
            epsilon: 1e-13,
        };
        let batches: Vec<Vec<DocId>> = vec![
            vec![DocId(3), DocId(90)],
            vec![DocId(3), DocId(500)],
            vec![DocId(241)],
        ];
        // Sequential protocol: one wave per insert.
        let mut g1 = DynamicGraph::from_csr(&base);
        let mut r1 = vec![1.0 / 800.0; 800];
        let mut seq_messages = 0u64;
        for links in &batches {
            let (_, s) = insert_document(&mut g1, links, &mut r1, cfg);
            seq_messages += s.messages;
        }
        // Burst protocol: one merged localized wave.
        let mut g2 = DynamicGraph::from_csr(&base);
        let mut idx = SccIndex::new(&g2);
        let mut r2 = vec![1.0 / 800.0; 800];
        let (ids, burst) = insert_burst(&mut g2, &mut idx, &batches, &mut r2, cfg);
        assert_eq!(ids.len(), 3);
        assert_eq!(idx.freshness(), dpr_graph::scc::IndexFreshness::Exact);
        assert!(
            burst.wave.messages <= seq_messages,
            "burst {} vs sequential {seq_messages}",
            burst.wave.messages
        );
        // Rank parity ≤ 1e-9 per doc: the merged wave applies the same
        // linear increments, differing only in ε-truncation points.
        for (i, (a, b)) in r1.iter().zip(&r2).enumerate() {
            assert!((a - b).abs() <= 1e-9, "doc {i}: {a} vs {b}");
        }
    }

    #[test]
    fn delete_burst_unlinks_and_coarsens() {
        let base = paper_graph(400, 48);
        let mut graph = DynamicGraph::from_csr(&base);
        let mut index = SccIndex::new(&graph);
        let mut ranks = vec![1.0 / 400.0; 400];
        let cfg = PropagationConfig {
            damping: 0.85,
            epsilon: 1e-10,
        };
        let victims = [DocId(5), DocId(77)];
        let stats = delete_burst(&mut graph, &mut index, &victims, &mut ranks, cfg);
        assert!(stats.wave.messages > 0);
        for &v in &victims {
            assert!(!graph.is_alive(v));
            assert_eq!(ranks[v.index()], 0.0);
        }
        assert_eq!(index.freshness(), dpr_graph::scc::IndexFreshness::Coarse);
        assert!(index.refresh(&graph));
        graph.check_invariants().unwrap();
    }
}
