//! Multi-threaded pass execution.
//!
//! A peer in the real system is an independent machine; inside the
//! simulator, one pass is a large data-parallel job (millions of
//! documents for the paper's biggest graphs). [`ParallelExecutor`]
//! splits the pass's working set across crossbeam scoped threads.
//!
//! The design is two-phase to stay safe and *bit-identical* to the
//! sequential engine:
//!
//! 1. **Scan (parallel)** — each thread takes a contiguous chunk of
//!    the dirty list and, reading the frozen pass-start state,
//!    computes for each document whether it carries (owner offline),
//!    what its new rank is, and the exact `(target, delta)` emissions
//!    it would send. Documents appear in the dirty list at most once,
//!    so chunk outputs touch disjoint documents.
//! 2. **Commit (sequential)** — chunk outputs are replayed in chunk
//!    order, which reproduces the sequential engine's floating-point
//!    addition order exactly; equality tests can use `==` on ranks.
//!
//! The commit phase serializes the fan-out merge; the scan phase
//! (rank computation, neighbor enumeration, message accounting)
//! parallelizes. This mirrors how a real multi-core simulator host
//! would batch per-peer work, and keeps the engine free of atomics.

use crate::engine::{ChaoticEngine, PassStats};
use dpr_graph::DocId;
use dpr_p2p::peer::PeerTable;

/// What the scan phase decided for one dirty document.
#[derive(Debug, Clone, Copy)]
enum Outcome {
    /// Owner offline; stays dirty.
    Carried(u32),
    /// Increment applied; optionally re-advertised (its emissions sit
    /// in the chunk's emit buffer, in document order).
    Applied { doc: u32, new_rank: f64, rel: f64, advertise: Option<f64> },
}

/// Per-chunk scan output.
#[derive(Debug, Default)]
struct ChunkResult {
    outcomes: Vec<Outcome>,
    emits: Vec<(u32, f64)>,
    remote: u64,
    local: u64,
    senders: u64,
}

/// Parallel pass executor.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with `threads` worker threads (at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelExecutor { threads: threads.max(1) }
    }

    /// An executor sized to the host's available parallelism.
    pub fn host_sized() -> Self {
        let t = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelExecutor::new(t)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes one pass, semantically identical to
    /// [`ChaoticEngine::pass`] (no hop model support — hops equal
    /// remote messages).
    pub fn pass(&self, eng: &mut ChaoticEngine, peers: &PeerTable) -> PassStats {
        eng.passes += 1;
        let mut stats = PassStats { pass: eng.passes, ..Default::default() };
        let work = std::mem::take(&mut eng.dirty);
        if work.is_empty() {
            return stats;
        }

        let chunk_size = work.len().div_ceil(self.threads);
        let chunks: Vec<&[u32]> = work.chunks(chunk_size).collect();

        // Scan phase: frozen reads of ranks / advertised / pending.
        let results: Vec<ChunkResult> = crossbeam::thread::scope(|s| {
            let eng = &*eng;
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| s.spawn(move |_| scan_chunk(eng, peers, chunk)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan thread panicked")).collect()
        })
        .expect("crossbeam scope failed");

        // Commit phase, mirroring the sequential engine's two phases:
        // first apply every outcome (carried pushes + state updates)
        // in chunk order, then merge every emission in chunk order.
        let mut carry: Vec<u32> = Vec::new();
        for res in &results {
            stats.remote_messages += res.remote;
            stats.local_updates += res.local;
            stats.senders += res.senders;
            for &outcome in &res.outcomes {
                match outcome {
                    Outcome::Carried(doc) => carry.push(doc),
                    Outcome::Applied { doc, new_rank, rel, advertise } => {
                        let i = doc as usize;
                        eng.queued[i] = false;
                        eng.pending[i] = 0.0;
                        eng.ranks[i] = new_rank;
                        stats.applied += 1;
                        stats.max_relative_change = stats.max_relative_change.max(rel);
                        if let Some(adv) = advertise {
                            eng.advertised[i] = adv;
                        }
                    }
                }
            }
        }
        for res in &results {
            for &(t, delta) in &res.emits {
                let ti = t as usize;
                eng.pending[ti] += delta;
                if !eng.queued[ti] {
                    eng.queued[ti] = true;
                    carry.push(t);
                }
            }
        }
        stats.hops = stats.remote_messages;
        eng.dirty = carry;
        stats
    }

    /// Runs parallel passes until quiescence or the engine's pass
    /// budget is exhausted. Returns the same [`crate::RunStats`] shape
    /// as the sequential runner.
    pub fn run_to_convergence(
        &self,
        eng: &mut ChaoticEngine,
        peers: &mut PeerTable,
        mut churn: Option<&mut crate::engine::ChurnFn<'_>>,
    ) -> crate::RunStats {
        let mut run = crate::RunStats::default();
        let budget = eng.config().max_passes;
        while !eng.is_quiescent() && run.passes < budget {
            let stats = self.pass(eng, peers);
            run.passes += 1;
            run.total_remote_messages += stats.remote_messages;
            run.total_local_updates += stats.local_updates;
            run.total_hops += stats.hops;
            run.per_pass.push(stats);
            if let Some(f) = churn.as_deref_mut() {
                f(run.passes, peers);
            }
        }
        run.converged = eng.is_quiescent();
        run
    }
}

/// The read-only per-document work of one chunk.
fn scan_chunk(eng: &ChaoticEngine, peers: &PeerTable, chunk: &[u32]) -> ChunkResult {
    let cfg = eng.config();
    let mut res = ChunkResult {
        outcomes: Vec::with_capacity(chunk.len()),
        ..Default::default()
    };
    for &doc in chunk {
        let i = doc as usize;
        let p = eng.owner_of(DocId(doc));
        if !peers.is_online(p) {
            res.outcomes.push(Outcome::Carried(doc));
            continue;
        }
        let new_rank = eng.ranks[i] + eng.pending[i];
        let rel =
            (new_rank - eng.advertised[i]).abs() / new_rank.abs().max(f64::MIN_POSITIVE);
        if rel <= cfg.epsilon {
            res.outcomes.push(Outcome::Applied { doc, new_rank, rel, advertise: None });
            continue;
        }
        let out = eng.graph().out_neighbors(DocId(doc));
        if out.is_empty() {
            res.outcomes.push(Outcome::Applied {
                doc,
                new_rank,
                rel,
                advertise: Some(new_rank),
            });
            continue;
        }
        let send = cfg.damping * (new_rank - eng.advertised[i]) / out.len() as f64;
        res.senders += 1;
        for &t in out {
            res.emits.push((t, send));
            if eng.owner_of(DocId(t)) == p {
                res.local += 1;
            } else {
                res.remote += 1;
            }
        }
        res.outcomes.push(Outcome::Applied {
            doc,
            new_rank,
            rel,
            advertise: Some(new_rank),
        });
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use dpr_graph::powerlaw::paper_graph;
    use dpr_p2p::peer::PeerId;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn owners(n: usize, peers: u32, seed: u64) -> Vec<PeerId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| PeerId(rng.gen_range(0..peers))).collect()
    }

    #[test]
    fn parallel_pass_is_bit_identical_to_sequential() {
        let g = paper_graph(2_000, 51);
        let n = g.num_nodes();
        let own = owners(n, 20, 1);
        let cfg = EngineConfig::with_epsilon(1e-5);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let peers = PeerTable::new(20);
        let exec = ParallelExecutor::new(4);
        for pass in 0..200 {
            if seq.is_quiescent() {
                break;
            }
            let s1 = seq.pass(&peers);
            let s2 = exec.pass(&mut par, &peers);
            assert_eq!(s1.remote_messages, s2.remote_messages, "pass {pass}");
            assert_eq!(s1.local_updates, s2.local_updates, "pass {pass}");
            assert_eq!(s1.senders, s2.senders, "pass {pass}");
            assert_eq!(s1.applied, s2.applied, "pass {pass}");
        }
        assert!(seq.is_quiescent() && par.is_quiescent());
        // Bit-identical final state.
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn parallel_respects_churn() {
        let g = paper_graph(800, 52);
        let n = g.num_nodes();
        let own = owners(n, 10, 2);
        let cfg = EngineConfig::with_epsilon(1e-3);
        let mut eng = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut peers = PeerTable::new(10);
        let exec = ParallelExecutor::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut churn = move |_pass: usize, p: &mut PeerTable| {
            p.set_online_fraction(0.5, &mut rng);
        };
        let run = exec.run_to_convergence(&mut eng, &mut peers, Some(&mut churn));
        assert!(run.converged, "passes {}", run.passes);
        assert!(run.passes > 0);
    }

    #[test]
    fn single_thread_executor_also_matches() {
        let g = paper_graph(500, 53);
        let n = g.num_nodes();
        let own = owners(n, 5, 4);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut peers1 = PeerTable::new(5);
        let mut peers2 = PeerTable::new(5);
        let run1 = seq.run_to_convergence(&mut peers1, None);
        let run2 = ParallelExecutor::new(1).run_to_convergence(&mut par, &mut peers2, None);
        assert_eq!(run1.passes, run2.passes);
        assert_eq!(run1.total_remote_messages, run2.total_remote_messages);
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn pass_on_quiescent_engine_is_a_noop() {
        let g = paper_graph(200, 54);
        let mut eng = ChaoticEngine::local(Arc::new(g), EngineConfig::with_epsilon(1e-3));
        eng.run_static();
        assert!(eng.is_quiescent());
        let exec = ParallelExecutor::new(2);
        let peers = PeerTable::new(1);
        let before = eng.ranks().to_vec();
        let s = exec.pass(&mut eng, &peers);
        assert_eq!(s.remote_messages + s.local_updates + s.applied, 0);
        assert_eq!(eng.ranks(), &before[..]);
    }

    #[test]
    fn host_sized_has_at_least_one_thread() {
        assert!(ParallelExecutor::host_sized().threads() >= 1);
    }
}
