//! Owner-sharded fully-parallel pass execution.
//!
//! A peer in the real system is an independent machine; inside the
//! simulator, one pass is a large data-parallel job (millions of
//! documents for the paper's biggest graphs). [`ShardedExecutor`]
//! partitions the document space into `S` contiguous shards (one per
//! worker thread) and runs **both** phases of a pass in parallel —
//! unlike the earlier design, which parallelized only the read-only
//! scan and serialized the entire fan-out commit on one thread.
//!
//! ## Pass structure
//!
//! 1. **Bucket** (main thread, `O(work)`): dirty documents are routed
//!    to their owning shard (`doc_id / shard_size`).
//! 2. **Apply + emit** (parallel over *source* shards): each shard
//!    sorts its work list ascending, then for each document applies
//!    the parked increment, and — if the rank moved more than ε —
//!    appends `(target, delta)` emissions to one flat per-shard
//!    buffer. A single stable counting pass (count per target shard,
//!    prefix-sum, place) then groups the buffer into contiguous
//!    per-target-shard segments, preserving emission order within
//!    each segment. Every write (`ranks`, `advertised`, `pending`,
//!    `queued`) lands in the shard's own slice, so no synchronization
//!    is needed.
//! 3. **Merge** (parallel over *target* shards): each shard folds its
//!    inbound segments in fixed source-shard order into a dense
//!    accumulator seeded from the document's current `pending`,
//!    coalescing all increments for a document into a single
//!    write-back, and queues newly dirtied documents. Because the
//!    segments are contiguous slices of `S` flat buffers (not an
//!    `S × S` grid of separate `Vec`s), the merge is a linear scan
//!    per source shard with no per-cell bookkeeping.
//!
//! ## Auto-inline guard
//!
//! Thread spawn and merge bookkeeping have a fixed per-pass cost, so
//! below a work threshold a threaded pass cannot beat the sequential
//! engine. When the dirty set is smaller than
//! [`DEFAULT_AUTO_SEQ_THRESHOLD`] documents the executor *delegates
//! the whole pass to [`ChaoticEngine::pass_with_hops`]* — which is
//! bit-identical by the determinism contract below, so the decision
//! is invisible in results and only visible in wall-clock (and in the
//! `dpr_exec_delegated_passes` telemetry counter). This is what keeps
//! `threads > 0` from ever losing to sequential on small graphs or on
//! the small tail passes of a converging run.
//!
//! ## Determinism
//!
//! Results are **bit-identical** to [`ChaoticEngine::pass`] at every
//! thread count. The sequential engine canonicalizes its work list to
//! ascending document order; shards are contiguous ascending ranges,
//! so concatenating the sorted per-shard sender lists in shard order
//! reproduces the global sequential sender order exactly. For any one
//! target document, merging its contributions in (source shard,
//! emission position) order therefore replays the sequential
//! `pending += delta` folds in the same order on the same starting
//! value — floating-point addition order is preserved, independent of
//! both the shard count and the thread count (the counting pass is
//! stable, so segment order equals emission order). Statistics are
//! sums and maxima of per-shard values, which are order-independent.
//! See DESIGN.md ("Execution architecture") for the full argument.
//!
//! Hop models (`dyn FnMut`, deliberately not thread-safe) keep exact
//! parity: emissions record `(src, dst, doc)` events per shard, and
//! the model is charged sequentially after the joins, in the same
//! order the sequential engine would have called it.

use crate::engine::{observe_mass, observe_sched, ChaoticEngine, ChurnFn, HopModel, PassStats};
use crate::RunStats;
use dpr_graph::{CsrGraph, DocId};
use dpr_p2p::peer::{PeerId, PeerTable};
use dpr_telemetry::{Event, Metric, Recorder, NOOP};
use std::time::Instant;

/// Work-list size below which a pass runs on the calling thread.
/// The sharded algorithm is identical either way (same shard layout,
/// same merge order); this only skips thread spawn overhead on the
/// small tail passes of a converging run.
const INLINE_WORK_THRESHOLD: usize = 4096;

/// Dirty-set size below which the executor delegates the whole pass
/// to the sequential engine (see the module docs, "Auto-inline
/// guard"). Measured on the `continuous --pass-scaling` workload:
/// below ~16k dirty documents per pass the fixed thread-spawn plus
/// counting-merge overhead exceeds the parallel win, so the sharded
/// fan-out only engages above it. Override per executor with
/// [`ShardedExecutor::with_auto_seq_threshold`] (benches and the
/// differential tests force `0` to pin the sharded path itself).
pub const DEFAULT_AUTO_SEQ_THRESHOLD: usize = 16_384;

/// Back-compat alias for the pre-shard executor name.
pub type ParallelExecutor = ShardedExecutor;

/// How a scenario executes engine passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded [`ChaoticEngine::pass`] on the calling thread.
    Sequential,
    /// [`ShardedExecutor`] with this many worker threads.
    Parallel(usize),
}

impl ExecMode {
    /// Parallel mode sized to the host's available parallelism.
    pub fn host_parallel() -> Self {
        ExecMode::Parallel(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Mode from an optional thread count (CLI `--threads` flag):
    /// `None` or `Some(1)` is sequential.
    pub fn from_threads(threads: Option<usize>) -> Self {
        match threads {
            None | Some(0) | Some(1) => ExecMode::Sequential,
            Some(t) => ExecMode::Parallel(t),
        }
    }

    /// Runs `eng` to convergence under this mode.
    pub fn run(
        &self,
        eng: &mut ChaoticEngine,
        peers: &mut PeerTable,
        churn: Option<&mut ChurnFn<'_>>,
    ) -> RunStats {
        self.run_observed(eng, peers, churn, &NOOP, "run")
    }

    /// [`ExecMode::run`] recording telemetry into `rec` under
    /// `run_label` (per-pass events from either executor; the sharded
    /// one adds per-shard phase timings).
    pub fn run_observed<R: Recorder + ?Sized>(
        &self,
        eng: &mut ChaoticEngine,
        peers: &mut PeerTable,
        churn: Option<&mut ChurnFn<'_>>,
        rec: &R,
        run_label: &str,
    ) -> RunStats {
        match *self {
            ExecMode::Sequential => eng.run_observed(peers, churn, rec, run_label),
            ExecMode::Parallel(t) => {
                ShardedExecutor::new(t).run_observed(eng, peers, churn, rec, run_label)
            }
        }
    }

    /// [`ChaoticEngine::run_static`] under this mode: every peer stays
    /// online for the whole run.
    pub fn run_static(&self, eng: &mut ChaoticEngine) -> RunStats {
        self.run_static_observed(eng, &NOOP, "run")
    }

    /// [`ExecMode::run_static`] recording telemetry into `rec`.
    pub fn run_static_observed<R: Recorder + ?Sized>(
        &self,
        eng: &mut ChaoticEngine,
        rec: &R,
        run_label: &str,
    ) -> RunStats {
        let mut peers = PeerTable::new(eng.owner.iter().map(|p| p.index() + 1).max().unwrap_or(1));
        self.run_observed(eng, &mut peers, None, rec, run_label)
    }
}

/// Order-independent tallies of one shard's apply+emit phase.
#[derive(Debug, Default, Clone, Copy)]
struct ShardStats {
    applied: u64,
    senders: u64,
    remote: u64,
    local: u64,
    max_rel: f64,
    /// Advertised delta absorbed by this shard's dangling documents
    /// (folded into the engine's cumulative sink after the join; the
    /// per-shard partial sums can differ from the sequential fold in
    /// the last ulp, which the audit tolerance absorbs).
    dangling: f64,
}

/// Everything one source shard mutates during apply+emit: its slices
/// of the engine state plus its private outputs.
struct SrcShard<'a> {
    /// First document id of the shard.
    base: usize,
    /// This shard's portion of the pass work list (unsorted on entry).
    work: &'a mut Vec<u32>,
    ranks: &'a mut [f64],
    advertised: &'a mut [f64],
    pending: &'a mut [f64],
    queued: &'a mut [bool],
    /// Documents whose owner is offline this pass (stay dirty).
    carry: &'a mut Vec<u32>,
    /// Flat emission buffer: `(target, delta)` in emission order.
    emit: &'a mut Vec<(u32, f64)>,
    /// `emit` regrouped into contiguous per-target-shard segments by
    /// the stable counting pass (emission order preserved within each
    /// segment).
    sorted: &'a mut Vec<(u32, f64)>,
    /// Segment boundaries into `sorted`: target shard `t` occupies
    /// `sorted[offsets[t]..offsets[t + 1]]`. Length `shards + 1`.
    offsets: &'a mut Vec<u32>,
    /// Placement cursors for the counting pass (scratch, length
    /// `shards`).
    cursor: &'a mut Vec<u32>,
    /// `(src peer, dst peer, target doc)` per remote message, in
    /// emission order; only filled when a hop model is installed.
    hop_events: &'a mut Vec<(PeerId, PeerId, u32)>,
}

/// Everything one target shard mutates during the mailbox merge.
struct DstShard<'a> {
    base: usize,
    pending: &'a mut [f64],
    queued: &'a mut [bool],
    /// Dense coalescing accumulator (shard slice).
    acc: &'a mut [f64],
    /// Pass stamp per document; `== stamp` means `acc` holds its sum.
    seen: &'a mut [u64],
    /// Documents that received at least one emission this pass.
    touched: &'a mut Vec<u32>,
    /// Subset of `touched` that was not queued before (newly dirty).
    fresh: &'a mut Vec<u32>,
}

/// Multi-threaded pass executor over contiguous document shards.
///
/// Holds all cross-pass scratch (work buckets, mailbox grid, merge
/// accumulators), so `pass` allocates nothing in steady state; hence
/// the `&mut self` receiver. Construct once per run and reuse.
#[derive(Debug)]
pub struct ShardedExecutor {
    threads: usize,
    /// Dirty-set size below which a pass delegates to the sequential
    /// engine (bit-identical either way).
    auto_seq_threshold: usize,
    /// Host parallelism cached at construction: when the hardware has
    /// a single execution unit, threading is pure overhead at *any*
    /// work size, so the guard delegates every pass.
    hw_threads: usize,
    /// Whether the most recent pass was delegated.
    delegated: bool,
    /// Cumulative pass counts by decision, for benches and doctors.
    delegated_passes: u64,
    sharded_passes: u64,
    /// Engine size the scratch is currently sized for.
    sized_for: usize,
    shard_size: usize,
    /// Per-source-shard work buckets.
    work: Vec<Vec<u32>>,
    /// Per-source-shard carried (owner-offline) documents.
    carry: Vec<Vec<u32>>,
    /// Per-source-shard flat emission buffers (cleared by the counting
    /// pass each pass; capacity persists across passes).
    emit: Vec<Vec<(u32, f64)>>,
    /// Per-source-shard counting-sorted emissions, segmented by target
    /// shard via `offsets`.
    sorted: Vec<Vec<(u32, f64)>>,
    /// Per-source-shard segment boundaries (`threads + 1` each).
    offsets: Vec<Vec<u32>>,
    /// Per-source-shard placement cursors (`threads` each).
    cursor: Vec<Vec<u32>>,
    /// Per-source-shard hop-charge events.
    hop_events: Vec<Vec<(PeerId, PeerId, u32)>>,
    /// Per-target-shard merge outputs.
    touched: Vec<Vec<u32>>,
    fresh: Vec<Vec<u32>>,
    /// Dense accumulator + stamp, both `sized_for` documents long.
    acc: Vec<f64>,
    seen: Vec<u64>,
    stamp: u64,
}

impl ShardedExecutor {
    /// An executor with `threads` worker threads (at least 1), one
    /// document shard per thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        ShardedExecutor {
            threads,
            auto_seq_threshold: DEFAULT_AUTO_SEQ_THRESHOLD,
            hw_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            delegated: false,
            delegated_passes: 0,
            sharded_passes: 0,
            sized_for: 0,
            shard_size: 1,
            work: Vec::new(),
            carry: Vec::new(),
            emit: Vec::new(),
            sorted: Vec::new(),
            offsets: Vec::new(),
            cursor: Vec::new(),
            hop_events: Vec::new(),
            touched: Vec::new(),
            fresh: Vec::new(),
            acc: Vec::new(),
            seen: Vec::new(),
            stamp: 0,
        }
    }

    /// This executor with the auto-inline threshold set to `docs`:
    /// passes whose dirty set is smaller delegate to the sequential
    /// engine. `0` disables delegation (always run the sharded
    /// fan-out); benches and differential tests use that to measure
    /// and pin the sharded path itself.
    pub fn with_auto_seq_threshold(mut self, docs: usize) -> Self {
        self.auto_seq_threshold = docs;
        self
    }

    /// Whether the most recent pass was delegated to the sequential
    /// engine by the auto-inline guard.
    pub fn last_pass_delegated(&self) -> bool {
        self.delegated
    }

    /// Cumulative `(delegated, sharded)` pass counts over this
    /// executor's lifetime — how often the auto-inline guard fired.
    /// `sharded == 0` means every pass ran the sequential engine's
    /// exact code path (the wall-clock is then definitionally the
    /// sequential wall-clock).
    pub fn pass_mix(&self) -> (u64, u64) {
        (self.delegated_passes, self.sharded_passes)
    }

    /// An executor sized to the host's available parallelism.
    pub fn host_sized() -> Self {
        let t = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardedExecutor::new(t)
    }

    /// Number of worker threads (== number of shards).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// (Re)sizes scratch for an engine over `n` documents.
    fn ensure_sized(&mut self, n: usize) {
        if self.sized_for == n {
            return;
        }
        let s = self.threads;
        self.sized_for = n;
        self.shard_size = n.div_ceil(s).max(1);
        self.work = (0..s).map(|_| Vec::new()).collect();
        self.carry = (0..s).map(|_| Vec::new()).collect();
        self.emit = (0..s).map(|_| Vec::new()).collect();
        self.sorted = (0..s).map(|_| Vec::new()).collect();
        self.offsets = (0..s).map(|_| vec![0u32; s + 1]).collect();
        self.cursor = (0..s).map(|_| vec![0u32; s]).collect();
        self.hop_events = (0..s).map(|_| Vec::new()).collect();
        self.touched = (0..s).map(|_| Vec::new()).collect();
        self.fresh = (0..s).map(|_| Vec::new()).collect();
        self.acc = vec![0.0; n];
        self.seen = vec![0; n];
        self.stamp = 0;
    }

    /// Executes one pass, bit-identical to [`ChaoticEngine::pass`]
    /// (see the module docs for why).
    pub fn pass(&mut self, eng: &mut ChaoticEngine, peers: &PeerTable) -> PassStats {
        self.pass_with_hops(eng, peers, None)
    }

    /// [`ShardedExecutor::pass`] with an optional hop model, charged
    /// in the sequential engine's exact call order.
    pub fn pass_with_hops(
        &mut self,
        eng: &mut ChaoticEngine,
        peers: &PeerTable,
        hop_model: Option<&mut HopModel<'_>>,
    ) -> PassStats {
        self.pass_timed(eng, peers, hop_model, None)
    }

    /// [`ShardedExecutor::pass_with_hops`] optionally collecting
    /// per-shard `(apply_ns, merge_ns)` wall-clock timings. Timing is
    /// measured around each shard's phase closure (inside the worker
    /// when the pass runs threaded), so it reflects real per-shard
    /// cost, not join skew. With `timings == None` no clock is read.
    fn pass_timed(
        &mut self,
        eng: &mut ChaoticEngine,
        peers: &PeerTable,
        hop_model: Option<&mut HopModel<'_>>,
        mut timings: Option<&mut Vec<(u64, u64)>>,
    ) -> PassStats {
        // Auto-inline guard: below the threshold (checked against the
        // pre-selection dirty set, so the decision is scheduler-mode
        // independent) the fixed spawn + merge overhead cannot pay for
        // itself — run the sequential engine pass instead. The same
        // holds at any work size when either the executor or the host
        // has a single execution unit. Results are bit-identical by
        // the determinism contract, so only the wall-clock and the
        // `dpr_exec_delegated_passes` counter can tell the difference.
        // Threshold 0 pins the sharded path (benches, differential
        // tests).
        self.delegated = self.auto_seq_threshold > 0
            && (self.threads.min(self.hw_threads) <= 1
                || eng.dirty.len() < self.auto_seq_threshold);
        if self.delegated {
            self.delegated_passes += 1;
            if let Some(tv) = timings.as_deref_mut() {
                tv.clear();
            }
            return eng.pass_with_hops(peers, hop_model);
        }
        self.sharded_passes += 1;
        let time_phases = timings.is_some();
        eng.passes += 1;
        let mut stats = PassStats {
            pass: eng.passes,
            ..Default::default()
        };
        // Selection runs on this thread via the same engine routine
        // the sequential pass uses, so the selected set — and with it
        // the whole pass — is independent of the shard layout.
        let (mut work, sel) = eng.take_pass_work();
        stats.record_sched(&sel);
        if work.is_empty() {
            if let Some(tv) = timings.as_deref_mut() {
                tv.clear();
            }
            return stats;
        }
        let n = eng.graph().num_nodes();
        self.ensure_sized(n);
        let ssize = self.shard_size;
        let shards = self.threads;
        let inline = shards == 1 || work.len() < INLINE_WORK_THRESHOLD;
        let collect_hops = hop_model.is_some();

        // Bucket the work list by owning shard.
        for &d in &work {
            self.work[d as usize / ssize].push(d);
        }

        // Split every per-document array into one disjoint mutable
        // slice per shard; disjointness is what makes the parallel
        // phases race-free without atomics.
        let cfg = eng.config();
        let graph: &CsrGraph = eng.graph.as_ref();
        let owner: &[PeerId] = &eng.owner;
        let mut src_shards: Vec<SrcShard<'_>> = Vec::with_capacity(shards);
        {
            let ranks = split_shards(&mut eng.ranks, ssize, shards);
            let advertised = split_shards(&mut eng.advertised, ssize, shards);
            let pending = split_shards(&mut eng.pending, ssize, shards);
            let queued = split_shards(&mut eng.queued, ssize, shards);
            let parts = ranks
                .into_iter()
                .zip(advertised)
                .zip(pending)
                .zip(queued)
                .zip(self.work.iter_mut())
                .zip(self.carry.iter_mut())
                .zip(self.emit.iter_mut())
                .zip(self.sorted.iter_mut())
                .zip(self.offsets.iter_mut())
                .zip(self.cursor.iter_mut())
                .zip(self.hop_events.iter_mut());
            for (s, p) in parts.enumerate() {
                let (
                    (
                        (
                            (
                                ((((((ranks, advertised), pending), queued), work), carry), emit),
                                sorted,
                            ),
                            offsets,
                        ),
                        cursor,
                    ),
                    hop_events,
                ) = p;
                src_shards.push(SrcShard {
                    base: s * ssize,
                    work,
                    ranks,
                    advertised,
                    pending,
                    queued,
                    carry,
                    emit,
                    sorted,
                    offsets,
                    cursor,
                    hop_events,
                });
            }
        }

        // Phase 1: apply + emit, parallel over source shards. Each
        // shard optionally times its own phase closure (on the worker
        // thread), so telemetry sees per-shard cost, not join skew.
        let shard_stats: Vec<(ShardStats, u64)> = if inline {
            src_shards
                .iter_mut()
                .map(|sh| {
                    timed(time_phases, || {
                        apply_and_emit(
                            sh,
                            graph,
                            owner,
                            peers,
                            cfg.epsilon,
                            cfg.damping,
                            ssize,
                            collect_hops,
                        )
                    })
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = src_shards
                    .iter_mut()
                    .map(|sh| {
                        scope.spawn(move || {
                            timed(time_phases, || {
                                apply_and_emit(
                                    sh,
                                    graph,
                                    owner,
                                    peers,
                                    cfg.epsilon,
                                    cfg.damping,
                                    ssize,
                                    collect_hops,
                                )
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("apply+emit shard panicked"))
                    .collect()
            })
        };
        drop(src_shards);

        for (st, _) in &shard_stats {
            stats.applied += st.applied;
            stats.senders += st.senders;
            stats.remote_messages += st.remote;
            stats.local_updates += st.local;
            stats.max_relative_change = stats.max_relative_change.max(st.max_rel);
            eng.dangling_advertised += st.dangling;
        }

        // Hop charging: the model is `FnMut` and stateful, so it runs
        // on this thread — but in the exact emission order the
        // sequential engine would have used (shards are ascending
        // ranges, events within a shard are in emission order).
        if let Some(model) = hop_model {
            for events in &mut self.hop_events {
                for &(src, dst, doc) in events.iter() {
                    stats.hops += u64::from(model(src, dst, DocId(doc)));
                }
                events.clear();
            }
        } else {
            stats.hops = stats.remote_messages;
        }

        // Phase 2: mailbox merge, parallel over target shards.
        self.stamp += 1;
        let stamp = self.stamp;
        let sorted: &[Vec<(u32, f64)>] = &self.sorted;
        let offsets: &[Vec<u32>] = &self.offsets;
        let mut dst_shards: Vec<DstShard<'_>> = Vec::with_capacity(shards);
        {
            let pending = split_shards(&mut eng.pending, ssize, shards);
            let queued = split_shards(&mut eng.queued, ssize, shards);
            let acc = split_shards(&mut self.acc, ssize, shards);
            let seen = split_shards(&mut self.seen, ssize, shards);
            let parts = pending
                .into_iter()
                .zip(queued)
                .zip(acc)
                .zip(seen)
                .zip(self.touched.iter_mut())
                .zip(self.fresh.iter_mut());
            for (t, p) in parts.enumerate() {
                let (((((pending, queued), acc), seen), touched), fresh) = p;
                dst_shards.push(DstShard {
                    base: t * ssize,
                    pending,
                    queued,
                    acc,
                    seen,
                    touched,
                    fresh,
                });
            }
        }

        let merge_ns: Vec<u64> = if inline {
            dst_shards
                .iter_mut()
                .enumerate()
                .map(|(t, sh)| {
                    timed(time_phases, || {
                        merge_mailboxes(sh, sorted, offsets, t, stamp)
                    })
                    .1
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = dst_shards
                    .iter_mut()
                    .enumerate()
                    .map(|(t, sh)| {
                        scope.spawn(move || {
                            timed(time_phases, || {
                                merge_mailboxes(sh, sorted, offsets, t, stamp)
                            })
                            .1
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("merge shard panicked"))
                    .collect()
            })
        };
        drop(dst_shards);

        if let Some(tv) = timings {
            tv.clear();
            tv.extend(
                shard_stats
                    .iter()
                    .zip(&merge_ns)
                    .map(|(&(_, apply_ns), &merge_ns)| (apply_ns, merge_ns)),
            );
        }

        // Next pass's dirty list: carried documents, newly queued
        // targets, plus the documents the priority scheduler deferred
        // (residual carryover). Order is irrelevant — every pass
        // re-canonicalizes.
        work.clear();
        for carry in &mut self.carry {
            work.append(carry);
        }
        for fresh in &mut self.fresh {
            work.append(fresh);
        }
        work.append(&mut eng.scratch_deferred);
        for bucket in &mut self.work {
            bucket.clear();
        }
        for touched in &mut self.touched {
            touched.clear();
        }
        eng.dirty = work;
        stats
    }

    /// Runs parallel passes until quiescence or the engine's pass
    /// budget is exhausted. Returns the same [`RunStats`] shape as the
    /// sequential runner; `churn` runs between passes.
    pub fn run_to_convergence(
        &mut self,
        eng: &mut ChaoticEngine,
        peers: &mut PeerTable,
        churn: Option<&mut ChurnFn<'_>>,
    ) -> RunStats {
        self.run_observed(eng, peers, churn, &NOOP, "run")
    }

    /// [`ShardedExecutor::run_to_convergence`] recording telemetry:
    /// the same per-pass `PassCompleted`/`ConvergenceCheck` and
    /// per-flip `PeerChurn` events as the sequential
    /// [`ChaoticEngine::run_observed`], plus one `ShardPhase` event
    /// per shard per pass with that shard's apply/merge wall-clock.
    ///
    /// Recording never touches the computation: the ranks stay
    /// bit-identical to the unobserved run (and to the sequential
    /// engine) at every thread count.
    pub fn run_observed<R: Recorder + ?Sized>(
        &mut self,
        eng: &mut ChaoticEngine,
        peers: &mut PeerTable,
        mut churn: Option<&mut ChurnFn<'_>>,
        rec: &R,
        run_label: &str,
    ) -> RunStats {
        let mut run = RunStats::default();
        let budget = eng.config().max_passes;
        let mut timings: Vec<(u64, u64)> = Vec::new();
        while !eng.is_quiescent() && run.passes < budget {
            let t0 = rec.enabled().then(Instant::now);
            let stats = if t0.is_some() {
                self.pass_timed(eng, peers, None, Some(&mut timings))
            } else {
                self.pass(eng, peers)
            };
            if let Some(t0) = t0 {
                let duration_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                rec.observe(Metric::PassDurationNs, duration_ns);
                rec.counter_add(
                    if self.delegated {
                        Metric::ExecDelegatedPasses
                    } else {
                        Metric::ExecShardedPasses
                    },
                    1,
                );
                for (shard, &(apply_ns, merge_ns)) in timings.iter().enumerate() {
                    rec.observe(Metric::ShardApplyNs, apply_ns);
                    rec.observe(Metric::ShardMergeNs, merge_ns);
                    rec.event(&Event::ShardPhase {
                        run: run_label.to_string(),
                        pass: stats.pass as u64,
                        shard: shard as u32,
                        apply_ns,
                        merge_ns,
                    });
                }
                rec.event(&Event::PassCompleted {
                    run: run_label.to_string(),
                    pass: stats.pass as u64,
                    applied: stats.applied,
                    remote_messages: stats.remote_messages,
                    local_updates: stats.local_updates,
                    senders: stats.senders,
                    max_relative_change: stats.max_relative_change,
                    hops: stats.hops,
                    duration_ns,
                });
                rec.event(&Event::ConvergenceCheck {
                    run: run_label.to_string(),
                    pass: stats.pass as u64,
                    active_docs: eng.active_docs() as u64,
                    residual: eng.residual_mass(),
                });
                observe_mass(rec, eng, stats.pass as u64, run_label);
                observe_sched(rec, eng.config().sched, &stats, run_label);
            }
            run.record_pass(stats, eng.config().effective_pass_stats_cap());
            if let Some(f) = churn.as_deref_mut() {
                if rec.enabled() {
                    let before: Vec<bool> = peers.peers().map(|p| peers.is_online(p)).collect();
                    f(run.passes, peers);
                    for (i, was) in before.iter().enumerate() {
                        let now = peers.is_online(PeerId(i as u32));
                        if now != *was {
                            rec.event(&Event::PeerChurn {
                                round: run.passes as u64,
                                peer: i as u32,
                                online: now,
                            });
                        }
                    }
                } else {
                    f(run.passes, peers);
                }
            }
        }
        run.converged = eng.is_quiescent();
        run
    }
}

/// Runs `f`, optionally measuring wall-clock nanoseconds around it.
/// With `measure == false` no clock is read and the cost is one
/// branch — the zero-overhead path for unobserved passes.
fn timed<T>(measure: bool, f: impl FnOnce() -> T) -> (T, u64) {
    if measure {
        let t0 = Instant::now();
        let v = f();
        (
            v,
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        )
    } else {
        (f(), 0)
    }
}

/// Splits `data` into exactly `shards` mutable slices of `size`
/// documents each (the last possibly shorter, trailing ones possibly
/// empty).
fn split_shards<T>(mut data: &mut [T], size: usize, shards: usize) -> Vec<&mut [T]> {
    let mut out = Vec::with_capacity(shards);
    for _ in 0..shards {
        let cut = size.min(data.len());
        let (head, tail) = data.split_at_mut(cut);
        out.push(head);
        data = tail;
    }
    out
}

/// Phase 1 for one source shard: canonicalize its work list, apply
/// parked increments, emit contribution changes into the mailbox row.
/// Mirrors [`ChaoticEngine::pass_with_hops`] exactly — any semantic
/// change there must be replicated here (the differential tests in
/// `tests/` enforce this).
#[allow(clippy::too_many_arguments)]
fn apply_and_emit(
    shard: &mut SrcShard<'_>,
    graph: &CsrGraph,
    owner: &[PeerId],
    peers: &PeerTable,
    eps: f64,
    damping: f64,
    ssize: usize,
    collect_hops: bool,
) -> ShardStats {
    let mut st = ShardStats::default();
    // Ascending document order: concatenated across shards this is
    // the sequential engine's canonical work order.
    shard.work.sort_unstable();
    for &d in shard.work.iter() {
        let i = d as usize;
        let li = i - shard.base;
        let p = owner[i];
        if !peers.is_online(p) {
            shard.carry.push(d);
            continue;
        }
        shard.queued[li] = false;
        let delta = std::mem::take(&mut shard.pending[li]);
        let rank = shard.ranks[li] + delta;
        shard.ranks[li] = rank;
        st.applied += 1;
        let rel = (rank - shard.advertised[li]).abs() / rank.abs().max(f64::MIN_POSITIVE);
        st.max_rel = st.max_rel.max(rel);
        if rel <= eps {
            continue;
        }
        let out = graph.out_neighbors(DocId(d));
        if out.is_empty() {
            // Dangling document: nothing to forward, but the rank is
            // now advertised (prevents re-evaluation forever).
            st.dangling += rank - shard.advertised[li];
            shard.advertised[li] = rank;
            continue;
        }
        let send = damping * (rank - shard.advertised[li]) / out.len() as f64;
        shard.advertised[li] = rank;
        st.senders += 1;
        for &t in out {
            shard.emit.push((t, send));
            let tp = owner[t as usize];
            if tp == p {
                st.local += 1;
            } else {
                st.remote += 1;
                if collect_hops {
                    shard.hop_events.push((p, tp, t));
                }
            }
        }
    }
    // Single stable counting pass: group the flat emission buffer
    // into contiguous per-target-shard segments (count, prefix-sum,
    // place). Stability — equal-shard emissions keep their relative
    // order — is what preserves the sequential floating-point fold
    // order through the merge.
    let nshards = shard.cursor.len();
    shard.offsets.clear();
    shard.offsets.resize(nshards + 1, 0);
    for &(t, _) in shard.emit.iter() {
        shard.offsets[t as usize / ssize + 1] += 1;
    }
    for s in 0..nshards {
        shard.offsets[s + 1] += shard.offsets[s];
    }
    shard.cursor.copy_from_slice(&shard.offsets[..nshards]);
    shard.sorted.clear();
    shard.sorted.resize(shard.emit.len(), (0, 0.0));
    for &(t, delta) in shard.emit.iter() {
        let dst = t as usize / ssize;
        shard.sorted[shard.cursor[dst] as usize] = (t, delta);
        shard.cursor[dst] += 1;
    }
    shard.emit.clear();
    st
}

/// Phase 2 for one target shard: fold this shard's contiguous segment
/// of every source shard's counting-sorted emission buffer, in
/// source-shard order, into the dense accumulator (seeded from the
/// document's current `pending`, so carried/injected mass folds in
/// the same position as sequentially), then commit one coalesced
/// write per document and queue the newly dirty ones.
fn merge_mailboxes(
    shard: &mut DstShard<'_>,
    sorted: &[Vec<(u32, f64)>],
    offsets: &[Vec<u32>],
    dst: usize,
    stamp: u64,
) {
    for (src_sorted, src_off) in sorted.iter().zip(offsets) {
        let seg = &src_sorted[src_off[dst] as usize..src_off[dst + 1] as usize];
        for &(d, delta) in seg {
            let li = d as usize - shard.base;
            if shard.seen[li] != stamp {
                shard.seen[li] = stamp;
                shard.acc[li] = shard.pending[li];
                shard.touched.push(d);
            }
            shard.acc[li] += delta;
        }
    }
    for &d in shard.touched.iter() {
        let li = d as usize - shard.base;
        shard.pending[li] = shard.acc[li];
        if !shard.queued[li] {
            shard.queued[li] = true;
            shard.fresh.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use dpr_graph::powerlaw::paper_graph;
    use dpr_p2p::peer::PeerId;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn owners(n: usize, peers: u32, seed: u64) -> Vec<PeerId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| PeerId(rng.gen_range(0..peers))).collect()
    }

    #[test]
    fn parallel_pass_is_bit_identical_to_sequential() {
        let g = paper_graph(2_000, 51);
        let n = g.num_nodes();
        let own = owners(n, 20, 1);
        let cfg = EngineConfig::with_epsilon(1e-5);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let peers = PeerTable::new(20);
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        for pass in 0..200 {
            if seq.is_quiescent() {
                break;
            }
            let s1 = seq.pass(&peers);
            let s2 = exec.pass(&mut par, &peers);
            assert_eq!(s1, s2, "pass {pass}");
        }
        assert!(seq.is_quiescent() && par.is_quiescent());
        // Bit-identical final state.
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn parallel_respects_churn() {
        let g = paper_graph(800, 52);
        let n = g.num_nodes();
        let own = owners(n, 10, 2);
        let cfg = EngineConfig::with_epsilon(1e-3);
        let mut eng = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut peers = PeerTable::new(10);
        let mut exec = ShardedExecutor::new(3).with_auto_seq_threshold(0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut churn = move |_pass: usize, p: &mut PeerTable| {
            p.set_online_fraction(0.5, &mut rng);
        };
        let run = exec.run_to_convergence(&mut eng, &mut peers, Some(&mut churn));
        assert!(run.converged, "passes {}", run.passes);
        assert!(run.passes > 0);
    }

    #[test]
    fn churned_run_matches_sequential_bitwise() {
        let g = paper_graph(1_200, 55);
        let n = g.num_nodes();
        let own = owners(n, 16, 7);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        let mut peers_seq = PeerTable::new(16);
        let mut peers_par = PeerTable::new(16);
        // Identical churn schedules on both sides (independent rngs,
        // same seed).
        let mut rng_seq = ChaCha8Rng::seed_from_u64(9);
        let mut rng_par = ChaCha8Rng::seed_from_u64(9);
        let mut churn_seq = move |_p: usize, t: &mut PeerTable| {
            t.set_online_fraction(0.6, &mut rng_seq);
        };
        let mut churn_par = move |_p: usize, t: &mut PeerTable| {
            t.set_online_fraction(0.6, &mut rng_par);
        };
        let r1 = seq.run_to_convergence(&mut peers_seq, Some(&mut churn_seq));
        let r2 = exec.run_to_convergence(&mut par, &mut peers_par, Some(&mut churn_par));
        assert!(r1.converged && r2.converged);
        assert_eq!(r1.passes, r2.passes);
        assert_eq!(r1.per_pass, r2.per_pass);
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn single_thread_executor_also_matches() {
        let g = paper_graph(500, 53);
        let n = g.num_nodes();
        let own = owners(n, 5, 4);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut peers1 = PeerTable::new(5);
        let mut peers2 = PeerTable::new(5);
        let run1 = seq.run_to_convergence(&mut peers1, None);
        let run2 = ShardedExecutor::new(1).run_to_convergence(&mut par, &mut peers2, None);
        assert_eq!(run1.passes, run2.passes);
        assert_eq!(run1.total_remote_messages, run2.total_remote_messages);
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let g = paper_graph(1_500, 56);
        let n = g.num_nodes();
        let own = owners(n, 12, 5);
        let cfg = EngineConfig::with_epsilon(1e-5);
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let mut eng = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
            let mut peers = PeerTable::new(12);
            let run = ShardedExecutor::new(threads).run_to_convergence(&mut eng, &mut peers, None);
            assert!(run.converged);
            match &reference {
                None => reference = Some(eng.ranks().to_vec()),
                Some(r) => assert_eq!(r.as_slice(), eng.ranks(), "threads {threads}"),
            }
        }
    }

    #[test]
    fn hop_model_charged_in_sequential_order() {
        let g = paper_graph(600, 57);
        let n = g.num_nodes();
        let own = owners(n, 8, 6);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let peers = PeerTable::new(8);
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        // A stateful model whose answer depends on call order: parity
        // of calls so far. Any reordering shows up in `hops`.
        let mut calls_seq = 0u64;
        let mut model_seq = |_s: PeerId, _d: PeerId, _doc: DocId| {
            calls_seq += 1;
            (calls_seq % 3) as u32
        };
        let mut calls_par = 0u64;
        let mut model_par = |_s: PeerId, _d: PeerId, _doc: DocId| {
            calls_par += 1;
            (calls_par % 3) as u32
        };
        while !seq.is_quiescent() {
            let s1 = seq.pass_with_hops(&peers, Some(&mut model_seq));
            let s2 = exec.pass_with_hops(&mut par, &peers, Some(&mut model_par));
            assert_eq!(s1, s2);
        }
        assert!(par.is_quiescent());
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn pass_on_quiescent_engine_is_a_noop() {
        let g = paper_graph(200, 54);
        let mut eng = ChaoticEngine::local(Arc::new(g), EngineConfig::with_epsilon(1e-3));
        eng.run_static();
        assert!(eng.is_quiescent());
        let mut exec = ShardedExecutor::new(2);
        let peers = PeerTable::new(1);
        let before = eng.ranks().to_vec();
        let s = exec.pass(&mut eng, &peers);
        assert_eq!(s.remote_messages + s.local_updates + s.applied, 0);
        assert_eq!(eng.ranks(), &before[..]);
    }

    #[test]
    fn executor_reuse_across_engines_of_different_sizes() {
        let mut exec = ShardedExecutor::new(3).with_auto_seq_threshold(0);
        for (n, seed) in [(300usize, 60u64), (900, 61), (300, 62)] {
            let g = paper_graph(n, seed);
            let own = owners(n, 6, seed);
            let cfg = EngineConfig::with_epsilon(1e-4);
            let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
            let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
            let mut p1 = PeerTable::new(6);
            let mut p2 = PeerTable::new(6);
            seq.run_to_convergence(&mut p1, None);
            exec.run_to_convergence(&mut par, &mut p2, None);
            assert_eq!(seq.ranks(), par.ranks(), "n = {n}");
        }
    }

    #[test]
    fn exec_mode_from_threads() {
        assert_eq!(ExecMode::from_threads(None), ExecMode::Sequential);
        assert_eq!(ExecMode::from_threads(Some(1)), ExecMode::Sequential);
        assert_eq!(ExecMode::from_threads(Some(4)), ExecMode::Parallel(4));
        assert!(matches!(ExecMode::host_parallel(), ExecMode::Parallel(t) if t >= 1));
    }

    #[test]
    fn exec_modes_produce_identical_ranks() {
        let g = paper_graph(700, 58);
        let n = g.num_nodes();
        let own = owners(n, 9, 8);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut ranks: Vec<Vec<f64>> = Vec::new();
        for mode in [
            ExecMode::Sequential,
            ExecMode::Parallel(2),
            ExecMode::Parallel(5),
        ] {
            let mut eng = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
            let mut peers = PeerTable::new(9);
            let run = mode.run(&mut eng, &mut peers, None);
            assert!(run.converged);
            ranks.push(eng.ranks().to_vec());
        }
        assert_eq!(ranks[0], ranks[1]);
        assert_eq!(ranks[0], ranks[2]);
    }

    #[test]
    fn priority_parallel_is_bit_identical_to_sequential_priority() {
        let g = paper_graph(2_000, 64);
        let n = g.num_nodes();
        let own = owners(n, 20, 14);
        let cfg = EngineConfig::with_epsilon(1e-5).with_sched(crate::SchedMode::Priority);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let peers = PeerTable::new(20);
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        let mut pass = 0;
        while !seq.is_quiescent() {
            pass += 1;
            let s1 = seq.pass(&peers);
            let s2 = exec.pass(&mut par, &peers);
            assert_eq!(s1, s2, "pass {pass}");
            assert!(pass < 10_000);
        }
        assert!(par.is_quiescent());
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn priority_thread_counts_agree_bitwise() {
        let g = paper_graph(1_500, 65);
        let n = g.num_nodes();
        let own = owners(n, 12, 15);
        let cfg = EngineConfig::with_epsilon(1e-5).with_sched(crate::SchedMode::Priority);
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let mut eng = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
            let mut peers = PeerTable::new(12);
            let run = ShardedExecutor::new(threads).run_to_convergence(&mut eng, &mut peers, None);
            assert!(run.converged);
            match &reference {
                None => reference = Some(eng.ranks().to_vec()),
                Some(r) => assert_eq!(r.as_slice(), eng.ranks(), "threads {threads}"),
            }
        }
    }

    #[test]
    fn greedy_parallel_is_bit_identical_to_sequential_greedy() {
        let g = paper_graph(2_000, 64);
        let n = g.num_nodes();
        let own = owners(n, 20, 14);
        let cfg = EngineConfig::with_epsilon(1e-5).with_sched(crate::SchedMode::Greedy);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let peers = PeerTable::new(20);
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        let mut pass = 0;
        while !seq.is_quiescent() {
            pass += 1;
            let s1 = seq.pass(&peers);
            let s2 = exec.pass(&mut par, &peers);
            assert_eq!(s1, s2, "pass {pass}");
            assert!(pass < 10_000);
        }
        assert!(par.is_quiescent());
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn greedy_thread_counts_agree_bitwise() {
        let g = paper_graph(1_500, 65);
        let n = g.num_nodes();
        let own = owners(n, 12, 15);
        let cfg = EngineConfig::with_epsilon(1e-5).with_sched(crate::SchedMode::Greedy);
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let mut eng = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
            let mut peers = PeerTable::new(12);
            let run = ShardedExecutor::new(threads).run_to_convergence(&mut eng, &mut peers, None);
            assert!(run.converged);
            match &reference {
                None => reference = Some(eng.ranks().to_vec()),
                Some(r) => assert_eq!(r.as_slice(), eng.ranks(), "threads {threads}"),
            }
        }
    }

    #[test]
    fn priority_churned_run_matches_sequential_bitwise() {
        let g = paper_graph(1_200, 66);
        let n = g.num_nodes();
        let own = owners(n, 16, 16);
        let cfg = EngineConfig::with_epsilon(1e-4).with_sched(crate::SchedMode::Priority);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        let mut peers_seq = PeerTable::new(16);
        let mut peers_par = PeerTable::new(16);
        let mut rng_seq = ChaCha8Rng::seed_from_u64(17);
        let mut rng_par = ChaCha8Rng::seed_from_u64(17);
        let mut churn_seq = move |_p: usize, t: &mut PeerTable| {
            t.set_online_fraction(0.6, &mut rng_seq);
        };
        let mut churn_par = move |_p: usize, t: &mut PeerTable| {
            t.set_online_fraction(0.6, &mut rng_par);
        };
        let r1 = seq.run_to_convergence(&mut peers_seq, Some(&mut churn_seq));
        let r2 = exec.run_to_convergence(&mut par, &mut peers_par, Some(&mut churn_par));
        assert!(r1.converged && r2.converged);
        assert_eq!(r1.per_pass, r2.per_pass);
        assert_eq!(seq.ranks(), par.ranks());
    }

    #[test]
    fn host_sized_has_at_least_one_thread() {
        assert!(ShardedExecutor::host_sized().threads() >= 1);
    }

    #[test]
    fn auto_seq_guard_delegates_small_passes_bit_identically() {
        use dpr_telemetry::TraceRecorder;
        // 2k docs is far below the default threshold, so every pass
        // must delegate — and the result must still be bit-identical
        // to the sequential engine (trivially: it *is* the sequential
        // engine), with the decision visible in the telemetry counter
        // and no ShardPhase events emitted.
        let g = paper_graph(2_000, 67);
        let n = g.num_nodes();
        let own = owners(n, 10, 18);
        let cfg = EngineConfig::with_epsilon(1e-5);
        let mut seq = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut par = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut p1 = PeerTable::new(10);
        let mut p2 = PeerTable::new(10);
        let r1 = seq.run_to_convergence(&mut p1, None);
        let rec = TraceRecorder::new();
        let mut exec = ShardedExecutor::new(4);
        let r2 = exec.run_observed(&mut par, &mut p2, None, &rec, "guard");
        assert!(exec.last_pass_delegated());
        assert_eq!(r1.per_pass, r2.per_pass);
        assert_eq!(seq.ranks(), par.ranks());
        assert_eq!(
            rec.counter(Metric::ExecDelegatedPasses),
            r2.passes as u64,
            "every pass below the threshold delegates"
        );
        assert_eq!(rec.counter(Metric::ExecShardedPasses), 0);
        assert!(rec
            .events()
            .iter()
            .all(|e| !matches!(e, Event::ShardPhase { .. })));
    }

    #[test]
    fn forced_sharded_path_reports_no_delegation() {
        use dpr_telemetry::TraceRecorder;
        let g = paper_graph(1_000, 68);
        let n = g.num_nodes();
        let own = owners(n, 8, 19);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut eng = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut peers = PeerTable::new(8);
        let rec = TraceRecorder::new();
        let mut exec = ShardedExecutor::new(4).with_auto_seq_threshold(0);
        let run = exec.run_observed(&mut eng, &mut peers, None, &rec, "forced");
        assert!(run.converged);
        assert!(!exec.last_pass_delegated());
        assert_eq!(rec.counter(Metric::ExecShardedPasses), run.passes as u64);
        assert_eq!(rec.counter(Metric::ExecDelegatedPasses), 0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_emits_shard_phases() {
        use dpr_telemetry::{Event, TraceRecorder};
        let g = paper_graph(1_000, 59);
        let n = g.num_nodes();
        let own = owners(n, 10, 11);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let mut plain = ChaoticEngine::new(Arc::new(g.clone()), own.clone(), cfg);
        let mut obs = ChaoticEngine::new(Arc::new(g), own, cfg);
        let mut p1 = PeerTable::new(10);
        let mut p2 = PeerTable::new(10);
        let r1 = ShardedExecutor::new(4)
            .with_auto_seq_threshold(0)
            .run_to_convergence(&mut plain, &mut p1, None);
        let rec = TraceRecorder::new();
        let r2 = ShardedExecutor::new(4)
            .with_auto_seq_threshold(0)
            .run_observed(&mut obs, &mut p2, None, &rec, "t");
        assert_eq!(r1.per_pass, r2.per_pass);
        assert_eq!(plain.ranks(), obs.ranks());
        let events = rec.events();
        let shard_phases: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::ShardPhase { pass, shard, .. } => Some((*pass, *shard)),
                _ => None,
            })
            .collect();
        // 4 shards per pass, in ascending shard order within a pass.
        assert_eq!(shard_phases.len(), 4 * r2.passes);
        for w in shard_phases.chunks(4) {
            assert_eq!(w.iter().map(|&(_, s)| s).collect::<Vec<_>>(), [0, 1, 2, 3]);
        }
        let passes_done = events
            .iter()
            .filter(|e| matches!(e, Event::PassCompleted { .. }))
            .count();
        assert_eq!(passes_done, r2.passes);
    }

    #[test]
    fn observed_residual_series_is_monotone_non_increasing() {
        use dpr_telemetry::{Event, TraceRecorder};
        let g = paper_graph(900, 63);
        let n = g.num_nodes();
        let own = owners(n, 8, 13);
        let cfg = EngineConfig::with_epsilon(1e-4);
        let eng = ChaoticEngine::new(Arc::new(g), own, cfg);
        let rec = TraceRecorder::new();
        for mode in [ExecMode::Sequential, ExecMode::Parallel(3)] {
            let mut fresh = eng.clone();
            let run = mode.run_static_observed(&mut fresh, &rec, "mono");
            assert!(run.converged);
        }
        let mut prev: Option<f64> = None;
        let mut pass_seen = 0u64;
        for e in rec.events() {
            if let Event::ConvergenceCheck { pass, residual, .. } = e {
                // Two back-to-back runs share the label; reset the
                // baseline when the pass counter restarts.
                if pass <= pass_seen {
                    prev = None;
                }
                pass_seen = pass;
                if let Some(p) = prev {
                    assert!(residual <= p * (1.0 + 1e-9) + 1e-12, "{residual} > {p}");
                }
                prev = Some(residual);
            }
        }
        assert!(pass_seen > 1);
    }
}
