//! Relative-error distributions — the measurements behind Table 2.
//!
//! The paper characterizes pagerank quality as the relative error
//! `|R_d − R_c| / R_c` between the distributed result `R_d` and the
//! synchronous reference `R_c`, reported as the maximum error within
//! the best 50 %, 75 %, 90 %, 99 % and 99.9 % of pages, plus the
//! overall maximum and average.

/// The percentile levels Table 2 reports (fractions of pages).
pub const TABLE2_PERCENTILES: [f64; 5] = [0.50, 0.75, 0.90, 0.99, 0.999];

/// Summary of a relative-error distribution, Table 2 style.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ErrorDistribution {
    /// `(fraction, error)` pairs: the maximum relative error among the
    /// best `fraction` of pages, for each entry of
    /// [`TABLE2_PERCENTILES`].
    pub percentiles: Vec<(f64, f64)>,
    /// The largest relative error over all pages.
    pub max: f64,
    /// The mean relative error over all pages.
    pub avg: f64,
    /// Number of pages measured.
    pub count: usize,
}

/// Per-document relative errors `|approx − reference| / reference`.
///
/// # Panics
///
/// Panics if lengths differ or a reference value is zero (pageranks
/// are bounded below by `1 − d > 0`).
pub fn relative_errors(approx: &[f64], reference: &[f64]) -> Vec<f64> {
    assert_eq!(approx.len(), reference.len(), "length mismatch");
    approx
        .iter()
        .zip(reference)
        .map(|(&a, &r)| {
            assert!(r != 0.0, "reference rank is zero");
            (a - r).abs() / r.abs()
        })
        .collect()
}

/// Summarizes a set of relative errors the way Table 2 reports them.
///
/// # Panics
///
/// Panics on an empty input.
pub fn summarize(mut errors: Vec<f64>) -> ErrorDistribution {
    assert!(!errors.is_empty(), "no errors to summarize");
    let count = errors.len();
    let avg = errors.iter().sum::<f64>() / count as f64;
    errors.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN error"));
    let max = *errors.last().unwrap();
    let percentiles = TABLE2_PERCENTILES
        .iter()
        .map(|&p| {
            // "up to 50% of the pages had error < x": x is the error
            // at the ceil(p * count)-th best page.
            let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
            (p, errors[idx])
        })
        .collect();
    ErrorDistribution {
        percentiles,
        max,
        avg,
        count,
    }
}

/// Convenience: full Table 2 cell set from two rank vectors.
pub fn compare(approx: &[f64], reference: &[f64]) -> ErrorDistribution {
    summarize(relative_errors(approx, reference))
}

/// Fraction of pages with relative error below `threshold` — used for
/// the paper's "99 % of the nodes converged to within 1 % of R_c"
/// style statements (Sec. 4.3).
pub fn fraction_below(approx: &[f64], reference: &[f64], threshold: f64) -> f64 {
    let errs = relative_errors(approx, reference);
    let n = errs.len();
    errs.into_iter().filter(|&e| e < threshold).count() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_errors_are_elementwise() {
        let e = relative_errors(&[1.1, 2.0, 0.5], &[1.0, 2.0, 1.0]);
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert_eq!(e[1], 0.0);
        assert!((e[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_orders_percentiles() {
        // 100 pages with errors 0.00 .. 0.99.
        let errors: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let s = summarize(errors);
        assert_eq!(s.count, 100);
        assert!((s.max - 0.99).abs() < 1e-12);
        assert!((s.avg - 0.495).abs() < 1e-12);
        // 50th percentile = 50th best page = error 0.49.
        assert!((s.percentiles[0].1 - 0.49).abs() < 1e-12);
        // 99th percentile = 99th best = 0.98.
        assert!((s.percentiles[3].1 - 0.98).abs() < 1e-12);
        // Monotone in the fraction.
        for w in s.percentiles.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn fraction_below_counts_strictly() {
        let f = fraction_below(&[1.0, 1.5, 2.0], &[1.0, 1.0, 1.0], 0.6);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_vectors_have_zero_error() {
        let v = vec![0.3, 1.7, 2.0];
        let s = compare(&v, &v);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.avg, 0.0);
        assert!(s.percentiles.iter().all(|&(_, e)| e == 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        relative_errors(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "no errors")]
    fn empty_summary_panics() {
        summarize(Vec::new());
    }

    #[test]
    fn single_element_summary() {
        let s = summarize(vec![0.25]);
        assert_eq!(s.max, 0.25);
        assert_eq!(s.avg, 0.25);
        assert!(s.percentiles.iter().all(|&(_, e)| e == 0.25));
    }
}
