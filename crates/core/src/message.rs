//! The pagerank update message, single and framed.
//!
//! "Upon receiving an update message for a document, the receiving
//! peer updates the document's pagerank" (Fig. 1). In the increment
//! formulation used by the engine, the message carries the *change* in
//! the sender's forwarded contribution; the receiver simply adds it.
//! A negative delta is a document-deletion update (Sec. 3.1).
//!
//! The paper's cost model assumes peers holding many documents combine
//! traffic to the same destination (Sec. 4.6). [`FlushBuffer`] is the
//! sender side of that aggregation: increments accumulate per
//! destination peer, increments to the same document coalesce into one
//! entry, and [`UpdateFrame`] carries the result as one multi-update
//! wire payload instead of k single messages.

use dpr_graph::DocId;
use dpr_p2p::guid::Guid;
use dpr_p2p::transport::{max_entries_for, FrameEntry, RankUpdateWire, UpdateFrameWire, WireError};
use fxhash::FxHashMap;

/// An in-memory pagerank update: "add `delta` to document `doc`".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankUpdate {
    /// The target document.
    pub doc: DocId,
    /// The rank contribution change (damping already applied by the
    /// sender). Negative for deletions.
    pub delta: f64,
}

impl RankUpdate {
    /// Creates an update.
    pub fn new(doc: DocId, delta: f64) -> Self {
        RankUpdate { doc, delta }
    }

    /// Serializes to the paper's 24-byte wire form (128-bit GUID +
    /// 64-bit value).
    pub fn to_wire(self) -> RankUpdateWire {
        RankUpdateWire {
            guid: Guid::for_document(self.doc).0,
            value: self.delta,
        }
    }

    /// Recovers the in-memory form from the wire, resolving the GUID
    /// through the receiver's `guid -> doc` resolver (a real peer
    /// holds this map for the documents it stores).
    pub fn from_wire(
        wire: RankUpdateWire,
        resolve: impl Fn(Guid) -> Option<DocId>,
    ) -> Result<Self, MessageError> {
        let doc = resolve(Guid(wire.guid)).ok_or(MessageError::UnknownGuid(Guid(wire.guid)))?;
        Ok(RankUpdate {
            doc,
            delta: wire.value,
        })
    }
}

/// An in-memory multi-update frame: every update targets a document on
/// the same destination peer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateFrame {
    /// The updates, in sender flush order (first-touch order of the
    /// coalescing buffer — the order the receiver folds them in).
    pub updates: Vec<RankUpdate>,
}

impl UpdateFrame {
    /// Serializes to the packed wire form: each update becomes a
    /// 16-byte `(frame_tag, value)` entry.
    pub fn to_wire(&self) -> UpdateFrameWire {
        UpdateFrameWire {
            entries: self
                .updates
                .iter()
                .map(|u| FrameEntry {
                    tag: Guid::for_document(u.doc).frame_tag(),
                    value: u.delta,
                })
                .collect(),
        }
    }

    /// Recovers the in-memory form, resolving each entry's tag through
    /// the receiver's `tag -> doc` index. Entry order is preserved —
    /// the receiver must fold in this order for determinism.
    pub fn from_wire(
        wire: &UpdateFrameWire,
        resolve: impl Fn(u64) -> Option<DocId>,
    ) -> Result<Self, MessageError> {
        let mut updates = Vec::with_capacity(wire.entries.len());
        for e in &wire.entries {
            let doc = resolve(e.tag).ok_or(MessageError::UnknownTag(e.tag))?;
            updates.push(RankUpdate {
                doc,
                delta: e.value,
            });
        }
        Ok(UpdateFrame { updates })
    }
}

/// Sender-side per-destination aggregation buffer.
///
/// Increments pushed for the same document coalesce into one entry by
/// *adding in push order* — exactly the fold the receiver would have
/// performed on its own zero-seeded inbound accumulator had each
/// increment travelled alone, which is what keeps batched and
/// unbatched runs bit-identical (see DESIGN.md "Wire protocol &
/// aggregation").
#[derive(Debug, Clone, Default)]
pub struct FlushBuffer {
    entries: Vec<RankUpdate>,
    index: FxHashMap<DocId, usize>,
}

impl FlushBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FlushBuffer::default()
    }

    /// Accumulates one increment, coalescing per document.
    pub fn push(&mut self, doc: DocId, delta: f64) {
        match self.index.get(&doc) {
            Some(&i) => self.entries[i].delta += delta,
            None => {
                self.index.insert(doc, self.entries.len());
                self.entries.push(RankUpdate { doc, delta });
            }
        }
    }

    /// Number of coalesced entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the buffer into frames of at most
    /// [`max_entries_for`]`(max_frame_bytes)` entries each — the
    /// flush-on-pass-end step of the flush policy, with the size cap
    /// splitting oversized flushes. Entries keep first-touch order
    /// across the split.
    pub fn flush(&mut self, max_frame_bytes: usize) -> Vec<UpdateFrame> {
        self.index.clear();
        let cap = max_entries_for(max_frame_bytes);
        let mut frames = Vec::with_capacity(self.entries.len().div_ceil(cap));
        let mut entries = std::mem::take(&mut self.entries);
        while !entries.is_empty() {
            let rest = entries.split_off(entries.len().min(cap));
            frames.push(UpdateFrame { updates: entries });
            entries = rest;
        }
        frames
    }
}

/// Errors decoding or resolving an update message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MessageError {
    /// The GUID does not correspond to any document held by this peer.
    UnknownGuid(Guid),
    /// A frame entry's tag does not correspond to any document held by
    /// this peer.
    UnknownTag(u64),
    /// The wire payload was malformed.
    Wire(WireError),
}

impl From<WireError> for MessageError {
    fn from(e: WireError) -> Self {
        MessageError::Wire(e)
    }
}

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageError::UnknownGuid(g) => write!(f, "no local document with guid {g}"),
            MessageError::UnknownTag(t) => write!(f, "no local document with frame tag {t:#x}"),
            MessageError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for MessageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_p2p::transport::frame_wire_bytes;
    use std::collections::HashMap;

    #[test]
    fn wire_roundtrip_via_guid_resolution() {
        let m = RankUpdate::new(DocId(17), 0.25);
        let wire = m.to_wire();
        // A peer's local guid index.
        let index: HashMap<Guid, DocId> = (0..32u32)
            .map(|i| (Guid::for_document(DocId(i)), DocId(i)))
            .collect();
        let back = RankUpdate::from_wire(wire, |g| index.get(&g).copied()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unknown_guid_is_an_error() {
        let m = RankUpdate::new(DocId(99), 1.0);
        let err = RankUpdate::from_wire(m.to_wire(), |_| None).unwrap_err();
        assert!(matches!(err, MessageError::UnknownGuid(_)));
    }

    #[test]
    fn negative_delta_survives_the_wire() {
        let m = RankUpdate::new(DocId(3), -1.5);
        let back = RankUpdate::from_wire(m.to_wire(), |_| Some(DocId(3))).unwrap();
        assert!(back.delta < 0.0);
        assert_eq!(back.delta, -1.5);
    }

    #[test]
    fn full_byte_roundtrip() {
        // In-memory -> wire -> 24 bytes -> wire -> in-memory.
        let m = RankUpdate::new(DocId(8), 0.0625);
        let bytes = m.to_wire().encode();
        assert_eq!(bytes.len(), 24);
        let wire = RankUpdateWire::decode(bytes).unwrap();
        let back = RankUpdate::from_wire(wire, |g| {
            (g == Guid::for_document(DocId(8))).then_some(DocId(8))
        })
        .unwrap();
        assert_eq!(back, m);
    }

    /// A resolver over a dense doc range, as a receiving peer keeps.
    fn tag_index(n: u32) -> HashMap<u64, DocId> {
        (0..n)
            .map(|i| (Guid::for_document(DocId(i)).frame_tag(), DocId(i)))
            .collect()
    }

    #[test]
    fn frame_full_byte_roundtrip() {
        let frame = UpdateFrame {
            updates: vec![
                RankUpdate::new(DocId(3), 0.5),
                RankUpdate::new(DocId(0), -0.125),
                RankUpdate::new(DocId(7), 2.0),
            ],
        };
        let bytes = frame.to_wire().encode();
        assert_eq!(bytes.len(), 4 + 16 * 3);
        let wire = UpdateFrameWire::decode(bytes).unwrap();
        let index = tag_index(16);
        let back = UpdateFrame::from_wire(&wire, |t| index.get(&t).copied()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let frame = UpdateFrame {
            updates: vec![RankUpdate::new(DocId(99), 1.0)],
        };
        let err = UpdateFrame::from_wire(&frame.to_wire(), |_| None).unwrap_err();
        assert!(matches!(err, MessageError::UnknownTag(_)));
    }

    #[test]
    fn flush_buffer_coalesces_in_push_order() {
        let mut buf = FlushBuffer::new();
        buf.push(DocId(5), 0.25);
        buf.push(DocId(9), 1.0);
        buf.push(DocId(5), 0.5); // coalesces into the first entry
        assert_eq!(buf.len(), 2);
        let frames = buf.flush(usize::MAX);
        assert!(buf.is_empty());
        assert_eq!(frames.len(), 1);
        // First-touch order, and the receiver-equivalent fold 0.25 + 0.5.
        assert_eq!(
            frames[0].updates,
            vec![
                RankUpdate::new(DocId(5), 0.25 + 0.5),
                RankUpdate::new(DocId(9), 1.0)
            ]
        );
    }

    #[test]
    fn flush_splits_at_the_size_cap() {
        // Cap of 36 bytes fits exactly 2 entries per frame.
        let cap_bytes = 4 + 16 * 2;
        assert_eq!(max_entries_for(cap_bytes), 2);
        let mut buf = FlushBuffer::new();
        for i in 0..5u32 {
            buf.push(DocId(i), i as f64 + 1.0);
        }
        let frames = buf.flush(cap_bytes);
        assert_eq!(
            frames.iter().map(|f| f.updates.len()).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        // Concatenated frames preserve first-touch order exactly.
        let docs: Vec<u32> = frames
            .iter()
            .flat_map(|f| f.updates.iter().map(|u| u.doc.0))
            .collect();
        assert_eq!(docs, vec![0, 1, 2, 3, 4]);
        // A flushed buffer coalesces afresh: same doc starts a new entry.
        buf.push(DocId(0), 7.0);
        assert_eq!(buf.len(), 1);
    }

    proptest::proptest! {
        /// Satellite 1: frames of any size survive encode -> decode ->
        /// resolve byte-for-byte, including at the cap boundary.
        #[test]
        fn frame_roundtrip_proptest(
            raw in proptest::collection::vec(
                (0u32..512, -1.0e6f64..1.0e6), 1..200),
            cap_entries in 1usize..64,
        ) {
            let index = tag_index(512);
            let mut buf = FlushBuffer::new();
            for &(doc, delta) in &raw {
                buf.push(DocId(doc), delta);
            }
            let total = buf.len();
            let cap_bytes = frame_wire_bytes(cap_entries);
            proptest::prop_assert_eq!(max_entries_for(cap_bytes), cap_entries);
            let frames = buf.flush(cap_bytes);
            proptest::prop_assert_eq!(frames.len(), total.div_ceil(cap_entries));
            let mut seen = 0usize;
            for frame in &frames {
                proptest::prop_assert!(frame.updates.len() <= cap_entries);
                let bytes = frame.to_wire().encode();
                proptest::prop_assert_eq!(
                    bytes.len(), frame_wire_bytes(frame.updates.len()));
                let wire = UpdateFrameWire::decode(bytes).unwrap();
                let back =
                    UpdateFrame::from_wire(&wire, |t| index.get(&t).copied()).unwrap();
                proptest::prop_assert_eq!(&back, frame);
                seen += frame.updates.len();
            }
            proptest::prop_assert_eq!(seen, total);
            // Coalesced sum per doc equals the push-order fold.
            let mut expect: HashMap<u32, f64> = HashMap::new();
            for &(doc, delta) in &raw {
                *expect.entry(doc).or_insert(0.0) += delta;
            }
            for u in frames.iter().flat_map(|f| f.updates.iter()) {
                proptest::prop_assert_eq!(u.delta, expect[&u.doc.0]);
            }
        }
    }
}
