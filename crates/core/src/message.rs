//! The pagerank update message.
//!
//! "Upon receiving an update message for a document, the receiving
//! peer updates the document's pagerank" (Fig. 1). In the increment
//! formulation used by the engine, the message carries the *change* in
//! the sender's forwarded contribution; the receiver simply adds it.
//! A negative delta is a document-deletion update (Sec. 3.1).

use dpr_graph::DocId;
use dpr_p2p::guid::Guid;
use dpr_p2p::transport::{RankUpdateWire, WireError};

/// An in-memory pagerank update: "add `delta` to document `doc`".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankUpdate {
    /// The target document.
    pub doc: DocId,
    /// The rank contribution change (damping already applied by the
    /// sender). Negative for deletions.
    pub delta: f64,
}

impl RankUpdate {
    /// Creates an update.
    pub fn new(doc: DocId, delta: f64) -> Self {
        RankUpdate { doc, delta }
    }

    /// Serializes to the paper's 24-byte wire form (128-bit GUID +
    /// 64-bit value).
    pub fn to_wire(self) -> RankUpdateWire {
        RankUpdateWire {
            guid: Guid::for_document(self.doc).0,
            value: self.delta,
        }
    }

    /// Recovers the in-memory form from the wire, resolving the GUID
    /// through the receiver's `guid -> doc` resolver (a real peer
    /// holds this map for the documents it stores).
    pub fn from_wire(
        wire: RankUpdateWire,
        resolve: impl Fn(Guid) -> Option<DocId>,
    ) -> Result<Self, MessageError> {
        let doc = resolve(Guid(wire.guid)).ok_or(MessageError::UnknownGuid(Guid(wire.guid)))?;
        Ok(RankUpdate {
            doc,
            delta: wire.value,
        })
    }
}

/// Errors decoding or resolving an update message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MessageError {
    /// The GUID does not correspond to any document held by this peer.
    UnknownGuid(Guid),
    /// The wire payload was malformed.
    Wire(WireError),
}

impl From<WireError> for MessageError {
    fn from(e: WireError) -> Self {
        MessageError::Wire(e)
    }
}

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageError::UnknownGuid(g) => write!(f, "no local document with guid {g}"),
            MessageError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for MessageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn wire_roundtrip_via_guid_resolution() {
        let m = RankUpdate::new(DocId(17), 0.25);
        let wire = m.to_wire();
        // A peer's local guid index.
        let index: HashMap<Guid, DocId> = (0..32u32)
            .map(|i| (Guid::for_document(DocId(i)), DocId(i)))
            .collect();
        let back = RankUpdate::from_wire(wire, |g| index.get(&g).copied()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unknown_guid_is_an_error() {
        let m = RankUpdate::new(DocId(99), 1.0);
        let err = RankUpdate::from_wire(m.to_wire(), |_| None).unwrap_err();
        assert!(matches!(err, MessageError::UnknownGuid(_)));
    }

    #[test]
    fn negative_delta_survives_the_wire() {
        let m = RankUpdate::new(DocId(3), -1.5);
        let back = RankUpdate::from_wire(m.to_wire(), |_| Some(DocId(3))).unwrap();
        assert!(back.delta < 0.0);
        assert_eq!(back.delta, -1.5);
    }

    #[test]
    fn full_byte_roundtrip() {
        // In-memory -> wire -> 24 bytes -> wire -> in-memory.
        let m = RankUpdate::new(DocId(8), 0.0625);
        let bytes = m.to_wire().encode();
        assert_eq!(bytes.len(), 24);
        let wire = RankUpdateWire::decode(bytes).unwrap();
        let back = RankUpdate::from_wire(wire, |g| {
            (g == Guid::for_document(DocId(8))).then_some(DocId(8))
        })
        .unwrap();
        assert_eq!(back, m);
    }
}
